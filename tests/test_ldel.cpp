// Localized Delaunay graph LDel⁽¹⁾ and its planarization PLDel
// (centralized reference implementations).
#include "proximity/ldel.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "proximity/classic.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;

TEST(TriangleKey, Canonicalization) {
    EXPECT_EQ(make_triangle_key(3, 1, 2), (TriangleKey{1, 2, 3}));
    EXPECT_EQ(make_triangle_key(1, 2, 3), make_triangle_key(2, 3, 1));
    EXPECT_LT(make_triangle_key(1, 2, 3), make_triangle_key(1, 2, 4));
}

class LdelSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(LdelSweep, FastMatchesDefinitionalReference) {
    // The per-node local-Delaunay formulation must equal the circumcircle
    // definition exactly (general-position inputs).
    EXPECT_EQ(ldel1_triangles(udg_), ldel1_triangles_reference(udg_));
}

TEST_P(LdelSweep, ContainsGabrielAndUdel) {
    const auto ldel = build_ldel1(udg_);
    for (const auto& [u, v] : build_gabriel(udg_).edges()) {
        ASSERT_TRUE(ldel.has_edge(u, v)) << "Gabriel edge missing";
    }
    // UDel ⊆ LDel1: a Delaunay triangle with unit edges has a globally
    // empty circumcircle, hence an empty one over the 1-hop unions.
    // (Delaunay *edges* of UDel that are in no unit triangle are Gabriel
    // or hull edges; we check triangle edges only via the containment of
    // the full UDel edge set, which holds on general-position inputs.)
    const auto udel = build_udel(udg_);
    std::size_t missing = 0;
    for (const auto& [u, v] : udel.edges()) {
        if (!ldel.has_edge(u, v)) ++missing;
    }
    EXPECT_EQ(missing, 0u);
}

TEST_P(LdelSweep, PlanarizedIsPlanar) {
    // The shared certificate names the crossing edge pair on failure.
    const auto report = verify::check_planarity_certificate(build_pldel(udg_));
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(LdelSweep, PlanarizedStaysConnectedAndSpans) {
    const auto pldel = build_pldel(udg_);
    EXPECT_TRUE(graph::is_connected(pldel));
    const auto stretch = graph::length_stretch(udg_, pldel);
    EXPECT_EQ(stretch.disconnected_pairs, 0u);
    // Li et al. prove a ~2.5 worst-case factor for LDel; random instances
    // stay comfortably below 3.
    EXPECT_LT(stretch.max, 3.0);
}

TEST_P(LdelSweep, PlanarizationOnlyRemovesTriangles) {
    const auto all = ldel1_triangles(udg_);
    const auto kept = planarize_triangles(udg_, all);
    EXPECT_LE(kept.size(), all.size());
    for (const auto& t : kept) {
        EXPECT_TRUE(std::binary_search(all.begin(), all.end(), t));
    }
    // Surviving triangles are pairwise non-intersecting.
    for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t j = i + 1; j < kept.size(); ++j) {
            ASSERT_FALSE(triangles_intersect(udg_, kept[i], kept[j]));
        }
    }
}

TEST_P(LdelSweep, ThicknessTwoEdgeBound) {
    // LDel1 has thickness 2, hence at most 6n - 12 edges (and in
    // practice far fewer).
    const auto ldel = build_ldel1(udg_);
    EXPECT_LE(ldel.edge_count(), 6 * ldel.node_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, LdelSweep, ::testing::ValuesIn(test::standard_sweep()));

TEST(Ldel, TriangleHelpers) {
    // Two triangles sharing an edge do not "intersect".
    GeometricGraph g({{0, 0}, {1, 0}, {0.5, 1}, {0.5, -1}, {3, 0}, {4, 0}, {3.5, 1}});
    const TriangleKey t1 = make_triangle_key(0, 1, 2);
    const TriangleKey t2 = make_triangle_key(0, 1, 3);
    EXPECT_FALSE(triangles_intersect(g, t1, t2));
    // Disjoint far-away triangles do not intersect.
    const TriangleKey t3 = make_triangle_key(4, 5, 6);
    EXPECT_FALSE(triangles_intersect(g, t1, t3));
}

TEST(Ldel, TriangleIntersectionCases) {
    GeometricGraph g({{0, 0},     // 0
                      {4, 0},     // 1
                      {2, 3},     // 2: big triangle 0-1-2
                      {2, 1},     // 3: strictly inside 0-1-2
                      {2, 0.5},   // 4: also inside
                      {2.2, 1.2}, // 5
                      {6, 0},     // 6
                      {5, 2},     // 7
                      {7, 2}});   // 8
    const TriangleKey big = make_triangle_key(0, 1, 2);
    const TriangleKey inner = make_triangle_key(3, 4, 5);
    EXPECT_TRUE(triangles_intersect(g, big, inner));  // Containment case.
    EXPECT_TRUE(triangles_intersect(g, inner, big));
    const TriangleKey right = make_triangle_key(6, 7, 8);
    EXPECT_FALSE(triangles_intersect(g, big, right));
}

TEST(Ldel, LocalTrianglesRequireUnitEdges) {
    // Three nodes pairwise within range of a hub but the far pair beyond
    // range: the triangle (hub, a, b) with |ab| > radius is not local.
    const GeometricGraph udg = build_udg({{0, 0}, {0.9, 0.3}, {-0.9, 0.3}}, 1.0);
    EXPECT_TRUE(udg.has_edge(0, 1));
    EXPECT_TRUE(udg.has_edge(0, 2));
    EXPECT_FALSE(udg.has_edge(1, 2));
    EXPECT_TRUE(local_triangles_at(udg, 0).empty());
    EXPECT_TRUE(ldel1_triangles(udg).empty());
}

TEST(Ldel, SingleTriangleNetwork) {
    const GeometricGraph udg = build_udg({{0, 0}, {1, 0}, {0.5, 0.8}}, 1.1);
    const auto tris = ldel1_triangles(udg);
    ASSERT_EQ(tris.size(), 1u);
    EXPECT_EQ(tris[0], make_triangle_key(0, 1, 2));
    const auto kept = planarize_triangles(udg, tris);
    EXPECT_EQ(kept, tris);
}

}  // namespace
}  // namespace geospanner::proximity
