// Degenerate-geometry suite: exactly collinear rows, exactly cocircular
// 4+-sets, and duplicate / near-duplicate coordinates pushed through the
// full UDG → clustering → connectors → ICDS → LDel pipeline, with the
// verify:: audit trail as the oracle. Uniform workloads never produce
// these inputs; the exact predicates and tie-breaks only get exercised
// here and in the fuzz driver's degenerate modes.
#include <gtest/gtest.h>

#include <vector>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "geom/vec2.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner {
namespace {

/// Builds the backbone (centralized) and asserts every stage certificate.
void expect_clean_audit(const std::vector<geom::Point>& points, double radius) {
    const auto udg = proximity::build_udg(points, radius);
    ASSERT_GT(udg.node_count(), 0u);
    const core::Backbone backbone =
        core::build_backbone(udg, {core::Engine::kCentralized});
    verify::AuditOptions options;
    options.radius = radius;
    const verify::AuditTrail trail = verify::audit_backbone(udg, backbone, options);
    EXPECT_TRUE(trail.pass()) << trail.summary();
}

TEST(Degenerate, CollinearRowsAuditClean) {
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 180.0;
    config.radius = 50.0;
    for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
        config.seed = seed;
        for (const std::size_t rows : {1UL, 3UL}) {
            SCOPED_TRACE(::testing::Message() << "seed=" << seed << " rows=" << rows);
            expect_clean_audit(core::collinear_points(config, rows), config.radius);
        }
    }
}

TEST(Degenerate, CocircularRingsAuditClean) {
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 200.0;
    config.radius = 55.0;
    for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
        config.seed = seed;
        for (const std::size_t circles : {2UL, 4UL}) {
            SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                              << " circles=" << circles);
            expect_clean_audit(core::cocircular_points(config, circles),
                               config.radius);
        }
    }
}

TEST(Degenerate, SingleCocircularOctetAuditClean) {
    // The minimal interesting instance: one ring of 8 exactly cocircular
    // points (all 4+-subsets cocircular) — every LDel in-circle test on
    // this instance is a tie.
    std::vector<geom::Point> pts;
    for (const auto& [dx, dy] : {std::pair{30.0, 40.0}, {30.0, -40.0},
                                 {-30.0, 40.0}, {-30.0, -40.0},
                                 {40.0, 30.0}, {40.0, -30.0},
                                 {-40.0, 30.0}, {-40.0, -30.0}}) {
        pts.push_back({100.0 + dx, 100.0 + dy});
    }
    expect_clean_audit(pts, 110.0);
}

TEST(Degenerate, DuplicateCoordinatesAuditClean) {
    // Exact duplicates: a uniform instance with every fourth point
    // repeated verbatim. Coincident nodes are distinct protocol
    // participants at distance zero.
    auto pts = test::random_points(36, 150.0, 29);
    const std::size_t base = pts.size();
    for (std::size_t i = 0; i < base; i += 4) pts.push_back(pts[i]);
    expect_clean_audit(pts, 50.0);
}

TEST(Degenerate, NearDuplicateCoordinatesAuditClean) {
    // Near-duplicates one ulp-scale nudge apart: exercises the exact
    // predicates on almost-identical coordinates, where naive epsilon
    // comparisons misclassify.
    auto pts = test::random_points(36, 150.0, 53);
    const std::size_t base = pts.size();
    for (std::size_t i = 0; i < base; i += 4) {
        geom::Point p = pts[i];
        p.x += 1e-9;
        pts.push_back(p);
    }
    expect_clean_audit(pts, 50.0);
}

TEST(Degenerate, EngineMatchesCentralizedOnDegenerateInput) {
    // The staged engine's determinism contract must also hold on the
    // degenerate workloads, with audits enabled.
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 180.0;
    config.radius = 50.0;
    config.seed = 29;
    for (const test::FuzzMode mode :
         {test::FuzzMode::kCollinear, test::FuzzMode::kCocircular}) {
        SCOPED_TRACE(test::fuzz_mode_name(mode));
        const auto points = test::fuzz_points(mode, config);
        const auto udg = proximity::build_udg(points, config.radius);
        const core::Backbone reference =
            core::build_backbone(udg, {core::Engine::kCentralized});

        engine::EngineOptions options;
        options.threads = 4;
        options.audit = true;
        options.audit_options.radius = config.radius;
        engine::SpannerEngine engine(options);
        const engine::BuildResult result = engine.build(points, config.radius);

        EXPECT_TRUE(result.audit.pass()) << result.audit.summary();
        EXPECT_EQ(result.udg, udg);
        EXPECT_EQ(result.backbone.cds, reference.cds);
        EXPECT_EQ(result.backbone.ldel_icds, reference.ldel_icds);
        EXPECT_EQ(result.backbone.ldel_icds_prime, reference.ldel_icds_prime);
    }
}

}  // namespace
}  // namespace geospanner
