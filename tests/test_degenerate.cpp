// Degenerate-geometry suite: exactly collinear rows, exactly cocircular
// 4+-sets, and duplicate / near-duplicate coordinates pushed through the
// full UDG → clustering → connectors → ICDS → LDel pipeline, with the
// verify:: audit trail as the oracle. Uniform workloads never produce
// these inputs; the exact predicates and tie-breaks only get exercised
// here and in the fuzz driver's degenerate modes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "geom/predicates.h"
#include "geom/vec2.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner {
namespace {

/// Builds the backbone (centralized) and asserts every stage certificate.
void expect_clean_audit(const std::vector<geom::Point>& points, double radius) {
    const auto udg = proximity::build_udg(points, radius);
    ASSERT_GT(udg.node_count(), 0u);
    const core::Backbone backbone =
        core::build_backbone(udg, {core::Engine::kCentralized});
    verify::AuditOptions options;
    options.radius = radius;
    const verify::AuditTrail trail = verify::audit_backbone(udg, backbone, options);
    EXPECT_TRUE(trail.pass()) << trail.summary();
}

TEST(Degenerate, CollinearRowsAuditClean) {
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 180.0;
    config.radius = 50.0;
    for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
        config.seed = seed;
        for (const std::size_t rows : {1UL, 3UL}) {
            SCOPED_TRACE(::testing::Message() << "seed=" << seed << " rows=" << rows);
            expect_clean_audit(core::collinear_points(config, rows), config.radius);
        }
    }
}

TEST(Degenerate, CocircularRingsAuditClean) {
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 200.0;
    config.radius = 55.0;
    for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
        config.seed = seed;
        for (const std::size_t circles : {2UL, 4UL}) {
            SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                              << " circles=" << circles);
            expect_clean_audit(core::cocircular_points(config, circles),
                               config.radius);
        }
    }
}

TEST(Degenerate, SingleCocircularOctetAuditClean) {
    // The minimal interesting instance: one ring of 8 exactly cocircular
    // points (all 4+-subsets cocircular) — every LDel in-circle test on
    // this instance is a tie.
    std::vector<geom::Point> pts;
    for (const auto& [dx, dy] : {std::pair{30.0, 40.0}, {30.0, -40.0},
                                 {-30.0, 40.0}, {-30.0, -40.0},
                                 {40.0, 30.0}, {40.0, -30.0},
                                 {-40.0, 30.0}, {-40.0, -30.0}}) {
        pts.push_back({100.0 + dx, 100.0 + dy});
    }
    expect_clean_audit(pts, 110.0);
}

TEST(Degenerate, DuplicateCoordinatesAuditClean) {
    // Exact duplicates: a uniform instance with every fourth point
    // repeated verbatim. Coincident nodes are distinct protocol
    // participants at distance zero.
    auto pts = test::random_points(36, 150.0, 29);
    const std::size_t base = pts.size();
    for (std::size_t i = 0; i < base; i += 4) pts.push_back(pts[i]);
    expect_clean_audit(pts, 50.0);
}

TEST(Degenerate, NearDuplicateCoordinatesAuditClean) {
    // Near-duplicates one ulp-scale nudge apart: exercises the exact
    // predicates on almost-identical coordinates, where naive epsilon
    // comparisons misclassify.
    auto pts = test::random_points(36, 150.0, 53);
    const std::size_t base = pts.size();
    for (std::size_t i = 0; i < base; i += 4) {
        geom::Point p = pts[i];
        p.x += 1e-9;
        pts.push_back(p);
    }
    expect_clean_audit(pts, 50.0);
}

TEST(Degenerate, EngineMatchesCentralizedOnDegenerateInput) {
    // The staged engine's determinism contract must also hold on the
    // degenerate workloads, with audits enabled.
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 180.0;
    config.radius = 50.0;
    config.seed = 29;
    for (const test::FuzzMode mode :
         {test::FuzzMode::kCollinear, test::FuzzMode::kCocircular}) {
        SCOPED_TRACE(test::fuzz_mode_name(mode));
        const auto points = test::fuzz_points(mode, config);
        const auto udg = proximity::build_udg(points, config.radius);
        const core::Backbone reference =
            core::build_backbone(udg, {core::Engine::kCentralized});

        engine::EngineOptions options;
        options.threads = 4;
        options.audit = true;
        options.audit_options.radius = config.radius;
        engine::SpannerEngine engine(options);
        const engine::BuildResult result = engine.build(points, config.radius);

        EXPECT_TRUE(result.audit.pass()) << result.audit.summary();
        EXPECT_EQ(result.udg, udg);
        EXPECT_EQ(result.backbone.cds, reference.cds);
        EXPECT_EQ(result.backbone.ldel_icds, reference.ldel_icds);
        EXPECT_EQ(result.backbone.ldel_icds_prime, reference.ldel_icds_prime);
    }
}

// ---- Float-filter boundary ------------------------------------------
//
// The two-tier predicates decide most signs in double precision and fall
// back to expansion arithmetic only when the static error bound cannot
// certify the sign. These tests drive inputs straight at that boundary
// and pin three properties: the filtered entry points agree with the
// exported exact tier on every input, exact ties come back as exactly
// zero, and the fallback actually fires (visible in the counters).

TEST(PredicateFilter, CocircularIntegerQuadruplesAreExactTies) {
    // Integer points on x² + y² = 25: every incircle determinant is a
    // small-integer computation whose true value is 0 — below any
    // nonzero error bound, so only the exact tier can answer.
    const geom::Point a{3.0, 4.0}, b{0.0, -5.0}, c{5.0, 0.0};
    ASSERT_EQ(geom::orient_sign(a, b, c), 1);
    geom::reset_predicate_counters();
    for (const geom::Point d : {geom::Point{-3.0, 4.0}, {-3.0, -4.0}, {4.0, 3.0},
                                {-4.0, 3.0}, {0.0, 5.0}, {-5.0, 0.0}}) {
        EXPECT_EQ(geom::incircle_ccw(a, b, c, d), 0)
            << "d=(" << d.x << "," << d.y << ")";
        EXPECT_EQ(geom::incircle_sign_exact(a, b, c, d), 0);
    }
    const geom::PredicateCounters counters = geom::predicate_counters();
    EXPECT_EQ(counters.incircle_exact, 6u);  // every tie fell through
}

TEST(PredicateFilter, NearCocircularPerturbationsAgreeWithExactTier) {
    // d slides off the circle by 2^-k along x. Moving x = -3 toward 0
    // shrinks x² + y², so +2^-k is strictly inside (+1) and -2^-k
    // strictly outside (-1) for every k — the analytic truth the two
    // tiers must both reproduce even when the offset is far below the
    // filter's certificate.
    const geom::Point a{3.0, 4.0}, b{0.0, -5.0}, c{5.0, 0.0};
    geom::reset_predicate_counters();
    for (int k = 4; k <= 48; k += 4) {
        const double eps = std::ldexp(1.0, -k);
        const geom::Point inside{-3.0 + eps, 4.0};
        const geom::Point outside{-3.0 - eps, 4.0};
        EXPECT_EQ(geom::incircle_ccw(a, b, c, inside), 1) << "k=" << k;
        EXPECT_EQ(geom::incircle_sign_exact(a, b, c, inside), 1) << "k=" << k;
        EXPECT_EQ(geom::incircle_ccw(a, b, c, outside), -1) << "k=" << k;
        EXPECT_EQ(geom::incircle_sign_exact(a, b, c, outside), -1) << "k=" << k;
    }
    // Large k sit inside the error bound: the filter alone cannot have
    // decided them all.
    const geom::PredicateCounters counters = geom::predicate_counters();
    EXPECT_GT(counters.incircle_exact, 0u);
    EXPECT_GT(counters.incircle_fast, 0u);  // ...but small k stay fast
}

TEST(PredicateFilter, NearCollinearPerturbationsAgreeWithExactTier) {
    // Third point off the line y = x by 2^-k: true orientation is +1
    // (left turn) for any positive offset, 0 at exactly zero. k stops at
    // 48 — beyond ulp(7.0) = 2^-50 the offset rounds away in the input
    // itself and the point really is collinear.
    geom::reset_predicate_counters();
    for (int k = 20; k <= 48; k += 4) {
        const geom::Point a{0.0, 0.0}, b{3.0, 3.0};
        const geom::Point c{7.0, 7.0 + std::ldexp(1.0, -k)};
        EXPECT_EQ(geom::orient_sign(a, b, c), 1) << "k=" << k;
        EXPECT_EQ(geom::orient_sign_exact(a, b, c), 1) << "k=" << k;
    }
    EXPECT_EQ(geom::orient_sign(geom::Point{0.0, 0.0}, {3.0, 3.0}, {7.0, 7.0}), 0);
    const geom::PredicateCounters counters = geom::predicate_counters();
    EXPECT_GT(counters.orient_exact, 0u);
}

TEST(PredicateFilter, HugeMagnitudeTiesForceExpansionFallback) {
    // The cocircular quadruple scaled by 2^150: coordinates are still
    // exact doubles (powers of two preserve integers), the determinant
    // is still exactly 0, and the intermediate products reach ~1e+271 —
    // magnitudes where only expansion arithmetic keeps the tie. Also an
    // exactly collinear triple at the same scale for the orientation
    // filter.
    const double s = std::ldexp(1.0, 150);
    const geom::Point a{3.0 * s, 4.0 * s}, b{0.0, -5.0 * s}, c{5.0 * s, 0.0};
    geom::reset_predicate_counters();
    EXPECT_EQ(geom::incircle_ccw(a, b, c, {-3.0 * s, 4.0 * s}), 0);
    EXPECT_EQ(geom::incircle_ccw(a, b, c, {-3.0 * s + s, 4.0 * s}), 1);
    EXPECT_EQ(geom::orient_sign(geom::Point{0.0, 0.0}, {s, s}, {2.0 * s, 2.0 * s}), 0);
    const geom::PredicateCounters counters = geom::predicate_counters();
    EXPECT_GE(counters.incircle_exact, 1u);
    EXPECT_GE(counters.orient_exact, 1u);
}

}  // namespace
}  // namespace geospanner
