// Connector election (Algorithm 1): distributed == centralized, CDS
// structural guarantees, and the constant message bound (Lemma 3).
#include "protocol/connectors.h"

#include <gtest/gtest.h>

#include "graph/shortest_paths.h"
#include "protocol/clustering.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph cds_graph(const GeometricGraph& udg, const ConnectorState& conn) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : conn.cds_edges) g.add_edge(u, v);
    return g;
}

class ConnectorSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    ClusterState cluster_;
    ConnectorState conn_;

    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
        cluster_ = lowest_id_mis(udg_);
        conn_ = find_connectors(udg_, cluster_);
    }
};

TEST_P(ConnectorSweep, DistributedEqualsCentralized) {
    Net net(udg_);
    const ClusterState cluster = run_clustering(net, udg_);
    const ConnectorState distributed = run_connectors(net, udg_, cluster);
    EXPECT_EQ(distributed.is_connector, conn_.is_connector);
    EXPECT_EQ(distributed.cds_edges, conn_.cds_edges);
}

TEST_P(ConnectorSweep, CdsEdgesTouchOnlyBackboneAndAreUdgEdges) {
    for (const auto& [u, v] : conn_.cds_edges) {
        EXPECT_TRUE(udg_.has_edge(u, v)) << u << "," << v;
        const bool u_bb = cluster_.is_dominator(u) || conn_.is_connector[u];
        const bool v_bb = cluster_.is_dominator(v) || conn_.is_connector[v];
        EXPECT_TRUE(u_bb && v_bb);
    }
    // Connectors are always dominatees.
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (conn_.is_connector[v]) {
            EXPECT_EQ(cluster_.role[v], Role::kDominatee);
        }
    }
}

TEST_P(ConnectorSweep, CdsIsConnectedDominatingSet) {
    const GeometricGraph cds = cds_graph(udg_, conn_);
    std::vector<bool> backbone(udg_.node_count());
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        backbone[v] = cluster_.is_dominator(v) || conn_.is_connector[v];
    }
    // The backbone must be connected *within the CDS edge set*.
    EXPECT_TRUE(graph::is_connected_on(cds, backbone));
    // And dominating (every node is backbone or adjacent to a dominator).
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        EXPECT_TRUE(backbone[v] || !cluster_.dominators_of[v].empty());
    }
}

TEST_P(ConnectorSweep, NearbyDominatorPairsGetShortCdsPaths) {
    // The construction guarantee behind Lemma 5: dominators two UDG hops
    // apart are joined by a 2-edge CDS path; three hops apart by at most
    // a 3-edge CDS path.
    const GeometricGraph cds = cds_graph(udg_, conn_);
    std::vector<NodeId> dominators;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (cluster_.is_dominator(v)) dominators.push_back(v);
    }
    for (const NodeId u : dominators) {
        const auto udg_hops = graph::bfs_hops(udg_, u);
        const auto cds_hops = graph::bfs_hops(cds, u);
        for (const NodeId v : dominators) {
            if (v == u) continue;
            if (udg_hops[v] == 2) {
                ASSERT_NE(cds_hops[v], graph::kUnreachableHops);
                EXPECT_LE(cds_hops[v], 2) << "dominators " << u << "," << v;
            } else if (udg_hops[v] == 3) {
                ASSERT_NE(cds_hops[v], graph::kUnreachableHops);
                EXPECT_LE(cds_hops[v], 3) << "dominators " << u << "," << v;
            }
        }
    }
}

TEST_P(ConnectorSweep, MessageTypeBreakdown) {
    // Per-type counters: each node sends exactly one Hello; dominators
    // send exactly one IamDominator and no IamDominatee; dominatees the
    // reverse (one per acquired dominator, <= 5).
    Net net(udg_);
    const ClusterState cluster = run_clustering(net, udg_);
    (void)run_connectors(net, udg_, cluster);
    constexpr std::size_t kHello = 0;         // variant alternative indices
    constexpr std::size_t kIamDominator = 1;
    constexpr std::size_t kIamDominatee = 2;
    constexpr std::size_t kTryConnector = 3;
    constexpr std::size_t kIamConnector = 4;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        EXPECT_EQ(net.messages_sent_of_type(v, kHello), 1u);
        if (cluster.is_dominator(v)) {
            EXPECT_EQ(net.messages_sent_of_type(v, kIamDominator), 1u);
            EXPECT_EQ(net.messages_sent_of_type(v, kIamDominatee), 0u);
            EXPECT_EQ(net.messages_sent_of_type(v, kTryConnector), 0u);
        } else {
            EXPECT_EQ(net.messages_sent_of_type(v, kIamDominator), 0u);
            EXPECT_EQ(net.messages_sent_of_type(v, kIamDominatee),
                      cluster.dominators_of[v].size());
            EXPECT_LE(net.messages_sent_of_type(v, kIamConnector),
                      net.messages_sent_of_type(v, kTryConnector));
        }
    }
}

TEST_P(ConnectorSweep, ConstantMessagesPerNode) {
    Net net(udg_);
    const ClusterState cluster = run_clustering(net, udg_);
    (void)run_connectors(net, udg_, cluster);
    std::size_t max_sent = 0;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        max_sent = std::max(max_sent, net.messages_sent(v));
    }
    // Theoretical bound is a (large) constant independent of n; the
    // empirical constant on these densities is far smaller. 200 pins
    // "constant-ish" behavior across the sweep without being brittle.
    EXPECT_LE(max_sent, 200u);
}

TEST_P(ConnectorSweep, BoundedWinnersPerTwoHopElection) {
    // Winners of a two-hop connector election (candidates: dominatees
    // adjacent to both dominators; a candidate wins iff no audible
    // smaller-id candidate) are pairwise non-adjacent, and geometry
    // admits at most 2 such nodes in the intersection of the two disks
    // (the paper's lune argument). Every winner must have been elected.
    std::vector<NodeId> dominators;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (cluster_.is_dominator(v)) dominators.push_back(v);
    }
    const GeometricGraph cds = cds_graph(udg_, conn_);
    for (std::size_t i = 0; i < dominators.size(); ++i) {
        for (std::size_t j = i + 1; j < dominators.size(); ++j) {
            const NodeId u = dominators[i];
            const NodeId v = dominators[j];
            std::vector<NodeId> candidates;
            for (const NodeId w : udg_.neighbors(u)) {
                if (udg_.has_edge(w, v)) candidates.push_back(w);
            }
            std::vector<NodeId> winners;
            for (const NodeId w : candidates) {
                const bool beaten = std::any_of(
                    candidates.begin(), candidates.end(),
                    [&](NodeId c) { return c < w && udg_.has_edge(c, w); });
                if (!beaten) winners.push_back(w);
            }
            EXPECT_LE(winners.size(), 2u) << "pair " << u << "," << v;
            for (std::size_t a = 0; a < winners.size(); ++a) {
                for (std::size_t b = a + 1; b < winners.size(); ++b) {
                    EXPECT_FALSE(udg_.has_edge(winners[a], winners[b]));
                }
            }
            for (const NodeId w : winners) {
                EXPECT_TRUE(conn_.is_connector[w]);
                EXPECT_TRUE(cds.has_edge(u, w));
                EXPECT_TRUE(cds.has_edge(w, v));
            }
        }
    }
}

TEST_P(ConnectorSweep, AlzoubiVariantBuildsValidCds) {
    const ConnectorState alz = find_connectors_alzoubi(udg_, cluster_);
    const GeometricGraph cds = cds_graph(udg_, alz);
    std::vector<bool> backbone(udg_.node_count());
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        backbone[v] = cluster_.is_dominator(v) || alz.is_connector[v];
    }
    EXPECT_TRUE(graph::is_connected_on(cds, backbone));
    for (const auto& [u, v] : alz.cds_edges) {
        EXPECT_TRUE(udg_.has_edge(u, v));
    }
    // Same short-path guarantee as Algorithm 1.
    std::vector<NodeId> dominators;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (cluster_.is_dominator(v)) dominators.push_back(v);
    }
    for (const NodeId u : dominators) {
        const auto udg_hops = graph::bfs_hops(udg_, u);
        const auto cds_hops = graph::bfs_hops(cds, u);
        for (const NodeId v : dominators) {
            if (v == u) continue;
            if (udg_hops[v] == 2) {
                EXPECT_LE(cds_hops[v], 2);
            }
            if (udg_hops[v] == 3) {
                EXPECT_LE(cds_hops[v], 3);
            }
        }
    }
}

TEST_P(ConnectorSweep, AlzoubiVariantIsLeaner) {
    const ConnectorState alz = find_connectors_alzoubi(udg_, cluster_);
    std::size_t alz_connectors = 0;
    std::size_t baker_connectors = 0;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        alz_connectors += alz.is_connector[v] ? 1 : 0;
        baker_connectors += conn_.is_connector[v] ? 1 : 0;
    }
    EXPECT_LE(alz_connectors, baker_connectors);
    EXPECT_LE(alz.cds_edges.size(), conn_.cds_edges.size() + 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConnectorSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(Connectors, TwoHopPairGetsLowestIdCommonNeighbor) {
    // Dominators 0 and 1 two hops apart with common dominatees 2, 3
    // that hear each other: only the lower id (2) wins.
    GeometricGraph g({{0, 0}, {1.8, 0}, {0.9, 0.1}, {0.9, -0.1}});
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    const ClusterState cluster = lowest_id_mis(g);
    ASSERT_TRUE(cluster.is_dominator(0));
    ASSERT_TRUE(cluster.is_dominator(1));
    const ConnectorState conn = find_connectors(g, cluster);
    EXPECT_TRUE(conn.is_connector[2]);
    EXPECT_FALSE(conn.is_connector[3]);
}

TEST(Connectors, MutuallyInaudibleCandidatesBothWin) {
    // Common dominatees that cannot hear each other both become
    // connectors (the redundancy the paper allows).
    GeometricGraph g({{0, 0}, {1.8, 0}, {0.9, 0.7}, {0.9, -0.7}});
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(1, 2);
    g.add_edge(1, 3);  // No edge 2-3.
    const ClusterState cluster = lowest_id_mis(g);
    const ConnectorState conn = find_connectors(g, cluster);
    EXPECT_TRUE(conn.is_connector[2]);
    EXPECT_TRUE(conn.is_connector[3]);
}

TEST(Connectors, ThreeHopPathGetsTwoConnectors) {
    // Dominators 0 and 1 exactly three hops apart: 0-2-3-1.
    GeometricGraph g({{0, 0}, {2.7, 0}, {0.9, 0}, {1.8, 0}});
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 1);
    const ClusterState cluster = lowest_id_mis(g);
    ASSERT_TRUE(cluster.is_dominator(0));
    ASSERT_TRUE(cluster.is_dominator(1));
    const ConnectorState conn = find_connectors(g, cluster);
    EXPECT_TRUE(conn.is_connector[2]);
    EXPECT_TRUE(conn.is_connector[3]);
    const GeometricGraph cds = cds_graph(g, conn);
    EXPECT_TRUE(cds.has_edge(0, 2));
    EXPECT_TRUE(cds.has_edge(2, 3));
    EXPECT_TRUE(cds.has_edge(3, 1));
}

}  // namespace
}  // namespace geospanner::protocol
