// Update-service soak: N producer threads pour mobility batches into
// the ingest queue while M reader threads take versioned snapshots.
// Every snapshot must be an internally consistent topology — its UDG
// and backbone exactly match a from-scratch build on its own positions
// (a half-applied batch can never satisfy that) and pass the full
// Lemma 1-8 audit trail; versions are monotone per reader; the drained
// final state equals the reference. The single-threaded tests pin the
// queue, drain, stats, and snapshot-sharing contracts.
#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "dynamic_test_util.h"
#include "proximity/udg.h"
#include "service/update_queue.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::service {
namespace {

using graph::NodeId;
using protocol::ClusterPolicy;

constexpr double kRadius = 55.0;

/// "" when the snapshot is a topology only whole-batch boundaries could
/// produce: UDG and backbone equal the from-scratch build on the
/// snapshot's own positions.
std::string snapshot_divergence(const Snapshot& snap) {
    return test::state_divergence(snap.points, snap.radius, snap.udg, snap.backbone,
                                  ClusterPolicy::kLowestId);
}

/// Deterministic move-only batch over the first `n` node ids (producers
/// never join/leave, so ids stay valid under concurrency).
dynamic::UpdateBatch make_batch(rnd::Xoshiro256& rng, std::size_t n,
                                const std::vector<geom::Point>& initial,
                                std::size_t moves) {
    dynamic::UpdateBatch batch;
    for (std::size_t i = 0; i < moves; ++i) {
        const auto v = static_cast<NodeId>(rng.below(n));
        const geom::Point p = initial[v];
        batch.moves.push_back(
            {v, {p.x + rng.uniform(-20.0, 20.0), p.y + rng.uniform(-20.0, 20.0)}});
    }
    return batch;
}

TEST(UpdateQueue, PushPopOrderAndClose) {
    UpdateQueue<int> queue;
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.push(1), PushResult::kQueued);
    EXPECT_EQ(queue.push(2), PushResult::kQueued);
    EXPECT_EQ(queue.push(3), PushResult::kQueued);
    EXPECT_EQ(queue.depth(), 3u);

    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);

    queue.close();
    EXPECT_EQ(queue.push(4), PushResult::kClosed);  // Rejected, not queued.
    // The backlog accepted before close() still drains in order.
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 3);
    EXPECT_FALSE(queue.pop(out));  // Shutdown.
    queue.close();                 // Idempotent.
}

TEST(UpdateQueue, BoundedRejectAndCoalescePolicies) {
    UpdateQueue<int> queue;
    queue.set_bound(2, /*reject_when_full=*/true);
    EXPECT_EQ(queue.push(1), PushResult::kQueued);
    EXPECT_EQ(queue.push(2), PushResult::kQueued);
    EXPECT_EQ(queue.push(3), PushResult::kRejected);
    EXPECT_EQ(queue.depth(), 2u);

    // Coalescing merges into the newest queued item; a refused merge
    // falls through to the reject policy.
    queue.set_bound(2, /*reject_when_full=*/true, [](int& newest, int& incoming) {
        if (incoming < 0) return false;
        newest += incoming;
        return true;
    });
    EXPECT_EQ(queue.push(10), PushResult::kCoalesced);
    EXPECT_EQ(queue.push(-1), PushResult::kRejected);
    EXPECT_EQ(queue.depth(), 2u);

    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 12);  // 2 absorbed the coalesced 10.
}

TEST(UpdateQueue, BoundedBlockWakesOnPopAndClose) {
    UpdateQueue<int> queue;
    queue.set_bound(1, /*reject_when_full=*/false);
    EXPECT_EQ(queue.push(1), PushResult::kQueued);

    // A blocked producer completes once the consumer makes room.
    std::thread producer([&] { EXPECT_EQ(queue.push(2), PushResult::kQueued); });
    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    producer.join();
    EXPECT_EQ(queue.depth(), 1u);

    // A producer blocked at close() time is rejected, not deadlocked.
    std::thread blocked([&] { EXPECT_EQ(queue.push(3), PushResult::kClosed); });
    queue.close();
    blocked.join();
}

TEST(UpdateQueue, BlockedPopWakesOnClose) {
    UpdateQueue<int> queue;
    std::atomic<bool> woke{false};
    std::thread consumer([&] {
        int out = 0;
        EXPECT_FALSE(queue.pop(out));
        woke = true;
    });
    queue.close();
    consumer.join();
    EXPECT_TRUE(woke);
}

TEST(SpannerService, DrainedStateMatchesReference) {
    const auto udg = test::connected_udg(60, 220.0, kRadius, 17);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    SpannerService service(engine, udg.points(), kRadius);

    rnd::Xoshiro256 rng(23);
    std::size_t updates = 0;
    for (int i = 0; i < 10; ++i) {
        auto batch = make_batch(rng, udg.node_count(), udg.points(), 4);
        updates += batch.moves.size();
        ASSERT_TRUE(service.enqueue(std::move(batch)));
    }
    service.drain();

    const SnapshotHandle snap = service.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 10u);
    EXPECT_EQ(snapshot_divergence(*snap), "");

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_enqueued, 10u);
    EXPECT_EQ(stats.batches_applied, 10u);
    EXPECT_EQ(stats.updates_applied, updates);
    EXPECT_EQ(stats.version, 10u);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_GE(stats.snapshots_published, 1u);
}

TEST(SpannerService, SnapshotsAreSharedBetweenBatchesAndImmutableAcross) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 5);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    SpannerService service(engine, udg.points(), kRadius);
    service.drain();

    // Back-to-back readers between batches share one snapshot object.
    const SnapshotHandle a = service.snapshot();
    const SnapshotHandle b = service.snapshot();
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->version, 0u);

    rnd::Xoshiro256 rng(7);
    ASSERT_TRUE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 3)));
    service.drain();

    // A new version means a new snapshot; the held one is untouched.
    const SnapshotHandle c = service.snapshot();
    EXPECT_NE(c.get(), a.get());
    EXPECT_EQ(c->version, 1u);
    EXPECT_EQ(a->version, 0u);
    EXPECT_EQ(a->points, udg.points());
    EXPECT_EQ(snapshot_divergence(*a), "");
    EXPECT_EQ(snapshot_divergence(*c), "");
}

TEST(SpannerService, StopRejectsFurtherEnqueuesButDrainsBacklog) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 29);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    SpannerService service(engine, udg.points(), kRadius);

    rnd::Xoshiro256 rng(11);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2)));
    }
    service.stop();
    service.stop();  // Idempotent.
    EXPECT_FALSE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2)));
    service.drain();  // Trivially satisfied — everything accepted was applied.

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_applied, 5u);   // Backlog drained before the join.
    EXPECT_EQ(stats.batches_enqueued, 5u);  // The rejected batch was uncounted.
    EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
}

TEST(SpannerService, ConcurrentProducersAndReadersSoak) {
    const std::size_t kProducers = 3;
    const std::size_t kBatchesPerProducer = 6;
    const std::size_t kReaders = 2;

    const auto udg = test::connected_udg(50, 200.0, kRadius, 43);
    ASSERT_GT(udg.node_count(), 0u);
    const std::size_t n = udg.node_count();
    const std::vector<geom::Point> initial = udg.points();

    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    SpannerService service(engine, initial, kRadius);

    std::atomic<bool> done{false};
    std::atomic<std::size_t> accepted{0};

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            rnd::Xoshiro256 rng(1000 + p);
            for (std::size_t i = 0; i < kBatchesPerProducer; ++i) {
                if (service.enqueue(make_batch(rng, n, initial, 3))) ++accepted;
            }
        });
    }

    // Readers audit every snapshot they take: exact equality with a
    // from-scratch build on the snapshot's positions (atomicity), full
    // Lemma 1-8 trail (semantics), monotone versions (ordering).
    std::vector<std::thread> readers;
    std::vector<std::string> reader_errors(kReaders);
    for (std::size_t r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            std::uint64_t last_version = 0;
            while (!done.load()) {
                const SnapshotHandle snap = service.snapshot();
                if (snap->version < last_version) {
                    reader_errors[r] = "version went backwards: " +
                                       std::to_string(snap->version) + " after " +
                                       std::to_string(last_version);
                    return;
                }
                last_version = snap->version;
                const std::string d = snapshot_divergence(*snap);
                if (!d.empty()) {
                    reader_errors[r] =
                        "snapshot v" + std::to_string(snap->version) + " diverged: " + d;
                    return;
                }
                verify::AuditOptions audit;
                audit.radius = snap->radius;
                const auto trail = verify::audit_backbone(snap->udg, snap->backbone, audit);
                if (!trail.pass()) {
                    reader_errors[r] = "snapshot v" + std::to_string(snap->version) +
                                       " failed audit:\n" + trail.summary();
                    return;
                }
                std::this_thread::yield();
            }
        });
    }

    for (auto& t : producers) t.join();
    service.drain();
    done = true;
    for (auto& t : readers) t.join();
    for (std::size_t r = 0; r < kReaders; ++r) {
        EXPECT_EQ(reader_errors[r], "") << "reader " << r;
    }

    EXPECT_EQ(accepted.load(), kProducers * kBatchesPerProducer);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_applied, accepted.load());
    EXPECT_EQ(stats.updates_applied, accepted.load() * 3);
    EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
}

// Shutdown races, exercised under the TSan job: stop() racing drain()
// and enqueue() from many threads must neither deadlock nor corrupt the
// accounting, and the documented contract holds — every enqueue that
// returned true before/through the race was applied, everything after
// stop() returns false.
TEST(SpannerService, StopRacesDrainAndEnqueue) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 61);
    ASSERT_GT(udg.node_count(), 0u);
    const std::size_t n = udg.node_count();
    const std::vector<geom::Point> initial = udg.points();

    for (int round = 0; round < 3; ++round) {
        engine::SpannerEngine engine(
            test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
        SpannerService service(engine, initial, kRadius);

        std::atomic<std::size_t> accepted{0};
        std::atomic<std::size_t> rejected{0};
        std::vector<std::thread> threads;
        for (std::size_t p = 0; p < 3; ++p) {
            threads.emplace_back([&, p] {
                rnd::Xoshiro256 rng(7000 + 10 * round + p);
                for (int i = 0; i < 8; ++i) {
                    if (service.enqueue(make_batch(rng, n, initial, 2))) {
                        ++accepted;
                    } else {
                        ++rejected;
                    }
                }
            });
        }
        threads.emplace_back([&] { service.drain(); });
        threads.emplace_back([&] { service.stop(); });
        for (auto& t : threads) t.join();

        // False-after-stop: once stop() returned, enqueue must refuse.
        rnd::Xoshiro256 rng(99);
        EXPECT_FALSE(service.enqueue(make_batch(rng, n, initial, 2)));
        service.drain();  // Trivially satisfied after the join.

        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.batches_applied, accepted.load());
        EXPECT_EQ(stats.batches_enqueued, accepted.load());
        EXPECT_EQ(stats.queue_depth, 0u);
        EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
    }
}

TEST(SpannerService, RejectBackpressureCountsDropsAndKeepsServing) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 33);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    ServiceOptions options;
    options.queue_capacity = 2;
    options.backpressure = BackpressurePolicy::kReject;
    // Park the worker so pushes pile up deterministically.
    std::atomic<bool> hold{true};
    options.apply_hook = [&](const dynamic::UpdateBatch&) {
        while (hold.load()) std::this_thread::yield();
    };
    SpannerService service(engine, udg.points(), kRadius, options);

    rnd::Xoshiro256 rng(3);
    std::size_t accepted = 0;
    std::size_t refused = 0;
    for (int i = 0; i < 8; ++i) {
        if (service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2))) {
            ++accepted;
        } else {
            ++refused;
        }
    }
    EXPECT_GE(refused, 8u - 3u);  // 1 in flight + 2 queued at most.
    hold = false;
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_rejected, refused);
    EXPECT_EQ(stats.batches_applied, accepted);
    EXPECT_EQ(stats.batches_enqueued, accepted);
    EXPECT_EQ(stats.queue_capacity, 2u);
    EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
}

TEST(SpannerService, CoalesceBackpressureMergesMoveOnlyBatches) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 37);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    ServiceOptions options;
    options.queue_capacity = 1;
    options.backpressure = BackpressurePolicy::kCoalesce;
    std::atomic<bool> hold{true};
    options.apply_hook = [&](const dynamic::UpdateBatch&) {
        while (hold.load()) std::this_thread::yield();
    };
    SpannerService service(engine, udg.points(), kRadius, options);

    rnd::Xoshiro256 rng(5);
    // First batch occupies the worker; the next fills the queue; the
    // rest coalesce into it. All count as enqueued and all drain.
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2)));
    }
    const ServiceStats mid = service.stats();
    EXPECT_GE(mid.batches_coalesced, 3u);
    hold = false;
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_enqueued, 6u);
    EXPECT_EQ(stats.updates_applied, 12u);  // Every move landed exactly once.
    EXPECT_EQ(stats.batches_applied + stats.batches_coalesced, 6u);
    EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
}

TEST(SpannerService, PoisonedBatchIsQuarantinedBeforeApply) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 41);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    SpannerService service(engine, udg.points(), kRadius);

    rnd::Xoshiro256 rng(9);
    ASSERT_TRUE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2)));

    dynamic::UpdateBatch poisoned;
    poisoned.moves.push_back(
        {0, {std::numeric_limits<double>::quiet_NaN(), 0.0}});
    ASSERT_TRUE(service.enqueue(std::move(poisoned)));  // Accepted, then caught.

    dynamic::UpdateBatch out_of_range;
    out_of_range.leaves.push_back(static_cast<NodeId>(udg.node_count() + 7));
    ASSERT_TRUE(service.enqueue(std::move(out_of_range)));

    ASSERT_TRUE(service.enqueue(make_batch(rng, udg.node_count(), udg.points(), 2)));
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batches_enqueued, 4u);
    EXPECT_EQ(stats.batches_applied, 2u);      // The healthy ones.
    EXPECT_EQ(stats.batches_quarantined, 2u);  // The poisoned ones.
    EXPECT_EQ(stats.version, 2u);  // Pre-apply catches publish nothing.

    const auto reports = service.quarantine_reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_NE(reports[0].reason.find("non-finite"), std::string::npos);
    EXPECT_FALSE(reports[0].rolled_back);
    EXPECT_NE(reports[1].reason.find("nonexistent"), std::string::npos);

    // The service kept serving: the final state is exactly the two
    // healthy batches applied to the initial topology.
    EXPECT_EQ(snapshot_divergence(*service.snapshot()), "");
}

}  // namespace
}  // namespace geospanner::service
