// Packet-level store-and-forward simulation.
#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include "graph/shortest_paths.h"
#include <memory>
#include "proximity/ldel.h"
#include "proximity/udg.h"
#include "routing/router.h"
#include "test_util.h"

namespace geospanner::netsim {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

/// Route oracle: min-hop path on a graph.
RouteFn hop_routes(const GeometricGraph& g) {
    return [&g](NodeId s, NodeId t) { return graph::shortest_hop_path(g, s, t); };
}

GeometricGraph path5() {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
    return g;
}

TEST(Netsim, SinglePacketLatencyEqualsHops) {
    const auto g = path5();
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}});
    EXPECT_EQ(stats.injected, 1u);
    EXPECT_EQ(stats.delivered, 1u);
    EXPECT_EQ(stats.total_latency, 4u);  // 4 hops, one per slot.
    EXPECT_EQ(stats.max_latency, 4u);
    EXPECT_EQ(stats.dropped_no_route, 0u);
    // Nodes 0..3 each forwarded once; node 4 never transmitted.
    EXPECT_EQ(stats.transmissions, (std::vector<std::size_t>{1, 1, 1, 1, 0}));
}

TEST(Netsim, SelfDeliveryIsFree) {
    const auto g = path5();
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 2, 2}});
    EXPECT_EQ(stats.delivered, 1u);
    EXPECT_EQ(stats.total_latency, 0u);
}

TEST(Netsim, NoRouteIsDropped) {
    GeometricGraph g({{0, 0}, {1, 0}, {10, 10}});
    g.add_edge(0, 1);  // Node 2 unreachable.
    const Stats stats = run_simulation(3, hop_routes(g), {{0, 0, 2}, {0, 0, 1}});
    EXPECT_EQ(stats.dropped_no_route, 1u);
    EXPECT_EQ(stats.delivered, 1u);
}

TEST(Netsim, QueueContentionSerializesThroughBottleneck) {
    // Star: leaves 1..4 all send to leaf 5 through hub 0. The hub can
    // transmit one packet per slot, so the last delivery takes ~#packets
    // extra slots.
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}, {2, 0}});
    for (NodeId v = 1; v <= 4; ++v) g.add_edge(0, v);
    g.add_edge(0, 5);
    std::vector<Injection> traffic;
    for (NodeId v = 1; v <= 4; ++v) traffic.push_back({0, v, 5});
    const Stats stats = run_simulation(6, hop_routes(g), traffic);
    EXPECT_EQ(stats.delivered, 4u);
    // First packet: 2 slots; each further one waits behind the others in
    // the hub queue: 2, 3, 4, 5.
    EXPECT_EQ(stats.max_latency, 5u);
    EXPECT_EQ(stats.transmissions[0], 4u);  // All traffic through the hub.
    EXPECT_GT(stats.max_load_share(), 0.49);
}

TEST(Netsim, QueueOverflowDrops) {
    // Capacity 1 at the hub: simultaneous arrivals overflow.
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {2, 0}});
    for (NodeId v = 1; v <= 3; ++v) g.add_edge(0, v);
    g.add_edge(0, 4);
    Config config;
    config.queue_capacity = 1;
    std::vector<Injection> traffic;
    for (NodeId v = 1; v <= 3; ++v) traffic.push_back({0, v, 4});
    const Stats stats = run_simulation(5, hop_routes(g), traffic, config);
    EXPECT_EQ(stats.delivered + stats.dropped_queue_full, 3u);
    EXPECT_GT(stats.dropped_queue_full, 0u);
}

TEST(Netsim, RunEndsWhenTrafficDrains) {
    const auto g = path5();
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}, {10, 4, 0}});
    EXPECT_EQ(stats.delivered, 2u);
    EXPECT_LT(stats.slots_used, 100u);
}

TEST(Netsim, MaxSlotsStopsRunawayRuns) {
    const auto g = path5();
    Config config;
    config.max_slots = 2;  // Too short for a 4-hop journey.
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}}, config);
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.stuck_in_queues, 1u);
}

TEST(Netsim, DeadForwardingHopDropsPacket) {
    // Node 2 crashed mid-path: the packet leaves 0, node 1 transmits
    // toward the corpse, and the hop is charged to dropped_dead_hop.
    const auto g = path5();
    Config config;
    config.dead.assign(5, 0);
    config.dead[2] = 1;
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}}, config);
    EXPECT_EQ(stats.injected, 1u);
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.dropped_dead_hop, 1u);
    // Node 1 spent the transmission before discovering the dead hop.
    EXPECT_EQ(stats.transmissions, (std::vector<std::size_t>{1, 1, 0, 0, 0}));
}

TEST(Netsim, DeadEndpointsDropAtInjection) {
    const auto g = path5();
    Config config;
    config.dead.assign(5, 0);
    config.dead[0] = 1;  // Dead source.
    config.dead[4] = 1;  // Dead destination.
    const Stats stats = run_simulation(
        5, hop_routes(g), {{0, 0, 3}, {0, 1, 4}, {0, 1, 3}}, config);
    EXPECT_EQ(stats.injected, 3u);
    EXPECT_EQ(stats.dropped_dead_hop, 2u);  // No transmissions charged.
    EXPECT_EQ(stats.delivered, 1u);         // 1 -> 3 still flows.
}

TEST(Netsim, CertainLinkLossDropsEveryTransmission) {
    const auto g = path5();
    Config config;
    config.loss_rate = 1.0;
    config.loss_seed = 17;
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}}, config);
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.dropped_link_loss, 1u);  // Lost on the first hop.
    EXPECT_EQ(stats.transmissions[0], 1u);   // The sender still paid for it.
}

TEST(Netsim, HopByHopHonorsDeadAndLossConfig) {
    const auto g = path5();
    const StepperFactory factory = [&g](NodeId /*src*/, NodeId dst) {
        return [&g, dst](NodeId at) {
            const auto path = graph::shortest_hop_path(g, at, dst);
            return path.size() >= 2 ? path[1] : graph::kInvalidNode;
        };
    };
    Config config;
    config.dead.assign(5, 0);
    config.dead[2] = 1;
    Stats stats = run_hop_by_hop(5, factory, {{0, 0, 4}}, config);
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.dropped_dead_hop, 1u);

    config.dead.clear();
    config.loss_rate = 1.0;
    stats = run_hop_by_hop(5, factory, {{0, 0, 4}}, config);
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.dropped_link_loss, 1u);
}

TEST(Netsim, TrafficGeneratorsAreDeterministicAndValid) {
    const auto a = uniform_traffic(50, 200, 4, 9);
    EXPECT_EQ(a, [] {
        return uniform_traffic(50, 200, 4, 9);
    }());
    EXPECT_EQ(a.size(), 200u);
    for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1].slot, a[i].slot);
    for (const auto& inj : a) {
        EXPECT_LT(inj.src, 50u);
        EXPECT_LT(inj.dst, 50u);
        EXPECT_NE(inj.src, inj.dst);
    }
    const auto s = sink_traffic(50, 7, 100, 2, 3);
    for (const auto& inj : s) {
        EXPECT_EQ(inj.dst, 7u);
        EXPECT_NE(inj.src, 7u);
    }
}

TEST(Netsim, TotalEnergyAccounting) {
    // Path of spacing 1: nodes 0..3 forward once each with power 1^2;
    // node 4 never transmits.
    const auto g = path5();
    const Stats stats = run_simulation(5, hop_routes(g), {{0, 0, 4}});
    EXPECT_DOUBLE_EQ(total_energy(stats, g, 2.0), 4.0);
    // Cubic path-loss: same transmissions, 1^3 each.
    EXPECT_DOUBLE_EQ(total_energy(stats, g, 3.0), 4.0);
    // A stretched topology raises every transmitter's assigned power.
    GeometricGraph wide({{0, 0}, {2, 0}, {4, 0}, {6, 0}, {8, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) wide.add_edge(v, v + 1);
    const Stats wide_stats = run_simulation(5, hop_routes(wide), {{0, 0, 4}});
    EXPECT_DOUBLE_EQ(total_energy(wide_stats, wide, 2.0), 4.0 * 4.0);
}

TEST(Netsim, HopByHopMatchesSourceRouting) {
    // A stepper that follows the min-hop next-hop table produces the
    // same deliveries and latencies as source routing the same paths.
    const auto g = path5();
    const auto traffic = uniform_traffic(5, 100, 2, 21);
    const StepperFactory factory = [&g](NodeId /*src*/, NodeId dst) {
        return [&g, dst](NodeId at) {
            const auto path = graph::shortest_hop_path(g, at, dst);
            return path.size() >= 2 ? path[1] : graph::kInvalidNode;
        };
    };
    const Stats hop_stats = run_hop_by_hop(5, factory, traffic);
    const Stats route_stats = run_simulation(5, hop_routes(g), traffic);
    EXPECT_EQ(hop_stats.delivered, route_stats.delivered);
    EXPECT_EQ(hop_stats.total_latency, route_stats.total_latency);
    EXPECT_EQ(hop_stats.transmissions, route_stats.transmissions);
}

TEST(Netsim, HopByHopRouterGivingUpCountsAsDrop) {
    const auto g = path5();
    const StepperFactory factory = [](NodeId, NodeId) {
        return [](NodeId) { return graph::kInvalidNode; };
    };
    const Stats stats = run_hop_by_hop(5, factory, {{0, 0, 4}});
    EXPECT_EQ(stats.delivered, 0u);
    EXPECT_EQ(stats.dropped_no_route, 1u);
}

TEST(Netsim, GpsrStepperForwardsPacketsEndToEnd) {
    // Integration: the GPSR per-packet state machine drives hop-by-hop
    // forwarding on a planar spanner under queueing. All packets must
    // deliver (GPSR delivers on these substrates) with valid statistics.
    const auto udg = geospanner::test::connected_udg(50, 180.0, 55.0, 23);
    ASSERT_GT(udg.node_count(), 0u);
    const auto pldel = proximity::build_pldel(udg);
    const routing::Router router(pldel);
    const StepperFactory factory = [&router](NodeId /*src*/, NodeId dst) {
        auto state = std::make_shared<routing::Router::GpsrPacketState>();
        return [&router, dst, state](NodeId at) {
            return router.gpsr_step(at, dst, *state);
        };
    };
    const auto traffic = uniform_traffic(udg.node_count(), 300, 4, 31);
    netsim::Config config;
    config.queue_capacity = 128;
    const Stats stats = run_hop_by_hop(udg.node_count(), factory, traffic, config);
    EXPECT_EQ(stats.injected, 300u);
    EXPECT_EQ(stats.delivered + stats.dropped_no_route, 300u);
    EXPECT_GE(stats.delivery_rate(), 0.99);
}

TEST(Netsim, EndToEndOnRandomUdg) {
    const auto udg = geospanner::test::connected_udg(60, 200.0, 55.0, 5);
    ASSERT_GT(udg.node_count(), 0u);
    const auto traffic = uniform_traffic(udg.node_count(), 500, 5, 11);
    const Stats stats = run_simulation(udg.node_count(), hop_routes(udg), traffic);
    EXPECT_EQ(stats.injected, 500u);
    EXPECT_EQ(stats.dropped_no_route, 0u);
    EXPECT_GT(stats.delivery_rate(), 0.95);
    EXPECT_GE(stats.avg_latency(), 1.0);
}

}  // namespace
}  // namespace geospanner::netsim
