// Incremental maintenance engine: every patched topology must be
// edge-for-edge identical to a from-scratch build on the same positions,
// across moves, joins, leaves, both cluster policies, and forced
// fallbacks — plus trace-replay fuzzing with ddmin shrinking and the
// Lemma 1-8 auditors on patched outputs.
#include "dynamic/spanner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/backbone.h"
#include "dynamic/dynamic_cell_grid.h"
#include "dynamic_test_util.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::dynamic {
namespace {

using graph::GeometricGraph;
using graph::NodeId;
using protocol::ClusterPolicy;
using test::divergence;

engine::EngineOptions engine_options(ClusterPolicy policy) {
    return test::dynamic_engine_options(policy);
}

/// Deterministic mixed trace (random-walk moves, periodic joins) over an
/// initial point set: returns the name of the first diverging structure,
/// "" if the whole replay stays identical. Pure function of its inputs —
/// the ddmin shrinker replays it on candidate subsets.
std::string replay_divergence(const std::vector<geom::Point>& initial, double radius,
                              std::uint64_t seed, ClusterPolicy policy, int steps,
                              bool with_joins) {
    if (initial.empty()) return {};
    engine::SpannerEngine engine(engine_options(policy));
    DynamicSpanner dyn(engine, initial, radius);
    {
        const std::string d = divergence(dyn, policy);
        if (!d.empty()) return "initial-build:" + d;
    }
    rnd::Xoshiro256 rng(seed);
    for (int step = 0; step < steps; ++step) {
        UpdateBatch batch;
        const std::size_t k = 1 + rng.below(3);
        for (std::size_t i = 0; i < k; ++i) {
            const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
            const geom::Point p = dyn.positions()[v];
            batch.moves.push_back(
                {v,
                 {p.x + rng.uniform(-radius, radius), p.y + rng.uniform(-radius, radius)}});
        }
        if (with_joins && step % 4 == 3) {
            const geom::Point anchor = dyn.positions()[rng.below(dyn.node_count())];
            batch.joins.push_back({anchor.x + rng.uniform(-radius, radius),
                                   anchor.y + rng.uniform(-radius, radius)});
        }
        dyn.apply(batch);
        const std::string d = divergence(dyn, policy);
        if (!d.empty()) return "step" + std::to_string(step) + ":" + d;
    }
    return {};
}

TEST(DynamicCellGrid, TracksRelocationsExactly) {
    const double radius = 50.0;
    auto points = test::random_points(80, 300.0, 17);
    DynamicCellGrid grid(points, radius);
    rnd::Xoshiro256 rng(99);
    for (int step = 0; step < 200; ++step) {
        const auto v = static_cast<NodeId>(rng.below(points.size()));
        const geom::Point to = {rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
        grid.relocate(v, points[v], to);
        points[v] = to;
        if (step % 3 == 0) {
            const auto id = static_cast<NodeId>(points.size());
            points.push_back({rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
            grid.insert(id, points.back());
        }
    }
    CellBuckets want;
    for (NodeId v = 0; v < points.size(); ++v) {
        want[proximity::cell_of(points[v], radius)].push_back(v);
    }
    ASSERT_EQ(grid.cells(), want);
    // Neighborhood enumeration equals a brute-force range scan.
    std::vector<NodeId> got;
    for (NodeId v = 0; v < points.size(); ++v) {
        got.clear();
        grid.collect_neighbors(points, radius, v, got);
        std::vector<NodeId> want;
        for (NodeId u = 0; u < points.size(); ++u) {
            if (u != v &&
                geom::squared_distance(points[u], points[v]) <= radius * radius) {
                want.push_back(u);
            }
        }
        ASSERT_EQ(got, want) << "node " << v;
    }
}

TEST(DynamicSpanner, InitialBuildMatchesReference) {
    for (const auto& param : test::standard_sweep()) {
        for (const ClusterPolicy policy :
             {ClusterPolicy::kLowestId, ClusterPolicy::kHighestDegree}) {
            const auto udg = test::connected_udg(param.n, 200.0, param.radius, param.seed);
            ASSERT_GT(udg.node_count(), 0u);
            engine::SpannerEngine engine(engine_options(policy));
            DynamicSpanner dyn(engine, udg.points(), param.radius);
            EXPECT_EQ(divergence(dyn, policy), "")
                << "n=" << param.n << " r=" << param.radius << " seed=" << param.seed;
        }
    }
}

TEST(DynamicSpanner, SingleMovesMatchReference) {
    for (const auto& param : test::standard_sweep()) {
        const auto udg = test::connected_udg(param.n, 200.0, param.radius, param.seed);
        ASSERT_GT(udg.node_count(), 0u);
        engine::SpannerEngine engine(engine_options(ClusterPolicy::kLowestId));
        DynamicSpanner dyn(engine, udg.points(), param.radius);
        rnd::Xoshiro256 rng(param.seed * 1000003);
        for (int step = 0; step < 12; ++step) {
            const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
            const geom::Point p = dyn.positions()[v];
            UpdateBatch batch;
            batch.moves.push_back({v,
                                   {p.x + rng.uniform(-param.radius, param.radius),
                                    p.y + rng.uniform(-param.radius, param.radius)}});
            dyn.apply(batch);
            ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "")
                << "n=" << param.n << " r=" << param.radius << " seed=" << param.seed
                << " step=" << step;
        }
    }
}

TEST(DynamicSpanner, BatchedMovesMatchReferenceUnderBothPolicies) {
    for (const ClusterPolicy policy :
         {ClusterPolicy::kLowestId, ClusterPolicy::kHighestDegree}) {
        const auto udg = test::connected_udg(70, 200.0, 55.0, 31);
        ASSERT_GT(udg.node_count(), 0u);
        engine::SpannerEngine engine(engine_options(policy));
        DynamicSpanner dyn(engine, udg.points(), 55.0);
        rnd::Xoshiro256 rng(4242);
        for (int step = 0; step < 10; ++step) {
            UpdateBatch batch;
            for (int i = 0; i < 5; ++i) {
                const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
                const geom::Point p = dyn.positions()[v];
                batch.moves.push_back({v,
                                       {p.x + rng.uniform(-30.0, 30.0),
                                        p.y + rng.uniform(-30.0, 30.0)}});
            }
            dyn.apply(batch);
            ASSERT_EQ(divergence(dyn, policy), "") << "step " << step;
        }
    }
}

TEST(DynamicSpanner, JoinsMatchReference) {
    const auto udg = test::connected_udg(50, 200.0, 60.0, 7);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(engine_options(ClusterPolicy::kLowestId));
    DynamicSpanner dyn(engine, udg.points(), 60.0);
    rnd::Xoshiro256 rng(512);
    for (int step = 0; step < 8; ++step) {
        UpdateBatch batch;
        const geom::Point anchor = dyn.positions()[rng.below(dyn.node_count())];
        batch.joins.push_back(
            {anchor.x + rng.uniform(-50.0, 50.0), anchor.y + rng.uniform(-50.0, 50.0)});
        const std::size_t before = dyn.node_count();
        dyn.apply(batch);
        ASSERT_EQ(dyn.node_count(), before + 1);
        ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "") << "step " << step;
    }
}

TEST(DynamicSpanner, LeavesFallBackAndMatchReference) {
    const auto udg = test::connected_udg(50, 200.0, 60.0, 19);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(engine_options(ClusterPolicy::kLowestId));
    DynamicSpanner dyn(engine, udg.points(), 60.0);
    rnd::Xoshiro256 rng(77);
    for (int step = 0; step < 5; ++step) {
        UpdateBatch batch;
        batch.leaves.push_back(static_cast<NodeId>(rng.below(dyn.node_count())));
        const std::size_t before = dyn.node_count();
        const PatchStats stats = dyn.apply(batch);
        EXPECT_TRUE(stats.fell_back);
        ASSERT_EQ(dyn.node_count(), before - 1);
        ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "") << "step " << step;
    }
}

TEST(DynamicSpanner, ForcedFallbackStaysIdentical) {
    // rebuild_fraction = 0 forces the full-rebuild path on every batch;
    // both repair paths must land on the same topology.
    const auto udg = test::connected_udg(40, 150.0, 55.0, 23);
    ASSERT_GT(udg.node_count(), 0u);
    engine::EngineOptions opts = engine_options(ClusterPolicy::kLowestId);
    opts.incremental_options.rebuild_fraction = 0.0;
    engine::SpannerEngine engine(opts);
    DynamicSpanner dyn(engine, udg.points(), 55.0);
    rnd::Xoshiro256 rng(5);
    for (int step = 0; step < 5; ++step) {
        const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
        const geom::Point p = dyn.positions()[v];
        UpdateBatch batch;
        batch.moves.push_back(
            {v, {p.x + rng.uniform(-20.0, 20.0), p.y + rng.uniform(-20.0, 20.0)}});
        const PatchStats stats = dyn.apply(batch);
        EXPECT_TRUE(stats.fell_back) << "step " << step;
        ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "") << "step " << step;
    }
}

TEST(DynamicSpanner, IncrementalDisabledTakesFullRebuildPath) {
    const auto udg = test::connected_udg(30, 150.0, 55.0, 3);
    ASSERT_GT(udg.node_count(), 0u);
    engine::EngineOptions opts = engine_options(ClusterPolicy::kLowestId);
    opts.incremental = false;
    engine::SpannerEngine engine(opts);
    DynamicSpanner dyn(engine, udg.points(), 55.0);
    UpdateBatch batch;
    batch.moves.push_back({0, dyn.positions()[0]});
    const PatchStats stats = dyn.apply(batch);
    EXPECT_TRUE(stats.fell_back);
    EXPECT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "");
}

TEST(DynamicSpanner, PatchedOutputsPassLemmaAudits) {
    const double radius = 60.0;
    const auto udg = test::connected_udg(60, 200.0, radius, 41);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(engine_options(ClusterPolicy::kLowestId));
    DynamicSpanner dyn(engine, udg.points(), radius);
    rnd::Xoshiro256 rng(8);
    for (int step = 0; step < 6; ++step) {
        UpdateBatch batch;
        for (int i = 0; i < 3; ++i) {
            const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
            const geom::Point p = dyn.positions()[v];
            batch.moves.push_back(
                {v, {p.x + rng.uniform(-25.0, 25.0), p.y + rng.uniform(-25.0, 25.0)}});
        }
        dyn.apply(batch);
        verify::AuditOptions audit;
        audit.radius = radius;
        const auto trail = verify::audit_backbone(dyn.udg(), dyn.backbone(), audit);
        ASSERT_TRUE(trail.pass()) << "step " << step << "\n" << trail.summary();
    }
}

TEST(DynamicSpanner, PatchStatsReportLocalizedWork) {
    const auto udg = test::connected_udg(90, 260.0, 50.0, 47);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(engine_options(ClusterPolicy::kLowestId));
    DynamicSpanner dyn(engine, udg.points(), 50.0);
    const geom::Point p = dyn.positions()[5];
    UpdateBatch batch;
    batch.moves.push_back({5, {p.x + 1.0, p.y + 1.0}});
    const PatchStats stats = dyn.apply(batch);
    if (!stats.fell_back) {
        EXPECT_LT(stats.dirty_nodes, dyn.node_count());
        EXPECT_FALSE(stats.pipeline.stages.empty());
    }
    EXPECT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "");
}

// Trace-replay fuzz across the generator family: any divergence is
// ddmin-shrunk to a minimal point set and dumped as a repro artifact.
TEST(DynamicFuzz, TraceReplayAcrossGenerators) {
    for (const auto mode : test::all_fuzz_modes()) {
        for (const std::uint64_t seed : {1ULL, 2ULL}) {
            core::WorkloadConfig config;
            config.node_count = 36;
            config.side = 170.0;
            config.radius = 50.0;
            config.seed = seed;
            const auto points = test::fuzz_points(mode, config);
            for (const ClusterPolicy policy :
                 {ClusterPolicy::kLowestId, ClusterPolicy::kHighestDegree}) {
                const auto fails = [&](const std::vector<geom::Point>& pts) {
                    return !replay_divergence(pts, config.radius, seed * 7919 + 1,
                                              policy, 10, true)
                                .empty();
                };
                if (!fails(points)) continue;
                const auto shrunk = test::shrink_points(points, fails);
                io::ReproCase repro;
                repro.seed = seed;
                repro.mode = std::string("dynamic_") + test::fuzz_mode_name(mode);
                repro.radius = config.radius;
                repro.failed_check =
                    "incremental_equivalence:" +
                    replay_divergence(shrunk, config.radius, seed * 7919 + 1, policy,
                                      10, true);
                repro.points = shrunk;
                const auto path = test::dump_repro(repro);
                ADD_FAILURE() << "incremental replay diverged (mode="
                              << test::fuzz_mode_name(mode) << ", seed=" << seed
                              << ", policy="
                              << (policy == ClusterPolicy::kLowestId ? "lowest-id"
                                                                     : "highest-degree")
                              << "): " << repro.failed_check
                              << "\nshrunk to " << shrunk.size()
                              << " points; repro: " << path;
            }
        }
    }
}

}  // namespace
}  // namespace geospanner::dynamic
