// Exhaustive exactness verification of the filtered predicates against
// 128-bit integer arithmetic on integer grids, where every determinant
// can be evaluated with zero error. This covers enormous numbers of
// degenerate cases (collinear triples, cocircular quadruples) that
// random-double tests never hit.
#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "random/rng.h"

namespace geospanner::geom {
namespace {

using I128 = __int128;

int sign_of(I128 x) {
    return x > 0 ? 1 : (x < 0 ? -1 : 0);
}

/// Exact orientation for integer coordinates.
int orient_int(long ax, long ay, long bx, long by, long cx, long cy) {
    const I128 det = static_cast<I128>(ax - cx) * (by - cy) -
                     static_cast<I128>(ay - cy) * (bx - cx);
    return sign_of(det);
}

/// Exact in-circle (CCW orientation assumed) for integer coordinates.
int incircle_int(long ax, long ay, long bx, long by, long cx, long cy, long dx,
                 long dy) {
    const I128 adx = ax - dx, ady = ay - dy;
    const I128 bdx = bx - dx, bdy = by - dy;
    const I128 cdx = cx - dx, cdy = cy - dy;
    const I128 alift = adx * adx + ady * ady;
    const I128 blift = bdx * bdx + bdy * bdy;
    const I128 clift = cdx * cdx + cdy * cdy;
    const I128 det = alift * (bdx * cdy - cdx * bdy) - blift * (adx * cdy - cdx * ady) +
                     clift * (adx * bdy - bdx * ady);
    return sign_of(det);
}

TEST(PredicatesExact, OrientExhaustiveOnSmallGrid) {
    // All ordered triples on a 5x5 grid: 25^3 = 15625 cases, including
    // every collinear configuration.
    constexpr int kSide = 5;
    for (int a = 0; a < kSide * kSide; ++a) {
        for (int b = 0; b < kSide * kSide; ++b) {
            for (int c = 0; c < kSide * kSide; ++c) {
                const long ax = a % kSide, ay = a / kSide;
                const long bx = b % kSide, by = b / kSide;
                const long cx = c % kSide, cy = c / kSide;
                const int expected = orient_int(ax, ay, bx, by, cx, cy);
                const int got =
                    orient_sign({double(ax), double(ay)}, {double(bx), double(by)},
                                {double(cx), double(cy)});
                ASSERT_EQ(got, expected)
                    << "(" << ax << "," << ay << ") (" << bx << "," << by << ") (" << cx
                    << "," << cy << ")";
            }
        }
    }
}

TEST(PredicatesExact, OrientOnHugeShiftedGrid) {
    // Same grid translated by 2^40: the filter must hand off to exact
    // arithmetic for every near-degenerate case and still be right.
    constexpr int kSide = 4;
    const double shift = 1099511627776.0;  // 2^40, exactly representable.
    for (int a = 0; a < kSide * kSide; ++a) {
        for (int b = 0; b < kSide * kSide; ++b) {
            for (int c = 0; c < kSide * kSide; ++c) {
                const long ax = a % kSide, ay = a / kSide;
                const long bx = b % kSide, by = b / kSide;
                const long cx = c % kSide, cy = c / kSide;
                const int expected = orient_int(ax, ay, bx, by, cx, cy);
                const int got = orient_sign({ax + shift, ay + shift},
                                            {bx + shift, by + shift},
                                            {cx + shift, cy + shift});
                ASSERT_EQ(got, expected);
            }
        }
    }
}

TEST(PredicatesExact, InCircleRandomIntegerQuadruples) {
    // Random integer quadruples on a big grid, with a bias toward
    // cocircular cases (grid squares and symmetric placements).
    rnd::Xoshiro256 rng(2024);
    for (int it = 0; it < 30000; ++it) {
        const long range = 50;
        long coords[8];
        for (long& c : coords) c = static_cast<long>(rng.below(range)) - range / 2;
        const long ax = coords[0], ay = coords[1], bx = coords[2], by = coords[3];
        const long cx = coords[4], cy = coords[5], dx = coords[6], dy = coords[7];
        if (orient_int(ax, ay, bx, by, cx, cy) <= 0) continue;  // Need CCW.
        const int expected = incircle_int(ax, ay, bx, by, cx, cy, dx, dy);
        const int got =
            incircle_ccw({double(ax), double(ay)}, {double(bx), double(by)},
                         {double(cx), double(cy)}, {double(dx), double(dy)});
        ASSERT_EQ(got, expected);
    }
}

TEST(PredicatesExact, InCircleCocircularGridSquares) {
    // Every axis-aligned square on a grid is a cocircular quadruple: the
    // in-circle test of the 4th corner against the other three must be
    // exactly zero.
    for (long x = 0; x < 6; ++x) {
        for (long y = 0; y < 6; ++y) {
            for (long s = 1; s <= 5; ++s) {
                const Point a{double(x), double(y)};
                const Point b{double(x + s), double(y)};
                const Point c{double(x + s), double(y + s)};
                const Point d{double(x), double(y + s)};
                ASSERT_EQ(incircle_ccw(a, b, c, d), 0);
                // Nudge the 4th point and the sign must flip accordingly.
                ASSERT_EQ(incircle_ccw(a, b, c, {d.x + 1e-9, d.y - 1e-9}), 1);
                ASSERT_EQ(incircle_ccw(a, b, c, {d.x - 1e-9, d.y + 1e-9}), -1);
            }
        }
    }
}

TEST(PredicatesExact, DiametralExhaustiveOnGrid) {
    constexpr int kSide = 5;
    for (int a = 0; a < kSide * kSide; ++a) {
        for (int b = 0; b < kSide * kSide; ++b) {
            for (int c = 0; c < kSide * kSide; ++c) {
                const long ux = a % kSide, uy = a / kSide;
                const long vx = b % kSide, vy = b / kSide;
                const long px = c % kSide, py = c / kSide;
                const I128 dot = static_cast<I128>(ux - px) * (vx - px) +
                                 static_cast<I128>(uy - py) * (vy - py);
                const int expected = -sign_of(dot);
                const int got =
                    in_diametral_circle({double(ux), double(uy)}, {double(vx), double(vy)},
                                        {double(px), double(py)});
                ASSERT_EQ(got, expected);
            }
        }
    }
}

}  // namespace
}  // namespace geospanner::geom
