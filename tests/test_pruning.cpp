// Connector pruning: the result stays a valid CDS and is inclusion-
// minimal.
#include "protocol/pruning.h"

#include <gtest/gtest.h>

#include "graph/shortest_paths.h"
#include "protocol/clustering.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph backbone_graph(const GeometricGraph& udg, const ClusterState& cluster,
                              const ConnectorState& conn) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : conn.cds_edges) g.add_edge(u, v);
    (void)cluster;
    return g;
}

std::vector<bool> backbone_members(const GeometricGraph& udg, const ClusterState& cluster,
                                   const ConnectorState& conn) {
    std::vector<bool> members(udg.node_count());
    for (NodeId v = 0; v < udg.node_count(); ++v) {
        members[v] = cluster.is_dominator(v) || conn.is_connector[v];
    }
    return members;
}

class PruningSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    ClusterState cluster_;
    ConnectorState full_;
    ConnectorState pruned_;

    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
        cluster_ = cluster_reference(udg_);
        full_ = find_connectors(udg_, cluster_);
        pruned_ = prune_connectors(udg_, cluster_, full_);
    }
};

TEST_P(PruningSweep, PrunedIsSubsetOfElected) {
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (pruned_.is_connector[v]) {
            EXPECT_TRUE(full_.is_connector[v]);
        }
    }
    for (const auto& e : pruned_.cds_edges) {
        EXPECT_TRUE(std::binary_search(full_.cds_edges.begin(), full_.cds_edges.end(), e));
    }
    EXPECT_LE(pruned_.cds_edges.size(), full_.cds_edges.size());
}

TEST_P(PruningSweep, PrunedStillConnectsAllDominators) {
    const GeometricGraph g = backbone_graph(udg_, cluster_, pruned_);
    EXPECT_TRUE(graph::is_connected_on(g, backbone_members(udg_, cluster_, pruned_)));
}

TEST_P(PruningSweep, PrunedIsInclusionMinimal) {
    // Removing any remaining connector must disconnect the backbone.
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (!pruned_.is_connector[v]) continue;
        ConnectorState trial = pruned_;
        trial.is_connector[v] = false;
        std::erase_if(trial.cds_edges, [&](const std::pair<NodeId, NodeId>& e) {
            return e.first == v || e.second == v;
        });
        const GeometricGraph g = backbone_graph(udg_, cluster_, trial);
        EXPECT_FALSE(
            graph::is_connected_on(g, backbone_members(udg_, cluster_, trial)))
            << "connector " << v << " was removable";
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PruningSweep, ::testing::ValuesIn(test::standard_sweep()));

TEST(Pruning, KeepsSolePathConnector) {
    // Dominators 0, 1 joined by the single connector 2: nothing to prune.
    GeometricGraph g({{0, 0}, {1.8, 0}, {0.9, 0}});
    g.add_edge(0, 2);
    g.add_edge(2, 1);
    const ClusterState cluster = cluster_reference(g);
    const ConnectorState full = find_connectors(g, cluster);
    const ConnectorState pruned = prune_connectors(g, cluster, full);
    EXPECT_TRUE(pruned.is_connector[2]);
    EXPECT_EQ(pruned.cds_edges.size(), 2u);
}

TEST(Pruning, DropsRedundantParallelConnector) {
    // Two mutually inaudible connectors for the same pair: pruning keeps
    // exactly one.
    GeometricGraph g({{0, 0}, {1.8, 0}, {0.9, 0.7}, {0.9, -0.7}});
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    const ClusterState cluster = cluster_reference(g);
    const ConnectorState full = find_connectors(g, cluster);
    ASSERT_TRUE(full.is_connector[2]);
    ASSERT_TRUE(full.is_connector[3]);
    const ConnectorState pruned = prune_connectors(g, cluster, full);
    EXPECT_NE(pruned.is_connector[2], pruned.is_connector[3]);
}

}  // namespace
}  // namespace geospanner::protocol
