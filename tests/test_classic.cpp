// Classic proximity structures: subgraph relations, planarity, degree
// bounds, and the known spanner/non-spanner properties from the paper's
// related-work discussion.
#include "proximity/classic.h"

#include <gtest/gtest.h>

#include "delaunay/delaunay.h"
#include "graph/metrics.h"
#include "graph/shortest_paths.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

/// Every edge of a must be an edge of b.
void expect_subgraph(const GeometricGraph& a, const GeometricGraph& b,
                     const char* what) {
    for (const auto& [u, v] : a.edges()) {
        ASSERT_TRUE(b.has_edge(u, v)) << what << ": edge (" << u << "," << v << ")";
    }
}

class ClassicSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u) << "instance generation failed";
    }
};

TEST_P(ClassicSweep, SubgraphChain) {
    const auto rng_graph = build_rng(udg_);
    const auto gg = build_gabriel(udg_);
    const auto udel = build_udel(udg_);
    expect_subgraph(rng_graph, gg, "RNG ⊆ GG");
    expect_subgraph(gg, udel, "GG ⊆ UDel");
    expect_subgraph(udel, udg_, "UDel ⊆ UDG");
}

TEST_P(ClassicSweep, AllConnectedAndSpanning) {
    // RNG (hence all supergraphs) stays connected when the UDG is.
    EXPECT_TRUE(graph::is_connected(build_rng(udg_)));
    EXPECT_TRUE(graph::is_connected(build_gabriel(udg_)));
    EXPECT_TRUE(graph::is_connected(build_udel(udg_)));
    EXPECT_TRUE(graph::is_connected(build_yao(udg_)));
    EXPECT_TRUE(graph::is_connected(build_yao_sink(udg_)));
}

TEST_P(ClassicSweep, YaoIsSubgraphOfUdgAndSparse) {
    const auto yao = build_yao(udg_, 8);
    expect_subgraph(yao, udg_, "Yao ⊆ UDG");
    // At most `cones` outgoing choices per node.
    EXPECT_LE(yao.edge_count(), 8 * udg_.node_count());
    const auto sink = build_yao_sink(udg_, 8);
    expect_subgraph(sink, yao, "YaoSink ⊆ Yao");
}

TEST_P(ClassicSweep, ThetaGraphProperties) {
    const auto theta = build_theta(udg_, 8);
    expect_subgraph(theta, udg_, "Theta ⊆ UDG");
    EXPECT_TRUE(graph::is_connected(theta));
    EXPECT_LE(theta.edge_count(), 8 * udg_.node_count());
    // Theta is a length spanner for >= 7 cones; random instances stay
    // well inside the worst case.
    const auto stretch = graph::length_stretch(udg_, theta);
    EXPECT_EQ(stretch.disconnected_pairs, 0u);
    EXPECT_LT(stretch.max, 4.0);
}

TEST_P(ClassicSweep, PowerAssignmentOrdering) {
    // Per-node topology-control power: every UDG subgraph needs at most
    // the UDG's assignment, and the backbone-ish structures need less.
    const double beta = 2.0;
    const auto udg_power = graph::power_assignment(udg_, beta);
    const auto gg_power = graph::power_assignment(build_gabriel(udg_), beta);
    const auto rng_power = graph::power_assignment(build_rng(udg_), beta);
    EXPECT_LE(gg_power.total, udg_power.total + 1e-9);
    EXPECT_LE(rng_power.total, gg_power.total + 1e-9);  // RNG ⊆ GG.
    EXPECT_LE(rng_power.max, udg_power.max + 1e-9);
    EXPECT_GT(rng_power.total, 0.0);
}

TEST_P(ClassicSweep, YaoSinkDegreeBounded) {
    // The reverse-Yao step bounds degree: each node keeps at most `cones`
    // incoming edges per its own election plus at most `cones` outgoing
    // Yao winners that survived some sink election.
    const auto sink = build_yao_sink(udg_, 8);
    const auto stats = graph::degree_stats(sink);
    EXPECT_LE(stats.max, 16u);
}

TEST_P(ClassicSweep, GabrielLengthStretchModerate) {
    // GG is a Θ(√n) length spanner in the worst case but far better on
    // random instances; this pins sane behavior, not the paper bound.
    const auto gg = build_gabriel(udg_);
    const auto stretch = graph::length_stretch(udg_, gg);
    EXPECT_EQ(stretch.disconnected_pairs, 0u);
    EXPECT_GE(stretch.max, 1.0);
    EXPECT_LT(stretch.max, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClassicSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(Classic, GabrielDefinitionOnSmallConfig) {
    // Diamond: the open disk on (0,1) contains node 2 -> not Gabriel;
    // all short sides are Gabriel.
    const GeometricGraph udg = build_udg({{0, 0}, {1, 0}, {0.5, 0.1}, {0.5, -0.6}}, 1.2);
    const auto gg = build_gabriel(udg);
    EXPECT_FALSE(gg.has_edge(0, 1));
    EXPECT_TRUE(gg.has_edge(0, 2));
    EXPECT_TRUE(gg.has_edge(2, 1));
}

TEST(Classic, RngLuneDefinitionOnSmallConfig) {
    // Equilateral-ish triangle: the longest edge has the third node in
    // its lune and is dropped by RNG but kept by GG when the disk on the
    // edge is empty.
    const GeometricGraph udg = build_udg({{0, 0}, {1, 0}, {0.5, 0.75}}, 2.0);
    const auto rng_graph = build_rng(udg);
    const auto gg = build_gabriel(udg);
    // |01| = 1, |02| = |12| ≈ 0.901: node 2 is in the lune of (0,1).
    EXPECT_FALSE(rng_graph.has_edge(0, 1));
    EXPECT_TRUE(rng_graph.has_edge(0, 2));
    EXPECT_TRUE(rng_graph.has_edge(1, 2));
    // But 2 is outside the diametral circle of (0,1) (height 0.75 > 0.5).
    EXPECT_TRUE(gg.has_edge(0, 1));
}

TEST(Classic, YaoPicksClosestPerCone) {
    // Two nodes in the same cone of node 0: only the closer is kept as
    // 0's outgoing choice; the undirected union may still add the other
    // direction, so place the far node so that 0 is not its choice either.
    const GeometricGraph udg = build_udg({{0, 0}, {1, 0}, {2.0, 0.1}}, 3.0);
    const auto yao = build_yao(udg, 8);
    EXPECT_TRUE(yao.has_edge(0, 1));
    EXPECT_TRUE(yao.has_edge(1, 2));
    EXPECT_FALSE(yao.has_edge(0, 2));  // 0 prefers 1; 2 prefers 1.
}

TEST(Classic, UdelEqualsDelaunayIntersectUdg) {
    const auto udg = test::connected_udg(50, 150.0, 45.0, 21);
    ASSERT_GT(udg.node_count(), 0u);
    const auto udel = build_udel(udg);
    const delaunay::DelaunayTriangulation del(udg.points());
    GeometricGraph expected(udg.points());
    for (const auto& [u, v] : del.edges()) {
        if (udg.has_edge(u, v)) expected.add_edge(u, v);
    }
    EXPECT_EQ(udel, expected);
}

}  // namespace
}  // namespace geospanner::proximity
