// Robust predicate correctness, including adversarial near-degeneracies
// that defeat plain double arithmetic.
#include "geom/predicates.h"

#include <gtest/gtest.h>

#include "geom/vec2.h"
#include "random/rng.h"

namespace geospanner::geom {
namespace {

TEST(Orient, BasicTurns) {
    EXPECT_EQ(orient_sign({0, 0}, {1, 0}, {0, 1}), 1);   // Left turn.
    EXPECT_EQ(orient_sign({0, 0}, {1, 0}, {0, -1}), -1); // Right turn.
    EXPECT_EQ(orient_sign({0, 0}, {1, 0}, {2, 0}), 0);   // Collinear.
    EXPECT_EQ(orient_sign({0, 0}, {0, 0}, {1, 1}), 0);   // Degenerate.
}

TEST(Orient, ExactOnTinyPerturbations) {
    // c sits on the line through a and b up to one ulp; the filtered
    // double determinant is ~1e-16 * coordinates and must still get the
    // exact sign right.
    const Point a{0.0, 0.0};
    const Point b{1e10, 1e10};
    const Point on{5e9, 5e9};
    EXPECT_EQ(orient_sign(a, b, on), 0);
    const Point above{5e9, std::nextafter(5e9, 1e300)};
    EXPECT_EQ(orient_sign(a, b, above), 1);
    const Point below{5e9, std::nextafter(5e9, -1e300)};
    EXPECT_EQ(orient_sign(a, b, below), -1);
}

TEST(Orient, AntisymmetryAndRotation) {
    rnd::Xoshiro256 rng(3);
    for (int it = 0; it < 500; ++it) {
        const Point a{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
        const Point b{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
        const Point c{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
        const int s = orient_sign(a, b, c);
        EXPECT_EQ(s, orient_sign(b, c, a));
        EXPECT_EQ(s, orient_sign(c, a, b));
        EXPECT_EQ(-s, orient_sign(b, a, c));
    }
}

TEST(InCircle, UnitCircleBasics) {
    // CCW unit circle through these three points, centered at origin.
    const Point a{1, 0};
    const Point b{0, 1};
    const Point c{-1, 0};
    EXPECT_EQ(incircle_ccw(a, b, c, {0, 0}), 1);
    EXPECT_EQ(incircle_ccw(a, b, c, {0, -1}), 0);  // On the circle.
    EXPECT_EQ(incircle_ccw(a, b, c, {2, 2}), -1);
}

TEST(InCircle, OrientationNormalizedWrapper) {
    const Point a{1, 0};
    const Point b{0, 1};
    const Point c{-1, 0};
    EXPECT_EQ(in_circumcircle(a, b, c, {0, 0}), 1);
    EXPECT_EQ(in_circumcircle(a, c, b, {0, 0}), 1);  // CW input, same answer.
    EXPECT_EQ(in_circumcircle(a, c, b, {3, 3}), -1);
    // Collinear "circle" contains nothing.
    EXPECT_EQ(in_circumcircle({0, 0}, {1, 0}, {2, 0}, {1, 1}), -1);
}

TEST(InCircle, ExactOnNearCocircular) {
    // Four points nearly on the unit circle; the fourth displaced by one
    // ulp radially. Filtered arithmetic alone cannot decide this.
    const Point a{1, 0};
    const Point b{0, 1};
    const Point c{-1, 0};
    const double y = -1.0;
    EXPECT_EQ(incircle_ccw(a, b, c, {0.0, y}), 0);
    EXPECT_EQ(incircle_ccw(a, b, c, {0.0, std::nextafter(y, 0.0)}), 1);
    EXPECT_EQ(incircle_ccw(a, b, c, {0.0, std::nextafter(y, -2.0)}), -1);
}

TEST(InCircle, SymmetryUnderCcwRotation) {
    rnd::Xoshiro256 rng(17);
    for (int it = 0; it < 300; ++it) {
        Point a{rng.uniform(0, 1000), rng.uniform(0, 1000)};
        Point b{rng.uniform(0, 1000), rng.uniform(0, 1000)};
        Point c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
        const Point d{rng.uniform(0, 1000), rng.uniform(0, 1000)};
        if (orient_sign(a, b, c) == 0) continue;
        if (orient_sign(a, b, c) < 0) std::swap(b, c);
        const int s = incircle_ccw(a, b, c, d);
        EXPECT_EQ(s, incircle_ccw(b, c, a, d));
        EXPECT_EQ(s, incircle_ccw(c, a, b, d));
    }
}

TEST(DiametralCircle, Basics) {
    const Point u{0, 0};
    const Point v{2, 0};
    EXPECT_EQ(in_diametral_circle(u, v, {1.0, 0.5}), 1);
    EXPECT_EQ(in_diametral_circle(u, v, {1.0, 1.0}), 0);   // On the circle.
    EXPECT_EQ(in_diametral_circle(u, v, {1.0, 1.5}), -1);
    EXPECT_EQ(in_diametral_circle(u, v, {0.0, 0.0}), 0);   // Endpoint is on it.
}

TEST(DiametralCircle, ExactAtBoundary) {
    const Point u{0, 0};
    const Point v{1e8, 0};
    const Point on{5e7, 5e7};  // Exactly on the circle.
    EXPECT_EQ(in_diametral_circle(u, v, on), 0);
    EXPECT_EQ(in_diametral_circle(u, v, {5e7, std::nextafter(5e7, 0.0)}), 1);
    EXPECT_EQ(in_diametral_circle(u, v, {5e7, std::nextafter(5e7, 1e300)}), -1);
}

TEST(DiametralCircle, MatchesAngleCharacterization) {
    rnd::Xoshiro256 rng(23);
    for (int it = 0; it < 500; ++it) {
        const Point u{rng.uniform(0, 100), rng.uniform(0, 100)};
        const Point v{rng.uniform(0, 100), rng.uniform(0, 100)};
        const Point p{rng.uniform(0, 100), rng.uniform(0, 100)};
        const double d = dot(u - p, v - p);
        if (std::fabs(d) < 1e-6) continue;  // Too close to call in double.
        EXPECT_EQ(in_diametral_circle(u, v, p), d < 0 ? 1 : -1);
    }
}

TEST(Segments, ProperCrossing) {
    EXPECT_TRUE(segments_properly_cross({0, 0}, {2, 2}, {0, 2}, {2, 0}));
    EXPECT_FALSE(segments_properly_cross({0, 0}, {1, 1}, {1, 1}, {2, 0}));  // Shared end.
    EXPECT_FALSE(segments_properly_cross({0, 0}, {1, 0}, {2, 0}, {3, 0}));  // Collinear.
    EXPECT_FALSE(segments_properly_cross({0, 0}, {2, 0}, {1, 0}, {1, 2}));  // T-junction.
    EXPECT_FALSE(segments_properly_cross({0, 0}, {1, 0}, {0, 1}, {1, 1}));  // Parallel.
}

TEST(Segments, IntersectIncludesTouching) {
    EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
    EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 2}));
    EXPECT_TRUE(segments_intersect({0, 0}, {3, 0}, {1, 0}, {2, 0}));  // Overlap.
    EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Segments, OnSegment) {
    EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {1, 1}));
    EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {2, 2}));  // Endpoint.
    EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {3, 3}));  // Beyond.
    EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {1, 1.0000001}));
}

TEST(SegmentOrdering, CrossingsAlongBasics) {
    // Vertical segments crossing the x-axis at x = 1 and x = 2.
    const Point p{0, 0};
    const Point q{10, 0};
    EXPECT_EQ(compare_crossings_along(p, q, {1, -1}, {1, 1}, {2, -1}, {2, 1}), -1);
    EXPECT_EQ(compare_crossings_along(p, q, {2, -1}, {2, 1}, {1, -1}, {1, 1}), 1);
    // Same crossing point through differently-sloped segments.
    EXPECT_EQ(compare_crossings_along(p, q, {1, -1}, {1, 1}, {0, -2}, {2, 2}), 0);
    // Orientation of the crossing segments must not matter.
    EXPECT_EQ(compare_crossings_along(p, q, {1, 1}, {1, -1}, {2, -1}, {2, 1}), -1);
}

TEST(SegmentOrdering, CrossingVsPointAndPoints) {
    const Point p{0, 0};
    const Point q{10, 0};
    EXPECT_EQ(compare_crossing_vs_point_along(p, q, {3, -1}, {3, 1}, {5, 0}), -1);
    EXPECT_EQ(compare_crossing_vs_point_along(p, q, {7, -1}, {7, 1}, {5, 0}), 1);
    EXPECT_EQ(compare_crossing_vs_point_along(p, q, {5, -1}, {5, 1}, {5, 0}), 0);
    EXPECT_EQ(compare_points_along(p, q, {2, 0}, {4, 0}), -1);
    EXPECT_EQ(compare_points_along(p, q, {4, 0}, {2, 0}), 1);
    EXPECT_EQ(compare_points_along(p, q, {4, 0}, {4, 0}), 0);
}

TEST(SegmentOrdering, SubUlpSeparationIsOrderedExactly) {
    // Two crossings separated by far less than double precision around a
    // huge coordinate: rounded crossing points coincide, the exact
    // comparator still orders them. Segment along y = x from (0,0).
    const Point p{0, 0};
    const Point q{1e8, 1e8};
    const double x = 5e7;
    // A vertical segment at x crosses at (x, x); a second vertical
    // segment one ulp to the right crosses one ulp later.
    const double x2 = std::nextafter(x, 1e300);
    EXPECT_EQ(compare_crossings_along(p, q, {x, 0}, {x, 1e8}, {x2, 0}, {x2, 1e8}), -1);
    EXPECT_EQ(compare_crossings_along(p, q, {x2, 0}, {x2, 1e8}, {x, 0}, {x, 1e8}), 1);
    // Crossing at exactly an on-segment node vs the node itself.
    EXPECT_EQ(compare_crossing_vs_point_along(p, q, {x, 0}, {x, 1e8}, {x, x}), 0);
    EXPECT_EQ(compare_crossing_vs_point_along(p, q, {x2, 0}, {x2, 1e8}, {x, x}), 1);
}

TEST(Segments, NearParallelExactness) {
    // Two almost-parallel segments whose crossing decision depends on
    // bits beyond double rounding of the naive cross products.
    const Point p1{0.0, 0.0};
    const Point p2{1e9, 1e9};
    const Point q1{0.0, std::nextafter(0.0, 1.0)};
    const Point q2{1e9, std::nextafter(1e9, 0.0)};
    EXPECT_TRUE(segments_properly_cross(p1, p2, q1, q2));
}

}  // namespace
}  // namespace geospanner::geom
