// Fault-injection subsystem: seeded chaos schedules, self-healing
// replay, quasi-UDG degradation, degraded-mode guarantee certificates,
// and the hardened service's quarantine/watchdog/rollback paths.
//
// The soak tests honor GS_CHAOS_STEPS (nightly runs crank it up); a
// failing soak dumps its schedule JSON into test::fuzz_artifact_dir()
// so the exact run ships as a standalone repro.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dynamic_test_util.h"
#include "fault/healer.h"
#include "fault/quasi_udg.h"
#include "proximity/udg.h"
#include "service/service.h"
#include "test_util.h"
#include "verify/audit.h"
#include "verify/degraded.h"

namespace geospanner::fault {
namespace {

using graph::NodeId;
using protocol::ClusterPolicy;

constexpr double kRadius = 55.0;
constexpr double kSide = 220.0;

std::size_t chaos_steps(std::size_t fallback) {
    const char* env = std::getenv("GS_CHAOS_STEPS");
    if (env == nullptr) return fallback;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

ChaosConfig soak_config(std::size_t steps) {
    ChaosConfig config;
    config.steps = steps;
    config.move_rate = 2.0;
    config.crash_rate = 0.4;
    config.join_rate = 0.4;
    config.leave_rate = 0.2;
    config.outage_rate = 0.05;
    config.side = kSide;
    return config;
}

/// Saves the schedule as a repro artifact and returns the path.
std::string dump_schedule(const ChaosSchedule& schedule, const std::string& tag) {
    const auto path = (test::fuzz_artifact_dir() /
                       ("chaos_" + tag + "_seed" + std::to_string(schedule.seed) +
                        ".json"))
                          .string();
    save_schedule(path, schedule);
    return path;
}

// ---------------------------------------------------------------------------
// WorldMirror semantics
// ---------------------------------------------------------------------------

TEST(WorldMirror, CrashParksInGraveyardAndKeepsIdsStable) {
    WorldMirror world({{0, 0}, {10, 0}, {20, 0}}, kRadius, kSide);
    ChaosEvent crash;
    crash.kind = ChaosKind::kCrash;
    crash.node = 1;
    ASSERT_TRUE(world.applicable(crash));
    world.apply(crash);
    EXPECT_EQ(world.dead[1], 1);
    EXPECT_EQ(world.points.size(), 3u);  // Id not recycled.
    EXPECT_EQ(world.points[1], world.graveyard_slot(0));
    EXPECT_EQ(world.crashed_total, 1u);
    EXPECT_EQ(world.live_count(), 2u);
    // A crashed node is out of every in-world transmission range, and
    // successive slots are mutually isolated too.
    EXPECT_GT(world.points[1].x, kSide + 9.0 * kRadius);
    EXPECT_GE(geom::distance(world.graveyard_slot(0), world.graveyard_slot(1)),
              3.0 * kRadius);
    // Stale: crashing (or moving) the corpse again is skippable.
    EXPECT_FALSE(world.applicable(crash));
    ChaosEvent move;
    move.kind = ChaosKind::kMove;
    move.node = 1;
    EXPECT_FALSE(world.applicable(move));
}

TEST(WorldMirror, LeaveSwapRemovesAndOutageCrashesTheDisk) {
    WorldMirror world({{0, 0}, {10, 0}, {20, 0}, {30, 0}}, kRadius, kSide);
    ChaosEvent leave;
    leave.kind = ChaosKind::kLeave;
    leave.node = 1;
    world.apply(leave);
    ASSERT_EQ(world.points.size(), 3u);
    EXPECT_EQ(world.points[1], (geom::Point{30, 0}));  // Last node took id 1.

    ChaosEvent outage;
    outage.kind = ChaosKind::kOutage;
    outage.pos = {0, 0};
    outage.range = 25.0;  // Hits ids 0 and 2 ({0,0} and {20,0}).
    const auto victims = world.outage_victims(outage.pos, outage.range);
    EXPECT_EQ(victims, (std::vector<NodeId>{0, 2}));
    world.apply(outage);
    EXPECT_EQ(world.dead[0], 1);
    EXPECT_EQ(world.dead[2], 1);
    EXPECT_EQ(world.points[0], world.graveyard_slot(0));
    EXPECT_EQ(world.points[2], world.graveyard_slot(1));
    EXPECT_EQ(world.live_count(), 1u);
}

// ---------------------------------------------------------------------------
// Schedule generation + JSON artifacts
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, GenerationIsDeterministicAndReplayable) {
    const auto initial = test::connected_udg(50, kSide, kRadius, 11).points();
    const auto config = soak_config(30);
    const ChaosSchedule a = generate_chaos(initial, kRadius, config, 42);
    const ChaosSchedule b = generate_chaos(initial, kRadius, config, 42);
    EXPECT_EQ(a.events, b.events);
    EXPECT_FALSE(a.events.empty());

    const ChaosSchedule c = generate_chaos(initial, kRadius, config, 43);
    EXPECT_NE(a.events, c.events);  // The seed matters.

    // Every event is applicable at its point in the stream, steps are
    // nondecreasing, and the mix contains real faults.
    WorldMirror world(a.initial, a.radius, a.config.side);
    std::size_t crashes = 0;
    std::size_t prev_step = 0;
    for (const ChaosEvent& e : a.events) {
        EXPECT_GE(e.step, prev_step);
        prev_step = e.step;
        ASSERT_TRUE(world.applicable(e));
        if (e.kind == ChaosKind::kCrash || e.kind == ChaosKind::kOutage) ++crashes;
        world.apply(e);
    }
    EXPECT_GT(crashes, 0u);
}

TEST(ChaosSchedule, JsonRoundTripIsExact) {
    const auto initial = test::connected_udg(30, kSide, kRadius, 5).points();
    auto config = soak_config(12);
    config.outage_rate = 0.3;  // Make sure outage events round-trip too.
    const ChaosSchedule schedule = generate_chaos(initial, kRadius, config, 77);

    const auto parsed = schedule_from_json(to_json(schedule));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seed, schedule.seed);
    EXPECT_EQ(parsed->radius, schedule.radius);
    EXPECT_EQ(parsed->initial, schedule.initial);
    EXPECT_EQ(parsed->events, schedule.events);
    EXPECT_EQ(parsed->config.steps, schedule.config.steps);
    EXPECT_EQ(parsed->config.side, schedule.config.side);

    const auto path =
        (std::filesystem::temp_directory_path() / "gs_chaos_roundtrip.json").string();
    ASSERT_TRUE(save_schedule(path, schedule));
    const auto loaded = load_schedule(path);
    std::filesystem::remove(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->events, schedule.events);
    EXPECT_EQ(loaded->initial, schedule.initial);

    EXPECT_FALSE(schedule_from_json("{not json").has_value());
    EXPECT_FALSE(load_schedule("/nonexistent/nowhere.json").has_value());
}

// ---------------------------------------------------------------------------
// SelfHealer translation
// ---------------------------------------------------------------------------

TEST(SelfHealer, PacksByClassAndKeepsCrashBatchesPure) {
    const std::vector<geom::Point> initial{{0, 0}, {10, 0}, {20, 0}, {30, 0}};
    SelfHealer healer(initial, kRadius, kSide);

    ChaosEvent move0{0, ChaosKind::kMove, 0, {1, 1}, 0.0};
    ChaosEvent join{0, ChaosKind::kJoin, 0, {40, 0}, 0.0};
    ChaosEvent crash1{1, ChaosKind::kCrash, 1, {}, 0.0};
    ChaosEvent stale_move1{1, ChaosKind::kMove, 1, {9, 9}, 0.0};  // Dead target.
    ChaosEvent move2{2, ChaosKind::kMove, 2, {21, 1}, 0.0};
    ChaosEvent leave3{2, ChaosKind::kLeave, 3, {}, 0.0};

    const auto batches =
        healer.translate({move0, join, crash1, stale_move1, move2, leave3});
    ASSERT_EQ(batches.size(), 4u);

    EXPECT_EQ(batches[0].churn_moves, 1u);  // move0 + join pack together.
    EXPECT_EQ(batches[0].joins, 1u);
    EXPECT_FALSE(batches[0].repair());

    EXPECT_TRUE(batches[1].repair());  // The crash rides alone.
    EXPECT_EQ(batches[1].crash_count, 1u);
    EXPECT_EQ(batches[1].batch.moves.size(), 1u);
    EXPECT_EQ(batches[1].batch.moves[0].node, 1u);
    EXPECT_EQ(batches[1].batch.moves[0].to, healer.world().graveyard_slot(0));
    EXPECT_TRUE(batches[1].batch.joins.empty());
    EXPECT_TRUE(batches[1].batch.leaves.empty());

    EXPECT_EQ(batches[2].churn_moves, 1u);
    EXPECT_EQ(batches[3].leaves, 1u);
    EXPECT_EQ(healer.stale_skipped(), 1u);  // The move on the corpse.
    EXPECT_EQ(healer.dead_count(), 1u);
}

TEST(SelfHealer, ReplayConvergesToFromScratchBuildAndCompacts) {
    const auto initial = test::connected_udg(45, kSide, kRadius, 23).points();
    const ChaosSchedule schedule =
        generate_chaos(initial, kRadius, soak_config(chaos_steps(25)), 97);

    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    dynamic::DynamicSpanner dyn(engine, schedule.initial, kRadius);
    SelfHealer healer(schedule);

    for (const auto& translated : healer.translate(schedule.events)) {
        dyn.apply(translated.batch);
    }
    // Healer mirror and maintained spanner agree position-for-position,
    // and the patched state equals a from-scratch build.
    ASSERT_EQ(dyn.positions(), healer.world().points);
    std::string divergence = test::divergence(dyn, ClusterPolicy::kLowestId);
    if (!divergence.empty()) {
        ADD_FAILURE() << "post-chaos divergence: " << divergence << "; repro at "
                      << dump_schedule(schedule, "replay");
    }

    // Compaction retires every corpse; survivors only afterwards.
    const std::size_t live = healer.world().live_count();
    const auto compaction = healer.compaction_batch();
    EXPECT_EQ(compaction.leaves.size(), healer.world().points.size() >= live
                                            ? dyn.node_count() - live
                                            : 0u);
    dyn.apply(compaction);
    EXPECT_EQ(dyn.node_count(), live);
    EXPECT_EQ(dyn.positions(), healer.world().points);
    EXPECT_EQ(healer.dead_count(), 0u);
    EXPECT_EQ(test::divergence(dyn, ClusterPolicy::kLowestId), "");
}

// ---------------------------------------------------------------------------
// Acceptance: seeded replay through the service is bit-identical
// ---------------------------------------------------------------------------

TEST(ChaosReplay, SeededReplayThroughServiceIsBitIdentical) {
    const auto initial = test::connected_udg(45, kSide, kRadius, 31).points();
    const ChaosSchedule schedule =
        generate_chaos(initial, kRadius, soak_config(chaos_steps(20)), 1234);

    struct Run {
        std::vector<geom::Point> points;
        graph::GeometricGraph udg;
        core::Backbone backbone;
        service::ServiceStats stats;
    };
    const auto run_once = [&] {
        engine::SpannerEngine engine(
            test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
        service::SpannerService svc(engine, schedule.initial, kRadius);
        SelfHealer healer(schedule);
        for (auto& translated : healer.translate(schedule.events)) {
            EXPECT_TRUE(svc.enqueue(std::move(translated.batch)));
        }
        svc.drain();
        const auto snap = svc.snapshot();
        Run run{snap->points, snap->udg, snap->backbone, svc.stats()};
        svc.stop();
        return run;
    };

    const Run a = run_once();
    const Run b = run_once();
    EXPECT_EQ(a.points, b.points);  // Bitwise: same doubles, same order.
    EXPECT_TRUE(a.udg == b.udg);
    EXPECT_EQ(test::backbone_diff(a.backbone, b.backbone), "");
    EXPECT_EQ(a.stats.batches_applied, b.stats.batches_applied);
    EXPECT_EQ(a.stats.updates_applied, b.stats.updates_applied);
    EXPECT_EQ(a.stats.version, b.stats.version);
    EXPECT_EQ(a.stats.batches_quarantined, 0u);
    EXPECT_EQ(b.stats.batches_quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Chaos soak: snapshots stay consistent while faults stream in
// ---------------------------------------------------------------------------

TEST(ChaosSoak, SnapshotsStayConsistentUnderChaosStream) {
    const auto initial = test::connected_udg(40, kSide, kRadius, 47).points();
    const ChaosSchedule schedule =
        generate_chaos(initial, kRadius, soak_config(chaos_steps(25)), 555);

    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    service::SpannerService svc(engine, schedule.initial, kRadius);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> last_version{0};
    std::string reader_failure;
    std::thread reader([&] {
        std::uint64_t prev = 0;
        while (!done.load()) {
            const auto snap = svc.snapshot();
            if (snap->version < prev) {
                reader_failure = "version went backwards";
                return;
            }
            prev = snap->version;
            last_version.store(prev);
            // Structural sanity on every observed snapshot; the full
            // reference check runs on the drained final state below
            // (it is too slow for the hot loop).
            if (snap->points.size() != snap->udg.node_count()) {
                reader_failure = "snapshot points/udg size mismatch";
                return;
            }
            std::this_thread::yield();
        }
    });

    SelfHealer healer(schedule);
    for (auto& translated : healer.translate(schedule.events)) {
        ASSERT_TRUE(svc.enqueue(std::move(translated.batch)));
    }
    svc.drain();
    done = true;
    reader.join();
    EXPECT_EQ(reader_failure, "");

    const auto snap = svc.snapshot();
    const std::string divergence = test::state_divergence(
        snap->points, snap->radius, snap->udg, snap->backbone,
        ClusterPolicy::kLowestId);
    if (!divergence.empty()) {
        ADD_FAILURE() << "post-soak divergence: " << divergence << "; repro at "
                      << dump_schedule(schedule, "soak");
    }
    const auto stats = svc.stats();
    EXPECT_EQ(stats.batches_quarantined, 0u);
    EXPECT_GT(stats.batches_applied, 0u);
}

// ---------------------------------------------------------------------------
// Hardened service: audit gate, watchdog
// ---------------------------------------------------------------------------

TEST(HardenedService, AuditGateRollsBackFailedBatch) {
    const auto udg = test::connected_udg(40, 180.0, kRadius, 13);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));

    // The gate flags exactly one (otherwise healthy) batch as corrupt —
    // a stand-in for an apply that silently broke an invariant.
    std::atomic<int> applies{0};
    service::ServiceOptions options;
    options.post_apply_check = [&](const service::Snapshot&) -> std::string {
        return applies.fetch_add(1) == 1 ? "synthetic invariant breach" : "";
    };
    service::SpannerService svc(engine, udg.points(), kRadius, options);

    rnd::Xoshiro256 rng(71);
    const auto make_move = [&] {
        dynamic::UpdateBatch batch;
        const auto v = static_cast<NodeId>(rng.below(udg.node_count()));
        batch.moves.push_back({v, {rng.uniform(0.0, 180.0), rng.uniform(0.0, 180.0)}});
        return batch;
    };
    ASSERT_TRUE(svc.enqueue(make_move()));  // Sticks; becomes last-good.
    ASSERT_TRUE(svc.enqueue(make_move()));  // Gate fails: rolled back.
    ASSERT_TRUE(svc.enqueue(make_move()));  // Service keeps serving.
    svc.drain();

    const auto stats = svc.stats();
    EXPECT_EQ(stats.batches_applied, 2u);
    EXPECT_EQ(stats.batches_quarantined, 1u);
    const auto reports = svc.quarantine_reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].rolled_back);
    EXPECT_NE(reports[0].reason.find("synthetic"), std::string::npos);

    // The final published state is batches 1 and 3 applied to the
    // initial topology — batch 2 left no trace.
    const auto snap = svc.snapshot();
    EXPECT_EQ(test::state_divergence(snap->points, snap->radius, snap->udg,
                                     snap->backbone, ClusterPolicy::kLowestId),
              "");
    rnd::Xoshiro256 replay(71);
    auto expected = udg.points();
    for (int i = 0; i < 3; ++i) {
        const auto v = static_cast<NodeId>(replay.below(udg.node_count()));
        const geom::Point to{replay.uniform(0.0, 180.0), replay.uniform(0.0, 180.0)};
        if (i != 1) expected[v] = to;
    }
    EXPECT_EQ(snap->points, expected);
}

TEST(HardenedService, WatchdogAbandonsWedgedApplyAndRecovers) {
    const auto udg = test::connected_udg(35, 180.0, kRadius, 17);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));

    std::atomic<int> applies{0};
    std::atomic<bool> release{false};
    service::ServiceOptions options;
    options.watchdog_ms = 50.0;
    options.apply_hook = [&](const dynamic::UpdateBatch&) {
        if (applies.fetch_add(1) == 1) {
            // Wedge the second apply well past the deadline, but let it
            // finish eventually so stop() can reap the orphan.
            while (!release.load()) std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    };
    service::SpannerService svc(engine, udg.points(), kRadius, options);

    dynamic::UpdateBatch healthy;
    healthy.moves.push_back({0, {5.0, 5.0}});
    ASSERT_TRUE(svc.enqueue(healthy));        // Applies fine.
    ASSERT_TRUE(svc.enqueue(healthy));        // Wedges; watchdog fires.
    dynamic::UpdateBatch after;
    after.moves.push_back({1, {7.0, 7.0}});
    ASSERT_TRUE(svc.enqueue(after));          // Runs on the rebuilt spanner.
    svc.drain();
    release = true;  // Unwedge the orphan so stop() can join it.

    const auto stats = svc.stats();
    EXPECT_EQ(stats.watchdog_timeouts, 1u);
    EXPECT_EQ(stats.batches_quarantined, 1u);
    EXPECT_EQ(stats.batches_applied, 2u);
    const auto reports = svc.quarantine_reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].rolled_back);
    EXPECT_NE(reports[0].reason.find("watchdog"), std::string::npos);

    // Recovered state: both healthy batches applied, wedged one rolled
    // back (its move coincides with the first healthy batch's, so the
    // visible effect is moves on nodes 0 and 1 only).
    const auto snap = svc.snapshot();
    EXPECT_EQ(test::state_divergence(snap->points, snap->radius, snap->udg,
                                     snap->backbone, ClusterPolicy::kLowestId),
              "");
    EXPECT_EQ(snap->points[0], (geom::Point{5.0, 5.0}));
    EXPECT_EQ(snap->points[1], (geom::Point{7.0, 7.0}));
    svc.stop();
}

// ---------------------------------------------------------------------------
// Quasi-UDG radio model + degraded-mode certificates
// ---------------------------------------------------------------------------

TEST(QuasiUdg, DeterministicSymmetricSubgraphOfExactUdg) {
    const auto points = test::connected_udg(60, kSide, kRadius, 19).points();
    const auto udg = proximity::build_udg(points, kRadius);

    QuasiUdgModel model;
    model.alpha = 0.7;
    model.seed = 3;
    const auto quasi = build_quasi_udg(points, kRadius, model);
    const auto again = build_quasi_udg(points, kRadius, model);
    EXPECT_TRUE(quasi == again);
    EXPECT_TRUE(quasi == degrade_udg(udg, kRadius, model));

    // Subgraph of the exact UDG; short links always survive; the
    // per-link radius is symmetric and in [alpha r, r].
    std::size_t dropped = 0;
    for (const auto& [u, v] : udg.edges()) {
        const double d = geom::distance(points[u], points[v]);
        const double lr = model.link_radius(u, v, kRadius);
        EXPECT_DOUBLE_EQ(lr, model.link_radius(v, u, kRadius));
        EXPECT_GE(lr, model.alpha * kRadius);
        EXPECT_LE(lr, kRadius);
        if (quasi.has_edge(u, v)) {
            EXPECT_LE(d, lr);
        } else {
            ++dropped;
            EXPECT_GT(d, model.alpha * kRadius);  // Short links never drop.
        }
    }
    for (const auto& [u, v] : quasi.edges()) EXPECT_TRUE(udg.has_edge(u, v));
    EXPECT_GT(dropped, 0u);  // alpha = 0.7 actually degrades something.

    // alpha = 1 is the exact UDG, regardless of seed.
    QuasiUdgModel exact;
    exact.alpha = 1.0;
    exact.seed = 999;
    EXPECT_TRUE(build_quasi_udg(points, kRadius, exact) == udg);

    // Different seeds give different irregularity patterns.
    QuasiUdgModel other = model;
    other.seed = 4;
    EXPECT_FALSE(build_quasi_udg(points, kRadius, other) == quasi);
}

TEST(Degraded, CertificateStatesWhichLemmasSurvive) {
    const auto points = test::connected_udg(60, kSide, kRadius, 29).points();

    QuasiUdgModel model;
    model.alpha = 0.8;
    model.seed = 7;
    const auto quasi = build_quasi_udg(points, kRadius, model);
    const auto backbone = test::reference_backbone(quasi, ClusterPolicy::kLowestId);

    verify::DegradedConditions conditions;
    conditions.alpha = model.alpha;
    const auto audit = verify::check_degraded_guarantees(quasi, backbone, conditions);
    EXPECT_TRUE(audit.pass()) << audit.summary();
    ASSERT_GE(audit.claims.size(), 6u);

    bool planarity_claimed = true;
    bool packing_claimed = false;
    for (const auto& claim : audit.claims) {
        if (claim.lemma.find("7") != std::string::npos) {
            planarity_claimed = claim.claimed;
        }
        if (claim.lemma.find("1") != std::string::npos &&
            claim.lemma.find("2") != std::string::npos) {
            packing_claimed = claim.claimed;
        }
    }
    EXPECT_FALSE(planarity_claimed);  // Advisory below alpha = 1.
    EXPECT_TRUE(packing_claimed);     // Relaxed caps still promised.
    EXPECT_NE(audit.summary().find("ADVISORY"), std::string::npos);

    // At alpha = 1 over the exact UDG every lemma is claimed again.
    const auto udg = proximity::build_udg(points, kRadius);
    const auto full = test::reference_backbone(udg, ClusterPolicy::kLowestId);
    const auto exact =
        verify::check_degraded_guarantees(udg, full, verify::DegradedConditions{});
    EXPECT_TRUE(exact.pass()) << exact.summary();
    for (const auto& claim : exact.claims) EXPECT_TRUE(claim.claimed);
}

TEST(Degraded, CertificateCoversCrashedPopulations) {
    const auto initial = test::connected_udg(45, kSide, kRadius, 53).points();
    ChaosConfig config = soak_config(15);
    config.join_rate = 0.0;
    config.leave_rate = 0.0;  // Pure crash churn: survivors keep their ids.
    const ChaosSchedule schedule = generate_chaos(initial, kRadius, config, 61);

    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    dynamic::DynamicSpanner dyn(engine, schedule.initial, kRadius);
    SelfHealer healer(schedule);
    for (const auto& translated : healer.translate(schedule.events)) {
        dyn.apply(translated.batch);
    }
    ASSERT_EQ(test::divergence(dyn, ClusterPolicy::kLowestId), "");

    verify::DegradedConditions conditions;
    conditions.crashed = healer.dead_count();
    ASSERT_GT(conditions.crashed, 0u);
    const auto audit =
        verify::check_degraded_guarantees(dyn.udg(), dyn.backbone(), conditions);
    EXPECT_TRUE(audit.pass()) << audit.summary();
    // The certificate names the surviving-population caveat.
    EXPECT_NE(audit.summary().find("surviving"), std::string::npos);
}

}  // namespace
}  // namespace geospanner::fault
