// Asynchronous network semantics and the async clustering protocol: the
// elected MIS must be interleaving-independent and equal the synchronous
// result.
#include "protocol/async_clustering.h"

#include <gtest/gtest.h>
#include <string>
#include <variant>

#include "protocol/clustering.h"
#include "sim/async_network.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

TEST(AsyncNetwork, DeliversToAllNeighborsInTimeOrder) {
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}});
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    using Net = sim::AsyncNetwork<std::variant<int>>;
    Net net(g, 42);
    net.broadcast(0, 7);
    std::vector<NodeId> receivers;
    double last_time = -1.0;
    const std::size_t delivered = net.run([&](NodeId to, const Net::Envelope& env) {
        EXPECT_EQ(env.from, 0u);
        EXPECT_EQ(std::get<int>(env.payload), 7);
        EXPECT_GE(net.now(), last_time);
        last_time = net.now();
        receivers.push_back(to);
    });
    EXPECT_EQ(delivered, 2u);
    std::sort(receivers.begin(), receivers.end());
    EXPECT_EQ(receivers, (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(net.messages_sent(0), 1u);
    EXPECT_EQ(net.total_messages(), 1u);
}

TEST(AsyncNetwork, HandlerCanChainBroadcasts) {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    using Net = sim::AsyncNetwork<std::variant<int>>;
    Net net(g, 1);
    net.broadcast(0, 1);
    std::vector<int> seen_at_2;
    net.run([&](NodeId to, const Net::Envelope& env) {
        const int hop = std::get<int>(env.payload);
        if (to == 2) {
            seen_at_2.push_back(hop);
        } else if (to == 1 && hop == 1) {
            net.broadcast(1, 2);
        }
    });
    EXPECT_EQ(seen_at_2, std::vector<int>{2});
}

TEST(AsyncNetwork, DeterministicForSeed) {
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {1, 1}});
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
    }
    const auto order_for = [&](std::uint64_t seed) {
        sim::AsyncNetwork<std::variant<int>> net(g, seed);
        for (NodeId v = 0; v < 4; ++v) net.broadcast(v, static_cast<int>(v));
        std::vector<std::pair<NodeId, int>> order;
        net.run([&](NodeId to, const auto& env) {
            order.push_back({to, std::get<int>(env.payload)});
        });
        return order;
    };
    EXPECT_EQ(order_for(5), order_for(5));
    EXPECT_NE(order_for(5), order_for(6));
}

class AsyncClusteringSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(AsyncClusteringSweep, MisIsInterleavingIndependent) {
    const ClusterState reference = lowest_id_mis(udg_);
    // Many delay seeds -> many different event interleavings; the
    // decision rule must be confluent.
    for (const std::uint64_t delay_seed : {1ULL, 7ULL, 42ULL, 1000ULL, 31337ULL}) {
        AsyncNet net(udg_, delay_seed);
        const ClusterState async_state = run_async_clustering(net, udg_);
        EXPECT_EQ(async_state.role, reference.role) << "seed " << delay_seed;
        EXPECT_EQ(async_state.dominators_of, reference.dominators_of);
        EXPECT_EQ(async_state.two_hop_dominators_of, reference.two_hop_dominators_of);
    }
}

TEST_P(AsyncClusteringSweep, MessageCostMatchesSynchronousProtocol) {
    // Same messages are sent (Hello + IamDominator + IamDominatee per
    // dominator), just at different times.
    AsyncNet anet(udg_, 99);
    (void)run_async_clustering(anet, udg_);
    Net snet(udg_);
    (void)run_clustering(snet, udg_);
    EXPECT_EQ(anet.per_node_sent(), snet.per_node_sent());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsyncClusteringSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(AsyncNetwork, IsolatedNodeBroadcastGoesNowhere) {
    GeometricGraph g({{0, 0}, {10, 10}});
    sim::AsyncNetwork<std::variant<int>> net(g, 1);
    net.broadcast(0, 1);
    std::size_t delivered = net.run([](NodeId, const auto&) {});
    EXPECT_EQ(delivered, 0u);  // No neighbors, no deliveries...
    EXPECT_EQ(net.messages_sent(0), 1u);  // ...but the send is counted.
}

TEST(AsyncClustering, DisconnectedComponentsClusterIndependently) {
    // Two far-apart triangles: each elects its own lowest-id dominator
    // regardless of delays.
    GeometricGraph g({{0, 0}, {1, 0}, {0.5, 1}, {100, 100}, {101, 100}, {100.5, 101}});
    for (NodeId base : {NodeId{0}, NodeId{3}}) {
        g.add_edge(base, base + 1);
        g.add_edge(base + 1, base + 2);
        g.add_edge(base, base + 2);
    }
    AsyncNet net(g, 5);
    const ClusterState s = run_async_clustering(net, g);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_TRUE(s.is_dominator(3));
    EXPECT_EQ(s.dominator_count(), 2u);
}

TEST(AsyncClustering, LongDelaysDoNotChangeTheResult) {
    const auto udg = test::connected_udg(40, 150.0, 50.0, 3);
    ASSERT_GT(udg.node_count(), 0u);
    const ClusterState reference = lowest_id_mis(udg);
    AsyncNet slow(udg, 11, /*max_delay=*/1000.0);
    EXPECT_EQ(run_async_clustering(slow, udg).role, reference.role);
}

}  // namespace
}  // namespace geospanner::protocol
