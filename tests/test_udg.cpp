// Unit disk graph construction (grid-accelerated) vs brute force, and
// the workload generators.
#include "proximity/udg.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "graph/shortest_paths.h"
#include "test_util.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class UdgRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdgRandom, MatchesBruteForce) {
    const auto pts = test::random_points(120, 300.0, GetParam());
    const double radius = 40.0 + static_cast<double>(GetParam() % 5) * 13.0;
    const GeometricGraph fast = build_udg(pts, radius);
    GeometricGraph slow(pts);
    for (NodeId u = 0; u < pts.size(); ++u) {
        for (NodeId v = u + 1; v < pts.size(); ++v) {
            if (geom::squared_distance(pts[u], pts[v]) <= radius * radius) {
                slow.add_edge(u, v);
            }
        }
    }
    EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Udg, BoundaryDistanceIsInclusive) {
    const GeometricGraph g = build_udg({{0, 0}, {1, 0}, {2.0001, 0}}, 1.0);
    EXPECT_TRUE(g.has_edge(0, 1));   // Exactly at the radius.
    EXPECT_FALSE(g.has_edge(1, 2));  // Just beyond.
}

TEST(Udg, EmptyAndZeroRadius) {
    EXPECT_EQ(build_udg({}, 1.0).node_count(), 0u);
    const GeometricGraph g = build_udg({{0, 0}, {0, 0}}, 0.0);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Workload, UniformPointsDeterministic) {
    core::WorkloadConfig config;
    config.node_count = 50;
    config.seed = 42;
    const auto a = core::uniform_points(config);
    const auto b = core::uniform_points(config);
    EXPECT_EQ(a, b);
    config.seed = 43;
    EXPECT_NE(core::uniform_points(config), a);
    for (const auto& p : a) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LT(p.x, config.side);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LT(p.y, config.side);
    }
}

TEST(Workload, ConnectedInstanceIsConnected) {
    core::WorkloadConfig config;
    config.node_count = 60;
    config.side = 200.0;
    config.radius = 50.0;
    config.seed = 5;
    const auto udg = core::random_connected_udg(config);
    ASSERT_TRUE(udg.has_value());
    EXPECT_TRUE(graph::is_connected(*udg));
    EXPECT_EQ(udg->node_count(), 60u);
}

TEST(Workload, ImpossibleDensityReturnsNullopt) {
    core::WorkloadConfig config;
    config.node_count = 100;
    config.side = 10000.0;
    config.radius = 1.0;  // Hopeless.
    config.max_attempts = 5;
    EXPECT_FALSE(core::random_connected_udg(config).has_value());
}

TEST(Workload, ClusteredAndGridGenerators) {
    core::WorkloadConfig config;
    config.node_count = 80;
    config.seed = 9;
    const auto clustered = core::clustered_points(config, 4);
    EXPECT_EQ(clustered.size(), 80u);
    for (const auto& p : clustered) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, config.side);
    }
    const auto grid = core::grid_points(config, 0.1);
    EXPECT_EQ(grid.size(), 80u);
    // Deterministic in the seed.
    EXPECT_EQ(grid, core::grid_points(config, 0.1));
}

}  // namespace
}  // namespace geospanner::proximity
