// Unit disk graph construction (grid-accelerated) vs brute force, the
// shared cell grid, and its overflow-safe hash.
#include "proximity/udg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "proximity/cell_grid.h"
#include "test_util.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class UdgRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdgRandom, MatchesBruteForce) {
    const auto pts = test::random_points(120, 300.0, GetParam());
    const double radius = 40.0 + static_cast<double>(GetParam() % 5) * 13.0;
    const GeometricGraph fast = build_udg(pts, radius);
    GeometricGraph slow(pts);
    for (NodeId u = 0; u < pts.size(); ++u) {
        for (NodeId v = u + 1; v < pts.size(); ++v) {
            if (geom::squared_distance(pts[u], pts[v]) <= radius * radius) {
                slow.add_edge(u, v);
            }
        }
    }
    EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Udg, BoundaryDistanceIsInclusive) {
    const GeometricGraph g = build_udg({{0, 0}, {1, 0}, {2.0001, 0}}, 1.0);
    EXPECT_TRUE(g.has_edge(0, 1));   // Exactly at the radius.
    EXPECT_FALSE(g.has_edge(1, 2));  // Just beyond.
}

TEST(Udg, EmptyAndZeroRadius) {
    EXPECT_EQ(build_udg({}, 1.0).node_count(), 0u);
    const GeometricGraph g = build_udg({{0, 0}, {0, 0}}, 0.0);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Udg, FarOutCoordinatesMatchBruteForce) {
    // Cells beyond ~9e12 made the old signed-multiply cell hash overflow
    // (UB); the splitmix-finalized unsigned hash must keep the grid and
    // brute force in agreement out there. Doubles near 1e13 still
    // resolve ~2e-3, far below the unit radius used here.
    for (const double ox : {-1.0e13, 9.7e12}) {
        for (const double oy : {8.3e12, -4.1e12}) {
            std::vector<geom::Point> pts;
            rnd::Xoshiro256 rng(static_cast<std::uint64_t>(ox * 1e-10) ^
                                static_cast<std::uint64_t>(-oy));
            for (int i = 0; i < 40; ++i) {
                pts.push_back({ox + rng.uniform(0.0, 6.0), oy + rng.uniform(0.0, 6.0)});
            }
            const GeometricGraph fast = build_udg(pts, 1.0);
            GeometricGraph slow(pts);
            for (NodeId u = 0; u < pts.size(); ++u) {
                for (NodeId v = u + 1; v < pts.size(); ++v) {
                    if (geom::squared_distance(pts[u], pts[v]) <= 1.0) slow.add_edge(u, v);
                }
            }
            EXPECT_EQ(fast, slow) << "offset (" << ox << ", " << oy << ")";
        }
    }
}

TEST(CellGrid, BucketsEveryNodeOnceInAscendingOrder) {
    const auto pts = test::random_points(200, 100.0, 13);
    const proximity::CompactCellGrid grid(pts, 7.0);
    ASSERT_EQ(grid.node_count(), pts.size());
    ASSERT_EQ(grid.cell_offsets().size(), grid.cell_count() + 1);
    EXPECT_EQ(grid.cell_offsets().front(), 0u);
    EXPECT_EQ(grid.cell_offsets().back(), pts.size());
    std::vector<char> seen(pts.size(), 0);
    for (std::size_t k = 0; k < grid.cell_count(); ++k) {
        const auto cell = grid.cell_coords()[k];
        EXPECT_EQ(grid.find_cell(cell), k);
        const auto begin = grid.cell_offsets()[k];
        const auto end = grid.cell_offsets()[k + 1];
        EXPECT_LT(begin, end);  // only populated cells are stored
        for (auto s = begin; s < end; ++s) {
            const NodeId v = grid.slot_ids()[s];
            EXPECT_FALSE(seen[v]);
            seen[v] = 1;
            // Slots carry the gathered coordinates of their node and
            // ascend by id within the cell.
            EXPECT_EQ(grid.slot_xs()[s], pts[v].x);
            EXPECT_EQ(grid.slot_ys()[s], pts[v].y);
            EXPECT_EQ(proximity::cell_of(pts[v], 7.0), cell);
            if (s > begin) EXPECT_LT(grid.slot_ids()[s - 1], v);
        }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
              static_cast<std::ptrdiff_t>(pts.size()));
    EXPECT_EQ(grid.find_cell({1'000'000'000LL, -1'000'000'000LL}),
              proximity::CompactCellGrid::kNoCell);
}

TEST(CellGrid, NeighborScanMatchesBruteForce) {
    // The batched 3x3 scan vs the definition, over the same offsets the
    // UDG equivalence test uses (far-out coordinates stress the cell
    // hashing and the gathered-coordinate filter equally).
    const double radius = 1.0;
    for (const double ox : {0.0, 8.8e12}) {
        const auto local = test::random_points(120, 9.0,
                                               static_cast<std::uint64_t>(31.0 + ox));
        std::vector<geom::Point> pts;
        for (const geom::Point p : local) pts.push_back({ox + p.x, p.y});
        const proximity::CompactCellGrid grid(pts, radius);
        for (NodeId v = 0; v < pts.size(); ++v) {
            std::vector<NodeId> got;
            grid.for_neighbors_above(pts[v], v, radius * radius,
                                     [&](NodeId u) { got.push_back(u); });
            std::sort(got.begin(), got.end());
            std::vector<NodeId> want;
            for (NodeId u = v + 1; u < pts.size(); ++u) {
                if (geom::squared_distance(pts[u], pts[v]) <= radius * radius) {
                    want.push_back(u);
                }
            }
            EXPECT_EQ(got, want) << "node " << v << " offset " << ox;
        }
    }
}

TEST(CellGrid, CellsInRectMatchesBruteForce) {
    // The tile-addressable range query vs the definition: every node
    // whose CELL intersects the rectangle (not just nodes inside it),
    // ascending and duplicate-free. Swept over query rects of every
    // size class, including empty, degenerate (line/point), and
    // grid-spanning ones, at near-origin and far-out offsets mirroring
    // FarOutCoordinatesMatchBruteForce.
    const double side = 5.0;
    for (const double ox : {0.0, 9.7e12}) {
        for (const double oy : {0.0, -4.1e12}) {
            const auto local = test::random_points(
                150, 90.0, static_cast<std::uint64_t>(ox + 17.0 - oy));
            std::vector<geom::Point> pts;
            for (const geom::Point p : local) pts.push_back({ox + p.x, oy + p.y});
            const proximity::CompactCellGrid grid(pts, side);

            const double rects[][4] = {
                {10.0, 10.0, 40.0, 30.0},    // interior box
                {-20.0, -20.0, 150.0, 150.0},  // covers everything
                {25.0, 5.0, 25.0, 80.0},     // zero-width line
                {33.0, 44.0, 33.0, 44.0},    // single point
                {60.0, 60.0, 50.0, 70.0},    // inverted → empty
                {-5000.0, 3.0, 5000.0, 7.0},  // spans far more cells than exist
            };
            for (const auto& r : rects) {
                const double min_x = ox + r[0], min_y = oy + r[1];
                const double max_x = ox + r[2], max_y = oy + r[3];
                std::vector<NodeId> expected;
                if (min_x <= max_x && min_y <= max_y) {
                    const auto lo = proximity::cell_of({min_x, min_y}, side);
                    const auto hi = proximity::cell_of({max_x, max_y}, side);
                    for (NodeId v = 0; v < pts.size(); ++v) {
                        const auto c = proximity::cell_of(pts[v], side);
                        if (c.first >= lo.first && c.first <= hi.first &&
                            c.second >= lo.second && c.second <= hi.second) {
                            expected.push_back(v);
                        }
                    }
                }
                EXPECT_EQ(grid.nodes_in_rect(min_x, min_y, max_x, max_y), expected)
                    << "rect (" << r[0] << "," << r[1] << ")-(" << r[2] << "," << r[3]
                    << ") offset (" << ox << "," << oy << ")";
            }
        }
    }
}

TEST(CellGrid, HashSpreadsAdjacentAndFarCells) {
    // Sanity: the finalizer separates neighboring cells and does not
    // collapse far-out coordinates onto one bucket.
    const proximity::CellHash hash;
    std::set<std::size_t> values;
    for (long long x = -2; x <= 2; ++x) {
        for (long long y = -2; y <= 2; ++y) {
            values.insert(hash({x, y}));
            values.insert(hash({x + 9'000'000'000'000LL, y - 9'000'000'000'000LL}));
        }
    }
    EXPECT_EQ(values.size(), 50u);
}

}  // namespace
}  // namespace geospanner::proximity
