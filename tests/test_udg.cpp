// Unit disk graph construction (grid-accelerated) vs brute force, the
// shared cell grid, and its overflow-safe hash.
#include "proximity/udg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "proximity/cell_grid.h"
#include "test_util.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class UdgRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdgRandom, MatchesBruteForce) {
    const auto pts = test::random_points(120, 300.0, GetParam());
    const double radius = 40.0 + static_cast<double>(GetParam() % 5) * 13.0;
    const GeometricGraph fast = build_udg(pts, radius);
    GeometricGraph slow(pts);
    for (NodeId u = 0; u < pts.size(); ++u) {
        for (NodeId v = u + 1; v < pts.size(); ++v) {
            if (geom::squared_distance(pts[u], pts[v]) <= radius * radius) {
                slow.add_edge(u, v);
            }
        }
    }
    EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Udg, BoundaryDistanceIsInclusive) {
    const GeometricGraph g = build_udg({{0, 0}, {1, 0}, {2.0001, 0}}, 1.0);
    EXPECT_TRUE(g.has_edge(0, 1));   // Exactly at the radius.
    EXPECT_FALSE(g.has_edge(1, 2));  // Just beyond.
}

TEST(Udg, EmptyAndZeroRadius) {
    EXPECT_EQ(build_udg({}, 1.0).node_count(), 0u);
    const GeometricGraph g = build_udg({{0, 0}, {0, 0}}, 0.0);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Udg, FarOutCoordinatesMatchBruteForce) {
    // Cells beyond ~9e12 made the old signed-multiply cell hash overflow
    // (UB); the splitmix-finalized unsigned hash must keep the grid and
    // brute force in agreement out there. Doubles near 1e13 still
    // resolve ~2e-3, far below the unit radius used here.
    for (const double ox : {-1.0e13, 9.7e12}) {
        for (const double oy : {8.3e12, -4.1e12}) {
            std::vector<geom::Point> pts;
            rnd::Xoshiro256 rng(static_cast<std::uint64_t>(ox * 1e-10) ^
                                static_cast<std::uint64_t>(-oy));
            for (int i = 0; i < 40; ++i) {
                pts.push_back({ox + rng.uniform(0.0, 6.0), oy + rng.uniform(0.0, 6.0)});
            }
            const GeometricGraph fast = build_udg(pts, 1.0);
            GeometricGraph slow(pts);
            for (NodeId u = 0; u < pts.size(); ++u) {
                for (NodeId v = u + 1; v < pts.size(); ++v) {
                    if (geom::squared_distance(pts[u], pts[v]) <= 1.0) slow.add_edge(u, v);
                }
            }
            EXPECT_EQ(fast, slow) << "offset (" << ox << ", " << oy << ")";
        }
    }
}

TEST(CellGrid, BucketsEveryNodeOnceInAscendingOrder) {
    const auto pts = test::random_points(200, 100.0, 13);
    const proximity::CellGrid grid = proximity::build_cell_grid(pts, 7.0);
    std::size_t total = 0;
    for (const auto& [cell, ids] : grid) {
        EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
        for (const NodeId v : ids) {
            EXPECT_EQ(proximity::cell_of(pts[v], 7.0), cell);
        }
        total += ids.size();
    }
    EXPECT_EQ(total, pts.size());
}

TEST(CellGrid, HashSpreadsAdjacentAndFarCells) {
    // Sanity: the finalizer separates neighboring cells and does not
    // collapse far-out coordinates onto one bucket.
    const proximity::CellHash hash;
    std::set<std::size_t> values;
    for (long long x = -2; x <= 2; ++x) {
        for (long long y = -2; y <= 2; ++y) {
            values.insert(hash({x, y}));
            values.insert(hash({x + 9'000'000'000'000LL, y - 9'000'000'000'000LL}));
        }
    }
    EXPECT_EQ(values.size(), 50u);
}

}  // namespace
}  // namespace geospanner::proximity
