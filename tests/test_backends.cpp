// Backend subsystem: registry round-trip, the EngineBackend's
// edge-for-edge equivalence with a direct SpannerEngine build across
// workload shapes, seeds, and thread counts, and the claimed-bounds
// contract — every registered backend audited against exactly its own
// advertised guarantees on uniform, clustered, and degenerate
// (collinear / cocircular) inputs.
#include "backends/backend.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "backends/biniaz.h"
#include "backends/engine_backend.h"
#include "core/backbone.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/backend_audit.h"

namespace geospanner::backends {
namespace {

using graph::GeometricGraph;

std::string audit_message(const verify::StageAudit& audit) {
    std::ostringstream out;
    for (const auto& report : audit.reports) {
        out << report.check << ": " << (report.pass ? "pass" : "FAIL");
        if (!report.pass && !report.witnesses.empty()) {
            out << " (" << report.witnesses.front().detail << ")";
        }
        out << '\n';
    }
    return out.str();
}

// ---- Registry --------------------------------------------------------

TEST(BackendRegistry, BuiltinsRoundTrip) {
    const auto names = registered_backends();
    for (const std::string expected :
         {"baswana_sen", "biniaz", "engine", "kanj_perkovic"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
            << "missing builtin " << expected;
        const auto backend = make_backend(expected);
        ASSERT_NE(backend, nullptr) << expected;
        EXPECT_EQ(backend->name(), expected);
    }
}

TEST(BackendRegistry, UnknownNameIsNull) {
    EXPECT_EQ(make_backend("no_such_backend"), nullptr);
    EXPECT_EQ(make_backend(""), nullptr);
}

TEST(BackendRegistry, DuplicateRegistrationRejected) {
    // The builtin name is taken; the original factory stays in place.
    EXPECT_FALSE(register_backend("engine", [](const BackendOptions&) {
        return std::unique_ptr<SpannerBackend>{};
    }));
    ASSERT_NE(make_backend("engine"), nullptr);
}

TEST(BackendRegistry, CustomRegistrationResolves) {
    const std::string name = "test_custom_biniaz";
    if (register_backend(name, [](const BackendOptions& options) {
            return std::make_unique<BiniazBackend>(options);
        })) {
        const auto names = registered_backends();
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    }
    ASSERT_NE(make_backend(name), nullptr);
}

// ---- EngineBackend equivalence ---------------------------------------

enum class Shape { kUniform, kClustered, kCollinear };

std::vector<geom::Point> make_points(Shape shape, const core::WorkloadConfig& config) {
    switch (shape) {
        case Shape::kUniform:
            return core::uniform_points(config);
        case Shape::kClustered:
            return core::clustered_points(config, 4);
        case Shape::kCollinear:
            return core::collinear_points(config, 5);
    }
    return {};
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<Shape, std::uint64_t>> {};

TEST_P(EngineEquivalence, MatchesDirectEngineAtEveryThreadCount) {
    const auto [shape, seed] = GetParam();
    core::WorkloadConfig config;
    config.node_count = 70;
    config.side = 220.0;
    config.radius = 55.0;
    config.seed = seed;
    const auto points = make_points(shape, config);
    const auto udg = proximity::build_udg(points, config.radius);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        BackendOptions options;
        options.threads = threads;
        EngineBackend backend(options);
        const BackendResult via_backend = backend.build(udg, config.radius);

        engine::EngineOptions engine_options;
        engine_options.threads = threads;
        engine::SpannerEngine direct(engine_options);
        const core::Backbone expected = direct.build_backbone(udg);

        // Bit-identical output: the full backbone, not just the spanner.
        EXPECT_EQ(via_backend.spanner, expected.ldel_icds_prime)
            << "threads=" << threads;
        const core::Backbone& got = backend.last_backbone();
        EXPECT_EQ(got.cds, expected.cds) << "threads=" << threads;
        EXPECT_EQ(got.cds_prime, expected.cds_prime);
        EXPECT_EQ(got.icds, expected.icds);
        EXPECT_EQ(got.icds_prime, expected.icds_prime);
        EXPECT_EQ(got.ldel_icds, expected.ldel_icds);
        EXPECT_EQ(got.ldel_icds_prime, expected.ldel_icds_prime);
        EXPECT_EQ(got.in_backbone, expected.in_backbone);

        // The raw-points entry point agrees with the engine facade.
        engine::BuildResult full = direct.build(points, config.radius);
        EngineBackend from_points(options);
        const BackendResult via_points = from_points.build_points(points, config.radius);
        EXPECT_EQ(via_points.spanner, full.backbone.ldel_icds_prime);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, EngineEquivalence,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kClustered,
                                         Shape::kCollinear),
                       ::testing::Values(3ULL, 17ULL, 1234ULL)));

// ---- Claimed-bounds audits -------------------------------------------

enum class Family { kUniform, kClustered, kCollinear, kCocircular };

std::vector<geom::Point> family_points(Family family,
                                       const core::WorkloadConfig& config) {
    switch (family) {
        case Family::kUniform:
            return core::uniform_points(config);
        case Family::kClustered:
            return core::clustered_points(config, 4);
        case Family::kCollinear:
            return core::collinear_points(config, 5);
        case Family::kCocircular:
            return core::cocircular_points(config, 4);
    }
    return {};
}

class BackendClaimsAudit
    : public ::testing::TestWithParam<std::tuple<std::string, Family, std::uint64_t>> {
};

TEST_P(BackendClaimsAudit, SpannerSatisfiesOwnClaims) {
    const auto& [name, family, seed] = GetParam();
    core::WorkloadConfig config;
    config.node_count = 60;
    config.side = 200.0;
    config.radius = 50.0;
    config.seed = seed;
    const auto points = family_points(family, config);
    const auto udg = proximity::build_udg(points, config.radius);
    ASSERT_GT(udg.node_count(), 0u);

    auto backend = make_backend(name);
    ASSERT_NE(backend, nullptr);
    const BackendResult result = backend->build(udg, config.radius);

    verify::AuditOptions options;
    options.radius = config.radius;
    const verify::StageAudit audit =
        verify::audit_backend(udg, result.spanner, backend->claims(), options);
    EXPECT_TRUE(audit.pass()) << name << ":\n" << audit_message(audit);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllFamilies, BackendClaimsAudit,
    ::testing::Combine(::testing::Values("engine", "biniaz", "kanj_perkovic",
                                         "baswana_sen"),
                       ::testing::Values(Family::kUniform, Family::kClustered,
                                         Family::kCollinear, Family::kCocircular),
                       ::testing::Values(7ULL, 99ULL)));

// ---- Per-backend behavior --------------------------------------------

TEST(BackendBuild, EmptyAndSingletonInputs) {
    for (const auto& name : registered_backends()) {
        auto backend = make_backend(name);
        const auto empty = proximity::build_udg({}, 1.0);
        const BackendResult none = backend->build(empty, 1.0);
        EXPECT_EQ(none.spanner.node_count(), 0u) << name;
        EXPECT_EQ(none.spanner.edge_count(), 0u) << name;

        const auto one = proximity::build_udg({{3.0, 4.0}}, 1.0);
        const BackendResult single = make_backend(name)->build(one, 1.0);
        EXPECT_EQ(single.spanner.node_count(), 1u) << name;
        EXPECT_EQ(single.spanner.edge_count(), 0u) << name;
    }
}

TEST(BackendBuild, DeterministicPerSeed) {
    core::WorkloadConfig config;
    config.node_count = 80;
    config.side = 200.0;
    config.radius = 50.0;
    config.seed = 21;
    const auto udg = proximity::build_udg(core::uniform_points(config), config.radius);

    for (const auto& name : registered_backends()) {
        const BackendResult a = make_backend(name)->build(udg, config.radius);
        const BackendResult b = make_backend(name)->build(udg, config.radius);
        EXPECT_EQ(a.spanner, b.spanner) << name;
    }
    // A different seed is allowed (and expected) to change the
    // randomized baseline.
    BackendOptions reseeded;
    reseeded.seed = 0xabcdefULL;
    const BackendResult c = make_backend("baswana_sen", reseeded)->build(udg, config.radius);
    EXPECT_EQ(c.spanner.node_count(), udg.node_count());
}

TEST(BackendBuild, StageStatsNamedPerBackend) {
    core::WorkloadConfig config;
    config.node_count = 50;
    config.side = 180.0;
    config.radius = 50.0;
    config.seed = 5;
    const auto udg = proximity::build_udg(core::uniform_points(config), config.radius);

    const std::vector<std::pair<std::string, std::vector<std::string>>> expected = {
        {"biniaz", {"gabriel", "grid", "augment"}},
        {"kanj_perkovic", {"pldel", "yao", "repair"}},
        {"baswana_sen", {"cluster", "join"}},
    };
    for (const auto& [name, stages] : expected) {
        const BackendResult result = make_backend(name)->build(udg, config.radius);
        ASSERT_EQ(result.stats.stages.size(), stages.size()) << name;
        for (std::size_t i = 0; i < stages.size(); ++i) {
            EXPECT_EQ(result.stats.stages[i].name, stages[i]) << name;
        }
    }
    // The engine backend reports the pipeline's own stage breakdown.
    const BackendResult engine_result = make_backend("engine")->build(udg, config.radius);
    EXPECT_FALSE(engine_result.stats.stages.empty());
}

TEST(BackendBuild, BaswanaSenKOneKeepsEveryEdge) {
    core::WorkloadConfig config;
    config.node_count = 40;
    config.side = 150.0;
    config.radius = 50.0;
    config.seed = 8;
    const auto udg = proximity::build_udg(core::uniform_points(config), config.radius);

    BackendOptions options;
    options.k = 1;  // (2k-1) = 1: the spanner must preserve all distances
    const BackendResult result = make_backend("baswana_sen", options)->build(udg, 50.0);
    EXPECT_EQ(result.spanner, udg);
}

}  // namespace
}  // namespace geospanner::backends
