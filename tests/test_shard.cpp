// Tile-sharded construction: the equivalence contract — the merged
// output of TileShardedEngine is edge-for-edge identical to the
// monolithic SpannerEngine build — across workload shapes × seeds ×
// tile counts × thread counts, with the full audit trail (including
// verify::audit_shards) as the oracle; plus the degenerate boundary
// geometries sharding adds on top of test_degenerate's (points exactly
// on tile lines, collinear rows spanning tiles, duplicate coordinates
// straddling halos) and a truncation instance whose regions are real
// strict subsets of the world.
#include "shard/tile_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "proximity/udg.h"
#include "shard/partition.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::shard {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

void expect_backbones_equal(const core::Backbone& expected, const core::Backbone& got) {
    EXPECT_EQ(expected.cluster.role, got.cluster.role);
    EXPECT_EQ(expected.cluster.dominators_of, got.cluster.dominators_of);
    EXPECT_EQ(expected.is_connector, got.is_connector);
    EXPECT_EQ(expected.in_backbone, got.in_backbone);
    EXPECT_EQ(expected.cds, got.cds);
    EXPECT_EQ(expected.cds_prime, got.cds_prime);
    EXPECT_EQ(expected.icds, got.icds);
    EXPECT_EQ(expected.icds_prime, got.icds_prime);
    EXPECT_EQ(expected.ldel_triangles, got.ldel_triangles);
    EXPECT_EQ(expected.ldel_icds, got.ldel_icds);
    EXPECT_EQ(expected.ldel_icds_prime, got.ldel_icds_prime);
}

/// Monolithic reference build (sequential centralized path) for `points`.
struct Reference {
    GeometricGraph udg;
    core::Backbone backbone;
};

Reference reference_build(const std::vector<geom::Point>& points, double radius) {
    Reference ref;
    ref.udg = proximity::build_udg(points, radius);
    ref.backbone = core::build_backbone(ref.udg, {core::Engine::kCentralized});
    return ref;
}

/// Asserts one sharded build against the monolithic reference, audits on.
void expect_sharded_matches(const std::vector<geom::Point>& points, double radius,
                            const Reference& ref, std::size_t tiles,
                            std::size_t threads) {
    SCOPED_TRACE(::testing::Message() << "tiles=" << tiles << " threads=" << threads);
    ShardOptions options;
    options.threads = threads;
    options.tiles = tiles;
    options.audit = true;
    options.audit_options.radius = radius;
    TileShardedEngine engine(options);
    const ShardBuildResult result = engine.build(points, radius);

    EXPECT_EQ(result.udg, ref.udg);
    expect_backbones_equal(ref.backbone, result.backbone);
    EXPECT_TRUE(result.audit.pass()) << result.audit.summary();

    std::vector<std::string> audit_stages;
    for (const auto& s : result.audit.stages) audit_stages.push_back(s.stage);
    EXPECT_EQ(audit_stages, (std::vector<std::string>{"clustering", "connectors",
                                                      "icds", "ldel", "shards"}));

    std::vector<std::string> stats_stages;
    for (const auto& s : result.stats.stages) stats_stages.push_back(s.name);
    EXPECT_EQ(stats_stages, (std::vector<std::string>{"partition", "udg", "clustering",
                                                      "shards", "merge"}));

    // Per-shard accounting: every node owned exactly once, regions are
    // supersets of their owned sets, and each built shard carries its
    // own pipeline timing breakdown.
    EXPECT_FALSE(result.shards.empty());
    std::size_t owned_total = 0;
    for (const ShardStats& shard : result.shards) {
        owned_total += shard.owned;
        EXPECT_GE(shard.region, shard.owned) << "tile " << shard.tile;
        EXPECT_FALSE(shard.stats.stages.empty()) << "tile " << shard.tile;
        EXPECT_EQ(shard.stats.stages.front().name, "connectors") << "tile " << shard.tile;
    }
    EXPECT_EQ(owned_total, points.size());
}

// ---- Equivalence sweep -----------------------------------------------

enum class Shape { kUniform, kClustered, kGrid };

std::vector<geom::Point> make_points(Shape shape, const core::WorkloadConfig& config) {
    switch (shape) {
        case Shape::kUniform:
            return core::uniform_points(config);
        case Shape::kClustered:
            return core::clustered_points(config, 4);
        case Shape::kGrid:
            return core::grid_points(config, 0.25);
    }
    return {};
}

class ShardEquivalence
    : public ::testing::TestWithParam<std::tuple<Shape, std::uint64_t>> {};

TEST_P(ShardEquivalence, MatchesMonolithicAcrossTilesAndThreads) {
    const auto [shape, seed] = GetParam();
    core::WorkloadConfig config;
    config.node_count = 70;
    config.side = 220.0;
    config.radius = 55.0;
    config.seed = seed;
    const auto points = make_points(shape, config);
    const Reference ref = reference_build(points, config.radius);

    for (const std::size_t tiles : {1UL, 4UL, 9UL}) {
        for (const std::size_t threads : {1UL, 2UL, 8UL}) {
            expect_sharded_matches(points, config.radius, ref, tiles, threads);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, ShardEquivalence,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kClustered,
                                         Shape::kGrid),
                       ::testing::Values(11ULL, 29ULL, 53ULL)));

// ---- Degenerate tile boundaries --------------------------------------

TEST(ShardDegenerate, PointsExactlyOnTileLines) {
    // A 10×10 integer lattice split 3×3: the interior tile lines fall on
    // x,y ∈ {3, 6} — coordinates many lattice points hit exactly, so
    // every half-open ownership tie-break is exercised.
    std::vector<geom::Point> points;
    for (int y = 0; y < 10; ++y) {
        for (int x = 0; x < 10; ++x) points.push_back({double(x), double(y)});
    }
    const double radius = 1.5;
    const Reference ref = reference_build(points, radius);
    for (const std::size_t threads : {1UL, 4UL}) {
        expect_sharded_matches(points, radius, ref, 9, threads);
    }
}

TEST(ShardDegenerate, CollinearRowsSpanningTiles) {
    // Exactly collinear rows crossing every vertical tile boundary: the
    // lowest-id MIS decision chains run along the rows through multiple
    // tiles — the workload that forces the global election (a tile-local
    // MIS with any fixed halo gets the roles wrong here).
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 180.0;
    config.radius = 50.0;
    for (const std::uint64_t seed : {11ULL, 29ULL}) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        config.seed = seed;
        const auto points = core::collinear_points(config, 3);
        const Reference ref = reference_build(points, config.radius);
        expect_sharded_matches(points, config.radius, ref, 4, 2);
    }
}

TEST(ShardDegenerate, DuplicateCoordinatesAcrossHalos) {
    // Exact duplicates (every fourth point repeated verbatim): the copies
    // have distant ids, so a point and its duplicate often land in the
    // same tile while only one id is a region boundary case. Coincident
    // nodes at distance zero must survive restriction and merge.
    auto points = test::random_points(36, 150.0, 29);
    const std::size_t base = points.size();
    for (std::size_t i = 0; i < base; i += 4) points.push_back(points[i]);
    const double radius = 50.0;
    const Reference ref = reference_build(points, radius);
    for (const std::size_t tiles : {4UL, 9UL}) {
        expect_sharded_matches(points, radius, ref, tiles, 2);
    }
}

TEST(ShardDegenerate, CocircularRingsAcrossTiles) {
    core::WorkloadConfig config;
    config.node_count = 48;
    config.side = 200.0;
    config.radius = 55.0;
    config.seed = 53;
    const auto points = core::cocircular_points(config, 4);
    const Reference ref = reference_build(points, config.radius);
    expect_sharded_matches(points, config.radius, ref, 4, 2);
}

// ---- Real halo truncation --------------------------------------------

TEST(ShardTruncation, RegionsAreStrictSubsetsAndStillExact) {
    // The sweep instances above are small relative to halo_hops · radius,
    // so their regions degenerate to the whole world. This instance is
    // wide enough (side ≫ 2 · halo · radius + tile side) that every
    // region is a strict subset — the merge must reconstruct decisions
    // whose tiles genuinely did not see the far side of the world.
    core::WorkloadConfig config;
    config.node_count = 3000;
    config.side = 100.0;
    config.radius = 2.0;
    config.seed = 17;
    const auto points = core::uniform_points(config);
    const Reference ref = reference_build(points, config.radius);

    ShardOptions options;
    options.threads = 2;
    options.tiles = 9;
    TileShardedEngine engine(options);
    const ShardBuildResult result = engine.build(points, config.radius);
    EXPECT_EQ(result.udg, ref.udg);
    expect_backbones_equal(ref.backbone, result.backbone);

    bool some_truncated = false;
    for (const ShardStats& shard : result.shards) {
        if (shard.region < points.size()) some_truncated = true;
    }
    EXPECT_TRUE(some_truncated) << "instance too small to exercise halo truncation";
}

// ---- Edge cases -------------------------------------------------------

TEST(ShardEdgeCases, EmptySinglePointAndZeroRadius) {
    ShardOptions options;
    options.threads = 2;
    options.tiles = 4;
    TileShardedEngine engine(options);

    const ShardBuildResult empty = engine.build({}, 1.0);
    EXPECT_EQ(empty.udg.node_count(), 0u);
    EXPECT_TRUE(empty.shards.empty());

    const ShardBuildResult single = engine.build({{3.0, 4.0}}, 1.0);
    EXPECT_EQ(single.udg.node_count(), 1u);
    EXPECT_EQ(single.udg.edge_count(), 0u);
    EXPECT_TRUE(single.backbone.cluster.is_dominator(0));

    // radius 0 takes the monolithic degenerate path: no geometry to shard.
    const ShardBuildResult zero = engine.build({{0.0, 0.0}, {1.0, 1.0}}, 0.0);
    EXPECT_EQ(zero.udg.edge_count(), 0u);
    EXPECT_TRUE(zero.shards.empty());
}

TEST(ShardEdgeCases, AllPointsCoincidentZeroExtentBbox) {
    // Every point identical: the bounding box has zero width and height,
    // the partition collapses to one tile owning everything.
    const std::vector<geom::Point> points(7, {5.0, 5.0});
    const Reference ref = reference_build(points, 1.0);
    expect_sharded_matches(points, 1.0, ref, 8, 2);
}

TEST(ShardEdgeCases, MoreTilesThanPoints) {
    const auto points = test::random_points(5, 50.0, 7);
    const Reference ref = reference_build(points, 60.0);
    expect_sharded_matches(points, 60.0, ref, 64, 2);
}

// ---- Partition plan ---------------------------------------------------

TEST(ShardPartition, OwnershipIsAPartitionAndRegionsCoverHalos) {
    const auto points = test::random_points(400, 100.0, 21);
    const double radius = 3.0;
    const proximity::CompactCellGrid grid(points, radius);
    const PartitionPlan plan = partition_points(points, radius, 16, 4, grid);

    EXPECT_EQ(plan.tiles_x * plan.tiles_y, plan.tile_count());
    EXPECT_DOUBLE_EQ(plan.halo_width, 4.0 * radius);
    ASSERT_EQ(plan.tile_of.size(), points.size());

    std::size_t owned_total = 0;
    for (std::size_t t = 0; t < plan.tile_count(); ++t) {
        const Tile& tile = plan.tiles[t];
        owned_total += tile.owned.size();
        EXPECT_TRUE(std::is_sorted(tile.owned.begin(), tile.owned.end()));
        EXPECT_TRUE(std::is_sorted(tile.region.begin(), tile.region.end()));
        for (const NodeId v : tile.owned) {
            EXPECT_EQ(plan.tile_of[v], t);
            EXPECT_TRUE(std::binary_search(tile.region.begin(), tile.region.end(), v));
        }
        // Region ⊇ every node within the Euclidean halo of the rect.
        for (NodeId v = 0; v < points.size(); ++v) {
            const geom::Point p = points[v];
            if (p.x >= tile.rect.min_x - plan.halo_width &&
                p.x <= tile.rect.max_x + plan.halo_width &&
                p.y >= tile.rect.min_y - plan.halo_width &&
                p.y <= tile.rect.max_y + plan.halo_width && !tile.owned.empty()) {
                EXPECT_TRUE(
                    std::binary_search(tile.region.begin(), tile.region.end(), v))
                    << "node " << v << " inside halo of tile " << t
                    << " missing from region";
            }
        }
    }
    EXPECT_EQ(owned_total, points.size());
}

}  // namespace
}  // namespace geospanner::shard
