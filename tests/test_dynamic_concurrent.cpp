// Concurrent dirty-component patching: the TEST_P sweep drives the
// component decomposition across instance shapes × seeds × batch sizes
// × thread counts and holds every patched topology to edge-for-edge
// identity with a from-scratch build, plus the verify:: patch-layout
// certificate (disjoint regions, hop separation) on every decomposed
// batch. The adversarial cases pin the decomposition's edge behavior:
// nearby seeds must merge into one component, over-cap components must
// fall back without divergence, and a move racing a leave of an
// adjacent node must stay exact through the fallback path.
#include "dynamic/spanner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "dynamic_test_util.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::dynamic {
namespace {

using graph::NodeId;
using protocol::ClusterPolicy;
using test::divergence;

/// One sweep point: instance shape, generator seed, updates per batch,
/// worker threads in the engine pool.
struct ConcurrentParam {
    test::FuzzMode mode;
    std::uint64_t seed;
    std::size_t batch;
    std::size_t threads;
};

std::string param_name(const testing::TestParamInfo<ConcurrentParam>& info) {
    return std::string(test::fuzz_mode_name(info.param.mode)) + "_seed" +
           std::to_string(info.param.seed) + "_batch" +
           std::to_string(info.param.batch) + "_threads" +
           std::to_string(info.param.threads);
}

std::vector<ConcurrentParam> sweep() {
    std::vector<ConcurrentParam> params;
    for (const test::FuzzMode mode :
         {test::FuzzMode::kUniform, test::FuzzMode::kClustered, test::FuzzMode::kGrid}) {
        for (const std::uint64_t seed : {3ULL, 59ULL}) {
            for (const std::size_t batch : {1u, 8u, 32u, 128u}) {
                for (const std::size_t threads : {1u, 2u, 8u}) {
                    params.push_back({mode, seed, batch, threads});
                }
            }
        }
    }
    return params;
}

/// Patch certificate from one apply(): region layout fed to the
/// verify:: auditor. Empty layout (fallback or no decomposition) audits
/// vacuously.
testing::AssertionResult components_certified(const DynamicSpanner& dyn,
                                              const PatchStats& stats) {
    if (stats.fell_back || stats.components.empty()) {
        return testing::AssertionSuccess();
    }
    verify::PatchLayout layout;
    layout.separation_hops = stats.separation_hops;
    for (const auto& comp : stats.components) layout.regions.push_back(comp.region);
    const verify::StageAudit audit =
        verify::audit_patch_components(dyn.udg(), layout);
    if (audit.pass()) return testing::AssertionSuccess();
    auto failure = testing::AssertionFailure();
    for (const auto& report : audit.reports) failure << report.summary() << "\n";
    return failure;
}

class DynamicConcurrent : public testing::TestWithParam<ConcurrentParam> {};

INSTANTIATE_TEST_SUITE_P(Sweep, DynamicConcurrent, testing::ValuesIn(sweep()),
                         param_name);

TEST_P(DynamicConcurrent, PatchedTopologyMatchesReference) {
    const ConcurrentParam& p = GetParam();
    core::WorkloadConfig config;
    config.node_count = 90;
    config.side = 260.0;
    config.radius = 50.0;
    config.seed = p.seed;
    const auto points = test::fuzz_points(p.mode, config);
    ASSERT_FALSE(points.empty());

    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, p.threads));
    DynamicSpanner dyn(engine, points, config.radius);
    ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "") << "initial build";

    rnd::Xoshiro256 rng(p.seed * 16923 + p.batch * 7 + p.threads);
    for (int step = 0; step < 3; ++step) {
        UpdateBatch batch;
        for (std::size_t i = 0; i < p.batch; ++i) {
            const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
            const geom::Point q = dyn.positions()[v];
            batch.moves.push_back(
                {v, {q.x + rng.uniform(-15.0, 15.0), q.y + rng.uniform(-15.0, 15.0)}});
        }
        const PatchStats stats = dyn.apply(batch);
        ASSERT_TRUE(components_certified(dyn, stats)) << "step " << step;
        ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "")
            << "step " << step << " components=" << stats.components.size()
            << " fell_back=" << stats.fell_back;
    }
}

TEST(DynamicConcurrent, ThreadCountsProduceIdenticalTopology) {
    // The plan/commit split's determinism claim, pinned directly: the
    // same batch sequence through pools of 1, 2, and 8 threads must
    // yield bit-identical backbones at every step.
    const double radius = 50.0;
    const auto udg = test::connected_udg(120, 300.0, radius, 71);
    ASSERT_GT(udg.node_count(), 0u);

    std::vector<std::unique_ptr<engine::SpannerEngine>> engines;
    std::vector<std::unique_ptr<DynamicSpanner>> dyns;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        engines.push_back(std::make_unique<engine::SpannerEngine>(
            test::dynamic_engine_options(ClusterPolicy::kLowestId, threads)));
        dyns.push_back(
            std::make_unique<DynamicSpanner>(*engines.back(), udg.points(), radius));
    }

    rnd::Xoshiro256 rng(31337);
    for (int step = 0; step < 6; ++step) {
        UpdateBatch batch;
        for (int i = 0; i < 24; ++i) {
            const auto v = static_cast<NodeId>(rng.below(dyns[0]->node_count()));
            const geom::Point q = dyns[0]->positions()[v];
            batch.moves.push_back(
                {v, {q.x + rng.uniform(-20.0, 20.0), q.y + rng.uniform(-20.0, 20.0)}});
        }
        for (auto& dyn : dyns) dyn->apply(batch);
        for (std::size_t i = 1; i < dyns.size(); ++i) {
            ASSERT_TRUE(dyns[i]->udg() == dyns[0]->udg())
                << "step " << step << ": UDG differs between thread counts";
            ASSERT_EQ(test::backbone_diff(dyns[i]->backbone(), dyns[0]->backbone()), "")
                << "step " << step << ": backbone differs between thread counts";
        }
    }
    ASSERT_EQ(divergence(*dyns[0], ClusterPolicy::kLowestId), "");
}

TEST(DynamicConcurrent, AdjacentSeedsMergeIntoOneComponent) {
    // Two moved nodes one hop apart sit far inside the merge margin
    // (separation_hops ≥ 13), so the decomposition must put them in a
    // single component — two components here would let their connector
    // plans race on shared pairs.
    const double radius = 55.0;
    const auto udg = test::connected_udg(80, 240.0, radius, 13);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    DynamicSpanner dyn(engine, udg.points(), radius);

    NodeId v = 0;
    while (dyn.udg().neighbors(v).empty()) ++v;
    const NodeId u = dyn.udg().neighbors(v).front();
    UpdateBatch batch;
    const geom::Point pv = dyn.positions()[v];
    const geom::Point pu = dyn.positions()[u];
    batch.moves.push_back({v, {pv.x + 3.0, pv.y - 2.0}});
    batch.moves.push_back({u, {pu.x - 2.0, pu.y + 3.0}});
    const PatchStats stats = dyn.apply(batch);
    if (!stats.fell_back) {
        EXPECT_EQ(stats.components.size(), 1u);
        EXPECT_TRUE(components_certified(dyn, stats));
    }
    ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "");
}

TEST(DynamicConcurrent, AllComponentsOverCapFallBackIdentically) {
    // Per-component gate squeezed to zero: every component's region
    // exceeds its cap, the batch must take the full-rebuild path, record
    // the over-cap components it found, and still land on the reference
    // topology.
    const double radius = 50.0;
    const auto udg = test::connected_udg(100, 280.0, radius, 37);
    ASSERT_GT(udg.node_count(), 0u);
    engine::EngineOptions opts =
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2);
    opts.incremental_options.rebuild_fraction = 1e-9;
    opts.incremental_options.total_rebuild_fraction = 1.0;
    engine::SpannerEngine engine(opts);
    DynamicSpanner dyn(engine, udg.points(), radius);

    rnd::Xoshiro256 rng(404);
    UpdateBatch batch;
    for (int i = 0; i < 6; ++i) {
        const auto v = static_cast<NodeId>(rng.below(dyn.node_count()));
        const geom::Point q = dyn.positions()[v];
        batch.moves.push_back(
            {v, {q.x + rng.uniform(-20.0, 20.0), q.y + rng.uniform(-20.0, 20.0)}});
    }
    const PatchStats stats = dyn.apply(batch);
    EXPECT_TRUE(stats.fell_back);
    EXPECT_FALSE(stats.components.empty());
    EXPECT_GE(stats.component_fallbacks, 1u);
    EXPECT_EQ(stats.component_fallbacks, stats.components.size());
    ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "");
}

TEST(DynamicConcurrent, SimultaneousMoveAndLeaveOnAdjacentNodes) {
    // A move racing a leave of a UDG neighbor in one batch: leaves force
    // the fallback path (swap-with-last renumbering invalidates every
    // incremental structure), and the combined application — moves
    // first, then the swap-delete — must still match a from-scratch
    // build on the final positions.
    const double radius = 55.0;
    const auto udg = test::connected_udg(60, 220.0, radius, 91);
    ASSERT_GT(udg.node_count(), 0u);
    engine::SpannerEngine engine(
        test::dynamic_engine_options(ClusterPolicy::kLowestId, 2));
    DynamicSpanner dyn(engine, udg.points(), radius);

    NodeId v = 0;
    while (dyn.udg().neighbors(v).empty()) ++v;
    const NodeId u = dyn.udg().neighbors(v).back();
    UpdateBatch batch;
    const geom::Point pv = dyn.positions()[v];
    batch.moves.push_back({v, {pv.x + 10.0, pv.y + 10.0}});
    batch.leaves.push_back(u);
    const std::size_t before = dyn.node_count();
    const PatchStats stats = dyn.apply(batch);
    EXPECT_TRUE(stats.fell_back);
    ASSERT_EQ(dyn.node_count(), before - 1);
    ASSERT_EQ(divergence(dyn, ClusterPolicy::kLowestId), "");
}

}  // namespace
}  // namespace geospanner::dynamic
