// End-to-end backbone pipeline invariants: everything Section III claims,
// checked per-instance across a parameter sweep.
#include "core/backbone.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "core/workload.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::core {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class BackboneSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    Backbone bb_;

    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
        bb_ = build_backbone(udg_, {Engine::kDistributed});
    }
};

TEST_P(BackboneSweep, EnginesProduceIdenticalTopologies) {
    const Backbone c = build_backbone(udg_, {Engine::kCentralized});
    EXPECT_EQ(bb_.cds, c.cds);
    EXPECT_EQ(bb_.cds_prime, c.cds_prime);
    EXPECT_EQ(bb_.icds, c.icds);
    EXPECT_EQ(bb_.icds_prime, c.icds_prime);
    EXPECT_EQ(bb_.ldel_icds, c.ldel_icds);
    EXPECT_EQ(bb_.ldel_icds_prime, c.ldel_icds_prime);
    EXPECT_EQ(bb_.in_backbone, c.in_backbone);
    EXPECT_EQ(bb_.ldel_triangles, c.ldel_triangles);
    // Message stats only exist for the distributed engine.
    EXPECT_FALSE(bb_.messages.after_ldel.empty());
    EXPECT_TRUE(c.messages.after_ldel.empty());
}

TEST_P(BackboneSweep, SubgraphRelations) {
    // CDS ⊆ ICDS; ICDS and the dominatee links partition ICDS'.
    for (const auto& [u, v] : bb_.cds.edges()) {
        ASSERT_TRUE(bb_.icds.has_edge(u, v));
        ASSERT_TRUE(bb_.cds_prime.has_edge(u, v));
    }
    for (const auto& [u, v] : bb_.icds.edges()) {
        ASSERT_TRUE(udg_.has_edge(u, v));
        ASSERT_TRUE(bb_.in_backbone[u] && bb_.in_backbone[v]);
        ASSERT_TRUE(bb_.icds_prime.has_edge(u, v));
    }
    for (const auto& [u, v] : bb_.ldel_icds.edges()) {
        ASSERT_TRUE(bb_.icds.has_edge(u, v)) << "LDel(ICDS) must refine ICDS";
        ASSERT_TRUE(bb_.ldel_icds_prime.has_edge(u, v));
    }
}

TEST_P(BackboneSweep, Lemma8ConnectivityCertificate) {
    // CDS / ICDS / LDel(ICDS) keep the backbone connected and
    // LDel(ICDS') reaches every UDG-connected pair (Lemma 8's
    // reachability half), certified component-wise.
    const auto report = verify::check_connectivity_preserved(udg_, bb_);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(BackboneSweep, PrimedGraphsSpanAllNodes) {
    EXPECT_TRUE(graph::is_connected(bb_.cds_prime));
    EXPECT_TRUE(graph::is_connected(bb_.icds_prime));
    EXPECT_TRUE(graph::is_connected(bb_.ldel_icds_prime));
}

TEST_P(BackboneSweep, Lemma7LdelIcdsPlanarityCertificate) {
    // A failure carries the concrete crossing edge pair, not just "false".
    const auto report = verify::check_planarity_certificate(bb_.ldel_icds);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(BackboneSweep, Ldel2PlanarizerVariant) {
    // The LDel² planarizer yields a planar spanning backbone too, with
    // engine equality and triangles a subset of the LDel¹ pipeline's.
    BuildOptions options;
    options.planarizer = Planarizer::kLdel2;
    options.engine = Engine::kDistributed;
    const Backbone d = build_backbone(udg_, options);
    options.engine = Engine::kCentralized;
    const Backbone c = build_backbone(udg_, options);
    EXPECT_EQ(d.ldel_icds, c.ldel_icds);
    EXPECT_EQ(d.ldel_triangles, c.ldel_triangles);
    EXPECT_TRUE(graph::is_plane_embedding(d.ldel_icds));
    EXPECT_TRUE(graph::is_connected_on(d.ldel_icds, d.in_backbone));
    EXPECT_TRUE(graph::is_connected(d.ldel_icds_prime));
    for (const auto& t : d.ldel_triangles) {
        EXPECT_TRUE(std::binary_search(bb_.ldel_triangles.begin(),
                                       bb_.ldel_triangles.end(), t))
            << "LDel2 kept a triangle the LDel1 pipeline dropped";
    }
}

TEST_P(BackboneSweep, HighestDegreePolicyPipeline) {
    // The alternative clusterhead criterion flows through the whole
    // pipeline with the same guarantees: engine equality, planarity,
    // spanning, and the Lemma 5 bound.
    BuildOptions options;
    options.cluster_policy = protocol::ClusterPolicy::kHighestDegree;
    options.engine = Engine::kDistributed;
    const Backbone d = build_backbone(udg_, options);
    options.engine = Engine::kCentralized;
    const Backbone c = build_backbone(udg_, options);
    EXPECT_EQ(d.ldel_icds_prime, c.ldel_icds_prime);
    EXPECT_EQ(d.cds_prime, c.cds_prime);
    const verify::AuditTrail trail = verify::audit_backbone(udg_, d);
    EXPECT_TRUE(trail.pass()) << trail.summary();
}

TEST_P(BackboneSweep, Lemma56StretchCertificate) {
    // Per-pair CDS' hop stretch ≤ 3h + 2 (Lemma 5), CDS' length stretch
    // for pairs more than one radius apart ≤ 16 (Lemma 6), and the same
    // length cap for LDel(ICDS') — one certificate; a failure carries
    // the violating pair and both path costs.
    const auto report = verify::check_stretch_bounds(udg_, bb_);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(BackboneSweep, LdelPreservesSpannerUpToConstant) {
    // LDel(ICDS') keeps the constant-stretch property (Section III-C).
    const auto hop = graph::hop_stretch(udg_, bb_.ldel_icds_prime);
    EXPECT_EQ(hop.disconnected_pairs, 0u);
    const auto len = graph::length_stretch(udg_, bb_.ldel_icds_prime);
    EXPECT_EQ(len.disconnected_pairs, 0u);
    EXPECT_GE(len.avg, 1.0);
}

TEST_P(BackboneSweep, Lemma4BackboneDegreeCertificate) {
    // CDS / ICDS / LDel(ICDS) degrees are bounded by constants that do
    // not grow with n or density; the shared checker pins the caps.
    const auto report = verify::check_backbone_degree(bb_);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(BackboneSweep, Lemma3MessageBoundCertificate) {
    // Cumulative across stages, exactly one RoleAnnounce per node, and a
    // constant per-node cap (Lemma 3 + bounded backbone degree).
    ASSERT_EQ(bb_.messages.after_cds.size(), udg_.node_count());
    const auto report = verify::check_message_bounds(bb_.messages);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(BackboneSweep, DominatorCountWithinConstantOfMisBound) {
    // |MIS| is within a constant factor of the minimum dominating set;
    // here we sanity-check the backbone is not bloated: connectors at
    // most a constant multiple of dominators.
    const std::size_t dominators = bb_.cluster.dominator_count();
    const std::size_t backbone = bb_.backbone_size();
    EXPECT_GE(dominators, 1u);
    EXPECT_LE(backbone, 30 * dominators);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackboneSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

/// Full-pipeline invariants on a given connected UDG (reused for the
/// non-uniform workloads below): engine equality plus the complete
/// verify:: stage-audit trail (Lemmas 1–8).
void expect_pipeline_invariants(const GeometricGraph& udg) {
    ASSERT_TRUE(graph::is_connected(udg));
    const Backbone bb = build_backbone(udg, {Engine::kDistributed});
    const Backbone c = build_backbone(udg, {Engine::kCentralized});
    EXPECT_EQ(bb.ldel_icds_prime, c.ldel_icds_prime);
    const verify::AuditTrail trail = verify::audit_backbone(udg, bb);
    EXPECT_TRUE(trail.pass()) << trail.summary();
}

TEST(Backbone, GridWorkload) {
    // Jittered grid: near-cocircular structure everywhere; exercises the
    // exact predicates through the whole pipeline.
    WorkloadConfig config;
    config.node_count = 81;
    config.side = 240.0;
    config.seed = 5;
    for (const double jitter : {0.0, 0.05, 0.2}) {
        const auto udg = proximity::build_udg(grid_points(config, jitter), 45.0);
        expect_pipeline_invariants(udg);
    }
}

TEST(Backbone, ClusteredWorkload) {
    // Gaussian blobs: very uneven density (dense cores, sparse bridges).
    for (const std::uint64_t seed : {3ULL, 17ULL, 90ULL}) {
        WorkloadConfig config;
        config.node_count = 90;
        config.side = 220.0;
        config.radius = 70.0;
        config.seed = seed;
        const auto udg = proximity::build_udg(clustered_points(config, 4), config.radius);
        if (!graph::is_connected(udg)) continue;  // Blobs may not bridge.
        expect_pipeline_invariants(udg);
    }
}

TEST(Backbone, ExactGridWithoutJitterIsHandled) {
    // A perfect integer grid: every unit square cocircular, many
    // collinear triples. The pipeline must not crash and must produce a
    // planar connected backbone (exact predicates + deterministic
    // cocircular tie-breaking).
    WorkloadConfig config;
    config.node_count = 49;
    config.side = 180.0;
    config.seed = 1;
    const auto udg = proximity::build_udg(grid_points(config, 0.0), 40.0);
    expect_pipeline_invariants(udg);
}

TEST(Backbone, SingleNode) {
    GeometricGraph udg({{0, 0}});
    const Backbone bb = build_backbone(udg, {Engine::kDistributed});
    EXPECT_TRUE(bb.in_backbone[0]);
    EXPECT_EQ(bb.cds.edge_count(), 0u);
    EXPECT_EQ(bb.ldel_icds_prime.edge_count(), 0u);
}

TEST(Backbone, TwoAdjacentNodes) {
    GeometricGraph udg({{0, 0}, {0.5, 0}});
    udg.add_edge(0, 1);
    const Backbone bb = build_backbone(udg, {Engine::kDistributed});
    // 0 is dominator, 1 its dominatee; CDS has no edges but CDS' links
    // the dominatee to its dominator.
    EXPECT_TRUE(bb.cluster.is_dominator(0));
    EXPECT_FALSE(bb.cluster.is_dominator(1));
    EXPECT_EQ(bb.cds.edge_count(), 0u);
    EXPECT_TRUE(bb.cds_prime.has_edge(0, 1));
    EXPECT_TRUE(graph::is_connected(bb.ldel_icds_prime));
}

TEST(Backbone, DeterministicAcrossRuns) {
    const auto udg = test::connected_udg(60, 200.0, 55.0, 77);
    ASSERT_GT(udg.node_count(), 0u);
    const Backbone a = build_backbone(udg, {Engine::kDistributed});
    const Backbone b = build_backbone(udg, {Engine::kDistributed});
    EXPECT_EQ(a.ldel_icds_prime, b.ldel_icds_prime);
    EXPECT_EQ(a.messages.after_ldel, b.messages.after_ldel);
}

}  // namespace
}  // namespace geospanner::core
