// Network-wide broadcast strategies: full coverage and the backbone
// transmission savings.
#include "protocol/broadcast.h"

#include <gtest/gtest.h>

#include "core/backbone.h"
#include "graph/shortest_paths.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class BroadcastSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    core::Backbone bb_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
        bb_ = core::build_backbone(udg_, {core::Engine::kCentralized});
    }
};

TEST_P(BroadcastSweep, AllStrategiesCoverEveryNode) {
    for (const NodeId source : {NodeId{0}, static_cast<NodeId>(udg_.node_count() / 2)}) {
        EXPECT_EQ(flood_broadcast(udg_, source).covered, udg_.node_count());
        EXPECT_EQ(backbone_broadcast(udg_, bb_.in_backbone, source).covered, udg_.node_count());
        EXPECT_EQ(tree_broadcast(udg_, source).covered, udg_.node_count());
    }
}

TEST_P(BroadcastSweep, FloodingCostsOneTransmissionPerNode) {
    const auto result = flood_broadcast(udg_, 0);
    EXPECT_EQ(result.transmissions, udg_.node_count());
}

TEST_P(BroadcastSweep, BackboneRelaySavesTransmissions) {
    const auto flood = flood_broadcast(udg_, 0);
    const auto backbone = backbone_broadcast(udg_, bb_.in_backbone, 0);
    // At most backbone size + 1 (the source may be a dominatee).
    EXPECT_LE(backbone.transmissions, bb_.backbone_size() + 1);
    EXPECT_LE(backbone.transmissions, flood.transmissions);
}

TEST_P(BroadcastSweep, RoundsBoundedByEccentricityPlusRelayDetour) {
    // Flooding finishes in (eccentricity + 1) rounds; backbone relay can
    // take a small constant factor longer (the message travels the CDS).
    const auto flood = flood_broadcast(udg_, 0);
    const auto backbone = backbone_broadcast(udg_, bb_.in_backbone, 0);
    const auto hops = graph::bfs_hops(udg_, 0);
    int ecc = 0;
    for (const int h : hops) ecc = std::max(ecc, h);
    EXPECT_EQ(flood.rounds, static_cast<std::size_t>(ecc) + 1);
    EXPECT_LE(backbone.rounds, static_cast<std::size_t>(3 * ecc + 4));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BroadcastSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST_P(BroadcastSweep, CollisionModelBasics) {
    CollisionConfig config;
    config.window = 16;
    config.seed = 7;
    const std::vector<bool> all(udg_.node_count(), true);
    const auto flood = collision_broadcast(udg_, all, 0, config);
    // Every node transmits at most once; the source always reaches its
    // neighbors (it transmits alone in slot 0).
    EXPECT_LE(flood.transmissions, udg_.node_count());
    for (const graph::NodeId u : udg_.neighbors(0)) {
        EXPECT_TRUE(flood.reached[u]);
    }
    EXPECT_GE(flood.covered, 1u + udg_.neighbors(0).size());
    // Determinism.
    const auto again = collision_broadcast(udg_, all, 0, config);
    EXPECT_EQ(again.covered, flood.covered);
    EXPECT_EQ(again.transmissions, flood.transmissions);
}

TEST_P(BroadcastSweep, BackboneCoverageComparableUnderContention) {
    // Under a tight contention window, flooding's redundant relays buy
    // it some collision tolerance; the backbone must stay within a few
    // percent of its coverage while transmitting far less. Averaged over
    // backoff seeds to avoid flakiness.
    CollisionConfig config;
    config.window = 2;
    double flood_cov = 0.0;
    double backbone_cov = 0.0;
    const std::vector<bool> all(udg_.node_count(), true);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        config.seed = seed;
        flood_cov += static_cast<double>(collision_broadcast(udg_, all, 0, config).covered);
        backbone_cov += static_cast<double>(
            collision_broadcast(udg_, bb_.in_backbone, 0, config).covered);
    }
    EXPECT_GE(backbone_cov, flood_cov * 0.95);
}

TEST(Broadcast, CollisionAtSharedReceiver) {
    // Two relays transmitting in the same slot collide at their common
    // neighbor: with window 1 both forced into the same slot, node 3
    // never receives.
    GeometricGraph g({{0, 0}, {1, 0}, {1, 2}, {2, 1}});
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    CollisionConfig config;
    config.window = 1;  // 1 and 2 both transmit in slot 1: collision at 3.
    const std::vector<bool> all(4, true);
    const auto result = collision_broadcast(g, all, 0, config);
    EXPECT_TRUE(result.reached[1]);
    EXPECT_TRUE(result.reached[2]);
    EXPECT_FALSE(result.reached[3]);
    EXPECT_EQ(result.covered, 3u);
}

TEST(Broadcast, SingleNodeNetwork) {
    GeometricGraph udg({{0, 0}});
    const auto bb = core::build_backbone(udg, {core::Engine::kCentralized});
    EXPECT_EQ(flood_broadcast(udg, 0).covered, 1u);
    EXPECT_EQ(backbone_broadcast(udg, bb.in_backbone, 0).covered, 1u);
    EXPECT_EQ(tree_broadcast(udg, 0).covered, 1u);
}

TEST(Broadcast, PathNetworkTransmissionCounts) {
    GeometricGraph udg({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    for (NodeId v = 0; v + 1 < 4; ++v) udg.add_edge(v, v + 1);
    // Tree broadcast from an endpoint: internal nodes are 0, 1, 2 (3 is
    // a leaf) -> 3 transmissions; flooding -> 4.
    EXPECT_EQ(tree_broadcast(udg, 0).transmissions, 3u);
    EXPECT_EQ(flood_broadcast(udg, 0).transmissions, 4u);
}

}  // namespace
}  // namespace geospanner::protocol
