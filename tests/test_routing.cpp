// Geographic routing: face-walk structure, greedy behavior, guaranteed
// delivery of FACE-1/GFG on plane graphs, and backbone routing.
#include "routing/router.h"

#include <gtest/gtest.h>
#include <map>

#include "core/backbone.h"
#include "core/workload.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "proximity/ldel.h"
#include "proximity/udg.h"
#include "routing/backbone_routing.h"
#include "test_util.h"

namespace geospanner::routing {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph square_with_diagonal() {
    GeometricGraph g({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    g.add_edge(0, 2);
    return g;
}

TEST(FaceWalk, PartitionsDirectedEdges) {
    // Every directed edge lies on exactly one face walk: walking from
    // each directed edge must reproduce a partition of all 2m directed
    // edges into cycles.
    const auto g = square_with_diagonal();
    std::map<std::pair<NodeId, NodeId>, int> covered;
    const Router router(g);
    for (const auto& [u, v] : g.edges()) {
        for (const auto& [a, b] :
             {std::pair<NodeId, NodeId>{u, v}, std::pair<NodeId, NodeId>{v, u}}) {
            if (covered.contains({a, b})) continue;
            const auto walk = router.walk_face(a, b);
            for (const auto& e : walk) {
                EXPECT_EQ(covered.count(e), 0u) << "edge in two faces";
                covered[e] = 1;
            }
        }
    }
    EXPECT_EQ(covered.size(), 2 * g.edge_count());
}

TEST(FaceWalk, TriangleFaces) {
    // The square-with-diagonal has faces: two triangles + outer square.
    // A walk's face lies on the right of its directed edges: right of
    // (0 -> 1) is below the square, i.e. the outer face.
    const auto g = square_with_diagonal();
    const Router router(g);
    EXPECT_EQ(router.walk_face(0, 1).size(), 4u);   // Outer face.
    EXPECT_EQ(router.walk_face(2, 3).size(), 4u);   // Outer face again.
    EXPECT_EQ(router.walk_face(1, 0).size(), 3u);   // Triangle 0-1-2.
    EXPECT_EQ(router.walk_face(3, 2).size(), 3u);   // Triangle 0-2-3.
}

TEST(FaceWalk, DeadEndTraversedBothWays) {
    GeometricGraph g({{0, 0}, {1, 0}});
    g.add_edge(0, 1);
    const Router router(g);
    EXPECT_EQ(router.walk_face(0, 1).size(), 2u);
}

TEST(Greedy, DeliversOnConvexChain) {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const Router router(g);
    const auto r = router.greedy(0, 3);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(r.hops(), 3u);
    EXPECT_DOUBLE_EQ(r.length(g), 3.0);
}

TEST(Greedy, FailsAtLocalMinimum) {
    // A "C" shape: from 0 the only neighbor moves away from target 3.
    GeometricGraph g({{0, 0}, {0, 1}, {1, 1}, {1, 0.1}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const Router router(g);
    const auto r = router.greedy(0, 3);
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.path, std::vector<NodeId>{0});  // Stuck immediately.
}

TEST(Face, RecoversWhereGreedyFails) {
    GeometricGraph g({{0, 0}, {0, 1}, {1, 1}, {1, 0.1}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const Router router(g);
    EXPECT_TRUE(router.face(0, 3).delivered);
    EXPECT_TRUE(router.gfg(0, 3).delivered);
}

TEST(Face, UnreachableDestinationFailsCleanly) {
    GeometricGraph g({{0, 0}, {1, 0}, {5, 5}, {6, 5}});
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const Router router(g);
    EXPECT_FALSE(router.face(0, 2).delivered);
    EXPECT_FALSE(router.gfg(0, 2).delivered);
    EXPECT_FALSE(router.greedy(0, 2).delivered);
}

TEST(Routing, SourceEqualsDestination) {
    const auto g = square_with_diagonal();
    const Router router(g);
    for (const auto route : {router.greedy(2, 2), router.face(2, 2), router.gfg(2, 2),
                             router.gpsr(2, 2), router.compass(2, 2)}) {
        EXPECT_TRUE(route.delivered);
        EXPECT_EQ(route.path, std::vector<NodeId>{2});
        EXPECT_EQ(route.hops(), 0u);
    }
}

TEST(Routing, CollinearPathSubstrate) {
    // All nodes on a line: the "planar graph" is a path; every face walk
    // degenerates to out-and-back. All protocols must still deliver.
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
    const Router router(g);
    for (NodeId s = 0; s < 5; ++s) {
        for (NodeId t = 0; t < 5; ++t) {
            EXPECT_TRUE(router.greedy(s, t).delivered) << s << "->" << t;
            EXPECT_TRUE(router.gfg(s, t).delivered) << s << "->" << t;
            EXPECT_TRUE(router.face(s, t).delivered) << s << "->" << t;
            EXPECT_TRUE(router.gpsr(s, t).delivered) << s << "->" << t;
        }
    }
    // On a path, every route is the unique shortest one.
    EXPECT_EQ(router.gfg(0, 4).hops(), 4u);
    EXPECT_EQ(router.face(4, 0).hops(), 4u);
}

TEST(Routing, GridSubstrateWithCocircularFaces) {
    // PLDel of a perfect grid: square faces with cocircular corners (the
    // hardened planarizer output). Face routing must still deliver
    // between all corners.
    core::WorkloadConfig config;
    config.node_count = 36;
    config.side = 150.0;
    config.seed = 1;
    const auto udg = proximity::build_udg(core::grid_points(config, 0.0), 35.0);
    ASSERT_TRUE(graph::is_connected(udg));
    const auto pldel = proximity::build_pldel(udg);
    ASSERT_TRUE(graph::is_plane_embedding(pldel));
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    for (NodeId s = 0; s < n; s += 5) {
        for (NodeId t = 1; t < n; t += 7) {
            if (s == t) continue;
            EXPECT_TRUE(router.gfg(s, t).delivered) << s << "->" << t;
            EXPECT_TRUE(router.face(s, t).delivered) << s << "->" << t;
        }
    }
}

TEST(Routing, RouteLengthMatchesPath) {
    GeometricGraph g({{0, 0}, {3, 4}, {6, 4}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const Router router(g);
    const auto r = router.greedy(0, 2);
    ASSERT_TRUE(r.delivered);
    EXPECT_DOUBLE_EQ(r.length(g), 5.0 + 3.0);
}

class RoutingSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(RoutingSweep, GfgAlwaysDeliversOnPlanarSpanner) {
    const auto pldel = proximity::build_pldel(udg_);
    ASSERT_TRUE(graph::is_plane_embedding(pldel));
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId t = 0; t < n; t += 3) {
            if (s == t) continue;
            const auto r = router.gfg(s, t);
            ASSERT_TRUE(r.delivered) << "gfg " << s << " -> " << t;
            ASSERT_EQ(r.path.front(), s);
            ASSERT_EQ(r.path.back(), t);
            for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
                ASSERT_TRUE(pldel.has_edge(r.path[i], r.path[i + 1]));
            }
        }
    }
}

TEST(Compass, DeliversOnTriangulatedSquare) {
    const auto g = square_with_diagonal();
    const Router router(g);
    for (NodeId s = 0; s < 4; ++s) {
        for (NodeId t = 0; t < 4; ++t) {
            EXPECT_TRUE(router.compass(s, t).delivered) << s << "->" << t;
        }
    }
}

TEST(Compass, ReportsOscillationInsteadOfLooping) {
    // A configuration where compass bounces between two nodes: target 3
    // far right; from 0 the angularly-best neighbor is 1, from 1 it is
    // 0 again (no better angular option).
    GeometricGraph g({{0, 0}, {1, 0.5}, {0.5, 5}, {10, 0}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    const Router router(g);
    const auto r = router.compass(0, 3);
    // Either it delivers via 2 or it detects the bounce; it must not
    // report a path that doesn't end at the destination.
    if (r.delivered) {
        EXPECT_EQ(r.path.back(), 3u);
    } else {
        EXPECT_LT(r.path.size(), 50u);  // Terminated promptly.
    }
}

TEST(Gpsr, RecoversFromLocalMinimum) {
    GeometricGraph g({{0, 0}, {0, 1}, {1, 1}, {1, 0.1}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const Router router(g);
    const auto r = router.gpsr(0, 3);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.path.front(), 0u);
    EXPECT_EQ(r.path.back(), 3u);
}

TEST(Gpsr, FailsCleanlyWhenUnreachable) {
    GeometricGraph g({{0, 0}, {1, 0}, {5, 5}, {6, 5}});
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const Router router(g);
    EXPECT_FALSE(Router(g).gpsr(0, 2).delivered);
}

TEST_P(RoutingSweep, GpsrDeliversOnPlanarSpanner) {
    // GPSR perimeter mode is a heuristic without a formal guarantee, but
    // on these planarized localized-Delaunay instances it delivers; the
    // suite pins that empirical behavior (and validates every hop).
    const auto pldel = proximity::build_pldel(udg_);
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    for (NodeId s = 0; s < n; s += 2) {
        for (NodeId t = 1; t < n; t += 5) {
            if (s == t) continue;
            ++attempted;
            const auto r = router.gpsr(s, t);
            if (r.delivered) {
                ++delivered;
                ASSERT_EQ(r.path.back(), t);
                for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
                    ASSERT_TRUE(pldel.has_edge(r.path[i], r.path[i + 1]));
                }
            }
        }
    }
    EXPECT_GE(delivered, attempted * 9 / 10)
        << "GPSR delivery collapsed: " << delivered << "/" << attempted;
}

TEST_P(RoutingSweep, GpsrStepperReproducesGpsrPath) {
    // The hop-by-hop state machine and the path-level gpsr() must agree
    // exactly (the latter is built on the former, but this pins it).
    const auto pldel = proximity::build_pldel(udg_);
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    for (NodeId s = 0; s < n; s += 7) {
        for (NodeId t = 3; t < n; t += 11) {
            if (s == t) continue;
            const auto full = router.gpsr(s, t);
            std::vector<NodeId> stepped{s};
            Router::GpsrPacketState state;
            NodeId v = s;
            while (v != t && stepped.size() <= full.path.size() + 2) {
                const NodeId next = router.gpsr_step(v, t, state);
                if (next == graph::kInvalidNode) break;
                v = next;
                stepped.push_back(v);
            }
            ASSERT_EQ(stepped, full.path) << s << "->" << t;
        }
    }
}

TEST_P(RoutingSweep, CompassDeliversMostlyOnPlanarSpanner) {
    const auto pldel = proximity::build_pldel(udg_);
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    for (NodeId s = 0; s < n; s += 3) {
        for (NodeId t = 1; t < n; t += 7) {
            if (s == t) continue;
            ++attempted;
            if (router.compass(s, t).delivered) ++delivered;
        }
    }
    // Compass has no guarantee on PLDel (only on the full Delaunay
    // triangulation); expect it to succeed on a clear majority.
    EXPECT_GE(delivered * 2, attempted);
}

TEST_P(RoutingSweep, FaceAlwaysDeliversOnPlanarSpanner) {
    const auto pldel = proximity::build_pldel(udg_);
    const Router router(pldel);
    const auto n = static_cast<NodeId>(pldel.node_count());
    for (NodeId s = 0; s < n; s += 5) {
        for (NodeId t = 2; t < n; t += 7) {
            if (s == t) continue;
            ASSERT_TRUE(router.face(s, t).delivered) << "face " << s << " -> " << t;
        }
    }
}

TEST_P(RoutingSweep, BackboneStepperDeliversHopByHop) {
    // The localized per-hop variant of the hierarchical router: every
    // step must be a UDG edge and the packet must arrive.
    const core::Backbone bb = core::build_backbone(udg_, {core::Engine::kCentralized});
    const BackboneRouter router(bb, udg_);
    const auto n = static_cast<NodeId>(udg_.node_count());
    const std::size_t bound = 20 * (udg_.node_count() + udg_.edge_count()) + 100;
    for (NodeId s = 0; s < n; s += 3) {
        for (NodeId t = 1; t < n; t += 4) {
            if (s == t) continue;
            BackboneRouter::PacketState state;
            NodeId v = s;
            std::size_t steps = 0;
            while (v != t && steps < bound) {
                const NodeId next = router.step(v, t, state);
                ASSERT_NE(next, graph::kInvalidNode) << s << "->" << t << " at " << v;
                ASSERT_TRUE(udg_.has_edge(v, next)) << "non-radio hop " << v << "->" << next;
                v = next;
                ++steps;
            }
            ASSERT_EQ(v, t) << s << "->" << t << " did not arrive";
        }
    }
}

TEST_P(RoutingSweep, BackboneRouterDeliversEverywhere) {
    const core::Backbone bb = core::build_backbone(udg_, {core::Engine::kCentralized});
    const BackboneRouter router(bb, udg_);
    const auto n = static_cast<NodeId>(udg_.node_count());
    const auto hops_from0 = graph::bfs_hops(udg_, 0);
    for (NodeId s = 0; s < n; s += 2) {
        for (NodeId t = 1; t < n; t += 3) {
            const auto r = router.route(s, t);
            ASSERT_TRUE(r.delivered) << s << " -> " << t;
            ASSERT_EQ(r.path.front(), s);
            ASSERT_EQ(r.path.back(), t);
        }
    }
    (void)hops_from0;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoutingSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

}  // namespace
}  // namespace geospanner::routing
