// Degree and stretch measurement semantics.
#include "graph/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

#include "graph/shortest_paths.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::graph {
namespace {

TEST(DegreeStats, SimpleStar) {
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {-1, 0}});
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    const auto s = degree_stats(g);
    EXPECT_EQ(s.max, 3u);
    EXPECT_DOUBLE_EQ(s.avg, 6.0 / 4.0);
    EXPECT_EQ(degree_stats(GeometricGraph{}).max, 0u);
}

TEST(Stretch, IdenticalGraphsHaveStretchOne) {
    const auto udg = test::connected_udg(30, 100.0, 40.0, 7);
    ASSERT_GT(udg.node_count(), 0u);
    const auto len = length_stretch(udg, udg);
    EXPECT_DOUBLE_EQ(len.avg, 1.0);
    EXPECT_DOUBLE_EQ(len.max, 1.0);
    EXPECT_EQ(len.disconnected_pairs, 0u);
    const auto hop = hop_stretch(udg, udg);
    EXPECT_DOUBLE_EQ(hop.avg, 1.0);
    EXPECT_DOUBLE_EQ(hop.max, 1.0);
}

TEST(Stretch, RemovedShortcutShowsUp) {
    // Square with one diagonal in the base; topology drops the diagonal.
    GeometricGraph base({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
    base.add_edge(0, 1);
    base.add_edge(1, 2);
    base.add_edge(2, 3);
    base.add_edge(3, 0);
    base.add_edge(0, 2);
    GeometricGraph topo = base;
    topo.remove_edge(0, 2);
    const auto hop = hop_stretch(base, topo);
    // Pair (0,2): 1 hop -> 2 hops; all other pairs unchanged.
    EXPECT_DOUBLE_EQ(hop.max, 2.0);
    EXPECT_EQ(hop.pair_count, 6u);
    EXPECT_DOUBLE_EQ(hop.avg, (5.0 * 1.0 + 2.0) / 6.0);
    const auto len = length_stretch(base, topo);
    EXPECT_NEAR(len.max, 2.0 / std::sqrt(2.0), 1e-12);
}

TEST(Stretch, DisconnectedPairsAreCounted) {
    GeometricGraph base({{0, 0}, {1, 0}, {2, 0}});
    base.add_edge(0, 1);
    base.add_edge(1, 2);
    GeometricGraph topo = base;
    topo.remove_edge(1, 2);  // Node 2 unreachable in topo.
    const auto hop = hop_stretch(base, topo);
    EXPECT_EQ(hop.pair_count, 3u);
    EXPECT_EQ(hop.disconnected_pairs, 2u);
    EXPECT_DOUBLE_EQ(hop.avg, 1.0);  // Only (0,1) measured.
}

TEST(Stretch, MinEuclideanFilterExcludesClosePairs) {
    // Base: path 0-1-2 with a tiny first hop. With the filter at 1.5,
    // only pairs more than 1.5 apart are measured: (0,2) and (1,2).
    GeometricGraph base({{0, 0}, {1, 0}, {3, 0}});
    base.add_edge(0, 1);
    base.add_edge(1, 2);
    const auto all = hop_stretch(base, base);
    EXPECT_EQ(all.pair_count, 3u);
    const auto far = hop_stretch(base, base, 1.5);
    EXPECT_EQ(far.pair_count, 2u);
    const auto none = hop_stretch(base, base, 10.0);
    EXPECT_EQ(none.pair_count, 0u);
    EXPECT_DOUBLE_EQ(none.avg, 0.0);
    // Length variant honors the same filter.
    EXPECT_EQ(length_stretch(base, base, 1.5).pair_count, 2u);
}

TEST(Stretch, WitnessCertifiesTheMaximum) {
    const auto udg = test::connected_udg(40, 150.0, 50.0, 19);
    ASSERT_GT(udg.node_count(), 0u);
    // Spanning tree maximizes stretch; witness must match the stats max
    // and its quoted distances must be the real shortest-path values.
    GeometricGraph tree(udg.points());
    const auto parent = bfs_tree(udg, 0);
    for (NodeId v = 1; v < udg.node_count(); ++v) {
        if (parent[v] != kInvalidNode) tree.add_edge(v, parent[v]);
    }
    const auto stats = length_stretch(udg, tree);
    const auto witness = length_stretch_witness(udg, tree);
    ASSERT_NE(witness.u, kInvalidNode);
    EXPECT_NEAR(witness.ratio, stats.max, 1e-12);
    EXPECT_NEAR(dijkstra_lengths(udg, witness.u)[witness.v], witness.base_distance,
                1e-12);
    EXPECT_NEAR(dijkstra_lengths(tree, witness.u)[witness.v], witness.topo_distance,
                1e-12);
    // No qualifying pair -> empty witness.
    const auto none = length_stretch_witness(udg, tree, 1e9);
    EXPECT_EQ(none.u, kInvalidNode);
    EXPECT_DOUBLE_EQ(none.ratio, 0.0);
}

TEST(Metrics, PowerAssignmentBasics) {
    GeometricGraph g({{0, 0}, {3, 0}, {3, 4}, {100, 100}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const auto p = power_assignment(g, 2.0);
    // Node powers: 0 -> 9 (edge of length 3), 1 -> 16 (length 4),
    // 2 -> 16, isolated 3 -> 0.
    EXPECT_DOUBLE_EQ(p.max, 16.0);
    EXPECT_DOUBLE_EQ(p.total, 9.0 + 16.0 + 16.0);
    EXPECT_DOUBLE_EQ(p.avg, 41.0 / 4.0);
    EXPECT_DOUBLE_EQ(power_assignment(GeometricGraph{}, 2.0).total, 0.0);
}

TEST(Stretch, PowerStretchOrdering) {
    // For any subgraph of the base: power stretch with larger beta is at
    // most... not monotone in general; just verify basics: subgraph
    // stretch >= 1 and equals 1 when the subgraph keeps all edges.
    const auto udg = test::connected_udg(25, 100.0, 45.0, 11);
    ASSERT_GT(udg.node_count(), 0u);
    const auto p2 = power_stretch(udg, udg, 2.0);
    EXPECT_DOUBLE_EQ(p2.max, 1.0);
}

TEST(Stretch, SubgraphStretchAtLeastOne) {
    const auto udg = test::connected_udg(40, 150.0, 50.0, 13);
    ASSERT_GT(udg.node_count(), 0u);
    // Drop every third edge that is not a bridge... simpler: drop nothing
    // and compare a spanning tree (BFS tree) which maximizes stretch.
    GeometricGraph tree(udg.points());
    const auto parent = bfs_tree(udg, 0);
    for (NodeId v = 1; v < udg.node_count(); ++v) {
        if (parent[v] != kInvalidNode) tree.add_edge(v, parent[v]);
    }
    const auto len = length_stretch(udg, tree);
    EXPECT_GE(len.max, 1.0);
    EXPECT_GE(len.avg, 1.0);
    EXPECT_EQ(len.disconnected_pairs, 0u);
    const auto hop = hop_stretch(udg, tree);
    EXPECT_GE(hop.avg, 1.0);
}

}  // namespace
}  // namespace geospanner::graph
