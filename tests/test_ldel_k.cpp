// k-hop neighborhoods and the k-localized Delaunay graphs LDel⁽ᵏ⁾.
#include "proximity/ldel_k.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "graph/khop.h"
#include "graph/metrics.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "proximity/classic.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::proximity {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

TEST(KHop, PathNeighborhoods) {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
    EXPECT_EQ(graph::k_hop_neighborhood(g, 2, 0), (std::vector<NodeId>{2}));
    EXPECT_EQ(graph::k_hop_neighborhood(g, 2, 1), (std::vector<NodeId>{1, 2, 3}));
    EXPECT_EQ(graph::k_hop_neighborhood(g, 2, 2), (std::vector<NodeId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(graph::k_hop_neighborhood(g, 0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(graph::k_hop_neighborhood(g, 0, 100).size(), 5u);
}

TEST(KHop, MatchesBfsDepth) {
    const auto udg = test::connected_udg(60, 200.0, 50.0, 17);
    ASSERT_GT(udg.node_count(), 0u);
    for (const NodeId v : {NodeId{0}, NodeId{10}, NodeId{31}}) {
        const auto hops = graph::bfs_hops(udg, v);
        for (const int k : {1, 2, 3}) {
            const auto nbh = graph::k_hop_neighborhood(udg, v, k);
            for (NodeId u = 0; u < udg.node_count(); ++u) {
                const bool in = std::binary_search(nbh.begin(), nbh.end(), u);
                EXPECT_EQ(in, hops[u] >= 0 && hops[u] <= k) << "v=" << v << " u=" << u;
            }
        }
    }
}

class LdelKSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(LdelKSweep, KOneMatchesLdel1) {
    EXPECT_EQ(ldel_k_triangles(udg_, 1), ldel1_triangles(udg_));
    EXPECT_EQ(build_ldel_k(udg_, 1), build_ldel1(udg_));
}

TEST_P(LdelKSweep, TrianglesShrinkWithK) {
    const auto t1 = ldel_k_triangles(udg_, 1);
    const auto t2 = ldel_k_triangles(udg_, 2);
    const auto t3 = ldel_k_triangles(udg_, 3);
    EXPECT_LE(t2.size(), t1.size());
    EXPECT_LE(t3.size(), t2.size());
    for (const auto& t : t2) {
        EXPECT_TRUE(std::binary_search(t1.begin(), t1.end(), t));
    }
    for (const auto& t : t3) {
        EXPECT_TRUE(std::binary_search(t2.begin(), t2.end(), t));
    }
}

TEST_P(LdelKSweep, LdelTwoIsPlanarWithoutAlgorithmThree) {
    // The k >= 2 theorem of Li et al.: no planarization step needed.
    EXPECT_TRUE(graph::is_plane_embedding(build_ldel_k(udg_, 2)));
}

TEST_P(LdelKSweep, ContainsUdelTriangleEdgesAndSpans) {
    // Global Delaunay triangles with unit edges have globally empty
    // circumcircles, hence survive any k. The graph stays connected and
    // spanning.
    const auto ldel2 = build_ldel_k(udg_, 2);
    EXPECT_TRUE(graph::is_connected(ldel2));
    const auto stretch = graph::length_stretch(udg_, ldel2);
    EXPECT_EQ(stretch.disconnected_pairs, 0u);
    EXPECT_LT(stretch.max, 3.0);
    const auto udel = build_udel(udg_);
    for (const auto& [u, v] : udel.edges()) {
        EXPECT_TRUE(ldel2.has_edge(u, v)) << "UDel edge (" << u << "," << v << ")";
    }
}

TEST_P(LdelKSweep, PldelSitsBetweenLdel2AndLdel1) {
    // PLDel keeps a superset of LDel² triangles: Algorithm 3 only
    // removes triangles contradicted within 1 extra hop of knowledge,
    // while k = 2 removes all of those and possibly more.
    const auto pldel_tris = planarize_triangles(udg_, ldel1_triangles(udg_));
    const auto t2 = ldel_k_triangles(udg_, 2);
    for (const auto& t : t2) {
        EXPECT_TRUE(std::binary_search(pldel_tris.begin(), pldel_tris.end(), t))
            << "LDel² triangle removed by Algorithm 3";
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LdelKSweep, ::testing::ValuesIn(test::standard_sweep()));

}  // namespace
}  // namespace geospanner::proximity
