// SVG rendering, table formatting, and report aggregation.
#include "io/svg.h"

#include <filesystem>
#include <sstream>
#include <fstream>
#include <gtest/gtest.h>

#include "core/report.h"
#include "io/serialize.h"
#include "io/table.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::io {
namespace {

using graph::GeometricGraph;

GeometricGraph tiny_graph() {
    GeometricGraph g({{0, 0}, {10, 0}, {5, 8}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    return g;
}

TEST(Svg, ContainsNodesAndEdges) {
    const std::string svg =
        render_svg(tiny_graph(), {NodeClass::kDominator, NodeClass::kConnector,
                                  NodeClass::kPlain});
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // Two edges, one circle (plain), two rects (dominator+connector).
    std::size_t lines = 0;
    std::size_t rects = 0;
    std::size_t circles = 0;
    for (std::size_t pos = 0; (pos = svg.find("<line", pos)) != std::string::npos; ++pos) ++lines;
    for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos; ++pos) ++rects;
    for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos; ++pos) ++circles;
    EXPECT_EQ(lines, 2u);
    EXPECT_EQ(rects, 2u);
    EXPECT_EQ(circles, 1u);
}

TEST(Svg, EmptyGraphStillRenders) {
    const std::string svg = render_svg(GeometricGraph{}, {});
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_EQ(svg.find("<line"), std::string::npos);
    EXPECT_EQ(svg.find("<circle"), std::string::npos);
}

TEST(Svg, CoincidentPointsDoNotDivideByZero) {
    GeometricGraph g({{5, 5}, {5, 5}, {5, 5}});
    const std::string svg = render_svg(g, {});
    EXPECT_NE(svg.find("<circle"), std::string::npos);
    EXPECT_EQ(svg.find("nan"), std::string::npos);
    EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(Svg, ClassesShorterThanNodesDefaultToPlain) {
    // Passing fewer class entries than nodes must not crash; the rest
    // render as plain circles.
    const std::string svg = render_svg(tiny_graph(), {NodeClass::kDominator});
    std::size_t circles = 0;
    for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos; ++pos) {
        ++circles;
    }
    EXPECT_EQ(circles, 2u);
}

TEST(Svg, TitleRendered) {
    SvgStyle style;
    style.title = "Unit Disk Graph";
    const std::string svg = render_svg(tiny_graph(), {}, style);
    EXPECT_NE(svg.find("Unit Disk Graph"), std::string::npos);
}

TEST(Svg, WritesFile) {
    const auto path = std::filesystem::temp_directory_path() / "gs_test_topology.svg";
    EXPECT_TRUE(write_svg(path.string(), tiny_graph(), {}));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("<svg"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Table, AlignsColumns) {
    Table t({"name", "value"});
    t.begin_row().cell(std::string("udg")).cell(std::size_t{1069});
    t.begin_row().cell(std::string("long-name-row")).cell(3.14159, 2);
    t.begin_row().cell(std::string("dash")).dash();
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("1069"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("-"), std::string::npos);
    // All lines equal width modulo trailing spaces is hard to pin; check
    // the header rule exists and rows came out in order.
    EXPECT_LT(s.find("udg"), s.find("long-name-row"));
    EXPECT_LT(s.find("long-name-row"), s.find("dash"));
}

TEST(Serialize, RoundTripExactly) {
    const auto udg =
        proximity::build_udg(geospanner::test::random_points(40, 100.0, 8), 30.0);
    std::stringstream stream;
    write_graph(stream, udg);
    const auto loaded = read_graph(stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, udg);  // Bit-exact points and identical edges.
}

TEST(Serialize, FileRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "gs_test_graph.gsg";
    const GeometricGraph g = tiny_graph();
    ASSERT_TRUE(save_graph(path.string(), g));
    const auto loaded = load_graph(path.string());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, g);
    std::filesystem::remove(path);
    EXPECT_FALSE(load_graph(path.string()).has_value());
}

TEST(Serialize, RejectsMalformedInput) {
    const auto parse = [](const std::string& text) {
        std::stringstream stream(text);
        return read_graph(stream);
    };
    EXPECT_FALSE(parse("").has_value());
    EXPECT_FALSE(parse("not-gsg 1\n0 0\n").has_value());
    EXPECT_FALSE(parse("gsg 2\n0 0\n").has_value());
    EXPECT_FALSE(parse("gsg 1\n2 1\n0 0\n1 1\n").has_value());      // Missing edge.
    EXPECT_FALSE(parse("gsg 1\n2 1\n0 0\n1 1\n0 5\n").has_value()); // Bad node id.
    EXPECT_FALSE(parse("gsg 1\n2 1\n0 0\n1 1\n0 0\n").has_value()); // Self-loop.
    EXPECT_TRUE(parse("gsg 1\n2 1\n0 0\n1 1\n0 1\n").has_value());
}

TEST(Serialize, ReproCaseRoundTripExactly) {
    ReproCase repro;
    repro.seed = 0xdeadbeef12345678ULL;
    repro.mode = "cocircular";
    repro.radius = 55.0;
    repro.failed_check = "planarity_certificate";
    repro.points = geospanner::test::random_points(17, 200.0, 42);
    repro.points.push_back({1.0 / 3.0, -2.0e-17});  // Awkward decimals.

    const std::string json = to_json(repro);
    const auto parsed = repro_from_json(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seed, repro.seed);
    EXPECT_EQ(parsed->mode, repro.mode);
    EXPECT_DOUBLE_EQ(parsed->radius, repro.radius);
    EXPECT_EQ(parsed->failed_check, repro.failed_check);
    EXPECT_EQ(parsed->points, repro.points);  // Bit-exact coordinates.

    const auto path = std::filesystem::temp_directory_path() / "gs_test_repro.json";
    ASSERT_TRUE(save_repro(path.string(), repro));
    const auto loaded = load_repro(path.string());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->points, repro.points);
    std::filesystem::remove(path);
}

TEST(Serialize, ReproCaseRejectsMalformedJson) {
    EXPECT_FALSE(repro_from_json("").has_value());
    EXPECT_FALSE(repro_from_json("{}").has_value());
    EXPECT_FALSE(repro_from_json("{\"seed\":1,\"mode\":\"m\"}").has_value());
    EXPECT_FALSE(
        repro_from_json(
            "{\"seed\":1,\"mode\":\"m\",\"radius\":2,\"failed_check\":\"c\","
            "\"points\":[[1]]}")
            .has_value());  // Truncated coordinate pair.
    EXPECT_TRUE(
        repro_from_json(
            "{\"seed\":1,\"mode\":\"m\",\"radius\":2,\"failed_check\":\"c\","
            "\"points\":[[1,2],[3,4]]}")
            .has_value());
}

TEST(Serialize, DotOutput) {
    const std::string dot = to_dot(tiny_graph(), "demo");
    EXPECT_NE(dot.find("graph demo {"), std::string::npos);
    EXPECT_NE(dot.find("n0 [pos=\"0,0!\"]"), std::string::npos);
    EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
    EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
}

TEST(Table, CsvOutput) {
    Table t({"name", "note"});
    t.begin_row().cell(std::string("plain")).cell(3.5, 1);
    t.begin_row().cell(std::string("has,comma")).cell(std::string("say \"hi\""));
    const std::string csv = t.csv();
    EXPECT_EQ(csv,
              "name,note\n"
              "plain,3.5\n"
              "\"has,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, MaybeWriteCsvHonorsEnvVar) {
    Table t({"a"});
    t.begin_row().cell(std::size_t{1});
    ::unsetenv("GS_BENCH_CSV_DIR");
    EXPECT_FALSE(maybe_write_csv("gs_test_table", t));
    const auto dir = std::filesystem::temp_directory_path() / "gs_csv_test";
    ::setenv("GS_BENCH_CSV_DIR", dir.c_str(), 1);
    EXPECT_TRUE(maybe_write_csv("gs_test_table", t));
    std::ifstream in(dir / "gs_test_table.csv");
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "a");
    ::unsetenv("GS_BENCH_CSV_DIR");
    std::filesystem::remove_all(dir);
}

TEST(Report, MeasureSpanningTopology) {
    const auto udg = geospanner::test::connected_udg(30, 100.0, 40.0, 5);
    ASSERT_GT(udg.node_count(), 0u);
    const auto report = core::measure_topology("UDG", udg, udg, true);
    EXPECT_EQ(report.name, "UDG");
    EXPECT_TRUE(report.has_stretch);
    EXPECT_DOUBLE_EQ(report.length.max, 1.0);
    EXPECT_EQ(report.edges, udg.edge_count());
}

TEST(Report, AggregationRules) {
    core::TopologyReport a;
    a.name = "X";
    a.has_stretch = true;
    a.degree = {10, 4.0};
    a.length = {1.2, 2.0, 10, 0};
    a.hops = {1.1, 3.0, 10, 0};
    a.edges = 100;
    core::TopologyReport b = a;
    b.degree = {6, 2.0};
    b.length = {1.4, 5.0, 10, 0};
    b.hops = {1.3, 2.0, 10, 0};
    b.edges = 200;
    const auto agg = core::aggregate_reports({a, b});
    EXPECT_EQ(agg.degree.max, 10u);       // Max of maxima.
    EXPECT_DOUBLE_EQ(agg.degree.avg, 3.0);  // Mean of averages.
    EXPECT_DOUBLE_EQ(agg.length.max, 5.0);
    EXPECT_DOUBLE_EQ(agg.length.avg, 1.3);
    EXPECT_DOUBLE_EQ(agg.hops.max, 3.0);
    EXPECT_EQ(agg.edges, 150u);
}

}  // namespace
}  // namespace geospanner::io
