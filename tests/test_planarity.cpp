// Geometric planarity detection.
#include "graph/planarity.h"

#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "proximity/classic.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::graph {
namespace {

TEST(Planarity, DetectsSingleCrossing) {
    GeometricGraph g({{0, 0}, {2, 2}, {0, 2}, {2, 0}});
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const auto crossings = crossing_edge_pairs(g);
    ASSERT_EQ(crossings.size(), 1u);
    EXPECT_FALSE(is_plane_embedding(g));
    g.remove_edge(2, 3);
    EXPECT_TRUE(is_plane_embedding(g));
}

TEST(Planarity, SharedEndpointIsNotACrossing) {
    GeometricGraph g({{0, 0}, {2, 0}, {1, 1}});
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    EXPECT_TRUE(is_plane_embedding(g));
}

TEST(Planarity, TJunctionTouchIsNotProper) {
    // Edge endpoint lying in the interior of another edge does not count
    // as a proper crossing (consistent with the predicate's definition).
    GeometricGraph g({{0, 0}, {2, 0}, {1, 0}, {1, 2}});
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_TRUE(is_plane_embedding(g));
}

TEST(Planarity, CountsAllCrossings) {
    // K4 drawn with both diagonals crossing at the center... K4 on a
    // square has exactly one crossing pair (the two diagonals).
    GeometricGraph g({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
    }
    const auto crossings = crossing_edge_pairs(g);
    ASSERT_EQ(crossings.size(), 1u);
    const auto& [e1, e2] = crossings[0];
    EXPECT_EQ(e1, (std::pair<NodeId, NodeId>{0, 2}));
    EXPECT_EQ(e2, (std::pair<NodeId, NodeId>{1, 3}));
}

TEST(Planarity, LimitShortCircuits) {
    // Dense random UDG has many crossings; limit=1 returns exactly one.
    const auto udg = test::connected_udg(40, 100.0, 50.0, 3);
    ASSERT_GT(udg.node_count(), 0u);
    EXPECT_EQ(crossing_edge_pairs(udg, 1).size(), 1u);
}

TEST(Planarity, GabrielAndRngArePlanar) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const auto udg = test::connected_udg(60, 200.0, 55.0, seed);
        ASSERT_GT(udg.node_count(), 0u);
        EXPECT_TRUE(is_plane_embedding(proximity::build_gabriel(udg)));
        EXPECT_TRUE(is_plane_embedding(proximity::build_rng(udg)));
        EXPECT_TRUE(is_plane_embedding(proximity::build_udel(udg)));
    }
}

TEST(Planarity, BruteForceAgreement) {
    // The grid-accelerated scan must agree with the naive quadratic scan.
    const auto udg = test::connected_udg(30, 100.0, 45.0, 9);
    ASSERT_GT(udg.node_count(), 0u);
    const auto edges = udg.edges();
    std::size_t naive = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        for (std::size_t j = i + 1; j < edges.size(); ++j) {
            const auto [u1, v1] = edges[i];
            const auto [u2, v2] = edges[j];
            if (u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2) continue;
            if (geom::segments_properly_cross(udg.point(u1), udg.point(v1), udg.point(u2),
                                              udg.point(v2))) {
                ++naive;
            }
        }
    }
    EXPECT_EQ(crossing_edge_pairs(udg).size(), naive);
}

}  // namespace
}  // namespace geospanner::graph
