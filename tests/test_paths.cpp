// Shortest-path oracles: BFS hops, Dijkstra lengths/powers, explicit
// paths, connectivity — validated against Floyd-Warshall on random UDGs.
#include "graph/shortest_paths.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::graph {
namespace {

GeometricGraph path_graph() {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {10, 10}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    return g;  // Node 4 is isolated.
}

TEST(Bfs, HopsAndUnreachable) {
    const auto d = bfs_hops(path_graph(), 0);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[3], 3);
    EXPECT_EQ(d[4], kUnreachableHops);
}

TEST(Dijkstra, LengthsAndUnreachable) {
    const auto d = dijkstra_lengths(path_graph(), 0);
    EXPECT_DOUBLE_EQ(d[3], 3.0);
    EXPECT_EQ(d[4], kUnreachableLength);
}

TEST(Dijkstra, PowerCosts) {
    // Power model with beta=2: a path of unit edges costs its hop count,
    // while one long edge costs the square.
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    const auto d = dijkstra_powers(g, 0, 2.0);
    EXPECT_DOUBLE_EQ(d[2], 2.0);  // Two unit hops beat one edge of cost 4.
}

TEST(Paths, ExplicitExtraction) {
    const GeometricGraph g = path_graph();
    const auto hop_path = shortest_hop_path(g, 0, 3);
    EXPECT_EQ(hop_path, (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(shortest_hop_path(g, 0, 4), std::vector<NodeId>{});
    EXPECT_EQ(shortest_hop_path(g, 2, 2), std::vector<NodeId>{2});
    const auto len_path = shortest_length_path(g, 3, 0);
    EXPECT_EQ(len_path, (std::vector<NodeId>{3, 2, 1, 0}));
}

TEST(Paths, LengthAndHopPathsCanDiffer) {
    // A direct edge always wins on length (triangle inequality), so the
    // interesting case is two competing 2-hop detours: hop-count ties,
    // length prefers the flatter one.
    GeometricGraph g({{0, 0}, {10, 0}, {5, 4}, {5, 0.1}});
    g.add_edge(0, 2);
    g.add_edge(2, 1);
    g.add_edge(0, 3);
    g.add_edge(3, 1);
    EXPECT_EQ(shortest_length_path(g, 0, 1), (std::vector<NodeId>{0, 3, 1}));
    // And a direct edge, once present, wins both metrics.
    g.add_edge(0, 1);
    EXPECT_EQ(shortest_hop_path(g, 0, 1), (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(shortest_length_path(g, 0, 1), (std::vector<NodeId>{0, 1}));
}

TEST(Connectivity, Basics) {
    EXPECT_FALSE(is_connected(path_graph()));
    GeometricGraph g({{0, 0}, {1, 0}});
    EXPECT_FALSE(is_connected(g));
    g.add_edge(0, 1);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_connected(GeometricGraph{}));
}

TEST(Connectivity, OnSubset) {
    const GeometricGraph g = path_graph();
    EXPECT_TRUE(is_connected_on(g, {true, true, true, true, false}));
    EXPECT_FALSE(is_connected_on(g, {true, true, true, true, true}));
    // Subset {0, 2} is not connected within itself (1 excluded).
    EXPECT_FALSE(is_connected_on(g, {true, false, true, false, false}));
    EXPECT_TRUE(is_connected_on(g, {false, false, false, false, false}));
    EXPECT_TRUE(is_connected_on(g, {false, false, false, false, true}));
}

class PathsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathsRandom, MatchesFloydWarshall) {
    const auto udg = proximity::build_udg(test::random_points(40, 100.0, GetParam()), 30.0);
    const auto n = udg.node_count();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
    std::vector<std::vector<int>> hops(n, std::vector<int>(n, 1 << 20));
    for (NodeId v = 0; v < n; ++v) {
        dist[v][v] = 0.0;
        hops[v][v] = 0;
    }
    for (const auto& [u, v] : udg.edges()) {
        dist[u][v] = dist[v][u] = udg.edge_length(u, v);
        hops[u][v] = hops[v][u] = 1;
    }
    for (NodeId k = 0; k < n; ++k) {
        for (NodeId i = 0; i < n; ++i) {
            for (NodeId j = 0; j < n; ++j) {
                dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
                hops[i][j] = std::min(hops[i][j], hops[i][k] + hops[k][j]);
            }
        }
    }
    for (NodeId s = 0; s < n; ++s) {
        const auto d = dijkstra_lengths(udg, s);
        const auto h = bfs_hops(udg, s);
        for (NodeId t = 0; t < n; ++t) {
            if (dist[s][t] == kInf) {
                EXPECT_EQ(d[t], kUnreachableLength);
                EXPECT_EQ(h[t], kUnreachableHops);
            } else {
                EXPECT_NEAR(d[t], dist[s][t], 1e-9);
                EXPECT_EQ(h[t], hops[s][t]);
            }
        }
    }
}

TEST_P(PathsRandom, ExplicitPathsAreConsistent) {
    const auto udg = test::connected_udg(50, 200.0, 60.0, GetParam());
    ASSERT_GT(udg.node_count(), 0u);
    const auto hops0 = bfs_hops(udg, 0);
    const auto len0 = dijkstra_lengths(udg, 0);
    for (NodeId t = 0; t < udg.node_count(); ++t) {
        const auto hp = shortest_hop_path(udg, 0, t);
        ASSERT_FALSE(hp.empty());
        EXPECT_EQ(static_cast<int>(hp.size()) - 1, hops0[t]);
        for (std::size_t i = 0; i + 1 < hp.size(); ++i) {
            EXPECT_TRUE(udg.has_edge(hp[i], hp[i + 1]));
        }
        const auto lp = shortest_length_path(udg, 0, t);
        double total = 0.0;
        for (std::size_t i = 0; i + 1 < lp.size(); ++i) {
            ASSERT_TRUE(udg.has_edge(lp[i], lp[i + 1]));
            total += udg.edge_length(lp[i], lp[i + 1]);
        }
        EXPECT_NEAR(total, len0[t], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathsRandom, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace geospanner::graph
