// Deterministic RNG: reproducibility, ranges, uniformity sanity.
#include "random/rng.h"

#include <gtest/gtest.h>
#include <set>

namespace geospanner::rnd {
namespace {

TEST(Rng, DeterministicForSeed) {
    Xoshiro256 a(123);
    Xoshiro256 b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, Uniform01Range) {
    Xoshiro256 rng(7);
    double lo = 1.0;
    double hi = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.uniform01();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_LT(lo, 0.01);  // Covers the range.
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntervalAndMean) {
    Xoshiro256 rng(9);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double x = rng.uniform(10.0, 20.0);
        ASSERT_GE(x, 10.0);
        ASSERT_LT(x, 20.0);
        sum += x;
    }
    EXPECT_NEAR(sum / kDraws, 15.0, 0.05);
}

TEST(Rng, BelowIsInRangeAndHitsAll) {
    Xoshiro256 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.below(7);
        ASSERT_LT(x, 7u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, SplitmixExpandsDistinctStates) {
    std::uint64_t s = 42;
    const auto a = splitmix64(s);
    const auto b = splitmix64(s);
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace geospanner::rnd
