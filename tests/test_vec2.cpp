// Vector/point arithmetic and angle helpers.
#include "geom/vec2.h"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>
#include <sstream>

#include "geom/circle.h"

namespace geospanner::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, Arithmetic) {
    const Vec2 a{1, 2};
    const Vec2 b{3, -1};
    EXPECT_EQ(a + b, (Vec2{4, 1}));
    EXPECT_EQ(a - b, (Vec2{-2, 3}));
    EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
    EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
    EXPECT_EQ(a / 2.0, (Vec2{0.5, 1}));
    Vec2 c = a;
    c += b;
    EXPECT_EQ(c, a + b);
    c -= b;
    EXPECT_EQ(c, a);
}

TEST(Vec2, DotCrossNorm) {
    EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
    EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
    EXPECT_DOUBLE_EQ(squared_norm({3, 4}), 25.0);
    EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(distance({1, 1}, {4, 5}), 5.0);
    EXPECT_DOUBLE_EQ(squared_distance({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, MidpointAndOrdering) {
    EXPECT_EQ(midpoint({0, 0}, {2, 4}), (Point{1, 2}));
    EXPECT_LT((Vec2{1, 5}), (Vec2{2, 0}));
    EXPECT_LT((Vec2{1, 0}), (Vec2{1, 5}));
}

TEST(Vec2, Angles) {
    EXPECT_DOUBLE_EQ(angle_of({1, 0}), 0.0);
    EXPECT_DOUBLE_EQ(angle_of({0, 1}), kPi / 2);
    EXPECT_DOUBLE_EQ(angle_of({-1, 0}), kPi);
    EXPECT_NEAR(angle_at({0, 0}, {1, 0}, {0, 1}), kPi / 2, 1e-12);
    EXPECT_NEAR(angle_at({0, 0}, {1, 0}, {1, 1}), kPi / 4, 1e-12);
    // angle_at is symmetric in the two rays.
    EXPECT_DOUBLE_EQ(angle_at({1, 1}, {2, 1}, {1, 3}), angle_at({1, 1}, {1, 3}, {2, 1}));
}

TEST(Vec2, StreamOutput) {
    std::ostringstream out;
    out << Vec2{1.5, -2};
    EXPECT_EQ(out.str(), "(1.5, -2)");
}

TEST(Circle, Circumcircle) {
    const auto c = circumcircle({0, 0}, {2, 0}, {0, 2});
    ASSERT_TRUE(c.has_value());
    EXPECT_NEAR(c->center.x, 1.0, 1e-12);
    EXPECT_NEAR(c->center.y, 1.0, 1e-12);
    EXPECT_NEAR(c->radius, std::sqrt(2.0), 1e-12);
    EXPECT_FALSE(circumcircle({0, 0}, {1, 1}, {2, 2}).has_value());
}

TEST(Circle, Diametral) {
    const Circle c = diametral_circle({0, 0}, {4, 0});
    EXPECT_EQ(c.center, (Point{2, 0}));
    EXPECT_DOUBLE_EQ(c.radius, 2.0);
}

}  // namespace
}  // namespace geospanner::geom
