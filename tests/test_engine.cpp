// Engine subsystem: thread pool semantics, and the determinism contract
// — the staged parallel pipeline at 1, 2, and 8 threads is edge-for-edge
// identical to the sequential centralized path across seeds and
// workload shapes.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/batch.h"
#include "engine/thread_pool.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::engine {
namespace {

using graph::GeometricGraph;

// ---- ThreadPool ------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (const std::size_t threads : {1u, 2u, 5u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.thread_count(), threads);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, NonZeroBeginAndEmptyRange) {
    ThreadPool pool(3);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
    pool.parallel_for(7, 7, [&](std::size_t) { FAIL() << "empty range ran a body"; });
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
    ThreadPool pool(4);
    std::size_t total = 0;
    for (int round = 0; round < 50; ++round) {
        std::vector<std::size_t> out(64, 0);
        pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = i; });
        total += std::accumulate(out.begin(), out.end(), std::size_t{0});
    }
    EXPECT_EQ(total, 50u * (63u * 64u / 2u));
}

TEST(ThreadPool, NestedCallsRunInline) {
    ThreadPool pool(4);
    std::vector<std::size_t> sums(8, 0);
    pool.parallel_for(0, sums.size(), [&](std::size_t i) {
        EXPECT_TRUE(ThreadPool::on_worker_thread());
        pool.parallel_for(0, 10, [&](std::size_t j) { sums[i] += j; });
    });
    for (const std::size_t s : sums) EXPECT_EQ(s, 45u);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [&](std::size_t i) {
                                       if (i == 37) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

// ---- Determinism contract --------------------------------------------

enum class Shape { kUniform, kClustered, kGrid };

std::vector<geom::Point> make_points(Shape shape, const core::WorkloadConfig& config) {
    switch (shape) {
        case Shape::kUniform:
            return core::uniform_points(config);
        case Shape::kClustered:
            return core::clustered_points(config, 4);
        case Shape::kGrid:
            return core::grid_points(config, 0.25);
    }
    return {};
}

void expect_backbones_equal(const core::Backbone& expected, const core::Backbone& got) {
    EXPECT_EQ(expected.cluster.role, got.cluster.role);
    EXPECT_EQ(expected.cluster.dominators_of, got.cluster.dominators_of);
    EXPECT_EQ(expected.is_connector, got.is_connector);
    EXPECT_EQ(expected.in_backbone, got.in_backbone);
    EXPECT_EQ(expected.cds, got.cds);
    EXPECT_EQ(expected.cds_prime, got.cds_prime);
    EXPECT_EQ(expected.icds, got.icds);
    EXPECT_EQ(expected.icds_prime, got.icds_prime);
    EXPECT_EQ(expected.ldel_triangles, got.ldel_triangles);
    EXPECT_EQ(expected.ldel_icds, got.ldel_icds);
    EXPECT_EQ(expected.ldel_icds_prime, got.ldel_icds_prime);
}

class EngineDeterminism : public ::testing::TestWithParam<std::tuple<Shape, std::uint64_t>> {};

TEST_P(EngineDeterminism, MatchesSequentialPathAtEveryThreadCount) {
    const auto [shape, seed] = GetParam();
    core::WorkloadConfig config;
    config.node_count = 70;
    config.side = 220.0;
    config.radius = 55.0;
    config.seed = seed;
    const auto points = make_points(shape, config);

    const GeometricGraph udg = proximity::build_udg(points, config.radius);
    const core::Backbone expected =
        core::build_backbone(udg, {core::Engine::kCentralized});

    for (const std::size_t threads : {1u, 2u, 8u}) {
        SpannerEngine engine({.threads = threads});
        core::PipelineStats stats;
        BuildResult result = engine.build(points, config.radius);
        EXPECT_EQ(result.udg, udg) << "threads=" << threads;
        expect_backbones_equal(expected, result.backbone);
        EXPECT_TRUE(result.audit.stages.empty()) << "audit trail without opt-in";

        // Same through the UDG-skipping entry point.
        const core::Backbone direct = engine.build_backbone(udg, &stats);
        expect_backbones_equal(expected, direct);

        // Audits are read-only: with them enabled, output stays
        // edge-identical to the audits-off build at the same thread
        // count, and the trail itself passes.
        EngineOptions audited;
        audited.threads = threads;
        audited.audit = true;
        audited.audit_options.radius = config.radius;
        SpannerEngine audited_engine(audited);
        const BuildResult audited_result =
            audited_engine.build(points, config.radius);
        EXPECT_EQ(audited_result.udg, udg) << "threads=" << threads;
        expect_backbones_equal(expected, audited_result.backbone);
        EXPECT_TRUE(audited_result.audit.pass()) << audited_result.audit.summary();
        std::vector<std::string> stages;
        for (const auto& s : audited_result.audit.stages) stages.push_back(s.stage);
        EXPECT_EQ(stages, (std::vector<std::string>{"clustering", "connectors",
                                                    "icds", "ldel"}));
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, EngineDeterminism,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kClustered,
                                         Shape::kGrid),
                       ::testing::Values(11ULL, 29ULL, 53ULL)));

TEST(Engine, Ldel2PlanarizerMatchesSequentialPath) {
    const GeometricGraph udg = test::connected_udg(60, 200.0, 55.0, 17);
    ASSERT_GT(udg.node_count(), 0u);
    const core::Backbone expected = core::build_backbone(
        udg, {core::Engine::kCentralized, protocol::ClusterPolicy::kLowestId,
              core::Planarizer::kLdel2});
    SpannerEngine engine({.threads = 4, .planarizer = core::Planarizer::kLdel2});
    expect_backbones_equal(expected, engine.build_backbone(udg));
}

TEST(Engine, HighestDegreePolicyMatchesSequentialPath) {
    const GeometricGraph udg = test::connected_udg(60, 200.0, 55.0, 23);
    ASSERT_GT(udg.node_count(), 0u);
    const core::Backbone expected = core::build_backbone(
        udg, {core::Engine::kCentralized, protocol::ClusterPolicy::kHighestDegree});
    SpannerEngine engine(
        {.threads = 4, .cluster_policy = protocol::ClusterPolicy::kHighestDegree});
    expect_backbones_equal(expected, engine.build_backbone(udg));
}

// ---- StageStats ------------------------------------------------------

TEST(Engine, RecordsOneStatsEntryPerStage) {
    core::WorkloadConfig config;
    config.node_count = 80;
    config.seed = 3;
    SpannerEngine engine({.threads = 2});
    const BuildResult result =
        engine.build(core::uniform_points(config), config.radius);

    std::vector<std::string> names;
    for (const auto& s : result.stats.stages) names.push_back(s.name);
    EXPECT_EQ(names, (std::vector<std::string>{"grid", "udg", "clustering",
                                               "connectors", "icds", "ldel",
                                               "planarize", "assemble"}));
    for (const auto& s : result.stats.stages) {
        EXPECT_GE(s.wall_ms, 0.0) << s.name;
        EXPECT_GE(s.threads, 1u) << s.name;
        EXPECT_LE(s.threads, 2u) << s.name;
    }
    EXPECT_EQ(result.stats.stages.front().items, config.node_count);
    EXPECT_GE(result.stats.total_ms(), 0.0);
    EXPECT_NE(result.stats.table().find("planarize"), std::string::npos);
    EXPECT_NE(result.stats.json().find("\"name\":\"udg\""), std::string::npos);
}

// ---- Batch API -------------------------------------------------------

TEST(Batch, MatchesStandaloneBuildsInInputOrder) {
    std::vector<core::WorkloadConfig> configs;
    for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL, 8ULL}) {
        core::WorkloadConfig config;
        config.node_count = 50 + 10 * (seed % 3);
        config.side = 200.0;
        config.radius = 55.0;
        config.seed = seed;
        configs.push_back(config);
    }
    SpannerEngine engine({.threads = 4});
    const auto results = build_batch(engine, configs);
    ASSERT_EQ(results.size(), configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto udg = core::random_connected_udg(configs[i]);
        ASSERT_TRUE(udg.has_value());
        ASSERT_TRUE(results[i].udg.has_value());
        EXPECT_EQ(*results[i].udg, *udg);
        const core::Backbone expected =
            core::build_backbone(*udg, {core::Engine::kCentralized});
        expect_backbones_equal(expected, results[i].backbone);
        EXPECT_FALSE(results[i].stats.stages.empty());
    }
}

TEST(Batch, ExhaustedBudgetYieldsNullopt) {
    core::WorkloadConfig hopeless;
    hopeless.node_count = 40;
    hopeless.side = 10000.0;
    hopeless.radius = 1.0;
    hopeless.max_attempts = 3;
    core::WorkloadConfig fine;
    fine.node_count = 40;
    fine.side = 150.0;
    fine.radius = 55.0;
    fine.seed = 9;

    SpannerEngine engine({.threads = 2});
    const auto results = build_batch(engine, {hopeless, fine});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].udg.has_value());
    EXPECT_TRUE(results[1].udg.has_value());
}

}  // namespace
}  // namespace geospanner::engine
