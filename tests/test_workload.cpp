// Workload generators (core/workload.cpp): seed determinism, deployment
// bounds, and the connectivity rejection budget.
#include "core/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/shortest_paths.h"
#include "random/rng.h"

namespace geospanner::core {
namespace {

WorkloadConfig base_config(std::uint64_t seed) {
    WorkloadConfig config;
    config.node_count = 120;
    config.side = 300.0;
    config.radius = 60.0;
    config.seed = seed;
    return config;
}

void expect_inside_square(const std::vector<geom::Point>& pts, double side) {
    for (const auto& p : pts) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, side);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, side);
    }
}

class WorkloadSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSeeds, SameSeedSamePointsEveryGenerator) {
    const WorkloadConfig config = base_config(GetParam());
    EXPECT_EQ(uniform_points(config), uniform_points(config));
    EXPECT_EQ(clustered_points(config, 5), clustered_points(config, 5));
    EXPECT_EQ(grid_points(config, 0.3), grid_points(config, 0.3));
}

TEST_P(WorkloadSeeds, DifferentSeedDifferentPoints) {
    const WorkloadConfig a = base_config(GetParam());
    WorkloadConfig b = a;
    b.seed = a.seed + 1000;
    EXPECT_NE(uniform_points(a), uniform_points(b));
    EXPECT_NE(clustered_points(a, 5), clustered_points(b, 5));
    EXPECT_NE(grid_points(a, 0.3), grid_points(b, 0.3));
}

TEST_P(WorkloadSeeds, AllGeneratorsStayInsideTheSquare) {
    const WorkloadConfig config = base_config(GetParam());
    expect_inside_square(uniform_points(config), config.side);
    // Gaussian blobs are clamped to the square even when a center sits
    // on the boundary.
    expect_inside_square(clustered_points(config, 3), config.side);
    expect_inside_square(clustered_points(config, 12), config.side);
    // Grid jitter of a full spacing still cannot escape: the outermost
    // grid line sits one spacing inside the boundary.
    expect_inside_square(grid_points(config, 0.5), config.side);
    expect_inside_square(grid_points(config, 1.0), config.side);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeeds, ::testing::Values(1, 7, 42, 1234567));

TEST(Workload, GeneratorsProduceExactlyNodeCountPoints) {
    WorkloadConfig config = base_config(2);
    for (const std::size_t n : {1u, 17u, 100u}) {
        config.node_count = n;
        EXPECT_EQ(uniform_points(config).size(), n);
        EXPECT_EQ(clustered_points(config, 4).size(), n);
        EXPECT_EQ(grid_points(config, 0.1).size(), n);
    }
}

TEST(Workload, ClusteredPointsConcentrateAroundFewCenters) {
    // With one cluster, every point lies within a few sigma of one
    // center — far tighter than a uniform spread.
    WorkloadConfig config = base_config(8);
    config.radius = 15.0;  // sigma = radius / 3 = 5, far below side = 300.
    const auto pts = clustered_points(config, 1);
    double min_x = config.side, max_x = 0.0;
    for (const auto& p : pts) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
    }
    // The Box-Muller radius is capped at sigma * sqrt(-2 ln 2^-53) ≈
    // 8.6 sigma, so the spread can never reach 18 sigma — yet a uniform
    // spread over the square would exceed it almost surely.
    EXPECT_LE(max_x - min_x, 18.0 * config.radius / 3.0);
}

TEST(Workload, ConnectedInstanceIsConnectedAndDeterministic) {
    WorkloadConfig config = base_config(5);
    config.node_count = 60;
    config.side = 200.0;
    config.radius = 50.0;
    const auto udg = random_connected_udg(config);
    ASSERT_TRUE(udg.has_value());
    EXPECT_TRUE(graph::is_connected(*udg));
    EXPECT_EQ(udg->node_count(), 60u);
    // The rejection loop mutates only its local copy of the config, so
    // a rerun reproduces the same instance.
    const auto again = random_connected_udg(config);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*udg, *again);
}

TEST(Workload, ExhaustedAttemptBudgetReturnsNullopt) {
    WorkloadConfig config;
    config.node_count = 100;
    config.side = 10000.0;
    config.radius = 1.0;  // Hopeless density.
    config.max_attempts = 5;
    EXPECT_FALSE(random_connected_udg(config).has_value());
    config.max_attempts = 0;  // No attempts allowed at all.
    EXPECT_FALSE(random_connected_udg(config).has_value());
}

}  // namespace
}  // namespace geospanner::core
