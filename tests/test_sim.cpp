// Round-based radio network simulator semantics.
#include "sim/network.h"

#include <gtest/gtest.h>
#include <string>
#include <variant>

namespace geospanner::sim {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

struct Ping {
    int value = 0;
};
struct Text {
    std::string body;
};
using Payload = std::variant<Ping, Text>;
using Net = Network<Payload>;

GeometricGraph triangle_plus_leaf() {
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {5, 5}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    return g;
}

TEST(Network, BroadcastReachesExactlyNeighbors) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    net.broadcast(0, Ping{42});
    EXPECT_TRUE(net.advance());
    EXPECT_EQ(net.inbox(1).size(), 1u);
    EXPECT_EQ(net.inbox(2).size(), 1u);
    EXPECT_TRUE(net.inbox(0).empty());  // No self-delivery.
    EXPECT_TRUE(net.inbox(3).empty());  // Not a neighbor of 0.
    EXPECT_EQ(net.inbox(1)[0].from, 0u);
    EXPECT_EQ(std::get<Ping>(net.inbox(1)[0].payload).value, 42);
}

TEST(Network, DeliveryIsNextRoundOnly) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    net.broadcast(0, Ping{1});
    net.advance();
    EXPECT_EQ(net.inbox(1).size(), 1u);
    EXPECT_FALSE(net.advance());  // Nothing queued: quiescent.
    EXPECT_TRUE(net.inbox(1).empty());  // Old inbox cleared.
}

TEST(Network, InboxSortedBySender) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    net.broadcast(2, Ping{2});
    net.broadcast(0, Ping{0});
    net.broadcast(1, Ping{1});
    net.advance();
    // Node 2 hears 0, 1, 3? (3 sent nothing) -> senders 0 then 1.
    ASSERT_EQ(net.inbox(2).size(), 2u);
    EXPECT_EQ(net.inbox(2)[0].from, 0u);
    EXPECT_EQ(net.inbox(2)[1].from, 1u);
}

TEST(Network, MultipleMessagesPerRoundKeepOrder) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    net.broadcast(0, Ping{1});
    net.broadcast(0, Text{"two"});
    net.advance();
    ASSERT_EQ(net.inbox(1).size(), 2u);
    EXPECT_TRUE(std::holds_alternative<Ping>(net.inbox(1)[0].payload));
    EXPECT_TRUE(std::holds_alternative<Text>(net.inbox(1)[1].payload));
}

TEST(Network, CountersPerNodeAndType) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    net.broadcast(0, Ping{});
    net.broadcast(0, Ping{});
    net.broadcast(0, Text{"x"});
    net.broadcast(3, Text{"y"});
    net.advance();
    EXPECT_EQ(net.messages_sent(0), 3u);
    EXPECT_EQ(net.messages_sent(3), 1u);
    EXPECT_EQ(net.messages_sent(1), 0u);
    EXPECT_EQ(net.total_messages(), 4u);
    EXPECT_EQ(net.messages_sent_of_type(0, 0), 2u);  // Ping index 0.
    EXPECT_EQ(net.messages_sent_of_type(0, 1), 1u);  // Text index 1.
    EXPECT_EQ(net.per_node_sent(), (std::vector<std::size_t>{3, 0, 0, 1}));
}

TEST(Network, RoundsCount) {
    const GeometricGraph g = triangle_plus_leaf();
    Net net(g);
    EXPECT_EQ(net.rounds(), 0u);
    net.advance();
    net.advance();
    EXPECT_EQ(net.rounds(), 2u);
}

TEST(Network, FloodTerminatesInDiameterRounds) {
    // Simple flood protocol over a path: each node forwards the first
    // Ping it hears, once.
    GeometricGraph path({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) path.add_edge(v, v + 1);
    Net net(path);
    std::vector<bool> seen(5, false);
    seen[0] = true;
    net.broadcast(0, Ping{7});
    std::size_t rounds = 0;
    while (net.advance()) {
        ++rounds;
        for (NodeId v = 0; v < 5; ++v) {
            if (!net.inbox(v).empty() && !seen[v]) {
                seen[v] = true;
                net.broadcast(v, net.inbox(v)[0].payload);
            }
        }
    }
    EXPECT_TRUE(seen[4]);
    EXPECT_EQ(rounds, 5u);  // 4 hops + final silent round.
    EXPECT_EQ(net.total_messages(), 5u);
}

}  // namespace
}  // namespace geospanner::sim
