// Randomized differential stress test: many random configurations
// (density, size, workload shape drawn from a seeded RNG) pushed through
// the full pipeline, checking the core invariants on each. Complements
// the fixed parameter sweeps with breadth.
#include <gtest/gtest.h>

#include "core/backbone.h"
#include "core/workload.h"
#include "graph/metrics.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"
#include "proximity/udg.h"
#include "random/rng.h"
#include "test_util.h"

namespace geospanner {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

/// Draws a random connected instance from a wide configuration space:
/// n in [10, 120], radius chosen relative to the connectivity threshold,
/// workload uniform / clustered / jittered-grid.
std::optional<GeometricGraph> random_instance(rnd::Xoshiro256& rng) {
    core::WorkloadConfig config;
    config.node_count = 10 + rng.below(111);
    config.side = 150.0 + rng.uniform01() * 150.0;
    config.seed = rng();
    // Radius: between sparse-but-connectable and dense.
    const double base = config.side / std::sqrt(static_cast<double>(config.node_count));
    config.radius = base * (1.4 + rng.uniform01() * 1.6);
    config.max_attempts = 50;

    const auto kind = rng.below(3);
    std::vector<geom::Point> pts;
    if (kind == 0) {
        auto udg = core::random_connected_udg(config);
        if (udg) return udg;
        return std::nullopt;
    }
    if (kind == 1) {
        pts = core::clustered_points(config, 2 + rng.below(4));
    } else {
        pts = core::grid_points(config, rng.uniform01() * 0.4);
    }
    auto udg = proximity::build_udg(std::move(pts), config.radius);
    if (!graph::is_connected(udg)) return std::nullopt;
    return udg;
}

TEST(Stress, PipelineInvariantsOverRandomConfigurations) {
    rnd::Xoshiro256 rng(20260706);
    std::size_t checked = 0;
    for (int attempt = 0; attempt < 120 && checked < 40; ++attempt) {
        const auto maybe_udg = random_instance(rng);
        if (!maybe_udg) continue;
        const GeometricGraph& udg = *maybe_udg;
        ++checked;

        const core::Backbone d = core::build_backbone(udg, {core::Engine::kDistributed});
        const core::Backbone c = core::build_backbone(udg, {core::Engine::kCentralized});
        ASSERT_EQ(d.ldel_icds_prime, c.ldel_icds_prime) << "engine mismatch";
        ASSERT_TRUE(graph::is_plane_embedding(d.ldel_icds)) << "non-planar backbone";
        ASSERT_TRUE(graph::is_connected(d.ldel_icds_prime)) << "not spanning";
        ASSERT_TRUE(graph::is_connected_on(d.cds, d.in_backbone)) << "CDS disconnected";

        // Lemma 5 on a sample of sources.
        for (NodeId s = 0; s < udg.node_count(); s += 7) {
            const auto base = graph::bfs_hops(udg, s);
            const auto topo = graph::bfs_hops(d.cds_prime, s);
            for (NodeId t = 0; t < udg.node_count(); ++t) {
                if (t == s) continue;
                ASSERT_NE(topo[t], graph::kUnreachableHops);
                ASSERT_LE(topo[t], 3 * base[t] + 2);
            }
        }
        // Message bound.
        for (NodeId v = 0; v < udg.node_count(); ++v) {
            ASSERT_LE(d.messages.after_ldel[v], 400u) << "node " << v;
        }
    }
    // The space is rejection-sampled; make sure we actually exercised it.
    EXPECT_GE(checked, 30u);
}

TEST(Stress, ProximityChainOverRandomConfigurations) {
    rnd::Xoshiro256 rng(777);
    std::size_t checked = 0;
    for (int attempt = 0; attempt < 80 && checked < 25; ++attempt) {
        const auto maybe_udg = random_instance(rng);
        if (!maybe_udg) continue;
        const GeometricGraph& udg = *maybe_udg;
        ++checked;

        const auto rng_graph = proximity::build_rng(udg);
        const auto gg = proximity::build_gabriel(udg);
        const auto pldel = proximity::build_pldel(udg);
        for (const auto& [u, v] : rng_graph.edges()) {
            ASSERT_TRUE(gg.has_edge(u, v));
        }
        for (const auto& [u, v] : gg.edges()) {
            ASSERT_TRUE(pldel.has_edge(u, v));
        }
        ASSERT_TRUE(graph::is_plane_embedding(pldel));
        ASSERT_TRUE(graph::is_connected(pldel));
        const auto stretch = graph::length_stretch(udg, pldel);
        ASSERT_EQ(stretch.disconnected_pairs, 0u);
        ASSERT_LT(stretch.max, 3.0);
    }
    EXPECT_GE(checked, 15u);
}

}  // namespace
}  // namespace geospanner
