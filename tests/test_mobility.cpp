// Random-waypoint mobility and epoch-driven backbone maintenance.
#include "mobility/maintenance.h"

#include <gtest/gtest.h>

#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "mobility/waypoint.h"
#include "test_util.h"

namespace geospanner::mobility {
namespace {

using graph::GeometricGraph;

TEST(Waypoint, StaysInsideRegion) {
    WaypointConfig config;
    config.side = 100.0;
    config.seed = 3;
    RandomWaypointModel model(test::random_points(30, 100.0, 1), config);
    for (int step = 0; step < 200; ++step) {
        model.advance(1.0);
        for (const auto& p : model.positions()) {
            ASSERT_GE(p.x, 0.0);
            ASSERT_LE(p.x, config.side);
            ASSERT_GE(p.y, 0.0);
            ASSERT_LE(p.y, config.side);
        }
    }
    EXPECT_DOUBLE_EQ(model.time(), 200.0);
}

TEST(Waypoint, SpeedBoundRespected) {
    WaypointConfig config;
    config.side = 100.0;
    config.min_speed = 0.5;
    config.max_speed = 2.0;
    config.pause = 0.0;
    config.seed = 7;
    RandomWaypointModel model(test::random_points(20, 100.0, 2), config);
    auto previous = model.positions();
    for (int step = 0; step < 100; ++step) {
        model.advance(1.0);
        for (std::size_t i = 0; i < previous.size(); ++i) {
            // In one unit of time a node moves at most max_speed (pauses
            // and waypoint switches only shorten the move).
            ASSERT_LE(geom::distance(previous[i], model.positions()[i]),
                      config.max_speed + 1e-9);
        }
        previous = model.positions();
    }
}

TEST(Waypoint, DeterministicForSeed) {
    WaypointConfig config;
    config.seed = 11;
    RandomWaypointModel a(test::random_points(10, 250.0, 4), config);
    RandomWaypointModel b(test::random_points(10, 250.0, 4), config);
    for (int step = 0; step < 50; ++step) {
        a.advance(0.7);
        b.advance(0.7);
    }
    EXPECT_EQ(a.positions(), b.positions());
}

TEST(Waypoint, PausesHoldNodesStill) {
    WaypointConfig config;
    config.side = 10.0;
    config.min_speed = config.max_speed = 1.0;
    config.pause = 1e9;  // Effectively permanent after first arrival.
    config.seed = 1;
    RandomWaypointModel model({{5, 5}}, config);
    // Move long enough to certainly arrive somewhere, then verify the
    // node no longer moves.
    model.advance(100.0);
    const auto frozen = model.positions();
    model.advance(100.0);
    EXPECT_EQ(model.positions(), frozen);
}

TEST(Maintenance, NoMovementMeansNoRebuilds) {
    const auto udg = test::connected_udg(50, 200.0, 60.0, 5);
    ASSERT_GT(udg.node_count(), 0u);
    MaintainedBackbone mb(udg.points(), 60.0, {core::Engine::kCentralized});
    for (int epoch = 0; epoch < 10; ++epoch) {
        EXPECT_FALSE(mb.update(udg.points()));
    }
    // Maintenance rebuilds only — the initial construction is not one.
    EXPECT_EQ(mb.stats().rebuilds, 0u);
    EXPECT_EQ(mb.stats().intact_epochs, 10u);
    EXPECT_EQ(mb.stats().longest_lifetime, 10u);
}

TEST(Maintenance, RebuildTriggersOnlyOnUsedLinkBreakage) {
    // Two clusters joined by one bridge link within the backbone: moving
    // an unused far-away dominatee slightly never triggers; stretching
    // the bridge past the radius does.
    const auto udg = test::connected_udg(40, 150.0, 55.0, 9);
    ASSERT_GT(udg.node_count(), 0u);
    MaintainedBackbone mb(udg.points(), 55.0, {core::Engine::kCentralized});
    auto points = udg.points();

    // Tiny jitter below any link slack: backbone must survive.
    auto jittered = points;
    for (auto& p : jittered) p.x += 1e-6;
    EXPECT_FALSE(mb.update(jittered));

    // Break a used link: take a backbone edge and move one endpoint far.
    const auto edges = mb.backbone().ldel_icds_prime.edges();
    ASSERT_FALSE(edges.empty());
    auto broken = points;
    broken[edges.front().first].x += 200.0;
    broken[edges.front().first].y += 200.0;
    const bool rebuilt = mb.update(broken);
    // Either the UDG got disconnected (skipped) or we rebuilt.
    EXPECT_TRUE(rebuilt || mb.stats().disconnected_epochs == 1u);
}

TEST(Maintenance, RebuiltBackboneIsValidAndPlanar) {
    WaypointConfig wp;
    wp.side = 200.0;
    wp.min_speed = 1.0;
    wp.max_speed = 4.0;
    wp.seed = 21;
    const auto udg = test::connected_udg(60, 200.0, 60.0, 13);
    ASSERT_GT(udg.node_count(), 0u);
    RandomWaypointModel model(udg.points(), wp);
    MaintainedBackbone mb(udg.points(), 60.0, {core::Engine::kCentralized});
    for (int epoch = 0; epoch < 60; ++epoch) {
        model.advance(1.0);
        const bool rebuilt = mb.update(model.positions());
        if (rebuilt) {
            // Fresh backbone: planar, spanning, valid for the current
            // positions by construction.
            EXPECT_TRUE(graph::is_plane_embedding(mb.backbone().ldel_icds));
            EXPECT_TRUE(graph::is_connected(mb.backbone().ldel_icds_prime));
            EXPECT_TRUE(mb.links_intact(model.positions()));
        }
    }
    EXPECT_EQ(mb.stats().epochs, 60u);
    // Every epoch is exactly one of intact / rebuilt / disconnected now
    // that rebuilds no longer counts the initial construction.
    EXPECT_EQ(mb.stats().intact_epochs + mb.stats().rebuilds +
                  mb.stats().disconnected_epochs,
              60u);
    EXPECT_EQ(mb.stats().rebuilds,
              mb.stats().incremental_patches + mb.stats().fallback_rebuilds);
}

}  // namespace
}  // namespace geospanner::mobility
