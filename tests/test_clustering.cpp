// Clustering protocol: MIS properties (with Lemmas 1 and 2), equality of
// the distributed protocol and the centralized reference, and the
// constant per-node message bound.
#include "protocol/clustering.h"

#include <gtest/gtest.h>

#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

bool states_equal(const ClusterState& a, const ClusterState& b) {
    return a.role == b.role && a.dominators_of == b.dominators_of &&
           a.two_hop_dominators_of == b.two_hop_dominators_of;
}

class ClusteringSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(ClusteringSweep, DistributedEqualsCentralized) {
    Net net(udg_);
    const ClusterState distributed = run_clustering(net, udg_);
    const ClusterState centralized = lowest_id_mis(udg_);
    EXPECT_TRUE(states_equal(distributed, centralized));
    // And the round-simulating reference agrees with both.
    EXPECT_TRUE(states_equal(cluster_reference(udg_, ClusterPolicy::kLowestId),
                             centralized));
}

TEST_P(ClusteringSweep, HighestDegreePolicyDistributedEqualsCentralized) {
    Net net(udg_);
    const ClusterState distributed =
        run_clustering(net, udg_, ClusterPolicy::kHighestDegree);
    const ClusterState centralized =
        cluster_reference(udg_, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(states_equal(distributed, centralized));
}

TEST_P(ClusteringSweep, HighestDegreePolicyYieldsValidMis) {
    // MIS validity plus the Lemma 1–2 packing bounds hold under the
    // alternative election criterion too — same shared certificate.
    const ClusterState s = cluster_reference(udg_, ClusterPolicy::kHighestDegree);
    const auto report = verify::check_dominator_packing(udg_, s);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(ClusteringSweep, Lemma12DominatorPackingCertificate) {
    // MIS validity (independence + domination), Lemma 1 (≤ 5 dominators
    // per dominatee), and Lemma 2 (≤ (2k+1)² dominators in any k·radius
    // disk) — all certified by the shared verify:: checker; a failure
    // names the offending node and its dominator set.
    const ClusterState s = lowest_id_mis(udg_);
    const auto report = verify::check_dominator_packing(udg_, s);
    EXPECT_TRUE(report.pass) << report.summary();
}

TEST_P(ClusteringSweep, TwoHopDominatorListsAreCorrect) {
    const ClusterState s = lowest_id_mis(udg_);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        for (const NodeId d : s.two_hop_dominators_of[v]) {
            EXPECT_TRUE(s.is_dominator(d));
            EXPECT_FALSE(udg_.has_edge(v, d));
            EXPECT_NE(v, d);
            // Exactly two hops: a common neighbor exists.
            bool common = false;
            for (const NodeId w : udg_.neighbors(v)) {
                if (udg_.has_edge(w, d)) {
                    common = true;
                    break;
                }
            }
            EXPECT_TRUE(common) << "two-hop dominator " << d << " of " << v;
        }
    }
}

TEST_P(ClusteringSweep, ConstantMessagesPerNode) {
    Net net(udg_);
    (void)run_clustering(net, udg_);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        // Hello + at most 1 IamDominator + at most 5 IamDominatee.
        EXPECT_LE(net.messages_sent(v), 7u) << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusteringSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(Clustering, LowestIdWinsOnPath) {
    // Path 3-1-2-0: parallel lowest-id MIS elects {0, 1}.
    GeometricGraph g({{2, 0}, {1, 0}, {3, 0}, {0, 0}});
    g.add_edge(3, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    const ClusterState s = lowest_id_mis(g);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_TRUE(s.is_dominator(1));
    EXPECT_FALSE(s.is_dominator(2));
    EXPECT_FALSE(s.is_dominator(3));
    Net net(g);
    EXPECT_TRUE(states_equal(run_clustering(net, g), s));
}

TEST(Clustering, SingletonAndIsolatedNodes) {
    GeometricGraph g({{0, 0}, {10, 10}});
    const ClusterState s = lowest_id_mis(g);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_TRUE(s.is_dominator(1));  // Isolated nodes dominate themselves.
    Net net(g);
    EXPECT_TRUE(states_equal(run_clustering(net, g), s));
}

TEST(Clustering, HighestDegreeElectsTheHub) {
    // Star: the center has degree 4 and wins under kHighestDegree even
    // though it has the largest id; under kLowestId the leaves win.
    GeometricGraph g({{1, 0}, {0, 1}, {-1, 0}, {0, -1}, {0, 0}});
    for (NodeId v = 0; v < 4; ++v) g.add_edge(4, v);
    const ClusterState by_degree = cluster_reference(g, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(by_degree.is_dominator(4));
    for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(by_degree.is_dominator(v));
    const ClusterState by_id = cluster_reference(g, ClusterPolicy::kLowestId);
    EXPECT_FALSE(by_id.is_dominator(4));
}

TEST(Clustering, HighestDegreeTieBreaksById) {
    // Two adjacent nodes of equal degree: the smaller id wins.
    GeometricGraph g({{0, 0}, {1, 0}});
    g.add_edge(0, 1);
    const ClusterState s = cluster_reference(g, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_FALSE(s.is_dominator(1));
}

TEST(Clustering, StarElectsCenterOrLeaf) {
    // Star with center id 4: leaves 0..3 all become dominators (no two
    // adjacent), center becomes dominatee of all of them... but leaves
    // are pairwise non-adjacent so the MIS is all leaves.
    GeometricGraph g({{1, 0}, {0, 1}, {-1, 0}, {0, -1}, {0, 0}});
    for (NodeId v = 0; v < 4; ++v) g.add_edge(4, v);
    const ClusterState s = lowest_id_mis(g);
    for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(s.is_dominator(v));
    EXPECT_FALSE(s.is_dominator(4));
    EXPECT_EQ(s.dominators_of[4].size(), 4u);
}

}  // namespace
}  // namespace geospanner::protocol
