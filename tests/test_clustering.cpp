// Clustering protocol: MIS properties (with Lemmas 1 and 2), equality of
// the distributed protocol and the centralized reference, and the
// constant per-node message bound.
#include "protocol/clustering.h"

#include <gtest/gtest.h>

#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

bool states_equal(const ClusterState& a, const ClusterState& b) {
    return a.role == b.role && a.dominators_of == b.dominators_of &&
           a.two_hop_dominators_of == b.two_hop_dominators_of;
}

class ClusteringSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(ClusteringSweep, DistributedEqualsCentralized) {
    Net net(udg_);
    const ClusterState distributed = run_clustering(net, udg_);
    const ClusterState centralized = lowest_id_mis(udg_);
    EXPECT_TRUE(states_equal(distributed, centralized));
    // And the round-simulating reference agrees with both.
    EXPECT_TRUE(states_equal(cluster_reference(udg_, ClusterPolicy::kLowestId),
                             centralized));
}

TEST_P(ClusteringSweep, HighestDegreePolicyDistributedEqualsCentralized) {
    Net net(udg_);
    const ClusterState distributed =
        run_clustering(net, udg_, ClusterPolicy::kHighestDegree);
    const ClusterState centralized =
        cluster_reference(udg_, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(states_equal(distributed, centralized));
}

TEST_P(ClusteringSweep, HighestDegreePolicyYieldsValidMis) {
    const ClusterState s = cluster_reference(udg_, ClusterPolicy::kHighestDegree);
    for (const auto& [u, v] : udg_.edges()) {
        EXPECT_FALSE(s.is_dominator(u) && s.is_dominator(v));
    }
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (!s.is_dominator(v)) {
            EXPECT_FALSE(s.dominators_of[v].empty());
            EXPECT_LE(s.dominators_of[v].size(), 5u);  // Lemma 1 holds regardless.
        }
    }
}

TEST_P(ClusteringSweep, DominatorsFormMaximalIndependentSet) {
    const ClusterState s = lowest_id_mis(udg_);
    for (const auto& [u, v] : udg_.edges()) {
        EXPECT_FALSE(s.is_dominator(u) && s.is_dominator(v))
            << "adjacent dominators " << u << ", " << v;
    }
    // Maximality == domination: every dominatee has a dominator neighbor.
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        if (s.is_dominator(v)) continue;
        EXPECT_FALSE(s.dominators_of[v].empty()) << "undominated node " << v;
        for (const NodeId d : s.dominators_of[v]) {
            EXPECT_TRUE(udg_.has_edge(v, d));
            EXPECT_TRUE(s.is_dominator(d));
        }
    }
}

TEST_P(ClusteringSweep, Lemma1AtMostFiveDominators) {
    const ClusterState s = lowest_id_mis(udg_);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        EXPECT_LE(s.dominators_of[v].size(), 5u) << "node " << v;
    }
}

TEST_P(ClusteringSweep, Lemma2BoundedDominatorsInKDisk) {
    // Dominators are pairwise > radius apart, so the disk of radius
    // k*radius around any node holds at most (2k+1)^2 of them (area
    // argument with half-radius disks). Check k = 1, 2.
    const ClusterState s = lowest_id_mis(udg_);
    const double radius = 1.0;  // Work in units of the UDG radius.
    // Recover the transmission radius from the longest edge.
    double rmax = 0.0;
    for (const auto& [u, v] : udg_.edges()) {
        rmax = std::max(rmax, udg_.edge_length(u, v));
    }
    (void)radius;
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        for (const int k : {1, 2}) {
            std::size_t count = 0;
            for (NodeId d = 0; d < udg_.node_count(); ++d) {
                if (!s.is_dominator(d)) continue;
                if (geom::distance(udg_.point(v), udg_.point(d)) <= k * rmax) ++count;
            }
            const auto bound = static_cast<std::size_t>((2 * k + 1) * (2 * k + 1));
            EXPECT_LE(count, bound) << "node " << v << " k=" << k;
        }
    }
}

TEST_P(ClusteringSweep, TwoHopDominatorListsAreCorrect) {
    const ClusterState s = lowest_id_mis(udg_);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        for (const NodeId d : s.two_hop_dominators_of[v]) {
            EXPECT_TRUE(s.is_dominator(d));
            EXPECT_FALSE(udg_.has_edge(v, d));
            EXPECT_NE(v, d);
            // Exactly two hops: a common neighbor exists.
            bool common = false;
            for (const NodeId w : udg_.neighbors(v)) {
                if (udg_.has_edge(w, d)) {
                    common = true;
                    break;
                }
            }
            EXPECT_TRUE(common) << "two-hop dominator " << d << " of " << v;
        }
    }
}

TEST_P(ClusteringSweep, ConstantMessagesPerNode) {
    Net net(udg_);
    (void)run_clustering(net, udg_);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        // Hello + at most 1 IamDominator + at most 5 IamDominatee.
        EXPECT_LE(net.messages_sent(v), 7u) << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusteringSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(Clustering, LowestIdWinsOnPath) {
    // Path 3-1-2-0: parallel lowest-id MIS elects {0, 1}.
    GeometricGraph g({{2, 0}, {1, 0}, {3, 0}, {0, 0}});
    g.add_edge(3, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    const ClusterState s = lowest_id_mis(g);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_TRUE(s.is_dominator(1));
    EXPECT_FALSE(s.is_dominator(2));
    EXPECT_FALSE(s.is_dominator(3));
    Net net(g);
    EXPECT_TRUE(states_equal(run_clustering(net, g), s));
}

TEST(Clustering, SingletonAndIsolatedNodes) {
    GeometricGraph g({{0, 0}, {10, 10}});
    const ClusterState s = lowest_id_mis(g);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_TRUE(s.is_dominator(1));  // Isolated nodes dominate themselves.
    Net net(g);
    EXPECT_TRUE(states_equal(run_clustering(net, g), s));
}

TEST(Clustering, HighestDegreeElectsTheHub) {
    // Star: the center has degree 4 and wins under kHighestDegree even
    // though it has the largest id; under kLowestId the leaves win.
    GeometricGraph g({{1, 0}, {0, 1}, {-1, 0}, {0, -1}, {0, 0}});
    for (NodeId v = 0; v < 4; ++v) g.add_edge(4, v);
    const ClusterState by_degree = cluster_reference(g, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(by_degree.is_dominator(4));
    for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(by_degree.is_dominator(v));
    const ClusterState by_id = cluster_reference(g, ClusterPolicy::kLowestId);
    EXPECT_FALSE(by_id.is_dominator(4));
}

TEST(Clustering, HighestDegreeTieBreaksById) {
    // Two adjacent nodes of equal degree: the smaller id wins.
    GeometricGraph g({{0, 0}, {1, 0}});
    g.add_edge(0, 1);
    const ClusterState s = cluster_reference(g, ClusterPolicy::kHighestDegree);
    EXPECT_TRUE(s.is_dominator(0));
    EXPECT_FALSE(s.is_dominator(1));
}

TEST(Clustering, StarElectsCenterOrLeaf) {
    // Star with center id 4: leaves 0..3 all become dominators (no two
    // adjacent), center becomes dominatee of all of them... but leaves
    // are pairwise non-adjacent so the MIS is all leaves.
    GeometricGraph g({{1, 0}, {0, 1}, {-1, 0}, {0, -1}, {0, 0}});
    for (NodeId v = 0; v < 4; ++v) g.add_edge(4, v);
    const ClusterState s = lowest_id_mis(g);
    for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(s.is_dominator(v));
    EXPECT_FALSE(s.is_dominator(4));
    EXPECT_EQ(s.dominators_of[4].size(), 4u);
}

}  // namespace
}  // namespace geospanner::protocol
