// Exact minimum (connected) dominating sets, and the empirical
// approximation quality of the elected backbone.
#include "protocol/mcds_exact.h"

#include <gtest/gtest.h>

#include "core/backbone.h"
#include "graph/shortest_paths.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

TEST(McdsExact, PathGraph) {
    // Path of 5: MDS = {1, 4} or similar (size 2); MCDS = the 3 interior
    // nodes.
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
    for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
    const auto mds = minimum_dominating_set(g);
    ASSERT_TRUE(mds.has_value());
    EXPECT_EQ(mds->size(), 2u);
    const auto mcds = minimum_connected_dominating_set(g);
    ASSERT_TRUE(mcds.has_value());
    EXPECT_EQ(*mcds, (std::vector<NodeId>{1, 2, 3}));
}

TEST(McdsExact, StarGraph) {
    GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}});
    for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
    const auto mcds = minimum_connected_dominating_set(g);
    ASSERT_TRUE(mcds.has_value());
    EXPECT_EQ(*mcds, std::vector<NodeId>{0});
    EXPECT_EQ(minimum_dominating_set(g)->size(), 1u);
}

TEST(McdsExact, CompleteGraphNeedsOneNode) {
    GeometricGraph g({{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}});
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
    }
    EXPECT_EQ(minimum_connected_dominating_set(g)->size(), 1u);
}

TEST(McdsExact, CycleGraph) {
    // Cycle of 6: MCDS has 4 nodes (a path covering all).
    GeometricGraph g({{1, 0}, {0.5, 0.87}, {-0.5, 0.87}, {-1, 0}, {-0.5, -0.87},
                      {0.5, -0.87}});
    for (NodeId v = 0; v < 6; ++v) g.add_edge(v, (v + 1) % 6);
    const auto mcds = minimum_connected_dominating_set(g);
    ASSERT_TRUE(mcds.has_value());
    EXPECT_EQ(mcds->size(), 4u);
    EXPECT_EQ(minimum_dominating_set(g)->size(), 2u);
}

TEST(McdsExact, RejectsOversizedInputs) {
    GeometricGraph g(std::vector<geom::Point>(25, geom::Point{0, 0}));
    EXPECT_FALSE(minimum_connected_dominating_set(g).has_value());
    EXPECT_FALSE(minimum_dominating_set(g).has_value());
}

TEST(McdsExact, SolutionIsValidOnRandomInstances) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
        const auto udg = test::connected_udg(12, 80.0, 40.0, seed);
        ASSERT_GT(udg.node_count(), 0u);
        const auto mcds = minimum_connected_dominating_set(udg);
        ASSERT_TRUE(mcds.has_value());
        std::vector<bool> in_set(udg.node_count(), false);
        for (const NodeId v : *mcds) in_set[v] = true;
        // Dominating.
        for (NodeId v = 0; v < udg.node_count(); ++v) {
            bool dominated = in_set[v];
            for (const NodeId u : udg.neighbors(v)) dominated |= in_set[u];
            EXPECT_TRUE(dominated) << "node " << v;
        }
        // Connected.
        EXPECT_TRUE(graph::is_connected_on(udg, in_set));
    }
}

TEST(McdsExact, BackboneWithinConstantFactorOfOptimum) {
    // The paper's approximation claim, checked against the true optimum
    // on small instances. The theoretical constant is large; empirically
    // the elected backbone stays within ~8x of optimal on these sizes.
    double worst_ratio = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto udg = test::connected_udg(13, 90.0, 45.0, seed);
        ASSERT_GT(udg.node_count(), 0u);
        const auto mcds = minimum_connected_dominating_set(udg);
        ASSERT_TRUE(mcds.has_value());
        const core::Backbone bb = core::build_backbone(udg, {core::Engine::kCentralized});
        const double ratio = static_cast<double>(bb.backbone_size()) /
                             static_cast<double>(mcds->size());
        worst_ratio = std::max(worst_ratio, ratio);
    }
    EXPECT_LE(worst_ratio, 8.0);
}

}  // namespace
}  // namespace geospanner::protocol
