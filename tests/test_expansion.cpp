// Exact expansion arithmetic: the foundation of the robust predicates.
#include "geom/expansion.h"

#include <cmath>
#include <gtest/gtest.h>

#include "random/rng.h"

namespace geospanner::geom::exact {
namespace {

TEST(TwoSum, ExactForContrivedCancellation) {
    double hi = 0.0;
    double lo = 0.0;
    two_sum(1e16, 1.0, hi, lo);
    EXPECT_EQ(hi, 1e16);  // 1.0 is lost in double addition...
    EXPECT_EQ(lo, 1.0);   // ...and recovered exactly in the error term.
}

TEST(TwoDiff, RecoversRoundoff) {
    double hi = 0.0;
    double lo = 0.0;
    two_diff(1.0, 1e-20, hi, lo);
    EXPECT_EQ(hi, 1.0);
    EXPECT_EQ(lo, -1e-20);
}

TEST(TwoProduct, SplitsExactly) {
    double hi = 0.0;
    double lo = 0.0;
    const double a = 1.0 + 0x1.0p-30;
    const double b = 1.0 - 0x1.0p-30;
    two_product(a, b, hi, lo);
    // a*b = 1 - 2^-60 exactly; hi rounds to 1, lo carries -2^-60.
    EXPECT_EQ(hi, 1.0);
    EXPECT_EQ(lo, -0x1.0p-60);
}

TEST(Expansion, AddSimple) {
    const Expansion a = expansion_from(1e16);
    const Expansion b = expansion_from(1.0);
    const Expansion sum = add(a, b);
    EXPECT_DOUBLE_EQ(estimate(sum), 1e16 + 1.0);
    // Exactness: subtracting both parts returns exactly zero.
    const Expansion zero = add(add(sum, expansion_from(-1e16)), expansion_from(-1.0));
    EXPECT_EQ(sign(zero), 0);
}

TEST(Expansion, CancellationToExactZero) {
    const Expansion a = expansion_from(0.1);
    const Expansion diff = subtract(a, a);
    EXPECT_EQ(sign(diff), 0);
    EXPECT_TRUE(diff.empty());
}

TEST(Expansion, ScaleMatchesRepeatedAdd) {
    const Expansion a = add(expansion_from(1e10), expansion_from(1e-10));
    const Expansion three = scale(a, 3.0);
    const Expansion sum = add(add(a, a), a);
    EXPECT_EQ(sign(subtract(three, sum)), 0);
}

TEST(Expansion, MultiplyDistributes) {
    // (x + y) * z == x*z + y*z exactly.
    const Expansion x = expansion_from(1e8 + 0.5);
    const Expansion y = expansion_from(1e-8);
    const Expansion z = expansion_from(3.0 + 1e-12);
    const Expansion lhs = multiply(add(x, y), z);
    const Expansion rhs = add(multiply(x, z), multiply(y, z));
    EXPECT_EQ(sign(subtract(lhs, rhs)), 0);
}

TEST(Expansion, SignOfTinyResidue) {
    // (1 + 2^-52) * (1 - 2^-52) - 1 = -2^-104: invisible to double
    // arithmetic after the subtraction, exact here.
    const double a = 1.0 + 0x1.0p-52;
    const double b = 1.0 - 0x1.0p-52;
    const Expansion prod = multiply(expansion_from(a), expansion_from(b));
    const Expansion residue = subtract(prod, expansion_from(1.0));
    EXPECT_EQ(sign(residue), -1);
    EXPECT_DOUBLE_EQ(estimate(residue), -0x1.0p-104);
}

TEST(Expansion, RandomizedSumsMatchLongDouble) {
    rnd::Xoshiro256 rng(7);
    for (int iteration = 0; iteration < 200; ++iteration) {
        Expansion acc;
        long double reference = 0.0L;
        for (int k = 0; k < 8; ++k) {
            const double v = rng.uniform(-1e12, 1e12) + rng.uniform(-1.0, 1.0);
            acc = add(acc, expansion_from(v));
            reference += static_cast<long double>(v);
        }
        EXPECT_NEAR(static_cast<double>(reference), estimate(acc),
                    1e-3 * std::fabs(estimate(acc)) + 1e-6);
        // Components must be strictly increasing in magnitude.
        for (std::size_t i = 1; i < acc.size(); ++i) {
            EXPECT_LT(std::fabs(acc[i - 1]), std::fabs(acc[i]));
        }
    }
}

}  // namespace
}  // namespace geospanner::geom::exact
