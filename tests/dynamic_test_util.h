// Shared helpers for the dynamic-maintenance suites (test_dynamic,
// test_dynamic_concurrent, test_service, fuzz schedule convergence):
// the reference from-scratch build and the edge-for-edge divergence
// check every incremental path is held to.
#pragma once

#include <string>

#include "core/backbone.h"
#include "dynamic/spanner.h"
#include "engine/engine.h"
#include "proximity/udg.h"

namespace geospanner::test {

inline engine::EngineOptions dynamic_engine_options(protocol::ClusterPolicy policy,
                                                    std::size_t threads = 2) {
    engine::EngineOptions opts;
    opts.threads = threads;
    opts.cluster_policy = policy;
    return opts;
}

inline core::Backbone reference_backbone(const graph::GeometricGraph& udg,
                                         protocol::ClusterPolicy policy) {
    core::BuildOptions opts;
    opts.engine = core::Engine::kCentralized;
    opts.cluster_policy = policy;
    return core::build_backbone(udg, opts);
}

/// Component-wise comparison so a divergence names the structure.
inline std::string backbone_diff(const core::Backbone& got, const core::Backbone& want) {
    if (got.cluster.role != want.cluster.role) return "cluster.role";
    if (got.cluster.dominators_of != want.cluster.dominators_of) {
        return "cluster.dominators_of";
    }
    if (got.cluster.two_hop_dominators_of != want.cluster.two_hop_dominators_of) {
        return "cluster.two_hop_dominators_of";
    }
    if (got.is_connector != want.is_connector) return "is_connector";
    if (got.in_backbone != want.in_backbone) return "in_backbone";
    if (!(got.cds == want.cds)) return "cds";
    if (!(got.cds_prime == want.cds_prime)) return "cds_prime";
    if (!(got.icds == want.icds)) return "icds";
    if (!(got.icds_prime == want.icds_prime)) return "icds_prime";
    if (!(got.ldel_icds == want.ldel_icds)) return "ldel_icds";
    if (!(got.ldel_icds_prime == want.ldel_icds_prime)) return "ldel_icds_prime";
    if (got.ldel_triangles != want.ldel_triangles) return "ldel_triangles";
    return {};
}

/// "" when (udg, backbone) equals a from-scratch build on `points`;
/// otherwise the name of the first diverging structure.
inline std::string state_divergence(const std::vector<geom::Point>& points,
                                    double radius, const graph::GeometricGraph& udg,
                                    const core::Backbone& backbone,
                                    protocol::ClusterPolicy policy) {
    const graph::GeometricGraph want = proximity::build_udg(points, radius);
    if (!(want == udg)) return "udg";
    return backbone_diff(backbone, reference_backbone(want, policy));
}

/// "" when the patched state equals a from-scratch build on the same
/// positions; otherwise the name of the first diverging structure.
inline std::string divergence(const dynamic::DynamicSpanner& dyn,
                              protocol::ClusterPolicy policy) {
    return state_divergence(dyn.positions(), dyn.radius(), dyn.udg(), dyn.backbone(),
                            policy);
}

}  // namespace geospanner::test
