// Seeded property-fuzz harness: sweeps the five generator modes
// (uniform, clustered, grid-perturbed, collinear, cocircular) through
// the full engine pipeline under verify:: audit, deterministically per
// seed. On a certificate violation the point set is greedily shrunk to
// a minimal failing instance and dumped as JSON + SVG repro artifacts
// (seed in the filename) that replay to the same failure.
//
// The sweep is bounded by default (fuzz-smoke, a few seconds);
// GS_FUZZ_SEEDS widens the seed set for the CI fuzz-smoke job or longer
// local sessions. The update-schedule fuzz extends the harness to the
// dynamic path: randomized batch splits of one logical move schedule
// must all converge to the same topology, with diverging schedules
// ddmin-shrunk to a minimal move list. The chaos fuzz does the same for
// full fault schedules (crashes, outages, joins, leaves, churn): every
// seeded schedule must replay through fault::SelfHealer to the
// from-scratch topology, and a diverging schedule is ddmin-shrunk over
// its event list (stale-event skipping keeps every subsequence
// applicable) and dumped as a replayable JSON schedule artifact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/workload.h"
#include "dynamic/spanner.h"
#include "dynamic_test_util.h"
#include "engine/engine.h"
#include "fault/chaos.h"
#include "fault/healer.h"
#include "graph/planarity.h"
#include "io/serialize.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner {
namespace {

using graph::GeometricGraph;
using graph::NodeId;
using test::FuzzMode;

core::WorkloadConfig fuzz_config(std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = 60;
    config.side = 200.0;
    config.radius = 55.0;
    config.seed = seed;
    return config;
}

/// Seed set of the sweep: 4 by default, GS_FUZZ_SEEDS (count) widens it.
/// Seeds are derived by a splitmix64 chain so the set is deterministic
/// at every length.
std::vector<std::uint64_t> sweep_seeds() {
    std::size_t count = 4;
    if (const char* env = std::getenv("GS_FUZZ_SEEDS")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v > 0) count = v;
    }
    std::vector<std::uint64_t> seeds;
    seeds.reserve(count);
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < count; ++i) seeds.push_back(rnd::splitmix64(state));
    return seeds;
}

/// Runs the audited engine pipeline over `points`; returns the first
/// failing report, or nullopt when every certificate holds.
std::optional<verify::AuditReport> first_audit_failure(
    const std::vector<geom::Point>& points, double radius) {
    engine::EngineOptions options;
    options.threads = 2;
    options.audit = true;
    options.audit_options.radius = radius;
    engine::SpannerEngine engine(options);
    const engine::BuildResult result = engine.build(points, radius);
    const verify::AuditReport* failure = result.audit.first_failure();
    if (failure == nullptr) return std::nullopt;
    return *failure;
}

/// Shrinks a failing instance (failure = `check` keeps failing) and
/// dumps the JSON+SVG repro pair. Returns the JSON artifact path.
std::string shrink_and_dump(FuzzMode mode, std::uint64_t seed, double radius,
                            std::vector<geom::Point> points,
                            const std::string& check) {
    const auto still_fails = [&](const std::vector<geom::Point>& pts) {
        const auto failure = first_audit_failure(pts, radius);
        return failure.has_value() && failure->check == check;
    };
    io::ReproCase repro;
    repro.seed = seed;
    repro.mode = test::fuzz_mode_name(mode);
    repro.radius = radius;
    repro.failed_check = check;
    repro.points = test::shrink_points(std::move(points), still_fails);
    return test::dump_repro(repro);
}

TEST(FuzzSpanner, SeededSweepAllModesHoldCertificates) {
    for (const FuzzMode mode : test::all_fuzz_modes()) {
        for (const std::uint64_t seed : sweep_seeds()) {
            const auto config = fuzz_config(seed);
            const auto points = test::fuzz_points(mode, config);
            const auto failure = first_audit_failure(points, config.radius);
            if (failure.has_value()) {
                const std::string artifact = shrink_and_dump(
                    mode, seed, config.radius, points, failure->check);
                ADD_FAILURE() << "mode=" << test::fuzz_mode_name(mode)
                              << " seed=" << seed << ": " << failure->summary()
                              << "\n  shrunk repro: " << artifact;
            }
        }
    }
}

TEST(FuzzSpanner, DeterministicPerSeed) {
    // Same (mode, seed) → identical points, UDG, and audit trail; the
    // whole harness is replayable from the seed alone.
    for (const FuzzMode mode : test::all_fuzz_modes()) {
        const auto config = fuzz_config(29);
        const auto a = test::fuzz_points(mode, config);
        const auto b = test::fuzz_points(mode, config);
        ASSERT_EQ(a, b) << test::fuzz_mode_name(mode);

        engine::EngineOptions options;
        options.threads = 2;
        options.audit = true;
        options.audit_options.radius = config.radius;
        engine::SpannerEngine engine(options);
        const auto r1 = engine.build(a, config.radius);
        const auto r2 = engine.build(b, config.radius);
        EXPECT_EQ(r1.udg, r2.udg) << test::fuzz_mode_name(mode);
        EXPECT_EQ(r1.audit.summary(), r2.audit.summary())
            << test::fuzz_mode_name(mode);
    }
}

/// The deliberately-broken-topology predicate: build the backbone, then
/// inject one extra LDel edge between the farthest pair of backbone
/// nodes. On spread-out instances that edge crosses the planarized
/// mesh, so check_planarity_certificate must fail with the crossing as
/// witness. Defined over a raw point set so the shrinker can call it.
struct InjectionResult {
    verify::AuditReport report;
    std::pair<NodeId, NodeId> injected{graph::kInvalidNode, graph::kInvalidNode};
};

std::optional<InjectionResult> inject_and_audit(const std::vector<geom::Point>& points,
                                                double radius) {
    const GeometricGraph udg = proximity::build_udg(points, radius);
    core::Backbone bb = core::build_backbone(udg, {core::Engine::kCentralized});
    NodeId best_u = graph::kInvalidNode;
    NodeId best_v = graph::kInvalidNode;
    double best = -1.0;
    for (NodeId u = 0; u < udg.node_count(); ++u) {
        if (!bb.in_backbone[u]) continue;
        for (NodeId v = u + 1; v < udg.node_count(); ++v) {
            if (!bb.in_backbone[v] || bb.ldel_icds.has_edge(u, v)) continue;
            const double d = geom::distance(udg.point(u), udg.point(v));
            if (d > best) {
                best = d;
                best_u = u;
                best_v = v;
            }
        }
    }
    if (best_u == graph::kInvalidNode) return std::nullopt;
    bb.ldel_icds.add_edge(best_u, best_v);
    InjectionResult result;
    result.injected = {best_u, best_v};
    result.report = verify::check_planarity_certificate(bb.ldel_icds);
    return result;
}

TEST(FuzzSpanner, InjectedCrossingProducesFailingCertificateWithWitness) {
    const auto udg = test::connected_udg(60, 200.0, 55.0, 53);
    ASSERT_GT(udg.node_count(), 0u);
    const auto injected = inject_and_audit(udg.points(), 55.0);
    ASSERT_TRUE(injected.has_value());
    ASSERT_FALSE(injected->report.pass) << injected->report.summary();
    ASSERT_FALSE(injected->report.witnesses.empty());
    // The witness names the injected edge as one side of a concrete
    // crossing pair.
    bool names_injection = false;
    for (const auto& w : injected->report.witnesses) {
        for (const auto& e : w.edges) {
            if (e == injected->injected) names_injection = true;
        }
    }
    EXPECT_TRUE(names_injection) << injected->report.summary();
}

TEST(FuzzSpanner, ShrunkReproReplaysToSameFailure) {
    // End-to-end repro flow on the injected failure: shrink the point
    // set to a minimal instance where the injection still breaks
    // planarity, dump JSON+SVG, reload the JSON, and replay it to the
    // same failing certificate.
    const std::uint64_t seed = 53;
    const double radius = 55.0;
    const auto udg = test::connected_udg(60, 200.0, radius, seed);
    ASSERT_GT(udg.node_count(), 0u);

    const auto fails = [&](const std::vector<geom::Point>& pts) {
        const auto injected = inject_and_audit(pts, radius);
        return injected.has_value() && !injected->report.pass;
    };
    ASSERT_TRUE(fails(udg.points())) << "injection did not break planarity";

    io::ReproCase repro;
    repro.seed = seed;
    repro.mode = "injected-crossing";
    repro.radius = radius;
    repro.failed_check = "planarity_certificate";
    repro.points = test::shrink_points(udg.points(), fails);
    EXPECT_LT(repro.points.size(), udg.node_count());
    // 1-minimal: removing any single remaining point repairs the failure.
    for (std::size_t i = 0; i < repro.points.size(); ++i) {
        auto fewer = repro.points;
        fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(fails(fewer)) << "shrink left a removable point " << i;
    }

    const std::string json_path = test::dump_repro(repro);
    ASSERT_FALSE(json_path.empty());

    const auto loaded = io::load_repro(json_path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->points, repro.points);  // Max-precision round-trip.
    EXPECT_EQ(loaded->failed_check, "planarity_certificate");
    const auto replay = inject_and_audit(loaded->points, loaded->radius);
    ASSERT_TRUE(replay.has_value());
    EXPECT_FALSE(replay->report.pass) << "repro did not replay to the failure";
}

// ---- Update-schedule convergence fuzz ---------------------------------

/// One logical mobility step: node (always < the initial node count, so
/// any schedule subset stays valid) and its absolute destination.
/// Absolute destinations make the final position a pure last-write-wins
/// function of the schedule order, independent of how it is batched.
struct ScheduledMove {
    NodeId node;
    geom::Point to;
};

std::vector<ScheduledMove> make_schedule(const std::vector<geom::Point>& initial,
                                         double radius, std::uint64_t seed,
                                         std::size_t count) {
    rnd::Xoshiro256 rng(seed);
    std::vector<ScheduledMove> moves;
    moves.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto v = static_cast<NodeId>(rng.below(initial.size()));
        moves.push_back({v,
                         {initial[v].x + rng.uniform(-radius, radius),
                          initial[v].y + rng.uniform(-radius, radius)}});
    }
    return moves;
}

/// Random interleaving of a schedule that preserves each node's
/// relative move order, so last-write-wins final positions are
/// unchanged — any such reordering must converge to the same topology.
std::vector<ScheduledMove> interleave_schedule(const std::vector<ScheduledMove>& schedule,
                                               std::uint64_t seed) {
    std::vector<std::vector<ScheduledMove>> queues;
    std::vector<std::size_t> heads;
    for (const auto& mv : schedule) {
        std::size_t q = 0;
        while (q < queues.size() && queues[q].front().node != mv.node) ++q;
        if (q == queues.size()) {
            queues.emplace_back();
            heads.push_back(0);
        }
        queues[q].push_back(mv);
    }
    rnd::Xoshiro256 rng(seed);
    std::vector<ScheduledMove> out;
    out.reserve(schedule.size());
    std::vector<std::size_t> live;
    for (std::size_t q = 0; q < queues.size(); ++q) live.push_back(q);
    while (!live.empty()) {
        const std::size_t pick = rng.below(live.size());
        const std::size_t q = live[pick];
        out.push_back(queues[q][heads[q]++]);
        if (heads[q] == queues[q].size()) {
            live[pick] = live.back();
            live.pop_back();
        }
    }
    return out;
}

/// Contiguous batch splits of a `len`-move schedule (batch sizes summing
/// to len): singletons, one monolithic batch, and two random batchings.
/// Deterministic in (len, seed).
std::vector<std::vector<std::size_t>> make_splits(std::size_t len, std::uint64_t seed) {
    std::vector<std::vector<std::size_t>> splits;
    splits.push_back(std::vector<std::size_t>(len, 1));
    if (len > 1) splits.push_back({len});
    rnd::Xoshiro256 rng(seed * 48271 + len);
    for (int k = 0; k < 2; ++k) {
        std::vector<std::size_t> sizes;
        std::size_t placed = 0;
        while (placed < len) {
            const std::size_t s = std::min<std::size_t>(1 + rng.below(5), len - placed);
            sizes.push_back(s);
            placed += s;
        }
        splits.push_back(std::move(sizes));
    }
    return splits;
}

/// Replays `schedule` through the incremental patcher in batches of the
/// given sizes; returns the first structure diverging from a
/// from-scratch build on the final positions ("" = converged).
std::string schedule_divergence(const std::vector<geom::Point>& initial, double radius,
                                const std::vector<ScheduledMove>& schedule,
                                const std::vector<std::size_t>& split) {
    engine::SpannerEngine engine(
        test::dynamic_engine_options(protocol::ClusterPolicy::kLowestId));
    dynamic::DynamicSpanner dyn(engine, initial, radius);
    std::size_t next = 0;
    for (const std::size_t size : split) {
        dynamic::UpdateBatch batch;
        for (std::size_t i = 0; i < size && next < schedule.size(); ++i, ++next) {
            batch.moves.push_back({schedule[next].node, schedule[next].to});
        }
        dyn.apply(batch);
    }
    return test::divergence(dyn, protocol::ClusterPolicy::kLowestId);
}

TEST(FuzzSpanner, UpdateScheduleBatchSplitsConverge) {
    // The batching and interleaving of a move schedule are
    // implementation details: every contiguous split, and every
    // reordering preserving per-node move order, must land on the
    // identical topology. A diverging schedule is ddmin-shrunk (over
    // moves, schedule variants regenerated per candidate length) to a
    // minimal repro.
    const double radius = 55.0;
    // Schedule variants replayed for one move list: (reordered
    // schedule, batch sizes). Deterministic in (moves, seed).
    const auto variants = [](const std::vector<ScheduledMove>& moves,
                             std::uint64_t seed) {
        std::vector<std::pair<std::vector<ScheduledMove>, std::vector<std::size_t>>>
            out;
        for (const auto& split : make_splits(moves.size(), seed)) {
            out.emplace_back(moves, split);
        }
        for (const std::uint64_t shuffle : {1ULL, 2ULL}) {
            out.emplace_back(interleave_schedule(moves, seed * 31 + shuffle),
                             std::vector<std::size_t>(moves.size(), 1));
        }
        return out;
    };
    for (const std::uint64_t seed : {3ULL, 17ULL}) {
        const auto udg = test::connected_udg(50, 200.0, radius, seed);
        ASSERT_GT(udg.node_count(), 0u);
        const auto schedule = make_schedule(udg.points(), radius, seed * 101, 20);
        for (const auto& [moves, split] : variants(schedule, seed)) {
            const std::string d = schedule_divergence(udg.points(), radius, moves, split);
            if (d.empty()) continue;
            const auto fails = [&](const std::vector<ScheduledMove>& candidate) {
                for (const auto& [m, s] : variants(candidate, seed)) {
                    if (!schedule_divergence(udg.points(), radius, m, s).empty()) {
                        return true;
                    }
                }
                return false;
            };
            const auto shrunk = test::shrink_list(schedule, fails);
            std::string trace;
            for (const auto& mv : shrunk) {
                trace += "\n  move " + std::to_string(mv.node) + " -> (" +
                         std::to_string(mv.to.x) + ", " + std::to_string(mv.to.y) + ")";
            }
            ADD_FAILURE() << "schedule variants diverged (seed=" << seed << "): " << d
                          << "\nshrunk to " << shrunk.size() << " moves:" << trace;
            break;
        }
    }
}

// ---- Chaos-schedule fuzz ----------------------------------------------

/// Replays a slice of a chaos schedule's events through SelfHealer +
/// DynamicSpanner; "" when the healer mirror, the maintained positions,
/// and the from-scratch build all agree, otherwise the first diverging
/// structure. Works on any subsequence of the schedule's events — the
/// healer skips events staled by the omissions.
std::string chaos_divergence(const fault::ChaosSchedule& schedule,
                             const std::vector<fault::ChaosEvent>& events) {
    engine::SpannerEngine engine(
        test::dynamic_engine_options(protocol::ClusterPolicy::kLowestId));
    dynamic::DynamicSpanner dyn(engine, schedule.initial, schedule.radius);
    fault::SelfHealer healer(schedule);
    for (const auto& translated : healer.translate(events)) {
        dyn.apply(translated.batch);
    }
    if (dyn.positions() != healer.world().points) return "healer-mirror";
    return test::divergence(dyn, protocol::ClusterPolicy::kLowestId);
}

TEST(FuzzSpanner, ChaosSchedulesConvergeWithShrinkableRepros) {
    // Every seeded fault schedule — crashes (graveyard moves through
    // the repair path), regional outages, join/leave churn, mobility —
    // must leave the incremental patcher on the exact topology a
    // from-scratch build produces. A divergence is ddmin-shrunk over
    // the event list to a minimal failing schedule and saved as a
    // standalone JSON repro.
    const double radius = 55.0;
    fault::ChaosConfig config;
    config.steps = 15;
    config.move_rate = 2.0;
    config.crash_rate = 0.5;
    config.join_rate = 0.5;
    config.leave_rate = 0.3;
    config.outage_rate = 0.1;
    config.side = 200.0;
    for (const std::uint64_t seed : sweep_seeds()) {
        const auto udg = test::connected_udg(50, 200.0, radius, seed);
        ASSERT_GT(udg.node_count(), 0u);
        const fault::ChaosSchedule schedule =
            fault::generate_chaos(udg.points(), radius, config, seed * 977 + 1);

        const std::string d = chaos_divergence(schedule, schedule.events);
        if (d.empty()) continue;

        const auto fails = [&](const std::vector<fault::ChaosEvent>& events) {
            return !chaos_divergence(schedule, events).empty();
        };
        fault::ChaosSchedule repro = schedule;
        repro.events = test::shrink_list(schedule.events, fails);
        const auto path = (test::fuzz_artifact_dir() /
                           ("chaos_fuzz_seed" + std::to_string(repro.seed) + ".json"))
                              .string();
        fault::save_schedule(path, repro);
        ADD_FAILURE() << "chaos schedule diverged (seed=" << repro.seed << "): " << d
                      << "\n  shrunk to " << repro.events.size() << " of "
                      << schedule.events.size() << " events; repro: " << path;
    }
}

TEST(FuzzSpanner, ChaosShrinkingPreservesTheFailure) {
    // The shrink machinery itself: plant a synthetic "failure" (any
    // subsequence still containing the first crash event) and check
    // ddmin reduces a whole schedule to exactly that event while every
    // intermediate candidate stayed applicable (no translate() throw /
    // mirror desync).
    const double radius = 55.0;
    const auto udg = test::connected_udg(40, 200.0, radius, 7);
    ASSERT_GT(udg.node_count(), 0u);
    fault::ChaosConfig config;
    config.steps = 10;
    config.crash_rate = 0.6;
    config.side = 200.0;
    const fault::ChaosSchedule schedule =
        fault::generate_chaos(udg.points(), radius, config, 91);

    const fault::ChaosEvent* first_crash = nullptr;
    for (const auto& e : schedule.events) {
        if (e.kind == fault::ChaosKind::kCrash) {
            first_crash = &e;
            break;
        }
    }
    ASSERT_NE(first_crash, nullptr);

    const auto fails = [&](const std::vector<fault::ChaosEvent>& events) {
        // Replay for the side effect of exercising translate() on the
        // subsequence; the mirror must stay in lockstep throughout.
        EXPECT_EQ(chaos_divergence(schedule, events), "");
        for (const auto& e : events) {
            if (e == *first_crash) return true;
        }
        return false;
    };
    const auto shrunk = test::shrink_list(schedule.events, fails);
    ASSERT_EQ(shrunk.size(), 1u);
    EXPECT_EQ(shrunk[0], *first_crash);
}

}  // namespace
}  // namespace geospanner
