// Seeded property-fuzz harness: sweeps the five generator modes
// (uniform, clustered, grid-perturbed, collinear, cocircular) through
// the full engine pipeline under verify:: audit, deterministically per
// seed. On a certificate violation the point set is greedily shrunk to
// a minimal failing instance and dumped as JSON + SVG repro artifacts
// (seed in the filename) that replay to the same failure.
//
// The sweep is bounded by default (fuzz-smoke, a few seconds);
// GS_FUZZ_SEEDS widens the seed set for the CI fuzz-smoke job or longer
// local sessions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/workload.h"
#include "engine/engine.h"
#include "graph/planarity.h"
#include "io/serialize.h"
#include "proximity/udg.h"
#include "test_util.h"
#include "verify/audit.h"

namespace geospanner {
namespace {

using graph::GeometricGraph;
using graph::NodeId;
using test::FuzzMode;

core::WorkloadConfig fuzz_config(std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = 60;
    config.side = 200.0;
    config.radius = 55.0;
    config.seed = seed;
    return config;
}

/// Seed set of the sweep: 4 by default, GS_FUZZ_SEEDS (count) widens it.
/// Seeds are derived by a splitmix64 chain so the set is deterministic
/// at every length.
std::vector<std::uint64_t> sweep_seeds() {
    std::size_t count = 4;
    if (const char* env = std::getenv("GS_FUZZ_SEEDS")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v > 0) count = v;
    }
    std::vector<std::uint64_t> seeds;
    seeds.reserve(count);
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < count; ++i) seeds.push_back(rnd::splitmix64(state));
    return seeds;
}

/// Runs the audited engine pipeline over `points`; returns the first
/// failing report, or nullopt when every certificate holds.
std::optional<verify::AuditReport> first_audit_failure(
    const std::vector<geom::Point>& points, double radius) {
    engine::EngineOptions options;
    options.threads = 2;
    options.audit = true;
    options.audit_options.radius = radius;
    engine::SpannerEngine engine(options);
    const engine::BuildResult result = engine.build(points, radius);
    const verify::AuditReport* failure = result.audit.first_failure();
    if (failure == nullptr) return std::nullopt;
    return *failure;
}

/// Shrinks a failing instance (failure = `check` keeps failing) and
/// dumps the JSON+SVG repro pair. Returns the JSON artifact path.
std::string shrink_and_dump(FuzzMode mode, std::uint64_t seed, double radius,
                            std::vector<geom::Point> points,
                            const std::string& check) {
    const auto still_fails = [&](const std::vector<geom::Point>& pts) {
        const auto failure = first_audit_failure(pts, radius);
        return failure.has_value() && failure->check == check;
    };
    io::ReproCase repro;
    repro.seed = seed;
    repro.mode = test::fuzz_mode_name(mode);
    repro.radius = radius;
    repro.failed_check = check;
    repro.points = test::shrink_points(std::move(points), still_fails);
    return test::dump_repro(repro);
}

TEST(FuzzSpanner, SeededSweepAllModesHoldCertificates) {
    for (const FuzzMode mode : test::all_fuzz_modes()) {
        for (const std::uint64_t seed : sweep_seeds()) {
            const auto config = fuzz_config(seed);
            const auto points = test::fuzz_points(mode, config);
            const auto failure = first_audit_failure(points, config.radius);
            if (failure.has_value()) {
                const std::string artifact = shrink_and_dump(
                    mode, seed, config.radius, points, failure->check);
                ADD_FAILURE() << "mode=" << test::fuzz_mode_name(mode)
                              << " seed=" << seed << ": " << failure->summary()
                              << "\n  shrunk repro: " << artifact;
            }
        }
    }
}

TEST(FuzzSpanner, DeterministicPerSeed) {
    // Same (mode, seed) → identical points, UDG, and audit trail; the
    // whole harness is replayable from the seed alone.
    for (const FuzzMode mode : test::all_fuzz_modes()) {
        const auto config = fuzz_config(29);
        const auto a = test::fuzz_points(mode, config);
        const auto b = test::fuzz_points(mode, config);
        ASSERT_EQ(a, b) << test::fuzz_mode_name(mode);

        engine::EngineOptions options;
        options.threads = 2;
        options.audit = true;
        options.audit_options.radius = config.radius;
        engine::SpannerEngine engine(options);
        const auto r1 = engine.build(a, config.radius);
        const auto r2 = engine.build(b, config.radius);
        EXPECT_EQ(r1.udg, r2.udg) << test::fuzz_mode_name(mode);
        EXPECT_EQ(r1.audit.summary(), r2.audit.summary())
            << test::fuzz_mode_name(mode);
    }
}

/// The deliberately-broken-topology predicate: build the backbone, then
/// inject one extra LDel edge between the farthest pair of backbone
/// nodes. On spread-out instances that edge crosses the planarized
/// mesh, so check_planarity_certificate must fail with the crossing as
/// witness. Defined over a raw point set so the shrinker can call it.
struct InjectionResult {
    verify::AuditReport report;
    std::pair<NodeId, NodeId> injected{graph::kInvalidNode, graph::kInvalidNode};
};

std::optional<InjectionResult> inject_and_audit(const std::vector<geom::Point>& points,
                                                double radius) {
    const GeometricGraph udg = proximity::build_udg(points, radius);
    core::Backbone bb = core::build_backbone(udg, {core::Engine::kCentralized});
    NodeId best_u = graph::kInvalidNode;
    NodeId best_v = graph::kInvalidNode;
    double best = -1.0;
    for (NodeId u = 0; u < udg.node_count(); ++u) {
        if (!bb.in_backbone[u]) continue;
        for (NodeId v = u + 1; v < udg.node_count(); ++v) {
            if (!bb.in_backbone[v] || bb.ldel_icds.has_edge(u, v)) continue;
            const double d = geom::distance(udg.point(u), udg.point(v));
            if (d > best) {
                best = d;
                best_u = u;
                best_v = v;
            }
        }
    }
    if (best_u == graph::kInvalidNode) return std::nullopt;
    bb.ldel_icds.add_edge(best_u, best_v);
    InjectionResult result;
    result.injected = {best_u, best_v};
    result.report = verify::check_planarity_certificate(bb.ldel_icds);
    return result;
}

TEST(FuzzSpanner, InjectedCrossingProducesFailingCertificateWithWitness) {
    const auto udg = test::connected_udg(60, 200.0, 55.0, 53);
    ASSERT_GT(udg.node_count(), 0u);
    const auto injected = inject_and_audit(udg.points(), 55.0);
    ASSERT_TRUE(injected.has_value());
    ASSERT_FALSE(injected->report.pass) << injected->report.summary();
    ASSERT_FALSE(injected->report.witnesses.empty());
    // The witness names the injected edge as one side of a concrete
    // crossing pair.
    bool names_injection = false;
    for (const auto& w : injected->report.witnesses) {
        for (const auto& e : w.edges) {
            if (e == injected->injected) names_injection = true;
        }
    }
    EXPECT_TRUE(names_injection) << injected->report.summary();
}

TEST(FuzzSpanner, ShrunkReproReplaysToSameFailure) {
    // End-to-end repro flow on the injected failure: shrink the point
    // set to a minimal instance where the injection still breaks
    // planarity, dump JSON+SVG, reload the JSON, and replay it to the
    // same failing certificate.
    const std::uint64_t seed = 53;
    const double radius = 55.0;
    const auto udg = test::connected_udg(60, 200.0, radius, seed);
    ASSERT_GT(udg.node_count(), 0u);

    const auto fails = [&](const std::vector<geom::Point>& pts) {
        const auto injected = inject_and_audit(pts, radius);
        return injected.has_value() && !injected->report.pass;
    };
    ASSERT_TRUE(fails(udg.points())) << "injection did not break planarity";

    io::ReproCase repro;
    repro.seed = seed;
    repro.mode = "injected-crossing";
    repro.radius = radius;
    repro.failed_check = "planarity_certificate";
    repro.points = test::shrink_points(udg.points(), fails);
    EXPECT_LT(repro.points.size(), udg.node_count());
    // 1-minimal: removing any single remaining point repairs the failure.
    for (std::size_t i = 0; i < repro.points.size(); ++i) {
        auto fewer = repro.points;
        fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(fails(fewer)) << "shrink left a removable point " << i;
    }

    const std::string json_path = test::dump_repro(repro);
    ASSERT_FALSE(json_path.empty());

    const auto loaded = io::load_repro(json_path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->points, repro.points);  // Max-precision round-trip.
    EXPECT_EQ(loaded->failed_check, "planarity_certificate");
    const auto replay = inject_and_audit(loaded->points, loaded->radius);
    ASSERT_TRUE(replay.has_value());
    EXPECT_FALSE(replay->report.pass) << "repro did not replay to the failure";
}

}  // namespace
}  // namespace geospanner
