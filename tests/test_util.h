// Shared helpers for the test suite: deterministic instance generation,
// the (n, radius, seed) sweep parameters, and the property-fuzz harness
// support (generator modes, greedy shrinking, repro artifacts).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/workload.h"
#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "io/serialize.h"
#include "io/svg.h"
#include "proximity/udg.h"
#include "random/rng.h"

namespace geospanner::test {

/// n uniform points in [0, side]^2, deterministic in seed.
inline std::vector<geom::Point> random_points(std::size_t n, double side,
                                              std::uint64_t seed) {
    rnd::Xoshiro256 rng(seed);
    std::vector<geom::Point> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

/// A connected UDG drawn from the standard workload generator. A
/// generation failure is loud: it records a non-fatal test failure
/// naming the exact config, and callers see an empty graph (their
/// ASSERT_GT(node_count, 0) then stops the test). Property sweeps can
/// never vacuously pass on an empty instance.
inline graph::GeometricGraph connected_udg(std::size_t n, double side, double radius,
                                           std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = side;
    config.radius = radius;
    config.seed = seed;
    auto udg = core::random_connected_udg(config);
    if (!udg) {
        ADD_FAILURE() << "connected-UDG generation exhausted its budget: n=" << n
                      << " side=" << side << " radius=" << radius << " seed=" << seed
                      << " max_attempts=" << config.max_attempts;
        return graph::GeometricGraph{};
    }
    return std::move(*udg);
}

/// Parameter tuple for the (n, radius, seed) sweeps used by the
/// property-style suites.
struct SweepParam {
    std::size_t n;
    double radius;
    std::uint64_t seed;
};

inline std::vector<SweepParam> standard_sweep() {
    std::vector<SweepParam> params;
    for (const std::size_t n : {20, 50, 90}) {
        for (const double r : {45.0, 70.0}) {
            for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
                params.push_back({n, r, seed});
            }
        }
    }
    return params;
}

// ---- Property-fuzz harness -------------------------------------------

/// The five generator modes the fuzz driver sweeps. The last two are the
/// degenerate-geometry modes (exact collinear rows, exact cocircular
/// rings) that uniform workloads never produce.
enum class FuzzMode {
    kUniform,
    kClustered,
    kGrid,
    kCollinear,
    kCocircular,
};

inline const char* fuzz_mode_name(FuzzMode mode) {
    switch (mode) {
        case FuzzMode::kUniform: return "uniform";
        case FuzzMode::kClustered: return "clustered";
        case FuzzMode::kGrid: return "grid";
        case FuzzMode::kCollinear: return "collinear";
        case FuzzMode::kCocircular: return "cocircular";
    }
    return "unknown";
}

inline std::vector<FuzzMode> all_fuzz_modes() {
    return {FuzzMode::kUniform, FuzzMode::kClustered, FuzzMode::kGrid,
            FuzzMode::kCollinear, FuzzMode::kCocircular};
}

/// Deterministic point set for (mode, config): same inputs, same points.
inline std::vector<geom::Point> fuzz_points(FuzzMode mode,
                                            const core::WorkloadConfig& config) {
    switch (mode) {
        case FuzzMode::kUniform: return core::uniform_points(config);
        case FuzzMode::kClustered: return core::clustered_points(config, 4);
        case FuzzMode::kGrid: return core::grid_points(config, 0.15);
        case FuzzMode::kCollinear: return core::collinear_points(config, 3);
        case FuzzMode::kCocircular: return core::cocircular_points(config, 4);
    }
    return {};
}

/// Greedily shrinks `items` to a minimal list still satisfying
/// `fails(items)` (ddmin-style: drop halves, then smaller chunks, then
/// single items, until nothing more can go). `fails(items)` must hold on
/// entry; the result still fails and removing any single item from it
/// makes the failure disappear. Works on any element type — point sets,
/// update schedules, batch traces.
template <typename T, typename Pred>
std::vector<T> shrink_list(std::vector<T> items, Pred&& fails) {
    std::size_t chunk = std::max<std::size_t>(1, items.size() / 2);
    while (true) {
        bool removed = false;
        for (std::size_t start = 0; start + chunk <= items.size();) {
            std::vector<T> candidate;
            candidate.reserve(items.size() - chunk);
            candidate.insert(candidate.end(), items.begin(),
                             items.begin() + static_cast<std::ptrdiff_t>(start));
            candidate.insert(candidate.end(),
                             items.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                             items.end());
            if (fails(candidate)) {
                items = std::move(candidate);
                removed = true;
            } else {
                start += chunk;
            }
        }
        if (removed) continue;  // Retry the same granularity after progress.
        if (chunk == 1) break;
        chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return items;
}

/// shrink_list specialized to the point sets the generator modes emit.
template <typename Pred>
std::vector<geom::Point> shrink_points(std::vector<geom::Point> pts, Pred&& fails) {
    return shrink_list(std::move(pts), std::forward<Pred>(fails));
}

/// Where repro artifacts land: $GS_FUZZ_ARTIFACT_DIR or ./fuzz_repros.
inline std::filesystem::path fuzz_artifact_dir() {
    const char* env = std::getenv("GS_FUZZ_ARTIFACT_DIR");
    std::filesystem::path dir = env != nullptr ? env : "fuzz_repros";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

/// Writes the JSON (+ SVG rendering of the UDG) repro artifacts for a
/// shrunk failing instance; the seed is in the filename. Returns the
/// JSON path ("" if the write failed).
inline std::string dump_repro(const io::ReproCase& repro) {
    const auto dir = fuzz_artifact_dir();
    const std::string base =
        "repro_" + repro.mode + "_seed" + std::to_string(repro.seed);
    const auto json_path = (dir / (base + ".json")).string();
    if (!io::save_repro(json_path, repro)) return {};
    io::SvgStyle style;
    style.title = base + " (" + repro.failed_check + ")";
    io::write_svg((dir / (base + ".svg")).string(),
                  proximity::build_udg(repro.points, repro.radius), {}, style);
    return json_path;
}

}  // namespace geospanner::test
