// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "core/workload.h"
#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "proximity/udg.h"
#include "random/rng.h"

namespace geospanner::test {

/// n uniform points in [0, side]^2, deterministic in seed.
inline std::vector<geom::Point> random_points(std::size_t n, double side,
                                              std::uint64_t seed) {
    rnd::Xoshiro256 rng(seed);
    std::vector<geom::Point> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

/// A connected UDG drawn from the standard workload generator; tests
/// treat generation failure as a test failure via the assertion macros.
inline graph::GeometricGraph connected_udg(std::size_t n, double side, double radius,
                                           std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = side;
    config.radius = radius;
    config.seed = seed;
    auto udg = core::random_connected_udg(config);
    return udg ? std::move(*udg) : graph::GeometricGraph{};
}

/// Parameter tuple for the (n, radius, seed) sweeps used by the
/// property-style suites.
struct SweepParam {
    std::size_t n;
    double radius;
    std::uint64_t seed;
};

inline std::vector<SweepParam> standard_sweep() {
    std::vector<SweepParam> params;
    for (const std::size_t n : {20, 50, 90}) {
        for (const double r : {45.0, 70.0}) {
            for (const std::uint64_t seed : {11ULL, 29ULL, 53ULL}) {
                params.push_back({n, r, seed});
            }
        }
    }
    return params;
}

}  // namespace geospanner::test
