// Distributed Algorithms 2+3 equal the centralized PLDel exactly, both
// on the full UDG and on induced backbone graphs.
#include "protocol/ldel_protocol.h"

#include <gtest/gtest.h>

#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "protocol/clustering.h"
#include "protocol/connectors.h"
#include "proximity/classic.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class LdelProtocolSweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(LdelProtocolSweep, MatchesCentralizedOnUdg) {
    Net net(udg_);
    const LDelState distributed = run_ldel(net, udg_, /*announce_positions=*/true);
    const auto centralized_triangles =
        proximity::planarize_triangles(udg_, proximity::ldel1_triangles(udg_));
    EXPECT_EQ(distributed.triangles, centralized_triangles);
    EXPECT_EQ(distributed.graph, proximity::build_pldel(udg_));
}

TEST_P(LdelProtocolSweep, MatchesCentralizedOnInducedBackbone) {
    const ClusterState cluster = lowest_id_mis(udg_);
    const ConnectorState conn = find_connectors(udg_, cluster);
    GeometricGraph icds(udg_.points());
    for (const auto& [u, v] : udg_.edges()) {
        const bool u_bb = cluster.is_dominator(u) || conn.is_connector[u];
        const bool v_bb = cluster.is_dominator(v) || conn.is_connector[v];
        if (u_bb && v_bb) icds.add_edge(u, v);
    }
    Net net(icds);
    const LDelState distributed = run_ldel(net, icds, /*announce_positions=*/false);
    EXPECT_EQ(distributed.graph, proximity::build_pldel(icds));
}

TEST_P(LdelProtocolSweep, OutputIsPlanar) {
    Net net(udg_);
    const LDelState state = run_ldel(net, udg_, true);
    EXPECT_TRUE(graph::is_plane_embedding(state.graph));
}

TEST_P(LdelProtocolSweep, MessageCountTracksDegree) {
    // Each participant sends: 1 Hello + proposals/accepts/rejects (at
    // most a few per incident triangle) + 2 aggregate broadcasts. All
    // are bounded by a constant multiple of its degree.
    Net net(udg_);
    (void)run_ldel(net, udg_, true);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        EXPECT_LE(net.messages_sent(v), 3 + 4 * udg_.degree(v)) << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LdelProtocolSweep,
                         ::testing::ValuesIn(test::standard_sweep()));

TEST(LdelProtocol, SingleTriangleAccepted) {
    const GeometricGraph udg = proximity::build_udg({{0, 0}, {1, 0}, {0.5, 0.8}}, 1.1);
    Net net(udg);
    const LDelState state = run_ldel(net, udg, true);
    ASSERT_EQ(state.triangles.size(), 1u);
    EXPECT_EQ(state.triangles[0], proximity::make_triangle_key(0, 1, 2));
    EXPECT_EQ(state.graph.edge_count(), 3u);
}

TEST(LdelProtocol, EquilateralTriangleIsNotLost) {
    // All three angles are exactly 60 degrees; the proposal slack must
    // still produce at least one proposer.
    const double h = std::sqrt(3.0) / 2.0;
    const GeometricGraph udg = proximity::build_udg({{0, 0}, {1, 0}, {0.5, h}}, 1.05);
    Net net(udg);
    const LDelState state = run_ldel(net, udg, true);
    ASSERT_EQ(state.triangles.size(), 1u);
}

TEST(LdelProtocol, RejectionKillsNonLocalTriangle) {
    // Node 3 sits inside the circumcircle of (0,1,2) and is a neighbor
    // of 2 only; node 2's local Delaunay lacks the triangle, so it must
    // reject and the triangle must not survive.
    GeometricGraph udg = proximity::build_udg(
        {{0, 0}, {1, 0}, {0.5, 0.9}, {0.5, 1.2}}, 1.15);
    ASSERT_TRUE(udg.has_edge(2, 3));
    Net net(udg);
    const LDelState state = run_ldel(net, udg, true);
    EXPECT_EQ(state.triangles,
              proximity::planarize_triangles(udg, proximity::ldel1_triangles(udg)));
}

}  // namespace
}  // namespace geospanner::protocol
