// Distributed LDel⁽²⁾ equals the centralized k = 2 computation and is
// planar without Algorithm 3.
#include "protocol/ldel2_protocol.h"

#include <gtest/gtest.h>

#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "proximity/ldel_k.h"
#include "proximity/udg.h"
#include "test_util.h"

namespace geospanner::protocol {
namespace {

using graph::GeometricGraph;
using graph::NodeId;

class Ldel2Sweep : public ::testing::TestWithParam<test::SweepParam> {
  protected:
    GeometricGraph udg_;
    void SetUp() override {
        const auto p = GetParam();
        udg_ = test::connected_udg(p.n, 200.0, p.radius, p.seed);
        ASSERT_GT(udg_.node_count(), 0u);
    }
};

TEST_P(Ldel2Sweep, MatchesCentralizedLdelK2) {
    Net net(udg_);
    const LDelState distributed = run_ldel2(net, udg_, /*announce_positions=*/true);
    EXPECT_EQ(distributed.triangles, proximity::ldel_k_triangles(udg_, 2));
    EXPECT_EQ(distributed.graph, proximity::build_ldel_k(udg_, 2));
}

TEST_P(Ldel2Sweep, PlanarWithoutPlanarizationPass) {
    Net net(udg_);
    const LDelState state = run_ldel2(net, udg_, true);
    EXPECT_TRUE(graph::is_plane_embedding(state.graph));
    EXPECT_TRUE(graph::is_connected(state.graph));
}

TEST_P(Ldel2Sweep, MessageTradeoffVsLdel1) {
    // LDel2 sends fewer, but larger, messages: per node it needs Hello +
    // NeighborList + proposals/answers; LDel1 additionally needs the two
    // planarization broadcasts.
    Net net2(udg_);
    (void)run_ldel2(net2, udg_, true);
    Net net1(udg_);
    (void)run_ldel(net1, udg_, true);
    for (NodeId v = 0; v < udg_.node_count(); ++v) {
        // Both are O(1)+O(deg); pin a loose per-node bound.
        EXPECT_LE(net2.messages_sent(v), 4 + 4 * udg_.degree(v));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ldel2Sweep, ::testing::ValuesIn(test::standard_sweep()));

TEST(Ldel2, SingleTriangle) {
    const GeometricGraph udg = proximity::build_udg({{0, 0}, {1, 0}, {0.5, 0.8}}, 1.1);
    Net net(udg);
    const LDelState state = run_ldel2(net, udg, true);
    ASSERT_EQ(state.triangles.size(), 1u);
    EXPECT_EQ(state.triangles[0], proximity::make_triangle_key(0, 1, 2));
}

TEST(Ldel2, TwoHopWitnessRemovesTriangle) {
    // Node 3 lies inside the circumcircle of (0,1,2) but is 2 hops away
    // from all of them (via node 4): LDel1 keeps the triangle (no vertex
    // sees 3), LDel2 rejects it.
    GeometricGraph udg(std::vector<geom::Point>{
        {0.0, 0.0}, {1.0, 0.0}, {0.5, 0.75}, {0.5, 0.40}, {1.35, 0.40}});
    // Manual adjacency to pin the hop structure: 3 is adjacent only to 4;
    // 4 is adjacent to 1 (and 3).
    udg.add_edge(0, 1);
    udg.add_edge(0, 2);
    udg.add_edge(1, 2);
    udg.add_edge(1, 4);
    udg.add_edge(4, 3);
    const auto t1 = proximity::ldel1_triangles(udg);
    const auto t2 = proximity::ldel_k_triangles(udg, 2);
    const auto key = proximity::make_triangle_key(0, 1, 2);
    EXPECT_TRUE(std::binary_search(t1.begin(), t1.end(), key));
    EXPECT_FALSE(std::binary_search(t2.begin(), t2.end(), key));
    Net net(udg);
    EXPECT_EQ(run_ldel2(net, udg, true).triangles, t2);
}

}  // namespace
}  // namespace geospanner::protocol
