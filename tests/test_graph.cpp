// GeometricGraph container semantics and UnionFind.
#include "graph/geometric_graph.h"

#include <gtest/gtest.h>

#include "graph/union_find.h"

namespace geospanner::graph {
namespace {

GeometricGraph square_graph() {
    GeometricGraph g({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    return g;
}

TEST(GeometricGraph, BasicAccounting) {
    const GeometricGraph g = square_graph();
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_DOUBLE_EQ(g.edge_length(0, 1), 1.0);
}

TEST(GeometricGraph, AddIsIdempotent) {
    GeometricGraph g = square_graph();
    EXPECT_FALSE(g.add_edge(0, 1));
    EXPECT_FALSE(g.add_edge(1, 0));
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_TRUE(g.add_edge(0, 2));
    EXPECT_EQ(g.edge_count(), 5u);
}

TEST(GeometricGraph, RemoveEdge) {
    GeometricGraph g = square_graph();
    EXPECT_TRUE(g.remove_edge(1, 0));
    EXPECT_FALSE(g.remove_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 3u);
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(GeometricGraph, NeighborsSorted) {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    g.add_edge(2, 3);
    g.add_edge(2, 0);
    g.add_edge(2, 1);
    const auto nbrs = g.neighbors(2);
    ASSERT_EQ(nbrs.size(), 3u);
    EXPECT_EQ(nbrs[0], 0u);
    EXPECT_EQ(nbrs[1], 1u);
    EXPECT_EQ(nbrs[2], 3u);
}

TEST(GeometricGraph, EdgesCanonicalOrder) {
    const GeometricGraph g = square_graph();
    const auto e = g.edges();
    ASSERT_EQ(e.size(), 4u);
    EXPECT_EQ(e[0], (std::pair<NodeId, NodeId>{0, 1}));
    EXPECT_EQ(e[1], (std::pair<NodeId, NodeId>{0, 3}));
    EXPECT_EQ(e[2], (std::pair<NodeId, NodeId>{1, 2}));
    EXPECT_EQ(e[3], (std::pair<NodeId, NodeId>{2, 3}));
}

TEST(GeometricGraph, Equality) {
    const GeometricGraph a = square_graph();
    GeometricGraph b = square_graph();
    EXPECT_EQ(a, b);
    b.remove_edge(0, 1);
    EXPECT_FALSE(a == b);
    b.add_edge(0, 1);
    EXPECT_EQ(a, b);
}

TEST(UnionFind, MergesAndCounts) {
    UnionFind uf(6);
    EXPECT_EQ(uf.component_count(), 6u);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_EQ(uf.component_count(), 4u);
    EXPECT_TRUE(uf.same(0, 1));
    EXPECT_FALSE(uf.same(0, 2));
    EXPECT_TRUE(uf.unite(1, 3));
    EXPECT_TRUE(uf.same(0, 2));
    EXPECT_EQ(uf.component_size(3), 4u);
    EXPECT_EQ(uf.component_size(5), 1u);
}

TEST(UnionFind, FullMerge) {
    UnionFind uf(100);
    for (std::size_t i = 1; i < 100; ++i) uf.unite(i - 1, i);
    EXPECT_EQ(uf.component_count(), 1u);
    EXPECT_TRUE(uf.same(0, 99));
    EXPECT_EQ(uf.component_size(42), 100u);
}

}  // namespace
}  // namespace geospanner::graph
