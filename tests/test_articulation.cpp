// Articulation points: Tarjan vs brute-force removal, and the backbone
// cut-vertex counts that explain the robustness ablation.
#include "graph/articulation.h"

#include <gtest/gtest.h>

#include "core/backbone.h"
#include "graph/shortest_paths.h"
#include "protocol/pruning.h"
#include "test_util.h"

namespace geospanner::graph {
namespace {

/// Brute force: v is an articulation point iff removing it splits its
/// connected component.
std::vector<bool> brute_force_cuts(const GeometricGraph& g) {
    const auto n = static_cast<NodeId>(g.node_count());
    std::vector<bool> result(n, false);
    for (NodeId v = 0; v < n; ++v) {
        if (g.degree(v) < 2) continue;
        GeometricGraph without(g.points());
        for (const auto& [a, b] : g.edges()) {
            if (a != v && b != v) without.add_edge(a, b);
        }
        // Components among nodes other than v that had edges... simply:
        // count reachability from one neighbor of v to all others.
        const NodeId start = g.neighbors(v)[0];
        const auto hops = bfs_hops(without, start);
        for (const NodeId u : g.neighbors(v)) {
            if (hops[u] == kUnreachableHops) {
                result[v] = true;
                break;
            }
        }
    }
    return result;
}

TEST(Articulation, PathAndCycle) {
    GeometricGraph path({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    for (NodeId v = 0; v + 1 < 4; ++v) path.add_edge(v, v + 1);
    EXPECT_EQ(articulation_points(path),
              (std::vector<bool>{false, true, true, false}));

    GeometricGraph cycle({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
    for (NodeId v = 0; v < 4; ++v) cycle.add_edge(v, (v + 1) % 4);
    EXPECT_EQ(articulation_points(cycle), std::vector<bool>(4, false));
}

TEST(Articulation, StarCenterIsTheOnlyCut) {
    GeometricGraph star({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}});
    for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
    const auto cuts = articulation_points(star);
    EXPECT_TRUE(cuts[0]);
    for (NodeId v = 1; v < 5; ++v) EXPECT_FALSE(cuts[v]);
}

TEST(Articulation, TwoTrianglesSharingAVertex) {
    GeometricGraph g({{0, 0}, {1, 0}, {0.5, 1}, {2, 0}, {1.5, 1}});
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    g.add_edge(1, 4);
    g.add_edge(3, 4);
    const auto cuts = articulation_points(g);
    EXPECT_EQ(cuts, (std::vector<bool>{false, true, false, false, false}));
}

TEST(Articulation, IsolatedAndDisconnected) {
    GeometricGraph g({{0, 0}, {1, 0}, {2, 0}, {10, 10}});
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const auto cuts = articulation_points(g);
    EXPECT_EQ(cuts, (std::vector<bool>{false, true, false, false}));
}

TEST(Articulation, MatchesBruteForceOnRandomUdgs) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
        const auto udg = test::connected_udg(45, 200.0, 55.0, seed);
        ASSERT_GT(udg.node_count(), 0u);
        EXPECT_EQ(articulation_points(udg), brute_force_cuts(udg)) << "seed " << seed;
    }
}

TEST(Articulation, BackboneHasFewerCutsThanPrunedBackbone) {
    // The behavioral robustness result (bench_ablation_robustness) has a
    // structural explanation: the elected backbone has few articulation
    // points, the inclusion-minimal one is almost all articulation
    // points (a tree-like skeleton).
    const auto udg = test::connected_udg(90, 250.0, 60.0, 11);
    ASSERT_GT(udg.node_count(), 0u);
    const auto cluster = protocol::cluster_reference(udg);
    const auto full = protocol::find_connectors(udg, cluster);
    const auto pruned = protocol::prune_connectors(udg, cluster, full);

    const auto backbone_flags = [&](const protocol::ConnectorState& conn) {
        std::vector<bool> flags(udg.node_count());
        for (NodeId v = 0; v < udg.node_count(); ++v) {
            flags[v] = cluster.is_dominator(v) || conn.is_connector[v];
        }
        return flags;
    };
    const auto cds_graph = [&](const protocol::ConnectorState& conn) {
        GeometricGraph g(udg.points());
        for (const auto& [u, v] : conn.cds_edges) g.add_edge(u, v);
        return g;
    };
    const std::size_t full_cuts =
        articulation_count_within(cds_graph(full), backbone_flags(full));
    const std::size_t pruned_cuts =
        articulation_count_within(cds_graph(pruned), backbone_flags(pruned));
    EXPECT_LT(full_cuts, pruned_cuts);
}

}  // namespace
}  // namespace geospanner::graph
