// Convex hull and polygon utilities.
#include "geom/hull.h"

#include <cmath>
#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "test_util.h"

namespace geospanner::geom {
namespace {

TEST(Hull, SquareWithInteriorPoint) {
    const std::vector<Point> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}};
    const auto hull = convex_hull(pts);
    EXPECT_EQ(hull, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Hull, StartsAtLexicographicMinCcw) {
    const std::vector<Point> pts{{2, 2}, {0, 0}, {2, 0}, {0, 2}};
    const auto hull = convex_hull(pts);
    ASSERT_EQ(hull.size(), 4u);
    EXPECT_EQ(hull[0], 1u);  // (0,0).
    // Counter-clockwise: every consecutive triple is a left turn.
    for (std::size_t i = 0; i < hull.size(); ++i) {
        EXPECT_GT(orient_sign(pts[hull[i]], pts[hull[(i + 1) % 4]],
                              pts[hull[(i + 2) % 4]]),
                  0);
    }
}

TEST(Hull, CollinearBoundaryExcludedOrIncluded) {
    // Triangle with a midpoint on the bottom edge.
    const std::vector<Point> pts{{0, 0}, {2, 0}, {1, 2}, {1, 0}};
    EXPECT_EQ(convex_hull(pts).size(), 3u);
    const auto inclusive = convex_hull_with_collinear(pts);
    EXPECT_EQ(inclusive.size(), 4u);
    // Walking order visits the midpoint between the bottom corners.
    EXPECT_EQ(inclusive, (std::vector<std::size_t>{0, 3, 1, 2}));
}

TEST(Hull, DegenerateInputs) {
    EXPECT_TRUE(convex_hull({}).empty());
    EXPECT_EQ(convex_hull({{1, 1}}).size(), 1u);
    EXPECT_EQ(convex_hull({{1, 1}, {2, 2}}).size(), 2u);
    // All collinear: the two extremes.
    const auto hull = convex_hull({{0, 0}, {3, 3}, {1, 1}, {2, 2}});
    EXPECT_EQ(hull, (std::vector<std::size_t>{0, 1}));
    // Inclusive variant keeps the run.
    EXPECT_EQ(convex_hull_with_collinear({{0, 0}, {3, 3}, {1, 1}, {2, 2}}).size(), 4u);
    // Duplicates collapse.
    EXPECT_EQ(convex_hull({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}}).size(), 3u);
}

TEST(Hull, RandomPointsHullProperties) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        const auto pts = test::random_points(60, 100.0, seed);
        const auto hull = convex_hull(pts);
        ASSERT_GE(hull.size(), 3u);
        std::vector<Point> poly;
        poly.reserve(hull.size());
        for (const std::size_t i : hull) poly.push_back(pts[i]);
        // CCW orientation: positive area.
        EXPECT_GT(twice_signed_area(poly), 0.0);
        // Every non-hull point is strictly inside.
        std::vector<bool> on_hull(pts.size(), false);
        for (const std::size_t i : hull) on_hull[i] = true;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (!on_hull[i]) {
                EXPECT_TRUE(strictly_inside_convex(poly, pts[i])) << "point " << i;
            }
        }
    }
}

TEST(Hull, AllPointsOnACircleAreHullVertices) {
    std::vector<Point> pts;
    for (int k = 0; k < 12; ++k) {
        const double theta = 2.0 * 3.14159265358979 * k / 12.0;
        pts.push_back({10.0 * std::cos(theta), 10.0 * std::sin(theta)});
    }
    EXPECT_EQ(convex_hull(pts).size(), 12u);
    EXPECT_EQ(convex_hull_with_collinear(pts).size(), 12u);
}

TEST(Hull, SignedArea) {
    const std::vector<Point> ccw{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
    EXPECT_DOUBLE_EQ(twice_signed_area(ccw), 8.0);
    const std::vector<Point> cw{{0, 0}, {0, 2}, {2, 2}, {2, 0}};
    EXPECT_DOUBLE_EQ(twice_signed_area(cw), -8.0);
}

TEST(Hull, StrictlyInsideConvex) {
    const std::vector<Point> tri{{0, 0}, {4, 0}, {0, 4}};
    EXPECT_TRUE(strictly_inside_convex(tri, {1, 1}));
    EXPECT_FALSE(strictly_inside_convex(tri, {2, 2}));   // On the hypotenuse.
    EXPECT_FALSE(strictly_inside_convex(tri, {0, 0}));   // Vertex.
    EXPECT_FALSE(strictly_inside_convex(tri, {5, 5}));
    EXPECT_FALSE(strictly_inside_convex({{0, 0}, {1, 1}}, {0.5, 0.5}));  // Degenerate.
}

}  // namespace
}  // namespace geospanner::geom
