// Delaunay triangulation: validated against the definition (empty
// circumcircles) and a brute-force reference, including degenerate and
// cocircular inputs.
#include "delaunay/delaunay.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

#include "geom/hull.h"
#include "geom/predicates.h"
#include "test_util.h"

namespace geospanner::delaunay {
namespace {

using geom::Point;

/// Brute-force Delaunay triangles for points in general position: every
/// non-degenerate triple whose circumcircle strictly contains no other
/// point.
std::vector<Triangle> brute_force_triangles(const std::vector<Point>& pts) {
    std::vector<Triangle> result;
    const auto n = static_cast<VertexId>(pts.size());
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            for (VertexId k = j + 1; k < n; ++k) {
                if (geom::orient_sign(pts[i], pts[j], pts[k]) == 0) continue;
                bool empty = true;
                for (VertexId l = 0; l < n && empty; ++l) {
                    if (l == i || l == j || l == k) continue;
                    if (geom::in_circumcircle(pts[i], pts[j], pts[k], pts[l]) > 0) {
                        empty = false;
                    }
                }
                if (!empty) {
                    continue;
                }
                // Canonical orientation: rotate so the smallest index is
                // first (i already is), order (j, k) counter-clockwise.
                if (geom::orient_sign(pts[i], pts[j], pts[k]) > 0) {
                    result.push_back({i, j, k});
                } else {
                    result.push_back({i, k, j});
                }
            }
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

/// Convex hull size by brute force (a point is on the hull iff it is not
/// strictly inside the hull: check via some half-plane having all points
/// on one side of an edge through it).
std::size_t hull_vertex_count(const std::vector<Point>& pts) {
    std::size_t count = 0;
    const std::size_t n = pts.size();
    for (std::size_t i = 0; i < n; ++i) {
        bool on_hull = false;
        for (std::size_t j = 0; j < n && !on_hull; ++j) {
            if (j == i) continue;
            // Edge (i, j) is a hull edge iff all other points are on one
            // closed side.
            bool all_left = true;
            bool all_right = true;
            for (std::size_t k = 0; k < n; ++k) {
                if (k == i || k == j) continue;
                const int s = geom::orient_sign(pts[i], pts[j], pts[k]);
                all_left &= s >= 0;
                all_right &= s <= 0;
            }
            on_hull = all_left || all_right;
        }
        count += on_hull ? 1 : 0;
    }
    return count;
}

TEST(Delaunay, SingleTriangle) {
    const DelaunayTriangulation del({{0, 0}, {1, 0}, {0, 1}});
    ASSERT_EQ(del.triangles().size(), 1u);
    EXPECT_EQ(del.triangles()[0], (Triangle{0, 1, 2}));
    EXPECT_EQ(del.edges().size(), 3u);
    EXPECT_FALSE(del.degenerate());
}

TEST(Delaunay, EmptyAndTiny) {
    EXPECT_TRUE(DelaunayTriangulation({}).triangles().empty());
    EXPECT_TRUE(DelaunayTriangulation({{1, 1}}).triangles().empty());
    const DelaunayTriangulation two({{0, 0}, {1, 1}});
    EXPECT_TRUE(two.degenerate());
    ASSERT_EQ(two.edges().size(), 1u);
    EXPECT_EQ(two.edges()[0], (std::pair<VertexId, VertexId>{0, 1}));
}

TEST(Delaunay, CollinearInputGivesPath) {
    // Points on a line in scrambled order: the degenerate Delaunay graph
    // is the path of consecutive points.
    const DelaunayTriangulation del({{3, 3}, {0, 0}, {2, 2}, {1, 1}});
    EXPECT_TRUE(del.degenerate());
    EXPECT_TRUE(del.triangles().empty());
    const std::vector<std::pair<VertexId, VertexId>> expected{{0, 2}, {1, 3}, {2, 3}};
    EXPECT_EQ(del.edges(), expected);
}

TEST(Delaunay, DuplicatePointsIgnored) {
    const DelaunayTriangulation del({{0, 0}, {1, 0}, {0, 1}, {0, 0}, {1, 0}});
    EXPECT_EQ(del.triangles().size(), 1u);
    EXPECT_EQ(del.triangles()[0], (Triangle{0, 1, 2}));
}

TEST(Delaunay, CocircularSquarePicksOneDiagonal) {
    const std::vector<Point> square{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    const DelaunayTriangulation del(square);
    EXPECT_EQ(del.triangles().size(), 2u);
    EXPECT_EQ(del.edges().size(), 5u);  // 4 sides + 1 diagonal.
    // Whichever diagonal was chosen, both triangles are valid (no point
    // strictly inside a circumcircle).
    for (const auto& t : del.triangles()) {
        for (VertexId l = 0; l < 4; ++l) {
            if (l == t.a || l == t.b || l == t.c) continue;
            EXPECT_LE(geom::in_circumcircle(square[t.a], square[t.b], square[t.c],
                                            square[l]),
                      0);
        }
    }
}

TEST(Delaunay, PointOnHullEdgeAndBeyond) {
    // Insert points exactly on a hull edge and collinear beyond the hull;
    // both exercised the ghost-triangle special cases.
    const std::vector<Point> pts{{0, 0}, {4, 0}, {2, 3}, {2, 0}, {6, 0}, {-2, 0}};
    const DelaunayTriangulation del(pts);
    EXPECT_FALSE(del.degenerate());
    // All 6 points distinct and not all collinear: Euler's formula with
    // t triangles, e edges: e = 3n - 3 - h, t = 2n - 2 - h.
    const std::size_t h = hull_vertex_count(pts);
    EXPECT_EQ(del.edges().size(), 3 * pts.size() - 3 - h);
    EXPECT_EQ(del.triangles().size(), 2 * pts.size() - 2 - h);
    EXPECT_EQ(del.triangles(), brute_force_triangles(pts));
}

class DelaunayRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayRandom, MatchesBruteForce) {
    const auto pts = test::random_points(24, 100.0, GetParam());
    const DelaunayTriangulation del(pts);
    EXPECT_EQ(del.triangles(), brute_force_triangles(pts));
}

TEST_P(DelaunayRandom, EulerInvariant) {
    const auto pts = test::random_points(60, 100.0, GetParam() + 1000);
    const DelaunayTriangulation del(pts);
    const std::size_t h = hull_vertex_count(pts);
    EXPECT_EQ(del.edges().size(), 3 * pts.size() - 3 - h);
    EXPECT_EQ(del.triangles().size(), 2 * pts.size() - 2 - h);
}

TEST_P(DelaunayRandom, EveryTriangleCircumcircleEmpty) {
    const auto pts = test::random_points(80, 50.0, GetParam() + 2000);
    const DelaunayTriangulation del(pts);
    for (const auto& t : del.triangles()) {
        for (VertexId l = 0; l < pts.size(); ++l) {
            if (l == t.a || l == t.b || l == t.c) continue;
            ASSERT_LE(geom::in_circumcircle(pts[t.a], pts[t.b], pts[t.c], pts[l]), 0)
                << "point " << l << " inside circumcircle of (" << t.a << "," << t.b
                << "," << t.c << ")";
        }
    }
}

TEST_P(DelaunayRandom, TrianglesAreCcwAndCanonical) {
    const auto pts = test::random_points(40, 100.0, GetParam() + 3000);
    const DelaunayTriangulation del(pts);
    for (const auto& t : del.triangles()) {
        EXPECT_EQ(t.a, std::min({t.a, t.b, t.c}));
        EXPECT_GT(geom::orient_sign(pts[t.a], pts[t.b], pts[t.c]), 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Delaunay, InputOrderInvariantInGeneralPosition) {
    // The Delaunay triangulation of points in general position is unique,
    // so permuting the input must not change the canonical triangle set
    // (ids are tied to input slots, so permute and map back).
    const auto pts = test::random_points(50, 100.0, 77);
    const DelaunayTriangulation base(pts);
    std::vector<std::size_t> perm(pts.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = (i * 17 + 5) % perm.size();
    std::vector<geom::Point> shuffled(pts.size());
    for (std::size_t i = 0; i < perm.size(); ++i) shuffled[i] = pts[perm[i]];
    const DelaunayTriangulation shuffled_del(shuffled);
    std::vector<Triangle> mapped;
    for (const auto& t : shuffled_del.triangles()) {
        // Map shuffled-slot ids back to original ids and canonicalize
        // (rotation only; orientation is preserved by relabeling).
        std::array<VertexId, 3> v{static_cast<VertexId>(perm[t.a]),
                                  static_cast<VertexId>(perm[t.b]),
                                  static_cast<VertexId>(perm[t.c])};
        while (v[0] != std::min({v[0], v[1], v[2]})) {
            std::rotate(v.begin(), v.begin() + 1, v.end());
        }
        mapped.push_back({v[0], v[1], v[2]});
    }
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(mapped, base.triangles());
}

TEST(Delaunay, LargeInstanceSampledValidity) {
    // 1500 points: spot-check the empty-circumcircle property on a
    // sample of triangles against a sample of points (full check is
    // quadratic in a number this size).
    const auto pts = test::random_points(1500, 1000.0, 4242);
    const DelaunayTriangulation del(pts);
    const std::size_t h = geom::convex_hull_with_collinear(pts).size();
    EXPECT_EQ(del.triangles().size(), 2 * pts.size() - 2 - h);
    for (std::size_t i = 0; i < del.triangles().size(); i += 37) {
        const auto& t = del.triangles()[i];
        for (VertexId l = 0; l < pts.size(); l += 11) {
            if (l == t.a || l == t.b || l == t.c) continue;
            ASSERT_LE(geom::in_circumcircle(pts[t.a], pts[t.b], pts[t.c], pts[l]), 0);
        }
    }
}

TEST(Delaunay, GridIsFullyCocircular) {
    // A 5x5 integer grid: every unit square is cocircular. The result
    // must still be a valid triangulation satisfying Euler's relation.
    std::vector<Point> pts;
    for (int x = 0; x < 5; ++x) {
        for (int y = 0; y < 5; ++y) pts.push_back({double(x), double(y)});
    }
    const DelaunayTriangulation del(pts);
    const std::size_t h = hull_vertex_count(pts);
    EXPECT_EQ(del.edges().size(), 3 * pts.size() - 3 - h);
    EXPECT_EQ(del.triangles().size(), 2 * pts.size() - 2 - h);
    for (const auto& t : del.triangles()) {
        for (VertexId l = 0; l < pts.size(); ++l) {
            if (l == t.a || l == t.b || l == t.c) continue;
            ASSERT_LE(geom::in_circumcircle(pts[t.a], pts[t.b], pts[t.c], pts[l]), 0);
        }
    }
}

}  // namespace
}  // namespace geospanner::delaunay
