// Extension: localized routing protocol quality on planar substrates.
//
// The paper's backbone exists to host geographic routing (GPSR and kin).
// This bench compares the localized protocols — greedy, compass, GPSR
// perimeter mode, FACE-1, GFG — on the two planar substrates the paper
// discusses: the Gabriel graph (GPSR's classic substrate, a poor
// spanner) and the planarized localized Delaunay graph (a good one),
// measuring delivery rate and path quality against true shortest paths.
#include <iostream>

#include "bench_util.h"
#include "graph/shortest_paths.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"
#include "random/rng.h"
#include "routing/router.h"

using namespace geospanner;

namespace {

struct Tally {
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    double hop_stretch = 0.0;
    double len_stretch = 0.0;
};

}  // namespace

int main() {
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 50.0;
    const std::size_t trials = bench::trials_or(5);
    const std::size_t pairs_per_instance = 300;

    std::cout << "=== Extension: localized routing quality (n=" << n << ", R=" << radius
              << ", " << trials << " instances x " << pairs_per_instance
              << " pairs) ===\n"
              << "stretch measured against UDG shortest paths, delivered pairs only\n\n";

    const char* substrate_names[2] = {"Gabriel graph", "PLDel(V)"};
    const char* scheme_names[5] = {"greedy", "compass", "GPSR", "FACE-1", "GFG"};
    Tally tally[2][5];

    for (std::size_t trial = 0; trial < trials; ++trial) {
        core::WorkloadConfig config;
        config.node_count = n;
        config.side = side;
        config.radius = radius;
        config.seed = 2000 + trial;
        const auto udg = core::random_connected_udg(config);
        if (!udg) continue;
        const graph::GeometricGraph substrates[2] = {proximity::build_gabriel(*udg),
                                                     proximity::build_pldel(*udg)};
        rnd::Xoshiro256 rng(900 + trial);
        std::vector<std::pair<graph::NodeId, graph::NodeId>> queries;
        while (queries.size() < pairs_per_instance) {
            const auto s = static_cast<graph::NodeId>(rng.below(n));
            const auto t = static_cast<graph::NodeId>(rng.below(n));
            if (s != t) queries.push_back({s, t});
        }
        for (int g = 0; g < 2; ++g) {
            const routing::Router router(substrates[g]);
            for (const auto& [s, t] : queries) {
                const auto opt_hops = graph::bfs_hops(*udg, s)[t];
                const auto opt_len = graph::dijkstra_lengths(*udg, s)[t];
                const routing::RouteResult results[5] = {
                    router.greedy(s, t), router.compass(s, t), router.gpsr(s, t),
                    router.face(s, t), router.gfg(s, t)};
                for (int k = 0; k < 5; ++k) {
                    ++tally[g][k].attempted;
                    if (!results[k].delivered) continue;
                    ++tally[g][k].delivered;
                    tally[g][k].hop_stretch +=
                        static_cast<double>(results[k].hops()) / opt_hops;
                    tally[g][k].len_stretch += results[k].length(*udg) / opt_len;
                }
            }
        }
    }

    io::Table table({"substrate", "scheme", "delivery %", "hop stretch avg",
                     "len stretch avg"});
    for (int g = 0; g < 2; ++g) {
        for (int k = 0; k < 5; ++k) {
            const Tally& t = tally[g][k];
            table.begin_row().cell(std::string(substrate_names[g])).cell(
                std::string(scheme_names[k]));
            table.cell(100.0 * static_cast<double>(t.delivered) /
                           static_cast<double>(t.attempted),
                       1);
            if (t.delivered > 0) {
                table.cell(t.hop_stretch / static_cast<double>(t.delivered));
                table.cell(t.len_stretch / static_cast<double>(t.delivered));
            } else {
                table.dash().dash();
            }
        }
    }
    io::maybe_write_csv("routing_quality", table);
    std::cout << table.str()
              << "\nexpected: FACE-1/GFG deliver 100% on both planar substrates; the\n"
                 "Delaunay-based substrate gives shorter routes than Gabriel; greedy\n"
                 "and compass fail on a small fraction of pairs (local minima).\n";
    return 0;
}
