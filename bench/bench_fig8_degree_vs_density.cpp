// Figure 8 reproduction: node degree (max and average) of the backbone
// structures as a function of node density (n = 20..100, R = 60).
//
// The paper's headline: max degree of CDS / ICDS / LDel(ICDS) stays flat
// as density grows (bounded-degree backbone), while the primed variants
// (which include dominatee links) track the UDG's max degree.
#include <iostream>

#include "bench_backend_util.h"
#include "bench_util.h"
#include "graph/metrics.h"

using namespace geospanner;

int main() {
    // GS_BACKEND reruns the sweep under an alternative spanner
    // backend; unset (or "engine") keeps the paper reproduction.
    if (bench::backend_override()) {
        return bench::run_backend_figure({"fig8",
                                          {20, 30, 40, 50, 60, 70, 80, 90, 100},
                                          {60.0},
                                          250.0, 8000, bench::trials_or(20)});
    }
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(20);

    std::cout << "=== Figure 8: node degree vs node density (R=" << radius
              << ", region " << side << "x" << side << ", " << trials
              << " instances/point) ===\n\n";

    io::Table max_table({"n", "CDS", "CDS'", "ICDS", "ICDS'", "LDelICDS", "LDelICDS'"});
    io::Table avg_table({"n", "CDS", "CDS'", "ICDS", "ICDS'", "LDelICDS", "LDelICDS'"});

    for (std::size_t n = 20; n <= 100; n += 10) {
        bench::MaxAvg max_stats[6];
        bench::MaxAvg avg_stats[6];
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 8000 + trial,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const auto& bb = instance->backbone;
            const graph::GeometricGraph* topos[6] = {&bb.cds,       &bb.cds_prime,
                                                     &bb.icds,      &bb.icds_prime,
                                                     &bb.ldel_icds, &bb.ldel_icds_prime};
            for (int i = 0; i < 6; ++i) {
                const auto d = graph::degree_stats(*topos[i]);
                max_stats[i].add(static_cast<double>(d.max));
                avg_stats[i].add(d.avg);
            }
        }
        max_table.begin_row().cell(n);
        for (const auto& s : max_stats) max_table.cell(s.max, 0);
        avg_table.begin_row().cell(n);
        for (const auto& s : avg_stats) avg_table.cell(s.avg());
    }

    io::maybe_write_csv("fig8_degree_max", max_table);
    io::maybe_write_csv("fig8_degree_avg", avg_table);
    std::cout << "max degree (max over instances):\n" << max_table.str() << '\n'
              << "average degree (mean over instances):\n" << avg_table.str()
              << "\nexpected shape (paper Fig. 8): CDS/ICDS/LDel(ICDS) max degree flat\n"
                 "in n; CDS'/ICDS'/LDel(ICDS') max degree grows with density.\n";
    return 0;
}
