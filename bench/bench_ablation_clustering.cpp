// Ablation: clusterhead election criterion (DESIGN.md §5).
//
// The paper's pipeline uses lowest-ID election (Baker/Alzoubi); the
// literature it reviews also uses highest-degree (Gerla & Tsai). Both
// produce a valid MIS, so every downstream guarantee holds either way —
// this bench quantifies what actually changes: backbone size, degree,
// stretch, and message cost.
#include <iostream>

#include "bench_util.h"
#include "engine/thread_pool.h"
#include "graph/metrics.h"

using namespace geospanner;

int main() {
    engine::ThreadPool pool;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t n = 100;
    const std::size_t trials = bench::trials_or(20);

    std::cout << "=== Ablation: lowest-id vs highest-degree clustering (n=" << n
              << ", R=" << radius << ", " << trials << " instances) ===\n\n";

    io::Table table({"policy", "dominators", "backbone", "CDS deg max",
                     "LDel(ICDS') len avg", "LDel(ICDS') hop avg", "msgs max", "msgs avg"});

    for (const auto policy : {protocol::ClusterPolicy::kLowestId,
                              protocol::ClusterPolicy::kHighestDegree}) {
        bench::MaxAvg dominators, backbone, deg_max, len_avg, hop_avg, msg_max, msg_avg;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            core::WorkloadConfig config;
            config.node_count = n;
            config.side = side;
            config.radius = radius;
            config.seed = 4000 + trial;
            const auto udg = core::random_connected_udg(config);
            if (!udg) continue;
            core::BuildOptions options;
            options.engine = core::Engine::kDistributed;
            options.cluster_policy = policy;
            const core::Backbone bb = core::build_backbone(*udg, options);

            dominators.add(static_cast<double>(bb.cluster.dominator_count()));
            backbone.add(static_cast<double>(bb.backbone_size()));
            deg_max.add(static_cast<double>(graph::degree_stats(bb.cds).max));
            len_avg.add(graph::length_stretch(*udg, bb.ldel_icds_prime, radius, &pool).avg);
            hop_avg.add(graph::hop_stretch(*udg, bb.ldel_icds_prime, radius, &pool).avg);
            msg_max.add(
                static_cast<double>(core::MessageStats::max_of(bb.messages.after_ldel)));
            msg_avg.add(core::MessageStats::avg_of(bb.messages.after_ldel));
        }
        table.begin_row()
            .cell(policy == protocol::ClusterPolicy::kLowestId ? std::string("lowest-id")
                                                               : std::string("highest-degree"))
            .cell(dominators.avg())
            .cell(backbone.avg())
            .cell(deg_max.max, 0)
            .cell(len_avg.avg())
            .cell(hop_avg.avg())
            .cell(msg_max.max, 0)
            .cell(msg_avg.avg());
    }
    io::maybe_write_csv("ablation_clustering", table);
    std::cout << table.str()
              << "\nhighest-degree elects fewer, better-placed clusterheads (smaller\n"
                 "dominating set) at identical stretch; message costs are comparable.\n";
    return 0;
}
