// Construction hot-path microbenches: the three kernels a build spends
// its time in, measured in isolation so regressions are attributable
// before they blur into full-pipeline wall time.
//
//  * cell grid — CSR build cost and batched 3x3 neighbor enumeration
//    over the gathered coordinate columns (candidate visits/s);
//  * incircle — filtered in-circumcircle throughput on a uniform
//    workload, with the float filter's hit rate from the predicate
//    counters (the exact-fallback share is the robustness tax);
//  * Bowyer–Watson — workspace-reusing Delaunay insertion rate on
//    Morton-ordered inserts (points/s).
//
// One JSON object per kernel is appended to $GS_BENCH_JSON (default
// BENCH_hotpath.json). GS_BENCH_TRIALS controls repetitions (best-of);
// GS_BENCH_NMAX caps the point-set size.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/workload.h"
#include "delaunay/delaunay.h"
#include "geom/predicates.h"
#include "proximity/cell_grid.h"
#include "random/rng.h"

using namespace geospanner;

namespace {

using Clock = std::chrono::steady_clock;

double run_ms(const std::function<void()>& fn) {
    const auto start = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double best_of(std::size_t trials, const std::function<void()>& fn) {
    double best = run_ms(fn);
    for (std::size_t t = 1; t < trials; ++t) best = std::min(best, run_ms(fn));
    return best;
}

/// Uniform deployment with expected UDG degree ~12 at unit radius.
std::vector<geom::Point> deployment(std::size_t n, std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
    config.seed = seed;
    return core::uniform_points(config);
}

}  // namespace

int main() {
    const std::size_t trials = bench::trials_or(3);
    const std::size_t n = bench::nmax_or(50'000);
    const bench::JsonSink sink("hotpath", "BENCH_hotpath.json");
    const auto points = deployment(n, 4242);
    std::cout << "hot-path kernels (n=" << n << ", trials=" << trials << ")\n\n";

    // ---- Cell grid: CSR build + batched neighbor enumeration. ----
    {
        const double build_ms =
            best_of(trials, [&] { proximity::CompactCellGrid rebuilt(points, 1.0); });
        const proximity::CompactCellGrid grid(points, 1.0);
        std::size_t neighbor_pairs = 0;
        const double scan_ms = best_of(trials, [&] {
            std::size_t found = 0;
            for (graph::NodeId v = 0; v < points.size(); ++v) {
                grid.for_neighbors_above(points[v], v, 1.0,
                                         [&](graph::NodeId) { ++found; });
            }
            neighbor_pairs = found;
        });
        const double scans_per_s =
            scan_ms > 0.0 ? 1000.0 * static_cast<double>(points.size()) / scan_ms : 0.0;
        std::cout << "cell grid      build " << build_ms << " ms, full scan " << scan_ms
                  << " ms (" << scans_per_s << " node scans/s, " << neighbor_pairs
                  << " pairs)\n";
        auto obj = sink.row();
        obj.add("kernel", "cell_grid")
            .add("n", n)
            .add("build_ms", build_ms)
            .add("scan_ms", scan_ms)
            .add("node_scans_per_s", scans_per_s)
            .add("neighbor_pairs", neighbor_pairs);
        sink.emit(obj);
    }

    // ---- Incircle: filtered throughput + filter hit rate. ----
    {
        // Random CCW triples and query points drawn from the deployment:
        // the distribution the Delaunay stage actually evaluates.
        rnd::Xoshiro256 rng(99);
        struct Query {
            geom::Point a, b, c, d;
        };
        std::vector<Query> queries;
        queries.reserve(200'000);
        while (queries.size() < 200'000) {
            Query q{points[rng.below(points.size())], points[rng.below(points.size())],
                    points[rng.below(points.size())], points[rng.below(points.size())]};
            const int o = geom::orient_sign(q.a, q.b, q.c);
            if (o == 0) continue;
            if (o < 0) std::swap(q.b, q.c);
            queries.push_back(q);
        }
        geom::reset_predicate_counters();
        long long acc = 0;
        const double ms = best_of(trials, [&] {
            long long sum = 0;
            for (const Query& q : queries) sum += geom::incircle_ccw(q.a, q.b, q.c, q.d);
            acc = sum;
        });
        const geom::PredicateCounters preds = geom::predicate_counters();
        const std::uint64_t calls = preds.incircle_fast + preds.incircle_exact;
        const double hit_rate =
            calls > 0 ? static_cast<double>(preds.incircle_fast) /
                            static_cast<double>(calls)
                      : 1.0;
        const double per_s =
            ms > 0.0 ? 1000.0 * static_cast<double>(queries.size()) / ms : 0.0;
        std::cout << "incircle       " << per_s << " calls/s, filter hit rate "
                  << hit_rate << " (sign sum " << acc << ")\n";
        auto obj = sink.row();
        obj.add("kernel", "incircle")
            .add("calls", queries.size())
            .add("wall_ms", ms)
            .add("calls_per_s", per_s)
            .add("filter_hit_rate", hit_rate);
        sink.emit(obj);
    }

    // ---- Bowyer–Watson: workspace-reusing insertion rate. ----
    {
        delaunay::Workspace ws;
        std::vector<delaunay::Triangle> tris;
        std::size_t triangles = 0;
        const double ms = best_of(trials, [&] {
            tris.clear();
            delaunay::triangulate(points, ws, tris);
            triangles = tris.size();
        });
        const double inserts_per_s =
            ms > 0.0 ? 1000.0 * static_cast<double>(points.size()) / ms : 0.0;
        std::cout << "bowyer-watson  " << inserts_per_s << " inserts/s (" << triangles
                  << " triangles)\n";
        auto obj = sink.row();
        obj.add("kernel", "bowyer_watson")
            .add("n", n)
            .add("wall_ms", ms)
            .add("inserts_per_s", inserts_per_s)
            .add("triangles", triangles);
        sink.emit(obj);
    }

    std::cout << "\nJSON appended to " << sink.path() << '\n';
    return 0;
}
