// GS_BACKEND routing for the figure benches.
//
// By default the figure benches reproduce the paper's plots with the
// paper pipeline. Setting GS_BACKEND=<registry name> reruns the same
// instance sweep under any registered spanner backend instead, printing
// one generic figure (degree, stretch, messages, build time per sweep
// point) for the selected backend's spanner. The default output is
// untouched: with GS_BACKEND unset (or "engine", whose figure-bench
// semantics the paper tables already cover) each bench runs its
// original paper reproduction byte-for-byte.
//
// Lives in its own header so only the figure benches pull in
// gs_backends; bench_util.h stays backend-agnostic.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "bench_util.h"
#include "graph/metrics.h"
#include "io/table.h"

namespace geospanner::bench {

/// Value of GS_BACKEND; "engine" (the paper pipeline) when unset.
inline std::string backend_name() {
    const char* env = std::getenv("GS_BACKEND");
    return env == nullptr || *env == '\0' ? std::string{"engine"} : std::string{env};
}

/// True when GS_BACKEND selects an alternative construction; the figure
/// benches then route through run_backend_figure.
inline bool backend_override() { return backend_name() != "engine"; }

/// One figure bench's instance sweep, replayed under a backend.
struct FigureSweep {
    std::string figure;                   ///< e.g. "fig8"
    std::vector<std::size_t> node_counts; ///< outer sweep axis
    std::vector<double> radii;            ///< inner sweep axis
    double side = 250.0;
    std::uint64_t base_seed = 0;
    std::size_t trials = 3;
};

/// Replays `sweep` under the GS_BACKEND construction: same connected-UDG
/// instances (same seeds) as the paper run, one row per sweep point with
/// the backend spanner's degree, far-pair stretch, message count, and
/// build time. Returns a process exit code.
inline int run_backend_figure(const FigureSweep& sweep) {
    const std::string name = backend_name();
    auto probe = backends::make_backend(name);
    if (!probe) {
        std::cerr << "unknown GS_BACKEND '" << name << "'; registered:";
        for (const auto& b : backends::registered_backends()) std::cerr << ' ' << b;
        std::cerr << '\n';
        return 1;
    }

    std::cout << "=== " << sweep.figure << " under backend '" << name << "' ("
              << sweep.trials << " instances/point) ===\n"
              << "stretch over pairs more than one radius apart\n\n";

    io::Table table({"n", "R", "edges", "deg_max", "deg_avg", "len avg", "len max",
                     "hop avg", "hop max", "msg_max", "build_ms"});
    for (const std::size_t n : sweep.node_counts) {
        for (const double radius : sweep.radii) {
            MaxAvg edges, deg_max, deg_avg, len_avg, len_max, hop_avg, hop_max,
                msg_max, build_ms;
            for (std::size_t trial = 0; trial < sweep.trials; ++trial) {
                core::WorkloadConfig config;
                config.node_count = n;
                config.side = sweep.side;
                config.radius = radius;
                config.seed = sweep.base_seed + trial;
                const auto udg = core::random_connected_udg(config);
                if (!udg) continue;

                auto backend = backends::make_backend(name);
                const auto start = std::chrono::steady_clock::now();
                const auto result = backend->build(*udg, radius);
                build_ms.add(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());

                const auto degrees = graph::degree_stats(result.spanner);
                const auto len = graph::length_stretch(*udg, result.spanner, radius);
                const auto hop = graph::hop_stretch(*udg, result.spanner, radius);
                edges.add(static_cast<double>(result.spanner.edge_count()));
                deg_max.add(static_cast<double>(degrees.max));
                deg_avg.add(degrees.avg);
                len_avg.add(len.avg);
                len_max.add(len.max);
                hop_avg.add(hop.avg);
                hop_max.add(hop.max);
                msg_max.add(static_cast<double>(
                    core::MessageStats::max_of(result.messages.after_ldel)));
            }
            table.begin_row()
                .cell(n)
                .cell(radius, 0)
                .cell(edges.avg())
                .cell(deg_max.max, 0)
                .cell(deg_avg.avg())
                .cell(len_avg.avg())
                .cell(len_max.max)
                .cell(hop_avg.avg())
                .cell(hop_max.max)
                .cell(msg_max.max, 0)
                .cell(build_ms.avg(), 1);
        }
    }
    io::maybe_write_csv(sweep.figure + "_backend_" + name, table);
    std::cout << table.str()
              << "\n(max columns: max over instances; avg columns: mean over "
                 "instances)\n";
    return 0;
}

}  // namespace geospanner::bench
