// Engine scaling: full-pipeline construction throughput vs thread count
// and vs node count, single-instance and batched.
//
// Smoke mode (GS_BENCH_TRIALS <= 2, as CI sets) shrinks the node-count
// sweep; GS_BENCH_NMAX overrides the sweep's ceiling in either mode
// (rungs above it are dropped, and the ceiling itself becomes the top
// rung — set GS_BENCH_NMAX=1000000 for a million-node soak). Every
// measurement is appended as one JSON object to $GS_BENCH_JSON (default
// BENCH_engine.json) for the perf trajectory; the single-instance
// section also prints the 4-thread speedup on the 50k-node uniform
// workload (the scaling acceptance metric) and the per-stage breakdown
// — wall time plus share of total, with the Morton/grid reorder cost as
// its own "grid" row — at the largest n on one thread, where the stage
// mix actually matters. Each single-instance row also carries the
// exact-predicate fallback share of that build (pred_exact_share),
// tying the float filter's hit rate to the trajectory.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/workload.h"
#include "engine/batch.h"
#include "engine/engine.h"
#include "geom/predicates.h"
#include "io/table.h"

using namespace geospanner;

namespace {

using Clock = std::chrono::steady_clock;

double run_ms(const std::function<void()>& fn) {
    const auto start = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Uniform deployment with expected UDG degree ~12 at unit radius.
std::vector<geom::Point> deployment(std::size_t n, std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
    config.seed = seed;
    return core::uniform_points(config);
}

}  // namespace

int main() {
    const bool smoke = bench::trials_or(3) <= 2;
    const bench::JsonSink sink("engine_scaling", "BENCH_engine.json");
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t nmax = bench::nmax_or(smoke ? 50'000 : 200'000);
    const std::vector<std::size_t> node_counts =
        smoke ? bench::node_ladder({10'000}, nmax)
              : bench::node_ladder({10'000, 20'000, 50'000, 100'000}, nmax);
    const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

    std::cout << "engine scaling (hardware threads: " << hw << ", nmax: " << nmax
              << (smoke ? ", smoke mode" : "") << ")\n\n";

    // ---- Single-instance construction: one build, all lanes. ----
    io::Table single({"n", "threads", "wall_ms", "speedup", "udg_edges", "backbone"});
    double speedup_50k_4t = 0.0;
    std::string largest_n_stage_table;
    for (const std::size_t n : node_counts) {
        const auto points = deployment(n, 2002 + n);
        double base_ms = 0.0;
        for (const std::size_t threads : thread_counts) {
            engine::SpannerEngine eng({.threads = threads});
            engine::BuildResult result;
            geom::reset_predicate_counters();
            const double ms = run_ms([&] { result = eng.build(points, 1.0); });
            const geom::PredicateCounters preds = geom::predicate_counters();
            const double exact_share =
                preds.total() > 0 ? static_cast<double>(preds.exact_total()) /
                                        static_cast<double>(preds.total())
                                  : 0.0;
            if (threads == 1) base_ms = ms;
            const double speedup = ms > 0.0 ? base_ms / ms : 0.0;
            if (n == 50'000 && threads == 4) speedup_50k_4t = speedup;
            if (n == node_counts.back() && threads == 1) {
                largest_n_stage_table = result.stats.table();
            }

            single.begin_row()
                .cell(n)
                .cell(threads)
                .cell(ms, 1)
                .cell(speedup, 2)
                .cell(result.udg.edge_count())
                .cell(result.backbone.backbone_size());
            auto obj = sink.row();
            obj.add("mode", "single")
                .add("n", n)
                .add("threads", threads)
                .add("hardware_threads", hw)
                .add("wall_ms", ms)
                .add("speedup_vs_1t", speedup)
                .add("udg_edges", result.udg.edge_count())
                .add("backbone_nodes", result.backbone.backbone_size())
                .add("pred_exact_share", exact_share)
                .raw("stages", result.stats.json());
            sink.emit(obj);
        }
    }
    std::cout << single.str() << '\n';
    io::maybe_write_csv("engine_scaling_single", single);
    if (speedup_50k_4t > 0.0) {
        std::cout << "4-thread speedup, 50k-node uniform workload: " << speedup_50k_4t
                  << "x (hardware threads: " << hw << ")\n\n";
    }
    if (!largest_n_stage_table.empty()) {
        std::cout << "per-stage breakdown at n=" << node_counts.back()
                  << ", threads=1:\n"
                  << largest_n_stage_table << '\n';
    }

    // ---- Batch: many instances, lanes claim whole instances. ----
    const std::size_t batch_n = smoke ? 2'000 : 5'000;
    const std::size_t batch_size = smoke ? 4 : 8;
    std::vector<core::WorkloadConfig> configs(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
        configs[i].node_count = batch_n;
        configs[i].side = std::sqrt(static_cast<double>(batch_n) * 3.14159 / 12.0);
        configs[i].radius = 1.0;
        configs[i].seed = 7'000 + i;
    }
    io::Table batch({"instances", "n", "threads", "wall_ms", "inst_per_s"});
    for (const std::size_t threads : thread_counts) {
        engine::SpannerEngine eng({.threads = threads});
        std::vector<engine::BatchResult> results;
        const double ms = run_ms([&] { results = engine::build_batch(eng, configs); });
        std::size_t built = 0;
        for (const auto& r : results) built += r.udg.has_value() ? 1 : 0;
        const double per_s = ms > 0.0 ? 1000.0 * static_cast<double>(built) / ms : 0.0;

        batch.begin_row()
            .cell(built)
            .cell(batch_n)
            .cell(threads)
            .cell(ms, 1)
            .cell(per_s, 2);
        auto obj = sink.row();
        obj.add("mode", "batch")
            .add("instances", built)
            .add("n", batch_n)
            .add("threads", threads)
            .add("hardware_threads", hw)
            .add("wall_ms", ms)
            .add("instances_per_s", per_s);
        sink.emit(obj);
    }
    std::cout << batch.str();
    io::maybe_write_csv("engine_scaling_batch", batch);
    std::cout << "\nJSON trajectory appended to " << sink.path() << '\n';
    return 0;
}
