// Ablation: approximation quality of the elected backbone against the
// exact minimum connected dominating set (exhaustive search, so small
// instances). Validates the paper's "within a constant factor of the
// optimum" claim empirically and shows where the slack comes from
// (redundant connectors vs the dominator count itself).
#include <iostream>

#include "bench_util.h"
#include "protocol/mcds_exact.h"

using namespace geospanner;

int main() {
    const double side = 90.0;
    const double radius = 40.0;
    const std::size_t trials = bench::trials_or(30);

    std::cout << "=== Ablation: backbone size vs exact MCDS (R=" << radius << ", "
              << trials << " instances/point) ===\n\n";

    io::Table table({"n", "|MCDS| avg", "dominators avg", "backbone avg",
                     "dom/MCDS avg", "backbone/MCDS avg", "backbone/MCDS max"});
    for (const std::size_t n : {8u, 10u, 12u, 14u}) {
        bench::MaxAvg opt, doms, backbone, dom_ratio, bb_ratio;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 7000 + trial * 7,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const auto mcds = protocol::minimum_connected_dominating_set(instance->udg);
            if (!mcds) continue;
            const auto& bb = instance->backbone;
            opt.add(static_cast<double>(mcds->size()));
            doms.add(static_cast<double>(bb.cluster.dominator_count()));
            backbone.add(static_cast<double>(bb.backbone_size()));
            dom_ratio.add(static_cast<double>(bb.cluster.dominator_count()) /
                          static_cast<double>(mcds->size()));
            bb_ratio.add(static_cast<double>(bb.backbone_size()) /
                         static_cast<double>(mcds->size()));
        }
        table.begin_row()
            .cell(n)
            .cell(opt.avg())
            .cell(doms.avg())
            .cell(backbone.avg())
            .cell(dom_ratio.avg())
            .cell(bb_ratio.avg())
            .cell(bb_ratio.max);
    }
    io::maybe_write_csv("ablation_cds_quality", table);
    std::cout << table.str()
              << "\nthe dominator set alone tracks the optimum closely; the\n"
                 "constant-factor slack comes from the redundant connectors the\n"
                 "election keeps for robustness.\n";
    return 0;
}
