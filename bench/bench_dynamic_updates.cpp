// Incremental maintenance throughput: updates/sec and dirty-region size
// of DynamicSpanner patches vs node count, batch size, and displacement,
// against the full parallel rebuild as baseline. The headline number is
// the single-node-move speedup at the largest n — the localized patch
// touches O(dirty region) state where the rebuild touches O(n).
//
// With GS_BENCH_JSON set, appends one JSON line per configuration
// (bench "dynamic_updates") carrying patch_ms, full_build_ms, speedup,
// dirty nodes, batch- and component-level fallback accounting, and the
// dirty-component region-size histogram. Fallback is a per-component
// decision, so the interesting ratio is component_fallback_fraction
// (over-cap components / decomposed components), not the batch count.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "dynamic/spanner.h"
#include "random/rng.h"

using namespace geospanner;

namespace {

double now_ms() {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int main() {
    // Opt-in JSON: emits only when GS_BENCH_JSON is set.
    const bench::JsonSink sink("dynamic_updates");
    const double radius = 60.0;
    const std::size_t patches = bench::trials_or(30);

    std::cout << "=== Dynamic updates: incremental patch vs full rebuild (R=" << radius
              << ", " << patches << " patches/config) ===\n"
              << "random-walk moves; displacement in units/update\n\n";

    io::Table table({"n", "batch", "step", "patch ms", "dirty nodes", "fallbacks",
                     "comps", "comp fb%", "updates/s", "full ms", "speedup"});
    for (const std::size_t n : {2000, 5000, 20000}) {
        // Side chosen for constant density (average UDG degree ~12).
        const double side =
            radius * std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
        core::WorkloadConfig config;
        config.node_count = n;
        config.side = side;
        config.radius = radius;
        config.seed = 9000 + n;
        const auto points = core::uniform_points(config);

        engine::EngineOptions eopts;
        const auto t0 = now_ms();
        engine::SpannerEngine engine(eopts);
        dynamic::DynamicSpanner dyn(engine, points, radius);
        (void)t0;
        const auto t1 = now_ms();
        auto full = engine.build(points, radius);
        const double full_ms = now_ms() - t1;
        (void)full;

        for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                             std::size_t{32}}) {
            for (const double step : {1.0, radius / 4.0, radius}) {
                rnd::Xoshiro256 rng(1234 + batch_size * 7 +
                                    static_cast<std::uint64_t>(step));
                bench::MaxAvg patch_ms, dirty, comps;
                std::size_t fallbacks = 0;
                std::size_t components_total = 0;
                std::size_t component_fallbacks = 0;
                // Dirty-component region sizes: ≤16, ≤64, ≤256, ≤1024, >1024.
                std::size_t region_hist[5] = {0, 0, 0, 0, 0};
                for (std::size_t trial = 0; trial < patches; ++trial) {
                    dynamic::UpdateBatch batch;
                    for (std::size_t i = 0; i < batch_size; ++i) {
                        const auto v =
                            static_cast<graph::NodeId>(rng.below(dyn.node_count()));
                        const geom::Point p = dyn.positions()[v];
                        const double angle = rng.uniform(0.0, 6.28318530717959);
                        batch.moves.push_back({v,
                                               {p.x + step * std::cos(angle),
                                                p.y + step * std::sin(angle)}});
                    }
                    const auto start = now_ms();
                    const auto stats = dyn.apply(batch);
                    patch_ms.add(now_ms() - start);
                    dirty.add(static_cast<double>(stats.dirty_nodes));
                    if (stats.fell_back) ++fallbacks;
                    comps.add(static_cast<double>(stats.components.size()));
                    components_total += stats.components.size();
                    component_fallbacks += stats.component_fallbacks;
                    for (const auto& comp : stats.components) {
                        const std::size_t r = comp.region.size();
                        region_hist[r <= 16 ? 0 : r <= 64 ? 1 : r <= 256 ? 2
                                    : r <= 1024 ? 3 : 4]++;
                    }
                }
                const double comp_fb_fraction =
                    components_total == 0
                        ? 0.0
                        : static_cast<double>(component_fallbacks) /
                              static_cast<double>(components_total);
                const double updates_per_sec =
                    patch_ms.avg() <= 0.0
                        ? 0.0
                        : 1000.0 * static_cast<double>(batch_size) / patch_ms.avg();
                const double speedup =
                    patch_ms.avg() <= 0.0 ? 0.0 : full_ms / patch_ms.avg();
                table.begin_row()
                    .cell(n)
                    .cell(batch_size)
                    .cell(step, 1)
                    .cell(patch_ms.avg(), 3)
                    .cell(dirty.avg(), 1)
                    .cell(fallbacks)
                    .cell(comps.avg(), 2)
                    .cell(100.0 * comp_fb_fraction, 1)
                    .cell(updates_per_sec, 1)
                    .cell(full_ms, 1)
                    .cell(speedup, 1);
                if (sink.enabled()) {
                    auto obj = sink.row();
                    obj.add("n", n)
                        .add("batch", batch_size)
                        .add("step", step)
                        .add("patch_ms_avg", patch_ms.avg())
                        .add("patch_ms_max", patch_ms.max)
                        .add("dirty_nodes_avg", dirty.avg())
                        .add("fallbacks", fallbacks)
                        .add("components_avg", comps.avg())
                        .add("component_fallbacks", component_fallbacks)
                        .add("component_fallback_fraction", comp_fb_fraction)
                        .add("region_hist_le16", region_hist[0])
                        .add("region_hist_le64", region_hist[1])
                        .add("region_hist_le256", region_hist[2])
                        .add("region_hist_le1024", region_hist[3])
                        .add("region_hist_gt1024", region_hist[4])
                        .add("updates_per_sec", updates_per_sec)
                        .add("full_build_ms", full_ms)
                        .add("speedup", speedup);
                    sink.emit(obj);
                }
            }
        }
    }
    std::cout << table.str()
              << "\nthe patch cost tracks the dirty-region size, not n: at the largest\n"
                 "n a single-node move repairs the backbone orders of magnitude\n"
                 "faster than the from-scratch parallel rebuild. large batches\n"
                 "decompose into far-apart dirty components gated individually\n"
                 "(comp fb% = over-cap components), so batch=32 stays on the\n"
                 "incremental path where a whole-batch gate rebuilt every time.\n";
    return 0;
}
