// Ablation (Section I/II claim): Yao-based structures are *not* hop
// spanners, while the CDS backbone is. The paper's witness: n nodes
// evenly distributed on a unit segment. The UDG is the complete graph
// (every pair within range), but Yao only keeps nearest-per-cone edges,
// so the two endpoints end up n-1 hops apart — unbounded hop stretch.
// CDS' routes any pair through the single dominator in <= 2 hops.
#include <iostream>

#include "bench_util.h"
#include "graph/shortest_paths.h"
#include "proximity/classic.h"
#include "proximity/udg.h"

using namespace geospanner;

int main() {
    std::cout << "=== Ablation: hop stretch on n nodes evenly spread on a unit segment ===\n"
              << "(UDG is complete; hop distance between the endpoints is 1)\n\n";

    io::Table table({"n", "Yao endpoint hops", "YaoSink endpoint hops",
                     "CDS' endpoint hops", "Yao hop stretch", "CDS' hop stretch"});
    for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
        std::vector<geom::Point> pts;
        pts.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            pts.push_back({static_cast<double>(i) / static_cast<double>(n - 1), 0.0});
        }
        const auto udg = proximity::build_udg(std::move(pts), 1.0);
        const auto yao = proximity::build_yao(udg, 8);
        const auto sink = proximity::build_yao_sink(udg, 8);
        const core::Backbone bb = core::build_backbone(udg, {core::Engine::kCentralized});

        const auto endpoint_hops = [n](const graph::GeometricGraph& g) {
            return graph::bfs_hops(g, 0)[static_cast<graph::NodeId>(n - 1)];
        };
        const int yao_hops = endpoint_hops(yao);
        const int sink_hops = endpoint_hops(sink);
        const int cds_hops = endpoint_hops(bb.cds_prime);
        table.begin_row()
            .cell(n)
            .cell(static_cast<std::size_t>(yao_hops))
            .cell(static_cast<std::size_t>(sink_hops))
            .cell(static_cast<std::size_t>(cds_hops))
            .cell(static_cast<double>(yao_hops) / 1.0, 0)
            .cell(static_cast<double>(cds_hops) / 1.0, 0);
    }
    io::maybe_write_csv("ablation_yao_hops", table);
    std::cout << table.str()
              << "\nYao hop stretch grows linearly with n (not a hop spanner);\n"
                 "CDS' needs at most 2 hops regardless of n (constant hop stretch).\n";
    return 0;
}
