// Ablation: backbone redundancy vs fault tolerance.
//
// Algorithm 1 keeps multiple connectors per dominator pair; this bench
// measures what that buys. For the elected backbone and its greedily
// pruned (inclusion-minimal) counterpart, we knock out every single
// backbone node in turn and count how often the surviving backbone
// still spans the surviving dominators.
#include <iostream>

#include "bench_util.h"
#include "graph/shortest_paths.h"
#include "graph/articulation.h"
#include "protocol/pruning.h"

using namespace geospanner;

namespace {

/// Fraction of single-node knockouts (over backbone nodes) that leave
/// the remaining dominators connected through the remaining backbone.
double single_failure_survival(const graph::GeometricGraph& udg,
                               const protocol::ClusterState& cluster,
                               const protocol::ConnectorState& conn) {
    const auto n = static_cast<graph::NodeId>(udg.node_count());
    std::size_t backbone_nodes = 0;
    std::size_t survived = 0;
    for (graph::NodeId dead = 0; dead < n; ++dead) {
        const bool is_backbone = cluster.is_dominator(dead) || conn.is_connector[dead];
        if (!is_backbone) continue;
        ++backbone_nodes;
        graph::GeometricGraph g(udg.points());
        for (const auto& [u, v] : conn.cds_edges) {
            if (u != dead && v != dead) g.add_edge(u, v);
        }
        std::vector<bool> members(n, false);
        for (graph::NodeId v = 0; v < n; ++v) {
            members[v] = v != dead && (cluster.is_dominator(v) || conn.is_connector[v]);
        }
        if (graph::is_connected_on(g, members)) ++survived;
    }
    return backbone_nodes == 0
               ? 1.0
               : static_cast<double>(survived) / static_cast<double>(backbone_nodes);
}

}  // namespace

int main() {
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(10);

    std::cout << "=== Ablation: connector redundancy vs fault tolerance (n=" << n
              << ", R=" << radius << ", " << trials << " instances) ===\n\n";

    io::Table table({"backbone", "size avg", "edges avg", "1-failure survival %",
                     "cut vertices avg"});
    bench::MaxAvg full_size, full_edges, full_survival, full_cuts;
    bench::MaxAvg alz_size, alz_edges, alz_survival, alz_cuts;
    bench::MaxAvg pruned_size, pruned_edges, pruned_survival, pruned_cuts;

    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto instance = bench::make_instance(n, side, radius, 3000 + trial,
                                                   core::Engine::kCentralized);
        if (!instance) continue;
        const auto& udg = instance->udg;
        const protocol::ClusterState cluster = protocol::cluster_reference(udg);
        const protocol::ConnectorState full = protocol::find_connectors(udg, cluster);
        const protocol::ConnectorState alzoubi =
            protocol::find_connectors_alzoubi(udg, cluster);
        const protocol::ConnectorState pruned =
            protocol::prune_connectors(udg, cluster, full);

        const auto size_of = [&](const protocol::ConnectorState& c) {
            std::size_t s = cluster.dominator_count();
            for (const bool b : c.is_connector) s += b ? 1 : 0;
            return static_cast<double>(s);
        };
        const auto cuts_of = [&](const protocol::ConnectorState& c) {
            graph::GeometricGraph cds(udg.points());
            for (const auto& [u, v] : c.cds_edges) cds.add_edge(u, v);
            std::vector<bool> members(udg.node_count());
            for (graph::NodeId v = 0; v < udg.node_count(); ++v) {
                members[v] = cluster.is_dominator(v) || c.is_connector[v];
            }
            return static_cast<double>(graph::articulation_count_within(cds, members));
        };
        full_size.add(size_of(full));
        full_edges.add(static_cast<double>(full.cds_edges.size()));
        full_survival.add(100.0 * single_failure_survival(udg, cluster, full));
        full_cuts.add(cuts_of(full));
        alz_size.add(size_of(alzoubi));
        alz_edges.add(static_cast<double>(alzoubi.cds_edges.size()));
        alz_survival.add(100.0 * single_failure_survival(udg, cluster, alzoubi));
        alz_cuts.add(cuts_of(alzoubi));
        pruned_size.add(size_of(pruned));
        pruned_edges.add(static_cast<double>(pruned.cds_edges.size()));
        pruned_survival.add(100.0 * single_failure_survival(udg, cluster, pruned));
        pruned_cuts.add(cuts_of(pruned));
    }

    table.begin_row()
        .cell(std::string("elected (Algorithm 1)"))
        .cell(full_size.avg())
        .cell(full_edges.avg())
        .cell(full_survival.avg(), 1)
        .cell(full_cuts.avg(), 1);
    table.begin_row()
        .cell(std::string("Alzoubi single-path"))
        .cell(alz_size.avg())
        .cell(alz_edges.avg())
        .cell(alz_survival.avg(), 1)
        .cell(alz_cuts.avg(), 1);
    table.begin_row()
        .cell(std::string("pruned minimal"))
        .cell(pruned_size.avg())
        .cell(pruned_edges.avg())
        .cell(pruned_survival.avg(), 1)
        .cell(pruned_cuts.avg(), 1);
    io::maybe_write_csv("ablation_robustness", table);
    std::cout << table.str()
              << "\nboth connector schemes cover every nearby dominator pair and so\n"
                 "retain path diversity (one path per ordered pair still overlaps\n"
                 "heavily across pairs), absorbing nearly all single-node failures;\n"
                 "only the inclusion-minimal pruning destroys that redundancy, and\n"
                 "with it the fault tolerance.\n";
    return 0;
}
