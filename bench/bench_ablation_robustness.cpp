// Ablation: backbone redundancy vs fault tolerance.
//
// Algorithm 1 keeps multiple connectors per dominator pair; this bench
// measures what that buys. For the elected backbone and its greedily
// pruned (inclusion-minimal) counterpart, we knock out every single
// backbone node in turn and count how often the surviving backbone
// still spans the surviving dominators.
#include <array>
#include <iostream>

#include "bench_util.h"
#include "graph/shortest_paths.h"
#include "graph/articulation.h"
#include "protocol/pruning.h"

using namespace geospanner;

namespace {

/// Fraction of single-node knockouts (over backbone nodes) that leave
/// the remaining dominators connected through the remaining backbone.
double single_failure_survival(const graph::GeometricGraph& udg,
                               const protocol::ClusterState& cluster,
                               const protocol::ConnectorState& conn) {
    const auto n = static_cast<graph::NodeId>(udg.node_count());
    std::size_t backbone_nodes = 0;
    std::size_t survived = 0;
    for (graph::NodeId dead = 0; dead < n; ++dead) {
        const bool is_backbone = cluster.is_dominator(dead) || conn.is_connector[dead];
        if (!is_backbone) continue;
        ++backbone_nodes;
        graph::GeometricGraph g(udg.points());
        for (const auto& [u, v] : conn.cds_edges) {
            if (u != dead && v != dead) g.add_edge(u, v);
        }
        std::vector<bool> members(n, false);
        for (graph::NodeId v = 0; v < n; ++v) {
            members[v] = v != dead && (cluster.is_dominator(v) || conn.is_connector[v]);
        }
        if (graph::is_connected_on(g, members)) ++survived;
    }
    return backbone_nodes == 0
               ? 1.0
               : static_cast<double>(survived) / static_cast<double>(backbone_nodes);
}

}  // namespace

int main() {
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(10);

    std::cout << "=== Ablation: connector redundancy vs fault tolerance (n=" << n
              << ", R=" << radius << ", " << trials << " instances) ===\n\n";

    // Opt-in JSON: emits only when GS_BENCH_JSON is set.
    const bench::JsonSink sink("ablation_robustness");

    io::Table table({"backbone", "size avg", "edges avg", "1-failure survival %",
                     "cut vertices avg"});
    struct SchemeStats {
        const char* name;
        bench::MaxAvg size, edges, survival, cuts;
    };
    std::array<SchemeStats, 3> schemes{{{"elected (Algorithm 1)"},
                                        {"Alzoubi single-path"},
                                        {"pruned minimal"}}};

    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto instance = bench::make_instance(n, side, radius, 3000 + trial,
                                                   core::Engine::kCentralized);
        if (!instance) continue;
        const auto& udg = instance->udg;
        const protocol::ClusterState cluster = protocol::cluster_reference(udg);
        const protocol::ConnectorState full = protocol::find_connectors(udg, cluster);
        const protocol::ConnectorState alzoubi =
            protocol::find_connectors_alzoubi(udg, cluster);
        const protocol::ConnectorState pruned =
            protocol::prune_connectors(udg, cluster, full);

        const auto size_of = [&](const protocol::ConnectorState& c) {
            std::size_t s = cluster.dominator_count();
            for (const bool b : c.is_connector) s += b ? 1 : 0;
            return static_cast<double>(s);
        };
        const auto cuts_of = [&](const protocol::ConnectorState& c) {
            graph::GeometricGraph cds(udg.points());
            for (const auto& [u, v] : c.cds_edges) cds.add_edge(u, v);
            std::vector<bool> members(udg.node_count());
            for (graph::NodeId v = 0; v < udg.node_count(); ++v) {
                members[v] = cluster.is_dominator(v) || c.is_connector[v];
            }
            return static_cast<double>(graph::articulation_count_within(cds, members));
        };
        const std::array<const protocol::ConnectorState*, 3> states{&full, &alzoubi,
                                                                     &pruned};
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            schemes[i].size.add(size_of(*states[i]));
            schemes[i].edges.add(static_cast<double>(states[i]->cds_edges.size()));
            schemes[i].survival.add(
                100.0 * single_failure_survival(udg, cluster, *states[i]));
            schemes[i].cuts.add(cuts_of(*states[i]));
        }
    }

    for (const SchemeStats& s : schemes) {
        table.begin_row()
            .cell(std::string(s.name))
            .cell(s.size.avg())
            .cell(s.edges.avg())
            .cell(s.survival.avg(), 1)
            .cell(s.cuts.avg(), 1);
        auto obj = sink.row();
        obj.add("backbone", s.name)
            .add("nodes", n)
            .add("radius", radius)
            .add("trials", trials)
            .add("size_avg", s.size.avg())
            .add("edges_avg", s.edges.avg())
            .add("survival_pct_avg", s.survival.avg())
            .add("cut_vertices_avg", s.cuts.avg())
            .add("cut_vertices_max", s.cuts.max);
        sink.emit(obj);
    }
    std::cout << table.str()
              << "\nboth connector schemes cover every nearby dominator pair and so\n"
                 "retain path diversity (one path per ordered pair still overlaps\n"
                 "heavily across pairs), absorbing nearly all single-node failures;\n"
                 "only the inclusion-minimal pruning destroys that redundancy, and\n"
                 "with it the fault tolerance.\n";
    return 0;
}
