// Figure 12 reproduction: communication cost and node degree of CDS,
// ICDS, LDel(ICDS) vs transmission radius (N = 500, R = 20..60).
// Distributed engine (real protocol runs with message accounting).
//
// Expected shape: max communication cost grows mildly with radius (more
// dominators audible within 2-3 hops -> more connector elections), but
// stays bounded; backbone degrees stay flat.
#include <iostream>

#include "bench_backend_util.h"
#include "bench_util.h"
#include "graph/metrics.h"

using namespace geospanner;

int main() {
    // GS_BACKEND reruns the sweep under an alternative spanner
    // backend; unset (or "engine") keeps the paper reproduction.
    if (bench::backend_override()) {
        return bench::run_backend_figure({"fig12",
                                          {500},
                                          {20.0, 30.0, 40.0, 50.0, 60.0},
                                          250.0, 12000, bench::trials_or(3)});
    }
    const double side = 250.0;
    const std::size_t n = 500;
    const std::size_t trials = bench::trials_or(3);

    std::cout << "=== Figure 12: communication cost and node degree vs radius (N=" << n
              << ", " << trials << " instances/point) ===\n\n";

    io::Table comm_table({"R", "CDS max", "CDS avg", "ICDS max", "ICDS avg",
                          "LDelICDS max", "LDelICDS avg"});
    io::Table deg_table({"R", "CDS max", "CDS avg", "ICDS max", "ICDS avg",
                         "LDelICDS max", "LDelICDS avg"});

    for (double radius = 20.0; radius <= 60.0; radius += 10.0) {
        bench::MaxAvg comm_max[3], comm_avg[3], deg_max[3], deg_avg[3];
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(
                n, side, radius, 12000 + trial, core::Engine::kDistributed);
            if (!instance) continue;
            const auto& bb = instance->backbone;
            const std::vector<std::size_t>* stages[3] = {&bb.messages.after_cds,
                                                         &bb.messages.after_icds,
                                                         &bb.messages.after_ldel};
            for (int i = 0; i < 3; ++i) {
                comm_max[i].add(static_cast<double>(core::MessageStats::max_of(*stages[i])));
                comm_avg[i].add(core::MessageStats::avg_of(*stages[i]));
            }
            const graph::GeometricGraph* topos[3] = {&bb.cds, &bb.icds, &bb.ldel_icds};
            for (int i = 0; i < 3; ++i) {
                const auto d = graph::degree_stats(*topos[i]);
                deg_max[i].add(static_cast<double>(d.max));
                deg_avg[i].add(d.avg);
            }
        }
        comm_table.begin_row().cell(radius, 0);
        deg_table.begin_row().cell(radius, 0);
        for (int i = 0; i < 3; ++i) {
            comm_table.cell(comm_max[i].max, 0).cell(comm_avg[i].avg());
            deg_table.cell(deg_max[i].max, 0).cell(deg_avg[i].avg());
        }
    }

    io::maybe_write_csv("fig12_comm", comm_table);
    io::maybe_write_csv("fig12_degree", deg_table);
    std::cout << "communication cost per node (broadcasts):\n" << comm_table.str()
              << "\nnode degree of the backbone structures:\n" << deg_table.str()
              << "\nexpected shape (paper Fig. 12): max comm ~15-65 growing mildly with\n"
                 "R; backbone degrees flat and small across the sweep.\n";
    return 0;
}
