// Shared helpers for the benchmark harness (one binary per paper table
// or figure). Every bench prints aligned-column tables of the same
// series the paper plots; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/workload.h"
#include "io/table.h"

namespace geospanner::bench {

/// Environment-tunable trial count so CI can shrink runs:
/// GS_BENCH_TRIALS overrides the default.
inline std::size_t trials_or(std::size_t default_trials) {
    if (const char* env = std::getenv("GS_BENCH_TRIALS")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v > 0) return v;
    }
    return default_trials;
}

/// Environment-tunable node-count ceiling for the scaling benches:
/// GS_BENCH_NMAX caps (and extends) the largest instance swept, so CI
/// smoke runs and million-node soak runs share one binary.
inline std::size_t nmax_or(std::size_t default_nmax) {
    if (const char* env = std::getenv("GS_BENCH_NMAX")) {
        const auto v = std::strtoul(env, nullptr, 10);
        if (v > 0) return v;
    }
    return default_nmax;
}

/// The standard node-count ladder up to `nmax`: every rung of `ladder`
/// strictly below nmax, then nmax itself as the top rung.
inline std::vector<std::size_t> node_ladder(const std::vector<std::size_t>& ladder,
                                            std::size_t nmax) {
    std::vector<std::size_t> out;
    for (const std::size_t n : ladder) {
        if (n < nmax) out.push_back(n);
    }
    out.push_back(nmax);
    return out;
}

/// One experiment instance: a connected UDG and the full backbone built
/// with the requested engine. Seeds are derived from (base_seed, trial).
struct Instance {
    graph::GeometricGraph udg;
    core::Backbone backbone;
};

inline std::optional<Instance> make_instance(std::size_t n, double side, double radius,
                                             std::uint64_t seed, core::Engine engine) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = side;
    config.radius = radius;
    config.seed = seed;
    auto udg = core::random_connected_udg(config);
    if (!udg) return std::nullopt;
    Instance instance{std::move(*udg), {}};
    instance.backbone = core::build_backbone(instance.udg, {engine});
    return instance;
}

/// Minimal flat JSON object builder for the machine-readable bench
/// trajectory (one object per run, appended as a line of JSON — easy to
/// diff across PRs and to load with any JSON-lines reader).
class JsonObject {
  public:
    JsonObject& add(const std::string& key, const std::string& value) {
        return raw(key, '"' + value + '"');
    }
    JsonObject& add(const std::string& key, const char* value) {
        return add(key, std::string(value));
    }
    JsonObject& add(const std::string& key, double value) {
        std::ostringstream v;
        v << value;
        return raw(key, v.str());
    }
    JsonObject& add(const std::string& key, std::size_t value) {
        return raw(key, std::to_string(value));
    }
    /// Pre-serialized JSON value (nested object/array).
    JsonObject& raw(const std::string& key, const std::string& json_value) {
        if (!body_.empty()) body_ += ',';
        body_ += '"' + key + "\":" + json_value;
        return *this;
    }
    [[nodiscard]] std::string str() const { return '{' + body_ + '}'; }

  private:
    std::string body_;
};

/// Appends one line to `path` (created on first use). Returns false when
/// the file cannot be opened.
inline bool append_json_line(const std::string& path, const std::string& json) {
    std::ofstream out(path, std::ios::app);
    if (!out) return false;
    out << json << '\n';
    return static_cast<bool>(out);
}

/// Value of GS_BENCH_JSON: the file every bench appends its
/// machine-readable results to. Empty when unset (no JSON output).
inline std::string json_output_path() {
    const char* env = std::getenv("GS_BENCH_JSON");
    return env == nullptr ? std::string{} : std::string{env};
}

/// Shared JSON-lines emitter: one sink per bench binary, stamping every
/// row with the bench name and resolving the output path once.
/// GS_BENCH_JSON overrides `default_path`; a bench constructed with an
/// empty default emits only when the env var is set (opt-in benches keep
/// their old semantics). Replaces the per-bench copies of the
/// path-resolution + "bench" key + append_json_line boilerplate.
class JsonSink {
  public:
    JsonSink(std::string bench_name, std::string default_path = {})
        : bench_(std::move(bench_name)) {
        const std::string env = json_output_path();
        path_ = env.empty() ? std::move(default_path) : env;
    }

    [[nodiscard]] bool enabled() const { return !path_.empty(); }
    [[nodiscard]] const std::string& path() const { return path_; }

    /// A fresh row pre-stamped with {"bench": <name>}.
    [[nodiscard]] JsonObject row() const {
        JsonObject obj;
        obj.add("bench", bench_);
        return obj;
    }

    /// Appends `obj` as one JSON line; no-op (returns false) when the
    /// sink is disabled.
    bool emit(const JsonObject& obj) const {
        return enabled() && append_json_line(path_, obj.str());
    }

  private:
    std::string bench_;
    std::string path_;
};

/// Running max / mean accumulator for per-instance statistics.
struct MaxAvg {
    double max = 0.0;
    double sum = 0.0;
    std::size_t count = 0;

    void add(double value) {
        max = std::max(max, value);
        sum += value;
        ++count;
    }
    [[nodiscard]] double avg() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

}  // namespace geospanner::bench
