// Ablation (paper §V future work): backbone maintenance cost under
// mobility. Random-waypoint movement at several speeds; the backbone is
// rebuilt only when a used link breaks (the paper's validity condition).
// Reports how often the logical backbone survives an epoch, the rebuild
// rate, and the amortized broadcast cost per epoch. Rebuild and
// broadcast counts cover maintenance only — the initial construction is
// tracked separately (MaintenanceStats::initial_broadcasts) and does not
// skew the per-epoch amortization.
#include <iostream>

#include "bench_util.h"
#include "mobility/maintenance.h"
#include "mobility/waypoint.h"

using namespace geospanner;

int main() {
    const std::size_t n = 80;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t epochs = 200;
    const std::size_t trials = bench::trials_or(5);

    std::cout << "=== Ablation: maintenance cost vs node speed (n=" << n
              << ", R=" << radius << ", " << epochs << " epochs, " << trials
              << " trials) ===\n"
              << "speed in units/epoch; rebuild only when a used link breaks\n\n";

    io::Table table({"max speed", "intact epochs %", "rebuilds", "longest lifetime",
                     "broadcasts/epoch"});
    for (const double speed : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        bench::MaxAvg intact, rebuilds, lifetime, cost;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            core::WorkloadConfig config;
            config.node_count = n;
            config.side = side;
            config.radius = radius;
            config.seed = 7700 + trial;
            const auto udg = core::random_connected_udg(config);
            if (!udg) continue;
            mobility::WaypointConfig wp;
            wp.side = side;
            wp.min_speed = speed / 3.0;
            wp.max_speed = speed;
            wp.pause = 5.0;
            wp.seed = 100 + trial;
            mobility::RandomWaypointModel model(udg->points(), wp);
            mobility::MaintainedBackbone mb(udg->points(), radius,
                                            {core::Engine::kDistributed});
            for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
                model.advance(1.0);
                mb.update(model.positions());
            }
            const auto& stats = mb.stats();
            intact.add(100.0 * static_cast<double>(stats.intact_epochs) /
                       static_cast<double>(stats.epochs));
            rebuilds.add(static_cast<double>(stats.rebuilds));
            lifetime.add(static_cast<double>(stats.longest_lifetime));
            cost.add(static_cast<double>(stats.total_broadcasts) /
                     static_cast<double>(stats.epochs));
        }
        table.begin_row()
            .cell(speed)
            .cell(intact.avg(), 1)
            .cell(rebuilds.avg())
            .cell(lifetime.avg())
            .cell(cost.avg());
    }
    io::maybe_write_csv("ablation_mobility", table);
    std::cout << table.str()
              << "\nmaintenance cost scales with the link-breakage rate: at low speed\n"
                 "the backbone survives most epochs and the amortized broadcast cost\n"
                 "drops well below a from-scratch build per epoch.\n";
    return 0;
}
