// Ablation: traffic load under packet-level simulation.
//
// Quantifies the throughput discussion of the paper's introduction:
// hierarchical backbone routing concentrates forwarding on dominators
// and connectors. Uniform random traffic is replayed on (a) min-hop UDG
// routing, (b) min-hop routing restricted to the planar PLDel spanner,
// and (c) dominating-set backbone routing, measuring delivery, latency,
// queue pressure, and load concentration.
#include <iostream>

#include "bench_util.h"
#include "graph/shortest_paths.h"
#include "netsim/simulator.h"
#include "proximity/ldel.h"
#include "routing/backbone_routing.h"

using namespace geospanner;

int main() {
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t packets = 3000;
    const std::size_t trials = bench::trials_or(5);

    std::cout << "=== Ablation: forwarding load by routing scheme (n=" << n
              << ", R=" << radius << ", " << packets << " packets, " << trials
              << " instances) ===\n\n";

    io::Table table({"scheme", "delivery %", "avg latency", "max queue",
                     "tx per pkt", "max load share %"});
    bench::MaxAvg delivery[3], latency[3], queue[3], tx[3], share[3];
    const char* names[3] = {"min-hop UDG", "min-hop PLDel(V)", "backbone LDel(ICDS)"};

    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto instance = bench::make_instance(n, side, radius, 6000 + trial,
                                                   core::Engine::kCentralized);
        if (!instance) continue;
        const auto& udg = instance->udg;
        const auto pldel = proximity::build_pldel(udg);
        const routing::BackboneRouter backbone_router(instance->backbone, udg);

        const netsim::RouteFn routes[3] = {
            [&](graph::NodeId s, graph::NodeId t) {
                return graph::shortest_hop_path(udg, s, t);
            },
            [&](graph::NodeId s, graph::NodeId t) {
                return graph::shortest_hop_path(pldel, s, t);
            },
            [&](graph::NodeId s, graph::NodeId t) {
                return backbone_router.route(s, t).path;
            }};

        const auto traffic = netsim::uniform_traffic(n, packets, 6, 500 + trial);
        netsim::Config config;
        config.queue_capacity = 64;
        for (int i = 0; i < 3; ++i) {
            const auto stats = netsim::run_simulation(n, routes[i], traffic, config);
            delivery[i].add(100.0 * stats.delivery_rate());
            latency[i].add(stats.avg_latency());
            queue[i].add(static_cast<double>(stats.max_queue_depth));
            std::size_t total_tx = 0;
            for (const std::size_t t : stats.transmissions) total_tx += t;
            tx[i].add(static_cast<double>(total_tx) / static_cast<double>(packets));
            share[i].add(100.0 * stats.max_load_share());
        }
    }

    for (int i = 0; i < 3; ++i) {
        table.begin_row()
            .cell(std::string(names[i]))
            .cell(delivery[i].avg(), 1)
            .cell(latency[i].avg())
            .cell(queue[i].avg(), 1)
            .cell(tx[i].avg())
            .cell(share[i].avg(), 1);
    }
    io::maybe_write_csv("ablation_load", table);
    std::cout << table.str()
              << "\nexpected: backbone routing pays ~1.3-2x transmissions/latency and\n"
                 "concentrates load on the backbone (higher max share) in exchange\n"
                 "for locality and the planar substrate; PLDel sits in between.\n";
    return 0;
}
