// Tile-sharded construction scaling: million-node-world throughput of
// TileShardedEngine vs the monolithic SpannerEngine, swept over
// n × tiles × threads.
//
// GS_BENCH_NMAX sets the largest world built (default 1'000'000 — the
// million-node acceptance instance; CI smoke sets 200'000).
// GS_BENCH_TRIALS <= 2 (as CI sets) shrinks the tile/thread matrix.
// Every measurement is appended as one JSON object to $GS_BENCH_JSON
// (default BENCH_shard.json): monolithic rows carry the per-stage
// breakdown, sharded rows the speedup against the monolithic build at
// the SAME thread count (the honest comparison — both engines get the
// same lanes; sharding wins by also parallelizing the work that stays
// sequential inside the monolithic stages) plus a per-shard wall-time
// summary. Output quality is pinned by asserting the sharded edge/node
// counts against the monolithic build of the same instance.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "io/table.h"
#include "shard/tile_engine.h"

using namespace geospanner;

namespace {

using Clock = std::chrono::steady_clock;

double run_ms(const std::function<void()>& fn) {
    const auto start = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Uniform deployment with expected UDG degree ~12 at unit radius (the
/// same density model bench_engine_scaling uses).
std::vector<geom::Point> deployment(std::size_t n, std::uint64_t seed) {
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
    config.seed = seed;
    return core::uniform_points(config);
}

}  // namespace

int main() {
    const bool smoke = bench::trials_or(3) <= 2;
    const bench::JsonSink sink("shard_scaling", "BENCH_shard.json");
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t nmax = bench::nmax_or(1'000'000);
    const std::vector<std::size_t> node_counts =
        smoke ? bench::node_ladder({}, nmax) : bench::node_ladder({250'000}, nmax);
    const std::vector<std::size_t> thread_counts =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    const std::vector<std::size_t> tile_counts =
        smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64};

    std::cout << "shard scaling (hardware threads: " << hw << ", nmax: " << nmax
              << (smoke ? ", smoke mode" : "") << ")\n\n";

    io::Table table({"n", "engine", "tiles", "threads", "wall_ms", "speedup_same_t",
                     "udg_edges", "backbone"});
    for (const std::size_t n : node_counts) {
        const auto points = deployment(n, 4242 + n);

        // Monolithic baselines, one per thread count.
        std::map<std::size_t, double> mono_ms;
        std::size_t mono_edges = 0, mono_backbone = 0;
        for (const std::size_t threads : thread_counts) {
            engine::SpannerEngine eng({.threads = threads});
            engine::BuildResult result;
            const double ms = run_ms([&] { result = eng.build(points, 1.0); });
            mono_ms[threads] = ms;
            mono_edges = result.udg.edge_count();
            mono_backbone = result.backbone.backbone_size();

            table.begin_row()
                .cell(n)
                .cell("mono")
                .cell(std::size_t{0})
                .cell(threads)
                .cell(ms, 1)
                .cell(1.0, 2)
                .cell(mono_edges)
                .cell(mono_backbone);
            auto obj = sink.row();
            obj.add("engine", "monolithic")
                .add("n", n)
                .add("threads", threads)
                .add("hardware_threads", hw)
                .add("wall_ms", ms)
                .add("udg_edges", mono_edges)
                .add("backbone_nodes", mono_backbone)
                .raw("stages", result.stats.json());
            sink.emit(obj);
        }

        // Sharded sweeps against those baselines.
        for (const std::size_t tiles : tile_counts) {
            for (const std::size_t threads : thread_counts) {
                shard::ShardOptions options;
                options.threads = threads;
                options.tiles = tiles;
                shard::TileShardedEngine eng(options);
                shard::ShardBuildResult result;
                const double ms = run_ms([&] { result = eng.build(points, 1.0); });

                // Output pinning: same UDG and backbone as the monolithic
                // build (the full edge-for-edge contract lives in
                // tests/test_shard.cpp; counts catch gross divergence
                // without holding two million-node graphs alive).
                if (result.udg.edge_count() != mono_edges ||
                    result.backbone.backbone_size() != mono_backbone) {
                    std::cerr << "FATAL: sharded output diverged at n=" << n
                              << " tiles=" << tiles << " threads=" << threads << '\n';
                    return 1;
                }

                const double same_t = mono_ms[threads] > 0.0 && ms > 0.0
                                          ? mono_ms[threads] / ms
                                          : 0.0;
                const double vs_1t =
                    mono_ms[thread_counts.front()] > 0.0 && ms > 0.0
                        ? mono_ms[thread_counts.front()] / ms
                        : 0.0;
                bench::MaxAvg shard_wall;
                for (const shard::ShardStats& s : result.shards) {
                    shard_wall.add(s.stats.total_ms());
                }

                table.begin_row()
                    .cell(n)
                    .cell("shard")
                    .cell(tiles)
                    .cell(threads)
                    .cell(ms, 1)
                    .cell(same_t, 2)
                    .cell(result.udg.edge_count())
                    .cell(result.backbone.backbone_size());
                auto obj = sink.row();
                obj.add("engine", "sharded")
                    .add("n", n)
                    .add("tiles", tiles)
                    .add("threads", threads)
                    .add("hardware_threads", hw)
                    .add("halo_hops", options.halo_hops)
                    .add("wall_ms", ms)
                    .add("speedup_vs_mono_same_threads", same_t)
                    .add("speedup_vs_mono_1t", vs_1t)
                    .add("udg_edges", result.udg.edge_count())
                    .add("backbone_nodes", result.backbone.backbone_size())
                    .add("shards_built", result.shards.size())
                    .add("shard_wall_ms_max", shard_wall.max)
                    .add("shard_wall_ms_avg", shard_wall.avg())
                    .raw("stages", result.stats.json());
                sink.emit(obj);
            }
        }
    }
    std::cout << table.str();
    io::maybe_write_csv("shard_scaling", table);
    std::cout << "\nJSON trajectory appended to " << sink.path() << '\n';
    return 0;
}
