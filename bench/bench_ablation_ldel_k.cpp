// Ablation: planarization variant — LDel¹ + Algorithm 3 (the paper's
// choice) vs LDel² (planar from 2-hop knowledge, no planarization pass).
//
// Measures what the extra hop of knowledge buys and costs on the full
// pipeline: backbone graph size, stretch, and the per-node communication
// cost of the localized-Delaunay stage.
#include <iostream>

#include "bench_util.h"
#include "engine/thread_pool.h"
#include "graph/metrics.h"
#include "graph/planarity.h"

using namespace geospanner;

int main() {
    engine::ThreadPool pool;
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(15);

    std::cout << "=== Ablation: LDel1+planarize vs LDel2 backbone (n=" << n
              << ", R=" << radius << ", " << trials << " instances) ===\n\n";

    io::Table table({"planarizer", "LDel(ICDS) edges", "triangles", "len avg", "hop avg",
                     "msgs max", "msgs avg", "units max", "planar"});
    for (const auto planarizer : {core::Planarizer::kLdel1, core::Planarizer::kLdel2}) {
        bench::MaxAvg edges, triangles, len_avg, hop_avg, msg_max, msg_avg, unit_max;
        bool always_planar = true;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            core::WorkloadConfig config;
            config.node_count = n;
            config.side = side;
            config.radius = radius;
            config.seed = 8800 + trial;
            const auto udg = core::random_connected_udg(config);
            if (!udg) continue;
            core::BuildOptions options;
            options.engine = core::Engine::kDistributed;
            options.planarizer = planarizer;
            const core::Backbone bb = core::build_backbone(*udg, options);

            edges.add(static_cast<double>(bb.ldel_icds.edge_count()));
            triangles.add(static_cast<double>(bb.ldel_triangles.size()));
            len_avg.add(graph::length_stretch(*udg, bb.ldel_icds_prime, radius, &pool).avg);
            hop_avg.add(graph::hop_stretch(*udg, bb.ldel_icds_prime, radius, &pool).avg);
            msg_max.add(
                static_cast<double>(core::MessageStats::max_of(bb.messages.after_ldel)));
            msg_avg.add(core::MessageStats::avg_of(bb.messages.after_ldel));
            unit_max.add(
                static_cast<double>(core::MessageStats::max_of(bb.messages.ldel_units)));
            always_planar &= graph::is_plane_embedding(bb.ldel_icds);
        }
        table.begin_row()
            .cell(planarizer == core::Planarizer::kLdel1 ? std::string("LDel1+Alg3")
                                                         : std::string("LDel2"))
            .cell(edges.avg())
            .cell(triangles.avg())
            .cell(len_avg.avg())
            .cell(hop_avg.avg())
            .cell(msg_max.max, 0)
            .cell(msg_avg.avg())
            .cell(unit_max.max, 0)
            .cell(always_planar ? std::string("yes") : std::string("NO"));
    }
    io::maybe_write_csv("ablation_ldel_k", table);
    std::cout << table.str()
              << "\non random instances the two planarizers typically produce the\n"
                 "same triangle set (2-hop-only witnesses are rare). LDel2 trades the\n"
                 "two triangle-batch broadcasts of Algorithm 3 for one neighbor-list\n"
                 "broadcast; on the sparse bounded-degree ICDS the lists are small,\n"
                 "so LDel2 even wins on payload units. Both are planar with\n"
                 "identical stretch.\n";
    return 0;
}
