// Figure 9 reproduction: spanning ratios (length and hop stretch, max
// and average) of CDS', ICDS', LDel(ICDS') vs node density
// (n = 20..100, R = 60).
//
// Expected shape: flat, small constants — the stretch factors do not
// grow with density (that is the spanner property).
#include <iostream>

#include "bench_backend_util.h"
#include "bench_util.h"
#include "engine/thread_pool.h"
#include "graph/metrics.h"

using namespace geospanner;

int main() {
    // GS_BACKEND reruns the sweep under an alternative spanner
    // backend; unset (or "engine") keeps the paper reproduction.
    if (bench::backend_override()) {
        return bench::run_backend_figure({"fig9",
                                          {20, 30, 40, 50, 60, 70, 80, 90, 100},
                                          {60.0},
                                          250.0, 9000, bench::trials_or(20)});
    }
    engine::ThreadPool pool;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(20);

    std::cout << "=== Figure 9: spanning ratios vs node density (R=" << radius << ", "
              << trials << " instances/point) ===\n"
              << "stretch over pairs more than one radius apart\n\n";

    io::Table max_table({"n", "CDS' len", "CDS' hop", "ICDS' len", "ICDS' hop",
                         "LDelICDS' len", "LDelICDS' hop"});
    io::Table avg_table({"n", "CDS' len", "CDS' hop", "ICDS' len", "ICDS' hop",
                         "LDelICDS' len", "LDelICDS' hop"});

    for (std::size_t n = 20; n <= 100; n += 10) {
        bench::MaxAvg len_max[3], len_avg[3], hop_max[3], hop_avg[3];
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 9000 + trial,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const auto& udg = instance->udg;
            const auto& bb = instance->backbone;
            const graph::GeometricGraph* topos[3] = {&bb.cds_prime, &bb.icds_prime,
                                                     &bb.ldel_icds_prime};
            for (int i = 0; i < 3; ++i) {
                const auto len = graph::length_stretch(udg, *topos[i], radius, &pool);
                const auto hop = graph::hop_stretch(udg, *topos[i], radius, &pool);
                len_max[i].add(len.max);
                len_avg[i].add(len.avg);
                hop_max[i].add(hop.max);
                hop_avg[i].add(hop.avg);
            }
        }
        max_table.begin_row().cell(n);
        avg_table.begin_row().cell(n);
        for (int i = 0; i < 3; ++i) {
            max_table.cell(len_max[i].max).cell(hop_max[i].max);
            avg_table.cell(len_avg[i].avg()).cell(hop_avg[i].avg());
        }
    }

    io::maybe_write_csv("fig9_stretch_max", max_table);
    io::maybe_write_csv("fig9_stretch_avg", avg_table);
    std::cout << "maximum spanning ratios (max over instances):\n" << max_table.str()
              << "\naverage spanning ratios (mean over instances):\n" << avg_table.str()
              << "\nexpected shape (paper Fig. 9): both ratios flat in n; averages\n"
                 "~1.2-1.5, maxima a small constant (paper ~2.5-4).\n";
    return 0;
}
