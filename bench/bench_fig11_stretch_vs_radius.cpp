// Figure 11 reproduction: spanning ratios of CDS', ICDS', LDel(ICDS')
// vs transmission radius (N = 500 nodes, R = 20..60).
//
// Expected shape: flat/mildly decreasing with radius — stretch constants
// are independent of the radius too.
#include <iostream>

#include "bench_backend_util.h"
#include "bench_util.h"
#include "engine/thread_pool.h"
#include "graph/metrics.h"

using namespace geospanner;

int main() {
    // GS_BACKEND reruns the sweep under an alternative spanner
    // backend; unset (or "engine") keeps the paper reproduction.
    if (bench::backend_override()) {
        return bench::run_backend_figure({"fig11",
                                          {500},
                                          {20.0, 30.0, 40.0, 50.0, 60.0},
                                          250.0, 11000, bench::trials_or(3)});
    }
    engine::ThreadPool pool;
    const double side = 250.0;
    const std::size_t n = 500;
    const std::size_t trials = bench::trials_or(3);

    std::cout << "=== Figure 11: spanning ratios vs transmission radius (N=" << n
              << ", " << trials << " instances/point) ===\n"
              << "stretch over pairs more than one radius apart\n\n";

    io::Table max_table({"R", "CDS' len", "CDS' hop", "ICDS' len", "ICDS' hop",
                         "LDelICDS' len", "LDelICDS' hop"});
    io::Table avg_table({"R", "CDS' len", "CDS' hop", "ICDS' len", "ICDS' hop",
                         "LDelICDS' len", "LDelICDS' hop"});

    for (double radius = 20.0; radius <= 60.0; radius += 10.0) {
        bench::MaxAvg len_max[3], len_avg[3], hop_max[3], hop_avg[3];
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(
                n, side, radius, 11000 + trial, core::Engine::kCentralized);
            if (!instance) continue;
            const auto& udg = instance->udg;
            const auto& bb = instance->backbone;
            const graph::GeometricGraph* topos[3] = {&bb.cds_prime, &bb.icds_prime,
                                                     &bb.ldel_icds_prime};
            for (int i = 0; i < 3; ++i) {
                const auto len = graph::length_stretch(udg, *topos[i], radius, &pool);
                const auto hop = graph::hop_stretch(udg, *topos[i], radius, &pool);
                len_max[i].add(len.max);
                len_avg[i].add(len.avg);
                hop_max[i].add(hop.max);
                hop_avg[i].add(hop.avg);
            }
        }
        max_table.begin_row().cell(radius, 0);
        avg_table.begin_row().cell(radius, 0);
        for (int i = 0; i < 3; ++i) {
            max_table.cell(len_max[i].max).cell(hop_max[i].max);
            avg_table.cell(len_avg[i].avg()).cell(hop_avg[i].avg());
        }
    }

    io::maybe_write_csv("fig11_stretch_max", max_table);
    io::maybe_write_csv("fig11_stretch_avg", avg_table);
    std::cout << "maximum spanning ratios (max over instances):\n" << max_table.str()
              << "\naverage spanning ratios (mean over instances):\n" << avg_table.str()
              << "\nexpected shape (paper Fig. 11): ratios stay in a small constant\n"
                 "band (averages ~1.1-1.5, maxima ~2.5-4.2) across the radius sweep.\n";
    return 0;
}
