// Computation-cost micro-benchmarks (the paper's O(d log d) per-node
// claim and overall construction throughput), using google-benchmark.
//
// Series:
//  * exact-filtered predicates (orientation, in-circle);
//  * Delaunay triangulation of n points;
//  * per-node local Delaunay as a function of neighborhood size d —
//    the paper's per-node computation cost;
//  * UDG construction;
//  * full backbone pipeline, centralized and distributed engines.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/backbone.h"
#include "core/workload.h"
#include "delaunay/delaunay.h"
#include "engine/engine.h"
#include "geom/predicates.h"
#include "proximity/ldel.h"
#include "proximity/udg.h"
#include "random/rng.h"

using namespace geospanner;

namespace {

std::vector<geom::Point> points(std::size_t n, double side, std::uint64_t seed) {
    rnd::Xoshiro256 rng(seed);
    std::vector<geom::Point> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

void BM_Orient(benchmark::State& state) {
    const auto pts = points(1024, 100.0, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& a = pts[i % 1024];
        const auto& b = pts[(i + 7) % 1024];
        const auto& c = pts[(i + 131) % 1024];
        benchmark::DoNotOptimize(geom::orient_sign(a, b, c));
        ++i;
    }
}
BENCHMARK(BM_Orient);

void BM_InCircle(benchmark::State& state) {
    const auto pts = points(1024, 100.0, 2);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(geom::in_circumcircle(pts[i % 1024], pts[(i + 7) % 1024],
                                                       pts[(i + 131) % 1024],
                                                       pts[(i + 523) % 1024]));
        ++i;
    }
}
BENCHMARK(BM_InCircle);

void BM_Delaunay(benchmark::State& state) {
    const auto pts = points(static_cast<std::size_t>(state.range(0)), 1000.0, 3);
    for (auto _ : state) {
        const delaunay::DelaunayTriangulation del(pts);
        benchmark::DoNotOptimize(del.triangles().size());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Delaunay)->Range(32, 1024)->Complexity();

void BM_LocalDelaunayPerNode(benchmark::State& state) {
    // A node with d neighbors computes Del(N1): the paper's per-node
    // O(d log d) computation. Neighborhood drawn inside the unit disk.
    const auto d = static_cast<std::size_t>(state.range(0));
    rnd::Xoshiro256 rng(4);
    std::vector<geom::Point> pts{{0.0, 0.0}};
    while (pts.size() < d + 1) {
        const geom::Point p{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        if (geom::squared_norm(p) <= 1.0) pts.push_back(p);
    }
    const auto udg = proximity::build_udg(pts, 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(proximity::local_triangles_at(udg, 0).size());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LocalDelaunayPerNode)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_BuildUdg(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto pts = points(n, 250.0, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(proximity::build_udg(pts, 60.0).edge_count());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildUdg)->Range(64, 1024)->Complexity();

void BM_BackboneCentralized(benchmark::State& state) {
    core::WorkloadConfig config;
    config.node_count = static_cast<std::size_t>(state.range(0));
    config.side = 250.0;
    config.radius = 60.0;
    config.seed = 6;
    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        state.SkipWithError("no connected instance");
        return;
    }
    for (auto _ : state) {
        const auto bb = core::build_backbone(*udg, {core::Engine::kCentralized});
        benchmark::DoNotOptimize(bb.ldel_icds.edge_count());
    }
}
BENCHMARK(BM_BackboneCentralized)->Arg(50)->Arg(100)->Arg(200);

void BM_BackboneDistributed(benchmark::State& state) {
    core::WorkloadConfig config;
    config.node_count = static_cast<std::size_t>(state.range(0));
    config.side = 250.0;
    config.radius = 60.0;
    config.seed = 7;
    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        state.SkipWithError("no connected instance");
        return;
    }
    for (auto _ : state) {
        const auto bb = core::build_backbone(*udg, {core::Engine::kDistributed});
        benchmark::DoNotOptimize(bb.messages.after_ldel.size());
    }
}
BENCHMARK(BM_BackboneDistributed)->Arg(50)->Arg(100)->Arg(200);

/// Engine pipeline with the verify:: stage audits off vs. on — the pair
/// of series quantifies the invariant-auditing overhead in the same
/// GS_BENCH_JSON trajectory the other construction costs land in.
void bench_engine_build(benchmark::State& state, bool audit) {
    core::WorkloadConfig config;
    config.node_count = static_cast<std::size_t>(state.range(0));
    config.side = 250.0;
    config.radius = 60.0;
    config.seed = 8;
    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        state.SkipWithError("no connected instance");
        return;
    }
    engine::EngineOptions options;
    options.threads = 2;
    options.audit = audit;
    options.audit_options.radius = config.radius;
    engine::SpannerEngine engine(options);
    for (auto _ : state) {
        const auto result = engine.build(udg->points(), config.radius);
        benchmark::DoNotOptimize(result.backbone.ldel_icds.edge_count());
        benchmark::DoNotOptimize(result.audit.stages.size());
    }
}

void BM_BackboneAuditsOff(benchmark::State& state) { bench_engine_build(state, false); }
BENCHMARK(BM_BackboneAuditsOff)->Arg(50)->Arg(100)->Arg(200);

void BM_BackboneAuditsOn(benchmark::State& state) { bench_engine_build(state, true); }
BENCHMARK(BM_BackboneAuditsOn)->Arg(50)->Arg(100)->Arg(200);

/// Console output as usual, plus one JSON object per benchmark run
/// appended to $GS_BENCH_JSON — the perf-trajectory hook: CI and later
/// PRs diff these lines to catch construction-cost regressions.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
  public:
    explicit JsonTrajectoryReporter(std::string path) : path_(std::move(path)) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        ConsoleReporter::ReportRuns(runs);
        for (const Run& run : runs) {
            if (run.error_occurred) continue;
            geospanner::bench::JsonObject obj;
            obj.add("bench", std::string("construction"))
                .add("name", run.benchmark_name())
                .add("iterations", static_cast<std::size_t>(run.iterations))
                .add("real_time_ns", run.GetAdjustedRealTime())
                .add("cpu_time_ns", run.GetAdjustedCPUTime());
            geospanner::bench::append_json_line(path_, obj.str());
        }
    }

  private:
    std::string path_;
};

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    const std::string json_path = geospanner::bench::json_output_path();
    if (json_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        JsonTrajectoryReporter reporter(json_path);
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    return 0;
}
