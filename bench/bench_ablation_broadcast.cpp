// Ablation: broadcast cost — flooding vs dominating-set relay vs the
// BFS-tree reference (the paper's introduction motivates the backbone as
// the cure for flooding's waste).
#include <iostream>

#include "bench_util.h"
#include "protocol/broadcast.h"

using namespace geospanner;

int main() {
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(15);

    std::cout << "=== Ablation: broadcast transmissions vs node density (R=" << radius
              << ", " << trials << " instances/point) ===\n\n";

    io::Table table({"n", "flooding tx", "backbone tx", "BFS-tree tx",
                     "backbone saving %", "backbone rounds / flood rounds"});
    for (std::size_t n = 20; n <= 100; n += 20) {
        bench::MaxAvg flood_tx, backbone_tx, tree_tx, saving, round_ratio;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 9900 + trial,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const auto flood = protocol::flood_broadcast(instance->udg, 0);
            const auto backbone =
                protocol::backbone_broadcast(instance->udg, instance->backbone.in_backbone, 0);
            const auto tree = protocol::tree_broadcast(instance->udg, 0);
            flood_tx.add(static_cast<double>(flood.transmissions));
            backbone_tx.add(static_cast<double>(backbone.transmissions));
            tree_tx.add(static_cast<double>(tree.transmissions));
            saving.add(100.0 * (1.0 - static_cast<double>(backbone.transmissions) /
                                          static_cast<double>(flood.transmissions)));
            round_ratio.add(static_cast<double>(backbone.rounds) /
                            static_cast<double>(flood.rounds));
        }
        table.begin_row()
            .cell(n)
            .cell(flood_tx.avg())
            .cell(backbone_tx.avg())
            .cell(tree_tx.avg())
            .cell(saving.avg(), 1)
            .cell(round_ratio.avg());
    }
    io::maybe_write_csv("ablation_broadcast", table);
    std::cout << table.str()
              << "\nthe denser the network, the bigger the backbone's broadcast\n"
                 "saving (only the ~constant-density backbone retransmits), at a\n"
                 "small latency factor from detouring through the CDS.\n\n";

    // Collision model: coverage under a shared slotted medium where
    // simultaneous neighbor transmissions collide. Many contenders
    // (flooding) collide far more than the sparse backbone — the paper's
    // throughput argument, measured.
    std::cout << "coverage %% under MAC collisions (n=100, one transmission per relay,\n"
                 "uniform backoff in a contention window; avg over instances x 10 "
                 "backoff seeds):\n";
    io::Table collision_table({"window", "flooding coverage %", "backbone coverage %"});
    const std::size_t n = 100;
    for (const std::size_t window : {2u, 4u, 8u, 16u, 32u}) {
        bench::MaxAvg flood_cov, backbone_cov;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 9900 + trial,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const std::vector<bool> all(n, true);
            for (std::uint64_t seed = 1; seed <= 10; ++seed) {
                protocol::CollisionConfig config;
                config.window = window;
                config.seed = seed;
                flood_cov.add(
                    100.0 *
                    static_cast<double>(
                        protocol::collision_broadcast(instance->udg, all, 0, config)
                            .covered) /
                    static_cast<double>(n));
                backbone_cov.add(
                    100.0 *
                    static_cast<double>(
                        protocol::collision_broadcast(instance->udg,
                                                      instance->backbone.in_backbone, 0,
                                                      config)
                            .covered) /
                    static_cast<double>(n));
            }
        }
        collision_table.begin_row().cell(window).cell(flood_cov.avg(), 1).cell(
            backbone_cov.avg(), 1);
    }
    io::maybe_write_csv("ablation_broadcast_collisions", collision_table);
    std::cout << collision_table.str()
              << "\nboth reach ~everything once the window absorbs the contention;\n"
                 "flooding's redundant relays buy it a sliver of extra collision\n"
                 "tolerance, but the backbone matches its coverage within ~1% while\n"
                 "transmitting roughly half as often.\n";
    return 0;
}
