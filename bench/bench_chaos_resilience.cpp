// Chaos resilience: what fault injection costs the maintained spanner.
//
// Seeded fault::ChaosSchedule streams (crashes, regional outages,
// join/leave churn, mobility) replay through fault::SelfHealer into the
// incremental patcher; per-batch apply times separate the crash-repair
// batches (SelfHealer keeps them pure, so their apply time IS the
// repair latency of re-electing dominators/connectors around the
// failure) from ordinary churn. After each run the surviving topology
// is exercised with netsim store-and-forward traffic over the routing
// substrate (LDel(ICDS) + dominatee links) with the crashed radios
// flagged dead, measuring two delivery rates:
//   * all traffic — packets to/from corpses drop at injection, the
//     gross service level a real deployment observes;
//   * survivor traffic only — how well the healed backbone serves the
//     nodes that are still alive (partition of the survivor set is the
//     only legitimate loss).
// Swept over crash rate (fixed churn) and churn rate (fixed crashes).
// Every row appends to $GS_BENCH_JSON (default BENCH_chaos.json).
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/workload.h"
#include "dynamic/spanner.h"
#include "engine/engine.h"
#include "fault/chaos.h"
#include "fault/healer.h"
#include "graph/shortest_paths.h"
#include "io/table.h"
#include "netsim/simulator.h"

using namespace geospanner;

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
    bench::MaxAvg repair_ms;     ///< per crash-repair batch
    bench::MaxAvg churn_ms;      ///< per churn/leave batch
    std::size_t crashes = 0;     ///< nodes lost (crashes + outage victims)
    std::size_t batches = 0;
    std::size_t live = 0;
    std::size_t delivered_all = 0;
    std::size_t injected_all = 0;
    std::size_t delivered_live = 0;
    std::size_t injected_live = 0;
};

RunResult run_chaos(const fault::ChaosSchedule& schedule, std::uint64_t traffic_seed) {
    engine::EngineOptions eopts;
    eopts.threads = 2;
    engine::SpannerEngine engine(eopts);
    dynamic::DynamicSpanner dyn(engine, schedule.initial, schedule.radius);
    fault::SelfHealer healer(schedule);

    RunResult result;
    for (const auto& translated : healer.translate(schedule.events)) {
        const auto t0 = Clock::now();
        dyn.apply(translated.batch);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        (translated.repair() ? result.repair_ms : result.churn_ms).add(ms);
        result.crashes += translated.crash_count;
        ++result.batches;
    }
    result.live = healer.world().live_count();

    // Traffic over the healed routing substrate, corpses flagged dead.
    const auto& world = healer.world();
    const graph::GeometricGraph& substrate = dyn.backbone().ldel_icds_prime;
    const netsim::RouteFn route = [&substrate](graph::NodeId s, graph::NodeId t) {
        return graph::shortest_hop_path(substrate, s, t);
    };
    netsim::Config config;
    config.dead = world.dead;
    const std::size_t n = dyn.node_count();
    const auto traffic = netsim::uniform_traffic(n, 400, 4, traffic_seed);
    const netsim::Stats all = netsim::run_simulation(n, route, traffic, config);
    result.injected_all = all.injected;
    result.delivered_all = all.delivered;

    std::vector<netsim::Injection> survivors;
    for (const auto& inj : traffic) {
        if (!world.dead[inj.src] && !world.dead[inj.dst]) survivors.push_back(inj);
    }
    const netsim::Stats live = netsim::run_simulation(n, route, survivors, config);
    result.injected_live = live.injected;
    result.delivered_live = live.delivered;
    return result;
}

double pct(std::size_t num, std::size_t den) {
    return den == 0 ? 100.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

int main() {
    const std::size_t n = 150;
    const double side = 320.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(3);
    const std::size_t steps = 30;

    const bench::JsonSink sink("chaos_resilience", "BENCH_chaos.json");

    std::cout << "=== Chaos resilience: delivery + repair latency vs fault rate (n="
              << n << ", R=" << radius << ", " << steps << " steps, " << trials
              << " trials) ===\n\n";
    io::Table table({"sweep", "rate", "crashed avg", "repair ms avg", "repair ms max",
                     "delivery % all", "delivery % live"});

    struct SweepPoint {
        const char* sweep;
        double crash_rate;
        double move_rate;
        double rate;  ///< the swept value, for the row
    };
    std::vector<SweepPoint> points;
    for (const double crash : {0.0, 0.5, 1.0, 2.0}) {
        points.push_back({"crash", crash, 2.0, crash});
    }
    for (const double churn : {0.5, 4.0, 8.0}) {
        points.push_back({"churn", 0.5, churn, churn});
    }

    for (const SweepPoint& point : points) {
        bench::MaxAvg crashed, repair_avg, repair_max, churn_avg;
        bench::MaxAvg delivery_all, delivery_live, live_nodes, batches;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            core::WorkloadConfig config;
            config.node_count = n;
            config.side = side;
            config.radius = radius;
            config.seed = 4000 + trial;
            const auto udg = core::random_connected_udg(config);
            if (!udg) continue;

            fault::ChaosConfig chaos;
            chaos.steps = steps;
            chaos.move_rate = point.move_rate;
            chaos.crash_rate = point.crash_rate;
            chaos.join_rate = 0.3;
            chaos.leave_rate = 0.15;
            chaos.outage_rate = point.crash_rate > 0.0 ? 0.05 : 0.0;
            chaos.side = side;
            const fault::ChaosSchedule schedule = fault::generate_chaos(
                udg->points(), radius, chaos, 9000 + trial * 7);

            const RunResult run = run_chaos(schedule, 500 + trial);
            crashed.add(static_cast<double>(run.crashes));
            if (run.repair_ms.count > 0) {
                repair_avg.add(run.repair_ms.avg());
                repair_max.add(run.repair_ms.max);
            }
            if (run.churn_ms.count > 0) churn_avg.add(run.churn_ms.avg());
            delivery_all.add(pct(run.delivered_all, run.injected_all));
            delivery_live.add(pct(run.delivered_live, run.injected_live));
            live_nodes.add(static_cast<double>(run.live));
            batches.add(static_cast<double>(run.batches));
        }

        table.begin_row()
            .cell(std::string(point.sweep))
            .cell(point.rate, 1)
            .cell(crashed.avg(), 1)
            .cell(repair_avg.avg(), 2)
            .cell(repair_max.max, 2)
            .cell(delivery_all.avg(), 1)
            .cell(delivery_live.avg(), 1);

        auto obj = sink.row();
        obj.add("sweep", point.sweep)
            .add("rate", point.rate)
            .add("crash_rate", point.crash_rate)
            .add("move_rate", point.move_rate)
            .add("nodes", n)
            .add("steps", steps)
            .add("trials", trials)
            .add("crashed_avg", crashed.avg())
            .add("live_avg", live_nodes.avg())
            .add("batches_avg", batches.avg())
            .add("repair_ms_avg", repair_avg.avg())
            .add("repair_ms_max", repair_max.max)
            .add("churn_ms_avg", churn_avg.avg())
            .add("delivery_pct_all_avg", delivery_all.avg())
            .add("delivery_pct_live_avg", delivery_live.avg());
        sink.emit(obj);
    }

    std::cout << table.str()
              << "\nsurvivor delivery stays near 100% across crash rates — the healed\n"
                 "backbone keeps serving whoever is left; gross delivery falls with\n"
                 "the corpse count (packets addressed to the dead) and, at high crash\n"
                 "rates, with genuine partition of the survivor set. repair latency is\n"
                 "the apply time of the pure crash-repair batches (dominator and\n"
                 "connector re-election in the dirty region).\n";
    if (sink.enabled()) std::cout << "\nJSON rows appended to " << sink.path() << "\n";
    return 0;
}
