// Table I reproduction: topology quality measurements.
//
// Paper setup: n wireless nodes uniform in a square, transmission radius
// chosen so the UDG is dense (paper's UDG row: avg degree 21.4, 1069
// edges at n=100); instances regenerated until connected; averages and
// maxima over all instances. Rows: UDG, RNG, GG, LDel (planarized
// LDel¹ of the full node set), CDS, CDS', ICDS, ICDS', LDel(ICDS),
// LDel(ICDS'). Stretch factors are measured over node pairs more than
// one transmission radius apart; backbone-only topologies print "-".
#include <iostream>

#include "bench_util.h"
#include "engine/thread_pool.h"
#include "core/report.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"

using namespace geospanner;

int main() {
    engine::ThreadPool pool;
    const std::size_t n = 100;
    // Side chosen so the UDG density matches the paper's Table I row
    // (avg degree 21.4 at n=100): n·π·R²/side² ≈ 21 -> side ≈ 210.
    const double side = 210.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(20);

    std::cout << "=== Table I: topology quality measurements ===\n"
              << "n=" << n << " nodes, " << side << "x" << side
              << " region, radius=" << radius << ", " << trials << " connected instances\n"
              << "(paper: n=100, avg UDG degree 21.4; stretch over pairs > 1 radius apart)\n\n";

    const std::vector<std::string> names{"UDG",  "RNG",  "GG",         "LDel",
                                         "CDS",  "CDS'", "ICDS",       "ICDS'",
                                         "LDel(ICDS)", "LDel(ICDS')"};
    std::vector<std::vector<core::TopologyReport>> rows(names.size());

    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto instance = bench::make_instance(n, side, radius, 1000 + trial,
                                                   core::Engine::kCentralized);
        if (!instance) {
            std::cerr << "instance generation failed\n";
            return 1;
        }
        const auto& udg = instance->udg;
        const auto& bb = instance->backbone;
        const auto measure = [&](std::size_t row, const graph::GeometricGraph& topo,
                                 bool spanning) {
            rows[row].push_back(
                core::measure_topology(names[row], udg, topo, spanning, radius, &pool));
        };
        measure(0, udg, true);
        measure(1, proximity::build_rng(udg), true);
        measure(2, proximity::build_gabriel(udg), true);
        measure(3, proximity::build_pldel(udg), true);
        measure(4, bb.cds, false);
        measure(5, bb.cds_prime, true);
        measure(6, bb.icds, false);
        measure(7, bb.icds_prime, true);
        measure(8, bb.ldel_icds, false);
        measure(9, bb.ldel_icds_prime, true);
    }

    io::Table table({"topology", "deg avg", "deg max", "len avg", "len max", "hop avg",
                     "hop max", "edges"});
    for (std::size_t row = 0; row < names.size(); ++row) {
        const auto agg = core::aggregate_reports(rows[row]);
        table.begin_row().cell(names[row]).cell(agg.degree.avg).cell(agg.degree.max);
        if (agg.has_stretch) {
            table.cell(agg.length.avg).cell(agg.length.max).cell(agg.hops.avg).cell(
                agg.hops.max);
        } else {
            table.dash().dash().dash().dash();
        }
        table.cell(agg.edges);
    }
    io::maybe_write_csv("table1", table);
    std::cout << table.str()
              << "\npaper (Table I): UDG 21.4/42/-/-/1069e; RNG 2.37/4/1.32/4.49; "
                 "GG 3.56/9/1.12/2.08;\n  LDel 5.56/12/1.05/1.44; CDS 1.09/16; "
                 "CDS' 3.34/41/1.27/5.04; ICDS 1.72/16;\n  ICDS' 4.03/41/1.23/4.17; "
                 "LDel(ICDS) 1.20/9; LDel(ICDS') 3.51/38/1.23/4.20\n";
    return 0;
}
