// Head-to-head backend harness: every registered spanner backend built
// on the same UDG instances, swept over n x density x radius, with
// per-backend degree / stretch / message / build-time rows appended to
// $GS_BENCH_JSON (default BENCH_backends.json).
//
// Stretch is measured against the UDG from a bounded sample of BFS /
// Dijkstra sources (kMaxSources), so the bench stays feasible at the
// n=50k CI smoke rung where all-pairs sweeps are not. GS_BENCH_TRIALS
// and GS_BENCH_NMAX shrink or extend the sweep as in the other scaling
// benches.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "bench_util.h"
#include "core/workload.h"
#include "graph/metrics.h"
#include "graph/shortest_paths.h"
#include "io/table.h"

using namespace geospanner;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxSources = 32;

/// Stretch vs the UDG from a deterministic stride-spread source sample,
/// over pairs more than one radius apart (the paper's far-pair
/// convention, matching the audited claims; nearby pairs trivially
/// inflate the ratios).
struct SampledStretch {
    double hop_avg = 0.0, hop_max = 0.0;
    double len_avg = 0.0, len_max = 0.0;
    std::size_t disconnected = 0;
};

SampledStretch sampled_stretch(const graph::GeometricGraph& udg,
                               const graph::GeometricGraph& spanner,
                               double radius) {
    SampledStretch out;
    const auto n = static_cast<graph::NodeId>(udg.node_count());
    if (n == 0) return out;
    const std::size_t stride = std::max<std::size_t>(1, n / kMaxSources);
    bench::MaxAvg hop, len;
    for (graph::NodeId src = 0; src < n; src += stride) {
        const auto udg_hops = graph::bfs_hops(udg, src);
        const auto top_hops = graph::bfs_hops(spanner, src);
        const auto udg_len = graph::dijkstra_lengths(udg, src);
        const auto top_len = graph::dijkstra_lengths(spanner, src);
        for (graph::NodeId v = 0; v < n; ++v) {
            if (v == src || udg_hops[v] == graph::kUnreachableHops) continue;
            if (geom::distance(udg.point(v), udg.point(src)) <= radius) continue;
            if (top_hops[v] == graph::kUnreachableHops) {
                ++out.disconnected;
                continue;
            }
            hop.add(static_cast<double>(top_hops[v]) /
                    static_cast<double>(udg_hops[v]));
            if (udg_len[v] > 0.0) len.add(top_len[v] / udg_len[v]);
        }
    }
    out.hop_avg = hop.avg();
    out.hop_max = hop.max;
    out.len_avg = len.avg();
    out.len_max = len.max;
    return out;
}

}  // namespace

int main() {
    const std::size_t trials = bench::trials_or(3);
    const std::size_t nmax = bench::nmax_or(2'000);
    const bench::JsonSink sink("backends", "BENCH_backends.json");

    const std::vector<std::size_t> node_counts = bench::node_ladder({500, 1'000}, nmax);
    const std::vector<double> radii{40.0, 60.0};
    const std::vector<double> target_degrees{12.0, 20.0};  // density axis
    const auto backends = backends::registered_backends();

    std::cout << "backend head-to-head (" << backends.size()
              << " backends, nmax: " << nmax << ", " << trials
              << " trials/config, " << kMaxSources << "-source stretch sample)\n\n";

    io::Table table({"n", "radius", "deg_target", "backend", "build_ms", "edges",
                     "deg_max", "hop_avg", "hop_max", "len_avg", "len_max", "msg_max"});
    for (const std::size_t n : node_counts) {
        for (const double radius : radii) {
            for (const double target_degree : target_degrees) {
                // Region side chosen so the expected UDG degree is
                // ~target_degree: n * pi * r^2 / side^2 = target.
                const double side = std::sqrt(static_cast<double>(n) *
                                              3.14159265358979 * radius * radius /
                                              target_degree);
                for (std::size_t trial = 0; trial < trials; ++trial) {
                    core::WorkloadConfig config;
                    config.node_count = n;
                    config.side = side;
                    config.radius = radius;
                    config.seed = 13'000 + 17 * n + trial;
                    config.max_attempts = 50;  // bound retry cost at large n
                    const auto udg = core::random_connected_udg(config);
                    if (!udg) continue;

                    for (const auto& name : backends) {
                        auto backend = backends::make_backend(name);
                        const auto start = Clock::now();
                        const auto result = backend->build(*udg, radius);
                        const double build_ms =
                            std::chrono::duration<double, std::milli>(Clock::now() -
                                                                      start)
                                .count();
                        const auto degrees = graph::degree_stats(result.spanner);
                        const auto stretch = sampled_stretch(*udg, result.spanner, radius);
                        const std::size_t msg_max =
                            core::MessageStats::max_of(result.messages.after_ldel);
                        const double msg_avg =
                            core::MessageStats::avg_of(result.messages.after_ldel);

                        if (trial == 0) {
                            table.begin_row()
                                .cell(n)
                                .cell(radius, 0)
                                .cell(target_degree, 0)
                                .cell(name)
                                .cell(build_ms, 1)
                                .cell(result.spanner.edge_count())
                                .cell(degrees.max)
                                .cell(stretch.hop_avg)
                                .cell(stretch.hop_max)
                                .cell(stretch.len_avg)
                                .cell(stretch.len_max)
                                .cell(msg_max);
                        }
                        auto obj = sink.row();
                        obj.add("backend", name)
                            .add("n", n)
                            .add("radius", radius)
                            .add("target_degree", target_degree)
                            .add("side", side)
                            .add("trial", trial)
                            .add("udg_edges", udg->edge_count())
                            .add("build_ms", build_ms)
                            .add("edges", result.spanner.edge_count())
                            .add("degree_max", degrees.max)
                            .add("degree_avg", degrees.avg)
                            .add("hop_stretch_avg", stretch.hop_avg)
                            .add("hop_stretch_max", stretch.hop_max)
                            .add("length_stretch_avg", stretch.len_avg)
                            .add("length_stretch_max", stretch.len_max)
                            .add("disconnected_sampled_pairs", stretch.disconnected)
                            .add("messages_max", msg_max)
                            .add("messages_avg", msg_avg)
                            .raw("stages", result.stats.json());
                        sink.emit(obj);
                    }
                }
            }
        }
    }
    std::cout << table.str();
    io::maybe_write_csv("backends", table);
    std::cout << "\nJSON rows appended to " << sink.path() << '\n';
    return 0;
}
