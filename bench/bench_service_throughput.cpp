// Update-service end-to-end throughput: P producer threads pour
// move batches into the SpannerService ingest queue while a reader
// thread takes versioned snapshots; the measured rate is enqueue →
// fully-applied (drain-bounded), i.e. what a serving deployment
// sustains, not the bare patch kernel. Jitter mobility (each move
// re-scatters a node near its home position) keeps density stable so
// every configuration patches comparable topologies.
//
// With GS_BENCH_JSON set, appends one JSON line per configuration
// (bench "service_throughput") with the ingest rate, per-batch apply
// cost, fallback and component accounting, and snapshot latency.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "random/rng.h"
#include "service/service.h"

using namespace geospanner;

namespace {

double now_ms() {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int main() {
    // Opt-in JSON: emits only when GS_BENCH_JSON is set.
    const bench::JsonSink sink("service_throughput");
    const double radius = 60.0;
    const std::size_t total_batches = bench::trials_or(48);
    const std::size_t batch_size = 32;
    const double step = radius / 4.0;

    std::cout << "=== Update service: ingest throughput (R=" << radius
              << ", batch=" << batch_size << ", " << total_batches
              << " batches/config) ===\n"
              << "P producers enqueue, 1 reader snapshots; rate is drain-bounded\n\n";

    io::Table table({"n", "producers", "updates/s", "apply ms", "fallback%", "comps",
                     "comp fb", "snapshots", "snap ms"});
    for (const std::size_t n : {std::size_t{2000}, std::size_t{20000}}) {
        const double side =
            radius * std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
        core::WorkloadConfig config;
        config.node_count = n;
        config.side = side;
        config.radius = radius;
        config.seed = 9000 + n;
        const auto points = core::uniform_points(config);

        for (const std::size_t producers : {std::size_t{1}, std::size_t{4}}) {
            engine::EngineOptions eopts;
            engine::SpannerEngine engine(eopts);
            service::SpannerService svc(engine, points, radius);

            std::atomic<bool> done{false};
            bench::MaxAvg snap_ms;
            std::size_t snapshots_taken = 0;
            std::thread reader([&] {
                while (!done.load()) {
                    const double t0 = now_ms();
                    const service::SnapshotHandle snap = svc.snapshot();
                    snap_ms.add(now_ms() - t0);
                    ++snapshots_taken;
                    (void)snap;
                    std::this_thread::sleep_for(std::chrono::milliseconds(5));
                }
            });

            // Every producer must ship at least one batch, or a smoke run
            // (GS_BENCH_TRIALS=2) with producers=4 measures nothing.
            const std::size_t per_producer =
                std::max<std::size_t>(1, total_batches / producers);
            const double t0 = now_ms();
            std::vector<std::thread> threads;
            for (std::size_t p = 0; p < producers; ++p) {
                threads.emplace_back([&, p] {
                    rnd::Xoshiro256 rng(7100 + p);
                    for (std::size_t b = 0; b < per_producer; ++b) {
                        dynamic::UpdateBatch batch;
                        for (std::size_t i = 0; i < batch_size; ++i) {
                            const auto v =
                                static_cast<graph::NodeId>(rng.below(points.size()));
                            const double angle = rng.uniform(0.0, 6.28318530717959);
                            batch.moves.push_back({v,
                                                   {points[v].x + step * std::cos(angle),
                                                    points[v].y + step * std::sin(angle)}});
                        }
                        svc.enqueue(std::move(batch));
                    }
                });
            }
            for (auto& t : threads) t.join();
            svc.drain();
            const double elapsed_ms = now_ms() - t0;
            done = true;
            reader.join();

            const service::ServiceStats stats = svc.stats();
            const double applied = static_cast<double>(stats.batches_applied);
            const double updates_per_sec =
                elapsed_ms <= 0.0
                    ? 0.0
                    : 1000.0 * static_cast<double>(stats.updates_applied) / elapsed_ms;
            const double apply_ms_avg =
                applied <= 0.0 ? 0.0 : stats.apply_ms_total / applied;
            const double fallback_fraction =
                applied <= 0.0 ? 0.0 : static_cast<double>(stats.fallbacks) / applied;
            const double comps_avg =
                applied <= 0.0 ? 0.0
                               : static_cast<double>(stats.components_patched) / applied;
            table.begin_row()
                .cell(n)
                .cell(producers)
                .cell(updates_per_sec, 1)
                .cell(apply_ms_avg, 3)
                .cell(100.0 * fallback_fraction, 1)
                .cell(comps_avg, 2)
                .cell(stats.component_fallbacks)
                .cell(snapshots_taken)
                .cell(snap_ms.avg(), 3);
            if (sink.enabled()) {
                auto obj = sink.row();
                obj.add("n", n)
                    .add("producers", producers)
                    .add("batches", stats.batches_applied)
                    .add("batch_size", batch_size)
                    .add("elapsed_ms", elapsed_ms)
                    .add("updates_per_sec", updates_per_sec)
                    .add("apply_ms_avg", apply_ms_avg)
                    .add("fallback_fraction", fallback_fraction)
                    .add("components_avg", comps_avg)
                    .add("component_fallbacks", stats.component_fallbacks)
                    .add("snapshots", snapshots_taken)
                    .add("snapshot_ms_avg", snap_ms.avg())
                    .add("snapshot_ms_max", snap_ms.max);
                sink.emit(obj);
            }
        }
    }
    std::cout << table.str()
              << "\nthe drain-bounded rate tracks the per-batch patch cost: dirty\n"
                 "components keep large-n batches on the incremental path, and the\n"
                 "copy-on-write snapshot prices a reader at one topology copy per\n"
                 "applied batch, taken between batches (snap ms is the copy).\n";
    return 0;
}
