// Extension: power stretch factors (the energy metric of Li, Wan, Wang,
// Frieder [12], defined in Section I of the paper but not tabulated).
//
// Edge cost |uv|^beta with beta in {2, 3, 4} (path-loss exponents). A
// structure that keeps short edges (Gabriel, LDel) has power stretch
// close to 1 even when its length stretch is larger, because detours
// over short hops are energy-cheap.
#include <iostream>

#include "bench_util.h"
#include "engine/thread_pool.h"
#include "graph/metrics.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"

using namespace geospanner;

int main() {
    engine::ThreadPool pool;
    const std::size_t n = 100;
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(10);

    std::cout << "=== Extension: power stretch factors (n=" << n << ", R=" << radius
              << ", " << trials << " instances) ===\n"
              << "edge cost |uv|^beta; stretch over pairs > 1 radius apart\n\n";

    const std::vector<std::string> names{"RNG", "GG", "LDel", "CDS'", "LDel(ICDS')"};

    for (const double beta : {2.0, 3.0, 4.0}) {
        io::Table table({"topology", "power avg", "power max"});
        bench::MaxAvg avg_acc[5], max_acc[5];
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 5000 + trial,
                                                       core::Engine::kCentralized);
            if (!instance) continue;
            const auto& udg = instance->udg;
            const graph::GeometricGraph topos[5] = {
                proximity::build_rng(udg), proximity::build_gabriel(udg),
                proximity::build_pldel(udg), instance->backbone.cds_prime,
                instance->backbone.ldel_icds_prime};
            for (int i = 0; i < 5; ++i) {
                const auto s = graph::power_stretch(udg, topos[i], beta, radius, &pool);
                avg_acc[i].add(s.avg);
                max_acc[i].add(s.max);
            }
        }
        std::cout << "beta = " << beta << ":\n";
        for (int i = 0; i < 5; ++i) {
            table.begin_row().cell(names[i]).cell(avg_acc[i].avg()).cell(max_acc[i].max);
        }
        io::maybe_write_csv("power_stretch_beta" + std::to_string(static_cast<int>(beta)),
                            table);
        std::cout << table.str() << '\n';
    }
    std::cout << "expected: Gabriel/LDel power stretch ~1 (they keep all energy-\n"
                 "optimal edges for beta >= 2); backbone structures pay a small\n"
                 "constant energy premium for their sparsity.\n\n";

    // Topology-control view: the radio power each node needs to reach
    // its farthest neighbor, summed over the network (beta = 2).
    io::Table power_table({"topology", "total power vs UDG %", "max node power vs UDG %"});
    bench::MaxAvg totals[6], maxima[6];
    const std::vector<std::string> pnames{"UDG", "RNG", "GG", "LDel", "CDS'",
                                          "LDel(ICDS')"};
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto instance = bench::make_instance(n, side, radius, 5000 + trial,
                                                   core::Engine::kCentralized);
        if (!instance) continue;
        const auto& udg = instance->udg;
        const graph::GeometricGraph topos[6] = {
            udg, proximity::build_rng(udg), proximity::build_gabriel(udg),
            proximity::build_pldel(udg), instance->backbone.cds_prime,
            instance->backbone.ldel_icds_prime};
        const auto base = graph::power_assignment(udg, 2.0);
        for (int i = 0; i < 6; ++i) {
            const auto p = graph::power_assignment(topos[i], 2.0);
            totals[i].add(100.0 * p.total / base.total);
            maxima[i].add(100.0 * p.max / base.max);
        }
    }
    for (int i = 0; i < 6; ++i) {
        power_table.begin_row().cell(pnames[i]).cell(totals[i].avg(), 1).cell(
            maxima[i].avg(), 1);
    }
    io::maybe_write_csv("power_assignment", power_table);
    std::cout << "per-node transmission power to reach the farthest neighbor "
                 "(beta=2):\n"
              << power_table.str()
              << "\nsparse topologies let nodes radio at a fraction of the UDG power\n"
                 "budget; the backbone pays more than RNG/GG because connectors must\n"
                 "bridge dominators up to a full radius apart.\n";
    return 0;
}
