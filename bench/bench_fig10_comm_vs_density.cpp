// Figure 10 reproduction: per-node communication cost (broadcast count,
// max and average) to build CDS, ICDS, and LDel(ICDS), vs node density
// (n = 20..100, R = 60). Runs the actual distributed protocols on the
// round-based simulator.
//
// Expected shape: flat-ish in n (constant messages per node); the gap
// between LDel(ICDS) and CDS is roughly fixed (the localized Delaunay
// negotiation cost depends on the bounded ICDS degree, not on n).
#include <iostream>

#include "bench_backend_util.h"
#include "bench_util.h"

using namespace geospanner;

int main() {
    // GS_BACKEND reruns the sweep under an alternative spanner
    // backend; unset (or "engine") keeps the paper reproduction.
    if (bench::backend_override()) {
        return bench::run_backend_figure({"fig10",
                                          {20, 30, 40, 50, 60, 70, 80, 90, 100},
                                          {60.0},
                                          250.0, 10000, bench::trials_or(20)});
    }
    const double side = 250.0;
    const double radius = 60.0;
    const std::size_t trials = bench::trials_or(20);

    std::cout << "=== Figure 10: communication cost vs node density (R=" << radius
              << ", " << trials << " instances/point) ===\n"
              << "cost = broadcasts per node, cumulative per construction stage\n\n";

    io::Table max_table({"n", "CDS max", "ICDS max", "LDelICDS max"});
    io::Table avg_table({"n", "CDS avg", "ICDS avg", "LDelICDS avg"});

    for (std::size_t n = 20; n <= 100; n += 10) {
        bench::MaxAvg cds_max, icds_max, ldel_max;
        bench::MaxAvg cds_avg, icds_avg, ldel_avg;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = bench::make_instance(n, side, radius, 10000 + trial,
                                                       core::Engine::kDistributed);
            if (!instance) continue;
            const auto& m = instance->backbone.messages;
            cds_max.add(static_cast<double>(core::MessageStats::max_of(m.after_cds)));
            icds_max.add(static_cast<double>(core::MessageStats::max_of(m.after_icds)));
            ldel_max.add(static_cast<double>(core::MessageStats::max_of(m.after_ldel)));
            cds_avg.add(core::MessageStats::avg_of(m.after_cds));
            icds_avg.add(core::MessageStats::avg_of(m.after_icds));
            ldel_avg.add(core::MessageStats::avg_of(m.after_ldel));
        }
        max_table.begin_row().cell(n).cell(cds_max.max, 0).cell(icds_max.max, 0).cell(
            ldel_max.max, 0);
        avg_table.begin_row().cell(n).cell(cds_avg.avg()).cell(icds_avg.avg()).cell(
            ldel_avg.avg());
    }

    io::maybe_write_csv("fig10_comm_max", max_table);
    io::maybe_write_csv("fig10_comm_avg", avg_table);
    std::cout << "maximum communication cost (max over instances):\n" << max_table.str()
              << "\naverage communication cost (mean over instances):\n"
              << avg_table.str()
              << "\nexpected shape (paper Fig. 10): max cost ~20-60 and roughly flat in\n"
                 "n; LDel(ICDS) minus CDS roughly constant.\n";
    return 0;
}
