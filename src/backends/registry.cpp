#include "backends/backend.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "backends/baswana_sen.h"
#include "backends/biniaz.h"
#include "backends/engine_backend.h"
#include "backends/kanj_perkovic.h"
#include "proximity/udg.h"

namespace geospanner::backends {

BackendResult SpannerBackend::build_points(std::vector<geom::Point> points,
                                           double radius) {
    const auto start = std::chrono::steady_clock::now();
    const auto udg = proximity::build_udg(std::move(points), radius);
    const double udg_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    BackendResult result = build(udg, radius);
    core::StageStats udg_stage;
    udg_stage.name = "udg";
    udg_stage.wall_ms = udg_ms;
    udg_stage.items = udg.node_count();
    result.stats.stages.insert(result.stats.stages.begin(), std::move(udg_stage));
    return result;
}

namespace {

struct Registry {
    std::mutex mutex;
    std::map<std::string, BackendFactory> factories;
};

/// The registry is seeded with the built-in backends on first access, so
/// static-library link order can never drop a registration.
Registry& registry() {
    static Registry& instance = []() -> Registry& {
        static Registry r;
        r.factories["engine"] = [](const BackendOptions& o) {
            return std::make_unique<EngineBackend>(o);
        };
        r.factories["biniaz"] = [](const BackendOptions& o) {
            return std::make_unique<BiniazBackend>(o);
        };
        r.factories["kanj_perkovic"] = [](const BackendOptions& o) {
            return std::make_unique<KanjPerkovicBackend>(o);
        };
        r.factories["baswana_sen"] = [](const BackendOptions& o) {
            return std::make_unique<BaswanaSenBackend>(o);
        };
        return r;
    }();
    return instance;
}

}  // namespace

bool register_backend(const std::string& name, BackendFactory factory) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.emplace(name, std::move(factory)).second;
}

std::unique_ptr<SpannerBackend> make_backend(const std::string& name,
                                             const BackendOptions& options) {
    Registry& r = registry();
    BackendFactory factory;
    {
        const std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.factories.find(name);
        if (it == r.factories.end()) return nullptr;
        factory = it->second;
    }
    return factory(options);
}

std::vector<std::string> registered_backends() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto& [name, factory] : r.factories) names.push_back(name);
    return names;  // std::map iterates sorted.
}

}  // namespace geospanner::backends
