// Bounded-degree plane spanner of the UDG, after Kanj–Perković
// (arXiv:0802.2864).
//
// Kanj and Perković construct a plane, bounded-degree (1+ε)-spanner of
// the UDG locally: compute the localized Delaunay graph, then bound the
// degree with a cone-based (Yao-style) edge selection whose dropped
// edges are covered by canonical paths along the triangulation. This
// implementation follows that shape with the repo's machinery:
//
//   1. PLDel(UDG): Gabriel edges plus the edges of the Algorithm-3
//      planarized 1-localized Delaunay triangles over the full node set
//      (the same assembly the paper pipeline applies to the ICDS) —
//      plane, connected, a UDG subgraph;
//   2. mutual Yao step with `cones` sectors per node: an edge survives
//      iff BOTH endpoints keep it as the shortest edge in one of their
//      cones (mutuality caps the surviving degree at `cones`);
//   3. connectivity repair standing in for the paper's canonical paths:
//      dropped PLDel edges are rescanned shortest-first and re-added
//      whenever they join two components. Repair edges come from PLDel,
//      so planarity is preserved; they can push a node past `cones`,
//      which the claimed degree cap absorbs with a small slack.
//
// The claimed stretch constant is an empirical pin over the test
// workloads (the canonical-path bookkeeping that gives the paper its
// tight 1+ε is not reproduced here); planarity, connectivity, the
// subgraph property, and the degree cap hold by construction up to the
// documented repair slack.
#pragma once

#include "backends/backend.h"

namespace geospanner::backends {

class KanjPerkovicBackend final : public SpannerBackend {
  public:
    explicit KanjPerkovicBackend(const BackendOptions& options);

    [[nodiscard]] std::string name() const override { return "kanj_perkovic"; }
    [[nodiscard]] verify::BackendClaims claims() const override;
    [[nodiscard]] BackendResult build(const graph::GeometricGraph& udg,
                                      double radius) override;

    /// Degree headroom the claim grants the connectivity-repair edges on
    /// top of the `cones` cap of the mutual Yao step.
    static constexpr std::size_t kRepairDegreeSlack = 6;

  private:
    int cones_;
};

}  // namespace geospanner::backends
