#include "backends/kanj_perkovic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "graph/union_find.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"

namespace geospanner::backends {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Cone index of the direction u -> v among `cones` equal sectors
/// anchored at angle 0. Deterministic: atan2 is exact enough for a
/// sector decision and identical across runs on the same input.
int cone_of(const GeometricGraph& g, NodeId u, NodeId v, int cones) {
    const geom::Point p = g.point(u);
    const geom::Point q = g.point(v);
    const double angle = std::atan2(q.y - p.y, q.x - p.x);  // [-pi, pi]
    const double two_pi = 2.0 * 3.14159265358979323846;
    double normalized = angle < 0.0 ? angle + two_pi : angle;
    int c = static_cast<int>(normalized / two_pi * cones);
    if (c >= cones) c = cones - 1;  // angle == 2*pi after rounding
    return c;
}

struct RankedEdge {
    double length;
    NodeId u, v;

    friend bool operator<(const RankedEdge& a, const RankedEdge& b) {
        if (a.length != b.length) return a.length < b.length;
        if (a.u != b.u) return a.u < b.u;
        return a.v < b.v;
    }
};

}  // namespace

KanjPerkovicBackend::KanjPerkovicBackend(const BackendOptions& options)
    : cones_(std::max(options.cones, 6)) {}

verify::BackendClaims KanjPerkovicBackend::claims() const {
    verify::BackendClaims claims;
    claims.subgraph_of_udg = true;
    claims.connected = true;  // mutual-Yao drops are repaired from PLDel
    claims.plane = true;      // subgraph of the planarized LDel
    claims.max_degree = static_cast<std::size_t>(cones_) + kRepairDegreeSlack;
    // Empirical far-pair pin; the paper's canonical-path argument gives
    // 1+eps, which this simplified selection does not reproduce.
    claims.max_length_stretch = 8.0;
    return claims;
}

BackendResult KanjPerkovicBackend::build(const GeometricGraph& udg, double /*radius*/) {
    BackendResult result;
    auto& stats = result.stats.stages;

    // Stage 1: PLDel over the full node set — Gabriel edges plus the
    // edges of the Algorithm-3 survivors (the pipeline's LDel assembly,
    // applied to the UDG instead of the ICDS).
    auto start = Clock::now();
    const auto triangles =
        proximity::planarize_triangles(udg, proximity::ldel1_triangles(udg));
    GeometricGraph pldel = proximity::build_gabriel(udg);
    for (const auto& t : triangles) {
        pldel.add_edge(t.a, t.b);
        pldel.add_edge(t.b, t.c);
        pldel.add_edge(t.a, t.c);
    }
    stats.push_back({"pldel", ms_since(start), pldel.edge_count(), 1});

    // Stage 2: mutual Yao — per node, the shortest incident PLDel edge
    // in each of `cones_` sectors (ties to the smaller neighbor id); an
    // edge survives only if both endpoints selected it.
    start = Clock::now();
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::vector<NodeId>> selected(n);
    for (NodeId u = 0; u < n; ++u) {
        std::vector<NodeId> best(static_cast<std::size_t>(cones_), graph::kInvalidNode);
        for (const NodeId v : pldel.neighbors(u)) {
            const int c = cone_of(pldel, u, v, cones_);
            NodeId& b = best[static_cast<std::size_t>(c)];
            if (b == graph::kInvalidNode) {
                b = v;
                continue;
            }
            const double lv = pldel.edge_length(u, v);
            const double lb = pldel.edge_length(u, b);
            if (lv < lb || (lv == lb && v < b)) b = v;
        }
        for (const NodeId b : best) {
            if (b != graph::kInvalidNode) selected[u].push_back(b);
        }
        std::sort(selected[u].begin(), selected[u].end());
    }
    const auto mutually_selected = [&](NodeId u, NodeId v) {
        return std::binary_search(selected[u].begin(), selected[u].end(), v) &&
               std::binary_search(selected[v].begin(), selected[v].end(), u);
    };
    result.spanner = GeometricGraph(udg.points());
    std::vector<RankedEdge> dropped;
    for (const auto& [u, v] : pldel.edges()) {
        if (mutually_selected(u, v)) {
            result.spanner.add_edge(u, v);
        } else {
            dropped.push_back({pldel.edge_length(u, v), u, v});
        }
    }
    stats.push_back({"yao", ms_since(start), result.spanner.edge_count(), 1});

    // Stage 3: repair — dropped PLDel edges, shortest first, re-added
    // whenever they join two components (the stand-in for the paper's
    // canonical paths; still a PLDel subgraph, so still plane).
    start = Clock::now();
    std::sort(dropped.begin(), dropped.end());
    graph::UnionFind uf(n);
    for (const auto& [u, v] : result.spanner.edges()) uf.unite(u, v);
    std::size_t repaired = 0;
    for (const RankedEdge& e : dropped) {
        if (uf.unite(e.u, e.v)) {
            result.spanner.add_edge(e.u, e.v);
            ++repaired;
        }
    }
    stats.push_back({"repair", ms_since(start), repaired, 1});
    return result;
}

}  // namespace geospanner::backends
