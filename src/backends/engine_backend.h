// Backend adapter over the paper pipeline (engine::SpannerEngine).
//
// The reported spanner is LDel(ICDS') — the paper's final planarized
// backbone plus dominatee links, the one structure of the pipeline that
// spans every node. The adapter is a pure pass-through: its output is
// bit-identical to calling the engine directly at any thread count
// (tests/test_backends.cpp pins the equality edge-for-edge, including
// the full Backbone via last_backbone()).
//
// Claims: the spanning structure is a connected UDG subgraph with the
// suite's long-standing empirical far-pair length-stretch pin (Lemma 6's
// constant). It is deliberately NOT claimed plane — dominatee links may
// cross — and not degree-bounded (primed variants track the UDG degree);
// the planar bounded-degree core LDel(ICDS) is certified separately by
// verify::audit_backbone, which tests run alongside the generic claim
// audit for this backend.
#pragma once

#include "backends/backend.h"
#include "engine/engine.h"

namespace geospanner::backends {

class EngineBackend final : public SpannerBackend {
  public:
    explicit EngineBackend(const BackendOptions& options);

    [[nodiscard]] std::string name() const override { return "engine"; }
    [[nodiscard]] verify::BackendClaims claims() const override;
    [[nodiscard]] BackendResult build(const graph::GeometricGraph& udg,
                                      double radius) override;
    [[nodiscard]] BackendResult build_points(std::vector<geom::Point> points,
                                             double radius) override;

    /// Every pipeline structure of the most recent build — the deep
    /// equivalence surface tests compare against a direct engine run.
    [[nodiscard]] const core::Backbone& last_backbone() const { return backbone_; }

  private:
    engine::SpannerEngine engine_;
    core::Backbone backbone_;
};

}  // namespace geospanner::backends
