#include "backends/biniaz.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/predicates.h"
#include "proximity/classic.h"

namespace geospanner::backends {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(cx) << 32) ^
           (static_cast<std::uint64_t>(cy) & 0xffffffffULL);
}

/// Uniform bucket grid over inserted edges for the incremental
/// non-crossing test. Buckets have side `radius`; every candidate and
/// every kept edge is at most one radius long, so an edge's bounding box
/// overlaps at most a 2x2 bucket block and two properly crossing edges
/// always share a bucket.
class CrossingIndex {
  public:
    CrossingIndex(const GeometricGraph& g, double bucket) : g_(g), bucket_(bucket) {}

    [[nodiscard]] bool crosses_any(NodeId u, NodeId v) const {
        bool hit = false;
        for_buckets(u, v, [&](std::uint64_t key) {
            const auto it = buckets_.find(key);
            if (it == buckets_.end()) return;
            for (const auto& [a, b] : it->second) {
                if (geom::segments_properly_cross(g_.point(u), g_.point(v), g_.point(a),
                                                  g_.point(b))) {
                    hit = true;
                    return;
                }
            }
        });
        return hit;
    }

    void insert(NodeId u, NodeId v) {
        for_buckets(u, v, [&](std::uint64_t key) { buckets_[key].emplace_back(u, v); });
    }

  private:
    template <typename Fn>
    void for_buckets(NodeId u, NodeId v, Fn&& fn) const {
        const geom::Point p = g_.point(u);
        const geom::Point q = g_.point(v);
        const auto bx0 = static_cast<std::int64_t>(std::floor(std::min(p.x, q.x) / bucket_));
        const auto bx1 = static_cast<std::int64_t>(std::floor(std::max(p.x, q.x) / bucket_));
        const auto by0 = static_cast<std::int64_t>(std::floor(std::min(p.y, q.y) / bucket_));
        const auto by1 = static_cast<std::int64_t>(std::floor(std::max(p.y, q.y) / bucket_));
        for (std::int64_t bx = bx0; bx <= bx1; ++bx) {
            for (std::int64_t by = by0; by <= by1; ++by) {
                fn(cell_key(bx, by));
            }
        }
    }

    const GeometricGraph& g_;
    double bucket_;
    std::unordered_map<std::uint64_t, std::vector<std::pair<NodeId, NodeId>>> buckets_;
};

struct Candidate {
    double length;
    NodeId u, v;

    friend bool operator<(const Candidate& a, const Candidate& b) {
        if (a.length != b.length) return a.length < b.length;
        if (a.u != b.u) return a.u < b.u;
        return a.v < b.v;
    }
};

}  // namespace

BiniazBackend::BiniazBackend(const BackendOptions& /*options*/) {}

verify::BackendClaims BiniazBackend::claims() const {
    verify::BackendClaims claims;
    claims.subgraph_of_udg = true;
    claims.connected = true;  // contains the Gabriel graph of the UDG
    claims.plane = true;      // every insertion is crossing-checked
    claims.max_degree = 0;    // hubs are stars: plane but not degree-bounded
    // Empirical hop-stretch pin over the test workloads (uniform,
    // clustered, collinear, cocircular); the paper's existential
    // constant is far larger.
    claims.hop_stretch_factor = 3.0;
    claims.hop_stretch_offset = 12.0;
    return claims;
}

BackendResult BiniazBackend::build(const GeometricGraph& udg, double radius) {
    BackendResult result;
    auto& stats = result.stats.stages;

    // Stage 1: Gabriel seed — plane, connected, a UDG subgraph.
    auto start = Clock::now();
    result.spanner = proximity::build_gabriel(udg);
    stats.push_back({"gabriel", ms_since(start), result.spanner.edge_count(), 1});

    if (radius <= 0.0 || udg.node_count() == 0) return result;

    // Stage 2: grid — cliques cells, hub stars, shortest inter-cell
    // bridges.
    start = Clock::now();
    const double side = radius / std::sqrt(2.0);
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::pair<std::int64_t, std::int64_t>> cell_of(n);
    std::map<std::pair<std::int64_t, std::int64_t>, NodeId> hub_of;  // sorted cells
    for (NodeId v = 0; v < n; ++v) {
        const geom::Point p = udg.point(v);
        cell_of[v] = {static_cast<std::int64_t>(std::floor(p.x / side)),
                      static_cast<std::int64_t>(std::floor(p.y / side))};
        const auto [it, inserted] = hub_of.emplace(cell_of[v], v);
        if (!inserted && v < it->second) it->second = v;
    }

    std::vector<Candidate> candidates;
    for (NodeId v = 0; v < n; ++v) {
        const NodeId hub = hub_of.at(cell_of[v]);
        if (hub != v) candidates.push_back({udg.edge_length(hub, v), hub, v});
    }
    // Per unordered cell pair, the shortest UDG edge between the cells
    // (ties by lexicographic endpoint ids).
    std::map<std::pair<std::pair<std::int64_t, std::int64_t>,
                       std::pair<std::int64_t, std::int64_t>>,
             Candidate>
        bridges;
    for (const auto& [u, v] : udg.edges()) {
        auto cu = cell_of[u];
        auto cv = cell_of[v];
        if (cu == cv) continue;
        if (cv < cu) std::swap(cu, cv);
        const Candidate cand{udg.edge_length(u, v), u, v};
        const auto [it, inserted] = bridges.emplace(std::make_pair(cu, cv), cand);
        if (!inserted && cand < it->second) it->second = cand;
    }
    for (const auto& [cells, cand] : bridges) candidates.push_back(cand);
    std::sort(candidates.begin(), candidates.end());
    stats.push_back({"grid", ms_since(start), candidates.size(), 1});

    // Stage 3: shortest-first insertion, keeping the embedding plane.
    start = Clock::now();
    CrossingIndex index(udg, radius);
    for (const auto& [u, v] : result.spanner.edges()) index.insert(u, v);
    std::size_t added = 0;
    for (const Candidate& cand : candidates) {
        if (result.spanner.has_edge(cand.u, cand.v)) continue;
        if (index.crosses_any(cand.u, cand.v)) continue;
        result.spanner.add_edge(cand.u, cand.v);
        index.insert(cand.u, cand.v);
        ++added;
    }
    stats.push_back({"augment", ms_since(start), added, 1});
    return result;
}

}  // namespace geospanner::backends
