// Pluggable spanner-construction backends.
//
// The paper's clustered-CDS + localized-Delaunay pipeline is one point
// in a design space of localized UDG spanners. This subsystem factors
// the construction behind a uniform interface so competing designs can
// be built on the same UDG, measured by the same metrics, and audited
// against their own advertised guarantees with one generic
// verify::audit_backend call:
//
//   * "engine"        — the paper pipeline behind engine::SpannerEngine,
//                       bit-identical to calling the engine directly;
//   * "biniaz"        — a grid-based plane hop spanner after Biniaz
//                       (arXiv:1902.10051) and Catusse–Chepoi–Vaxès;
//   * "kanj_perkovic" — a bounded-degree plane spanner after
//                       Kanj–Perković (arXiv:0802.2864);
//   * "baswana_sen"   — the classic randomized (2k−1)-spanner, the
//                       non-geometric baseline.
//
// Each backend declares its claimed bounds (plane or not, degree cap,
// stretch constants) as a verify::BackendClaims value; the claim set is
// part of the backend's contract and tests/test_backends.cpp audits
// every backend against exactly its own claims across uniform,
// clustered, and degenerate (collinear / cocircular) inputs.
//
// Backends are registered in a string-keyed factory registry so benches
// and tools can select a construction by name (see GS_BACKEND in the
// figure benches, and bench_backends for the head-to-head sweep).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/report.h"
#include "graph/geometric_graph.h"
#include "verify/backend_audit.h"

namespace geospanner::backends {

/// Construction-time knobs shared by the registry factories. Each
/// backend reads only the fields it documents; unread fields are
/// ignored, so one options value can drive a sweep over all backends.
struct BackendOptions {
    /// Worker lanes for backends that parallelize ("engine");
    /// 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Seed for randomized backends ("baswana_sen"). Builds are
    /// deterministic per seed.
    std::uint64_t seed = 0x5eedf00dULL;
    /// Cone count of the degree-bounding Yao step ("kanj_perkovic").
    int cones = 14;
    /// Stretch parameter of Baswana–Sen: the spanner guarantees length
    /// stretch 2k − 1.
    std::size_t k = 2;
};

/// One backend build: the spanner over the full node set, the per-stage
/// timing breakdown, and (for backends that execute a message-passing
/// protocol) per-node message counts.
struct BackendResult {
    graph::GeometricGraph spanner;
    core::PipelineStats stats;
    core::MessageStats messages;  ///< empty unless the backend runs a protocol
};

/// A spanner construction: build from a UDG (or raw points + radius),
/// report per-stage StageStats, and declare the bounds the construction
/// claims — the contract verify::audit_backend checks.
class SpannerBackend {
  public:
    virtual ~SpannerBackend() = default;

    /// Registry key, e.g. "engine", "biniaz".
    [[nodiscard]] virtual std::string name() const = 0;

    /// The bounds this construction advertises. Constant per backend
    /// configuration; audited by verify::audit_backend.
    [[nodiscard]] virtual verify::BackendClaims claims() const = 0;

    /// Builds the spanner over an existing UDG with the given
    /// transmission radius. Deterministic: same UDG + same options
    /// (including seed) produce the same edge set.
    [[nodiscard]] virtual BackendResult build(const graph::GeometricGraph& udg,
                                              double radius) = 0;

    /// Builds from raw node positions: constructs the UDG, then the
    /// spanner. Backends may override to fuse the stages (the engine
    /// backend runs its own staged UDG construction).
    [[nodiscard]] virtual BackendResult build_points(std::vector<geom::Point> points,
                                                     double radius);
};

using BackendFactory =
    std::function<std::unique_ptr<SpannerBackend>(const BackendOptions&)>;

/// Registers a factory under `name`; returns false (and leaves the
/// existing entry) when the name is already taken. The four built-in
/// backends are pre-registered on first registry access.
bool register_backend(const std::string& name, BackendFactory factory);

/// Instantiates the named backend, or nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<SpannerBackend> make_backend(
    const std::string& name, const BackendOptions& options = {});

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> registered_backends();

}  // namespace geospanner::backends
