// Baswana–Sen randomized (2k−1)-spanner — the non-geometric baseline.
//
// The classic expected-O(km)-time clustering spanner: k−1 rounds of
// sampled cluster promotion, each vertex joining its lightest sampled
// neighbor cluster (adding the connecting edge) or, if none is sampled,
// adding its lightest edge toward every neighboring cluster and retiring
// from the residual graph; a final vertex–cluster joining phase adds the
// lightest remaining edge per adjacent cluster. Edge weights are
// Euclidean lengths with a (length, id, id) total order, so the lightest
// choices are unique and the build is deterministic per seed.
//
// Unlike the geometric constructions, nothing here uses planarity or
// bounded degree — the guarantee is purely metric: every UDG edge (u, v)
// is spanned by a path of weight at most (2k−1)·|uv|, which bounds the
// length stretch of every pair by 2k−1 and preserves connectivity. Those
// two claims (plus the subgraph property) are exactly what the backend
// advertises; planarity and degree are deliberately unclaimed.
#pragma once

#include "backends/backend.h"

namespace geospanner::backends {

class BaswanaSenBackend final : public SpannerBackend {
  public:
    explicit BaswanaSenBackend(const BackendOptions& options);

    [[nodiscard]] std::string name() const override { return "baswana_sen"; }
    [[nodiscard]] verify::BackendClaims claims() const override;
    [[nodiscard]] BackendResult build(const graph::GeometricGraph& udg,
                                      double radius) override;

  private:
    std::size_t k_;
    std::uint64_t seed_;
};

}  // namespace geospanner::backends
