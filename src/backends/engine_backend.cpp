#include "backends/engine_backend.h"

#include <utility>

namespace geospanner::backends {

namespace {

engine::EngineOptions engine_options(const BackendOptions& options) {
    engine::EngineOptions opts;
    opts.threads = options.threads;
    return opts;
}

}  // namespace

EngineBackend::EngineBackend(const BackendOptions& options)
    : engine_(engine_options(options)) {}

verify::BackendClaims EngineBackend::claims() const {
    verify::BackendClaims claims;
    claims.subgraph_of_udg = true;
    claims.connected = true;
    claims.plane = false;    // dominatee links of the primed variant may cross
    claims.max_degree = 0;   // primed variants track the UDG degree
    claims.max_length_stretch = 16.0;  // Lemma 6 empirical pin (AuditOptions default)
    return claims;
}

BackendResult EngineBackend::build(const graph::GeometricGraph& udg, double /*radius*/) {
    BackendResult result;
    backbone_ = engine_.build_backbone(udg, &result.stats);
    result.spanner = backbone_.ldel_icds_prime;
    result.messages = backbone_.messages;
    return result;
}

BackendResult EngineBackend::build_points(std::vector<geom::Point> points,
                                          double radius) {
    engine::BuildResult built = engine_.build(std::move(points), radius);
    backbone_ = std::move(built.backbone);
    BackendResult result;
    result.spanner = backbone_.ldel_icds_prime;
    result.messages = backbone_.messages;
    result.stats = std::move(built.stats);
    return result;
}

}  // namespace geospanner::backends
