// Grid-based plane hop spanner for UDGs, after Biniaz (arXiv:1902.10051)
// and Catusse–Chepoi–Vaxès.
//
// That line of work covers the plane with constant-diameter cells (so
// each cell's nodes form a UDG clique), keeps one representative edge
// between nearby cells plus intra-cell hub links, and resolves edge
// crossings through a case analysis on the UDG crossing lemma, yielding
// a plane subgraph with constant hop stretch.
//
// This implementation keeps the grid/hub/bridge skeleton but replaces
// the paper's crossing case analysis with a construction that is plane
// by construction:
//
//   1. seed with the Gabriel graph of the UDG — plane and
//      connectivity-preserving by the classical witness induction;
//   2. lay a square grid of side radius/sqrt(2) (cell diameter <= radius,
//      so cells are cliques) and collect hub stars (lowest-id hub per
//      cell) plus, per pair of nearby cells, the shortest UDG edge
//      between them;
//   3. insert the candidates shortest-first, each only if it properly
//      crosses no edge already kept.
//
// Planarity and connectivity are therefore guaranteed on every input
// (degenerate ones included); the hop-stretch constant is an empirical
// pin, not the paper's 341 — the audited claim records the constants the
// construction actually achieves on the test workloads.
#pragma once

#include "backends/backend.h"

namespace geospanner::backends {

class BiniazBackend final : public SpannerBackend {
  public:
    explicit BiniazBackend(const BackendOptions& options);

    [[nodiscard]] std::string name() const override { return "biniaz"; }
    [[nodiscard]] verify::BackendClaims claims() const override;
    [[nodiscard]] BackendResult build(const graph::GeometricGraph& udg,
                                      double radius) override;
};

}  // namespace geospanner::backends
