#include "backends/baswana_sen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "random/rng.h"

namespace geospanner::backends {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Strict total order on the edges incident to one fixed vertex:
/// (length, neighbor id). Unique because a neighbor appears once.
struct IncidentEdge {
    double length = 0.0;
    NodeId neighbor = graph::kInvalidNode;

    [[nodiscard]] bool lighter_than(const IncidentEdge& other) const {
        if (length != other.length) return length < other.length;
        return neighbor < other.neighbor;
    }
};

}  // namespace

BaswanaSenBackend::BaswanaSenBackend(const BackendOptions& options)
    : k_(std::max<std::size_t>(options.k, 1)), seed_(options.seed) {}

verify::BackendClaims BaswanaSenBackend::claims() const {
    verify::BackendClaims claims;
    claims.subgraph_of_udg = true;
    claims.connected = true;  // every edge is spanned within (2k-1) * |uv|
    claims.plane = false;
    claims.max_degree = 0;
    claims.max_length_stretch = static_cast<double>(2 * k_ - 1);
    return claims;
}

BackendResult BaswanaSenBackend::build(const GeometricGraph& udg, double /*radius*/) {
    BackendResult result;
    result.spanner = GeometricGraph(udg.points());
    const auto n = static_cast<NodeId>(udg.node_count());
    if (n == 0) return result;

    rnd::Xoshiro256 rng(seed_);
    auto start = Clock::now();

    // Residual graph (mutated by deletions) and the current clustering.
    std::vector<std::unordered_map<NodeId, double>> adj(n);
    for (const auto& [u, v] : udg.edges()) {
        const double len = udg.edge_length(u, v);
        adj[u].emplace(v, len);
        adj[v].emplace(u, len);
    }
    std::vector<NodeId> center(n);
    for (NodeId v = 0; v < n; ++v) center[v] = v;

    const double sample_prob =
        std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k_));

    const auto delete_edges =
        [&](const std::vector<std::pair<NodeId, NodeId>>& doomed) {
            for (const auto& [u, v] : doomed) {
                adj[u].erase(v);
                adj[v].erase(u);
            }
        };

    // Phase 1: k-1 rounds of sampled cluster promotion.
    for (std::size_t round = 0; round + 1 < k_; ++round) {
        // Sample the current centers, in sorted order so the RNG stream
        // is deterministic.
        std::vector<NodeId> centers;
        for (NodeId v = 0; v < n; ++v) {
            if (center[v] == v) centers.push_back(v);
        }
        std::vector<char> sampled(n, 0);
        for (const NodeId c : centers) sampled[c] = rng.uniform01() < sample_prob;

        std::vector<NodeId> new_center(n, graph::kInvalidNode);
        std::vector<std::pair<NodeId, NodeId>> doomed;
        for (NodeId v = 0; v < n; ++v) {
            if (center[v] == graph::kInvalidNode) continue;  // retired earlier
            if (sampled[center[v]]) {
                new_center[v] = center[v];  // cluster survives as sampled
                continue;
            }
            // Lightest residual edge toward each neighboring cluster.
            std::unordered_map<NodeId, IncidentEdge> best;
            for (const auto& [u, len] : adj[v]) {
                const NodeId cu = center[u];
                if (cu == graph::kInvalidNode) continue;
                const IncidentEdge e{len, u};
                const auto [it, inserted] = best.emplace(cu, e);
                if (!inserted && e.lighter_than(it->second)) it->second = e;
            }
            // Lightest edge into a *sampled* neighboring cluster, if any.
            NodeId join_cluster = graph::kInvalidNode;
            IncidentEdge join_edge;
            for (const auto& [cluster, e] : best) {
                if (!sampled[cluster]) continue;
                if (join_cluster == graph::kInvalidNode ||
                    e.lighter_than(join_edge)) {
                    join_cluster = cluster;
                    join_edge = e;
                }
            }
            if (join_cluster == graph::kInvalidNode) {
                // No sampled neighbor: connect once to every neighboring
                // cluster and retire from the residual graph.
                for (const auto& [cluster, e] : best) {
                    result.spanner.add_edge(v, e.neighbor);
                }
                for (const auto& [u, len] : adj[v]) doomed.emplace_back(v, u);
            } else {
                // Join the lightest sampled cluster; also take (and then
                // sever) every strictly lighter neighboring cluster.
                result.spanner.add_edge(v, join_edge.neighbor);
                new_center[v] = join_cluster;
                for (const auto& [u, len] : adj[v]) {
                    const NodeId cu = center[u];
                    if (cu == graph::kInvalidNode) continue;
                    if (cu == join_cluster) {
                        doomed.emplace_back(v, u);
                        continue;
                    }
                    const auto it = best.find(cu);
                    if (it != best.end() && it->second.lighter_than(join_edge)) {
                        doomed.emplace_back(v, u);
                    }
                }
                for (const auto& [cluster, e] : best) {
                    if (cluster != join_cluster && e.lighter_than(join_edge)) {
                        result.spanner.add_edge(v, e.neighbor);
                    }
                }
            }
        }
        delete_edges(doomed);
        // Remove intra-cluster edges under the new clustering.
        doomed.clear();
        for (NodeId v = 0; v < n; ++v) {
            if (new_center[v] == graph::kInvalidNode) continue;
            for (const auto& [u, len] : adj[v]) {
                if (v < u && new_center[u] == new_center[v]) doomed.emplace_back(v, u);
            }
        }
        delete_edges(doomed);
        center = std::move(new_center);
    }
    result.stats.stages.push_back(
        {"cluster", ms_since(start), result.spanner.edge_count(), 1});

    // Phase 2: vertex-cluster joining — lightest remaining edge per
    // adjacent cluster.
    start = Clock::now();
    std::size_t joined = 0;
    for (NodeId v = 0; v < n; ++v) {
        std::unordered_map<NodeId, IncidentEdge> best;
        for (const auto& [u, len] : adj[v]) {
            const NodeId cu = center[u];
            if (cu == graph::kInvalidNode) continue;
            const IncidentEdge e{len, u};
            const auto [it, inserted] = best.emplace(cu, e);
            if (!inserted && e.lighter_than(it->second)) it->second = e;
        }
        for (const auto& [cluster, e] : best) {
            joined += result.spanner.add_edge(v, e.neighbor) ? 1 : 0;
        }
    }
    result.stats.stages.push_back({"join", ms_since(start), joined, 1});
    return result;
}

}  // namespace geospanner::backends
