// Multi-producer single-consumer batch queue for the update service.
//
// Plain mutex + condvar: producers are mobile-node event sources pushing
// a few thousand batches per second at most, so lock-free machinery
// would buy nothing over the contention-free fast path here, and the
// blocking pop gives the ingest worker an idle wait for free. close()
// wakes the consumer for shutdown; pops drain remaining items first so
// no accepted update is ever dropped.
//
// Backpressure: unbounded by default. set_bound() caps the depth and
// picks what a full queue does to a push — coalesce into the newest
// queued item (when the caller's CoalesceFn accepts the pair), reject,
// or block until the consumer makes room. close() wakes blocked
// producers too; their items are rejected as kClosed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace geospanner::service {

/// What push() did with the item.
enum class PushResult {
    kQueued,     ///< appended to the queue
    kCoalesced,  ///< merged into the newest queued item (not appended)
    kRejected,   ///< full queue + reject policy; item dropped
    kClosed,     ///< queue closed; item dropped
};

template <typename T>
class UpdateQueue {
  public:
    /// Merges `incoming` into the newest queued item `newest`; returns
    /// false when the pair is not mergeable (push falls through to the
    /// reject/block policy).
    using CoalesceFn = std::function<bool(T& newest, T& incoming)>;

    /// Caps the queue at `capacity` items (0 = unbounded). On a full
    /// queue, push first tries `coalesce` (when given), then rejects
    /// (`reject_when_full`) or blocks until space. Call before the
    /// producers start; not thread-safe against concurrent push.
    void set_bound(std::size_t capacity, bool reject_when_full,
                   CoalesceFn coalesce = {}) {
        const std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity;
        reject_when_full_ = reject_when_full;
        coalesce_ = std::move(coalesce);
    }

    /// Enqueues one item (any thread) under the configured policy.
    [[nodiscard]] PushResult push(T item) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_) return PushResult::kClosed;
        if (capacity_ > 0 && items_.size() >= capacity_) {
            if (coalesce_ && !items_.empty() && coalesce_(items_.back(), item)) {
                return PushResult::kCoalesced;  // Consumer already awake.
            }
            if (reject_when_full_) return PushResult::kRejected;
            space_.wait(lock,
                        [&] { return closed_ || items_.size() < capacity_; });
            if (closed_) return PushResult::kClosed;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        ready_.notify_one();
        return PushResult::kQueued;
    }

    /// Blocks until an item is available or the queue is closed and
    /// empty; false means shutdown (out is untouched).
    bool pop(T& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        space_.notify_one();
        return true;
    }

    /// Rejects future pushes, wakes blocked producers, and wakes the
    /// consumer once the backlog is drained. Idempotent.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
        space_.notify_all();
    }

    [[nodiscard]] std::size_t depth() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::condition_variable space_;
    std::deque<T> items_;
    bool closed_ = false;
    std::size_t capacity_ = 0;  ///< 0 = unbounded
    bool reject_when_full_ = false;
    CoalesceFn coalesce_;
};

}  // namespace geospanner::service
