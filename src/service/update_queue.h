// Multi-producer single-consumer batch queue for the update service.
//
// Plain mutex + condvar: producers are mobile-node event sources pushing
// a few thousand batches per second at most, so lock-free machinery
// would buy nothing over the contention-free fast path here, and the
// blocking pop gives the ingest worker an idle wait for free. close()
// wakes the consumer for shutdown; pops drain remaining items first so
// no accepted update is ever dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace geospanner::service {

template <typename T>
class UpdateQueue {
  public:
    /// Enqueues one item (any thread). Returns false when the queue is
    /// closed — the item is rejected, not queued.
    bool push(T item) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /// Blocks until an item is available or the queue is closed and
    /// empty; false means shutdown (out is untouched).
    bool pop(T& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /// Rejects future pushes and wakes the consumer once the backlog is
    /// drained. Idempotent.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t depth() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace geospanner::service
