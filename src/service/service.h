// High-throughput update service over DynamicSpanner: the "millions of
// mobile users" serving story. Producers enqueue UpdateBatch mobility
// churn from any thread; one ingest worker applies batches in arrival
// order through the incremental patcher; readers take versioned
// copy-on-write snapshots that stay immutable while patches land.
//
// Consistency contract: a SnapshotHandle is a deep copy of the
// maintained (positions, UDG, backbone) triple taken between batch
// applications under the state lock — a reader can never observe a
// half-applied batch, and a held snapshot never changes underneath its
// holder. Snapshots are created lazily (first read after a version
// bump) and shared: back-to-back readers between two batches get the
// same handle, so an idle service costs one copy per applied batch at
// most, not one per read.
//
// Thread-safety: enqueue(), snapshot(), stats(), drain() are safe from
// any thread. The ingest worker drives the engine ThreadPool for the
// bulk kernels; concurrent external drivers (e.g. a reader rebuilding a
// reference on the same engine) are serialized by the pool itself.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/backbone.h"
#include "dynamic/spanner.h"
#include "engine/engine.h"
#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "service/update_queue.h"

namespace geospanner::service {

/// One immutable published topology: the version counter (number of
/// batches applied when it was taken) plus deep copies of the
/// maintained state. Shared between all readers of that version.
struct Snapshot {
    std::uint64_t version = 0;
    std::vector<geom::Point> points;
    double radius = 0.0;
    graph::GeometricGraph udg;
    core::Backbone backbone;
};

/// Handle a reader holds while querying; keeps the snapshot alive after
/// newer versions are published.
using SnapshotHandle = std::shared_ptr<const Snapshot>;

/// Cumulative service counters (since construction).
struct ServiceStats {
    std::uint64_t batches_enqueued = 0;
    std::uint64_t batches_applied = 0;
    std::uint64_t updates_applied = 0;  ///< moves + joins + leaves
    std::uint64_t fallbacks = 0;        ///< batches on the full-rebuild path
    std::uint64_t components_patched = 0;
    std::uint64_t component_fallbacks = 0;  ///< components over the per-component cap
    std::uint64_t snapshots_published = 0;
    std::size_t queue_depth = 0;     ///< batches waiting right now
    std::uint64_t version = 0;       ///< batches applied so far
    double updates_per_sec = 0.0;    ///< applied updates over service lifetime
    double apply_ms_total = 0.0;     ///< wall time inside DynamicSpanner::apply
};

/// Owns the maintained spanner and the ingest worker thread. The engine
/// reference must outlive the service (same contract as DynamicSpanner).
class SpannerService {
  public:
    SpannerService(engine::SpannerEngine& engine, std::vector<geom::Point> points,
                   double radius);
    ~SpannerService();  ///< stop() + join

    SpannerService(const SpannerService&) = delete;
    SpannerService& operator=(const SpannerService&) = delete;

    /// Queues one batch for the ingest worker (any thread). False after
    /// stop(): the batch is rejected.
    bool enqueue(dynamic::UpdateBatch batch);

    /// The current published topology. Blocks only for the copy (and
    /// never while a batch is mid-application — the copy happens between
    /// batches under the state lock).
    [[nodiscard]] SnapshotHandle snapshot();

    /// Blocks until every batch enqueued before this call was applied.
    void drain();

    /// Rejects further enqueues, drains the backlog, joins the worker.
    /// Idempotent; the destructor calls it.
    void stop();

    [[nodiscard]] ServiceStats stats() const;

  private:
    void worker_loop();

    engine::SpannerEngine* engine_;
    dynamic::DynamicSpanner spanner_;  ///< guarded by state_mutex_
    UpdateQueue<dynamic::UpdateBatch> queue_;
    std::thread worker_;

    /// Guards spanner_, cached_, and the stats counters below.
    mutable std::mutex state_mutex_;
    SnapshotHandle cached_;  ///< snapshot of `version_`; null when stale
    std::uint64_t version_ = 0;
    std::uint64_t updates_applied_ = 0;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t components_patched_ = 0;
    std::uint64_t component_fallbacks_ = 0;
    std::uint64_t snapshots_published_ = 0;
    double apply_ms_total_ = 0.0;

    /// Drain accounting: enqueued_ is bumped by producers, applied_ by
    /// the worker after the batch fully landed; drain() waits for
    /// applied_ to catch up under drain_mutex_.
    mutable std::mutex drain_mutex_;
    std::condition_variable drained_;
    std::uint64_t enqueued_ = 0;
    std::uint64_t applied_ = 0;

    std::mutex stop_mutex_;  ///< serializes stop() callers around the join
    std::chrono::steady_clock::time_point start_;
};

}  // namespace geospanner::service
