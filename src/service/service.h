// High-throughput update service over DynamicSpanner: the "millions of
// mobile users" serving story. Producers enqueue UpdateBatch mobility
// churn from any thread; one ingest worker applies batches in arrival
// order through the incremental patcher; readers take versioned
// copy-on-write snapshots that stay immutable while patches land.
//
// Consistency contract: a SnapshotHandle is a deep copy of the
// maintained (positions, UDG, backbone) triple taken between batch
// applications under the state lock — a reader can never observe a
// half-applied batch, and a held snapshot never changes underneath its
// holder. Snapshots are created lazily (first read after a version
// bump) and shared: back-to-back readers between two batches get the
// same handle, so an idle service costs one copy per applied batch at
// most, not one per read.
//
// Hardening (ServiceOptions, all off by default):
//   * Bounded ingest queue with explicit backpressure — block the
//     producer, reject the batch, or coalesce move-only batches into
//     the newest queued one.
//   * Poisoned-batch quarantine: structurally invalid batches
//     (non-finite coordinates, out-of-range ids) are rejected before
//     apply; an optional post-apply audit gate (verify::audit_backbone
//     every audit_every batches, or a caller-supplied check) rolls a
//     batch that corrupted the invariants back to the last good
//     positions via full rebuild. Either way the service keeps serving
//     and records a QuarantineReport.
//   * Watchdog: with watchdog_ms > 0 each apply runs on a disposable
//     applier thread; an apply that wedges past the deadline is
//     abandoned (the orphaned spanner and thread are kept alive until
//     stop()) and the service degrades to a rebuild from the last good
//     positions instead of stalling the ingest worker forever.
//
// Thread-safety: enqueue(), snapshot(), stats(), drain() are safe from
// any thread. The ingest worker drives the engine ThreadPool for the
// bulk kernels; concurrent external drivers (e.g. a reader rebuilding a
// reference on the same engine) are serialized by the pool itself.
// snapshot()/stats() block while a batch is mid-apply (bounded by the
// watchdog when one is configured). stop() returns only after enqueues
// are rejected, the backlog is drained, and the worker has exited; it
// also reaps any orphaned applier threads, so a wedged apply must
// terminate eventually for stop() to return.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/backbone.h"
#include "dynamic/spanner.h"
#include "engine/engine.h"
#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "service/update_queue.h"
#include "verify/audit.h"

namespace geospanner::service {

/// One immutable published topology: the version counter (bumped on
/// every published-state change, including quarantine rollbacks) plus
/// deep copies of the maintained state. Shared between all readers of
/// that version.
struct Snapshot {
    std::uint64_t version = 0;
    std::vector<geom::Point> points;
    double radius = 0.0;
    graph::GeometricGraph udg;
    core::Backbone backbone;
};

/// Handle a reader holds while querying; keeps the snapshot alive after
/// newer versions are published.
using SnapshotHandle = std::shared_ptr<const Snapshot>;

/// What enqueue() does when the bounded queue is full.
enum class BackpressurePolicy {
    kBlock,     ///< producer waits for the worker to make room
    kReject,    ///< enqueue returns false; batch dropped, counted
    kCoalesce,  ///< move-only batches merge into the newest queued one;
                ///< non-mergeable batches block
};

/// Record of one batch the service refused or rolled back. The service
/// kept serving throughout — quarantine is containment, not an outage.
struct QuarantineReport {
    std::uint64_t version = 0;  ///< published version when the batch was caught
    std::string reason;         ///< validation error, audit failure, or watchdog
    std::size_t moves = 0;
    std::size_t joins = 0;
    std::size_t leaves = 0;
    /// True when the batch had already mutated state and the service
    /// rebuilt from the last good positions; false when it was rejected
    /// before apply (state untouched).
    bool rolled_back = false;
};

/// Hardening knobs. The defaults reproduce the unhardened service
/// exactly: unbounded queue, apply inline on the worker, no gate.
struct ServiceOptions {
    std::size_t queue_capacity = 0;  ///< 0 = unbounded (no backpressure)
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// > 0 runs each apply on a disposable applier thread with this
    /// deadline; a wedged apply degrades to rebuild-from-last-good.
    double watchdog_ms = 0.0;
    /// > 0 runs verify::audit_backbone after every Nth applied batch
    /// and quarantines the batch when the audit fails.
    std::size_t audit_every = 0;
    verify::AuditOptions audit_options;
    /// Custom post-apply gate (overrides the audit; runs every batch
    /// unless audit_every sets a cadence): return "" for healthy, a
    /// reason string to quarantine. Called under the state lock with
    /// the just-applied topology.
    std::function<std::string(const Snapshot&)> post_apply_check;
    /// Test seam: runs in the applying context just before each apply
    /// (e.g. to wedge it for watchdog tests).
    std::function<void(const dynamic::UpdateBatch&)> apply_hook;
};

/// Cumulative service counters (since construction).
struct ServiceStats {
    std::uint64_t batches_enqueued = 0;
    std::uint64_t batches_applied = 0;  ///< batches that stuck (not quarantined)
    std::uint64_t updates_applied = 0;  ///< moves + joins + leaves
    std::uint64_t fallbacks = 0;        ///< batches on the full-rebuild path
    std::uint64_t components_patched = 0;
    std::uint64_t component_fallbacks = 0;  ///< components over the per-component cap
    std::uint64_t snapshots_published = 0;
    std::uint64_t batches_rejected = 0;    ///< backpressure kReject drops
    std::uint64_t batches_coalesced = 0;   ///< merged into a queued batch
    std::uint64_t batches_quarantined = 0; ///< validation/audit/watchdog catches
    std::uint64_t watchdog_timeouts = 0;   ///< applies abandoned past deadline
    std::size_t queue_depth = 0;     ///< batches waiting right now
    std::size_t queue_capacity = 0;  ///< configured bound (0 = unbounded)
    std::uint64_t version = 0;       ///< published-state changes so far
    double updates_per_sec = 0.0;    ///< applied updates over service lifetime
    double apply_ms_total = 0.0;     ///< wall time inside DynamicSpanner::apply
};

/// Owns the maintained spanner and the ingest worker thread. The engine
/// reference must outlive the service (same contract as DynamicSpanner).
class SpannerService {
  public:
    SpannerService(engine::SpannerEngine& engine, std::vector<geom::Point> points,
                   double radius, ServiceOptions options = {});
    ~SpannerService();  ///< stop() + join

    SpannerService(const SpannerService&) = delete;
    SpannerService& operator=(const SpannerService&) = delete;

    /// Queues one batch for the ingest worker (any thread). False after
    /// stop() or when the backpressure policy rejected it. May block
    /// under kBlock (and kCoalesce on a non-mergeable batch) while the
    /// bounded queue is full.
    bool enqueue(dynamic::UpdateBatch batch);

    /// The current published topology. Blocks only for the copy (and
    /// never while a batch is mid-application — the copy happens between
    /// batches under the state lock).
    [[nodiscard]] SnapshotHandle snapshot();

    /// Blocks until every batch enqueued before this call was processed
    /// (applied, coalesced-and-applied, or quarantined).
    void drain();

    /// Rejects further enqueues, drains the backlog, joins the worker
    /// and any orphaned applier threads. Idempotent; the destructor
    /// calls it.
    void stop();

    [[nodiscard]] ServiceStats stats() const;

    /// Every quarantine so far, oldest first.
    [[nodiscard]] std::vector<QuarantineReport> quarantine_reports() const;

  private:
    /// Queue element: one batch plus how many producer enqueues it
    /// carries (> 1 after coalescing), for drain accounting.
    struct Ingest {
        dynamic::UpdateBatch batch;
        std::size_t merged = 1;
    };

    /// Shared state of one watchdogged apply; owns the batch copy so an
    /// abandoned applier thread never reads freed worker memory.
    struct ApplyShared {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        dynamic::UpdateBatch batch;
        dynamic::PatchStats stats;
    };

    /// A wedged apply we walked away from: the thread still running it
    /// and the spanner it is mutating, kept alive until stop().
    struct Orphan {
        std::thread thread;
        std::unique_ptr<dynamic::DynamicSpanner> spanner;
        std::shared_ptr<ApplyShared> shared;
    };

    void worker_loop();
    /// Validate → apply (inline or watchdogged) → gate → publish, all
    /// under state_mutex_.
    void process(Ingest& ingest);
    /// Runs apply on a disposable thread; false = deadline passed and
    /// spanner_ was orphaned (caller must rebuild).
    bool apply_with_watchdog(const dynamic::UpdateBatch& batch,
                             dynamic::PatchStats& out);
    /// "" = healthy; otherwise the quarantine reason.
    [[nodiscard]] std::string run_gate();
    void rebuild_from_last_good();
    void record_quarantine(std::string reason, const dynamic::UpdateBatch& batch,
                           bool rolled_back);

    engine::SpannerEngine* engine_;
    ServiceOptions options_;
    double radius_ = 0.0;
    bool gate_configured_ = false;
    bool track_last_good_ = false;
    std::unique_ptr<dynamic::DynamicSpanner> spanner_;  ///< guarded by state_mutex_
    UpdateQueue<Ingest> queue_;
    std::thread worker_;

    /// Guards spanner_, cached_, last_good_points_, quarantine_reports_,
    /// and the stats counters below.
    mutable std::mutex state_mutex_;
    SnapshotHandle cached_;  ///< snapshot of `version_`; null when stale
    std::uint64_t version_ = 0;
    std::uint64_t batches_applied_ = 0;
    std::uint64_t updates_applied_ = 0;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t components_patched_ = 0;
    std::uint64_t component_fallbacks_ = 0;
    std::uint64_t snapshots_published_ = 0;
    std::uint64_t batches_quarantined_ = 0;
    std::uint64_t watchdog_timeouts_ = 0;
    std::uint64_t gate_counter_ = 0;
    double apply_ms_total_ = 0.0;
    std::vector<geom::Point> last_good_points_;  ///< rollback target
    std::vector<QuarantineReport> quarantine_reports_;

    /// Producer-side counters (outside the state lock).
    std::atomic<std::uint64_t> batches_rejected_{0};
    std::atomic<std::uint64_t> batches_coalesced_{0};

    /// Drain accounting: enqueued_ is bumped by producers, applied_ by
    /// the worker after the batch fully landed; drain() waits for
    /// applied_ to catch up under drain_mutex_.
    mutable std::mutex drain_mutex_;
    std::condition_variable drained_;
    std::uint64_t enqueued_ = 0;
    std::uint64_t applied_ = 0;

    /// Touched only by the worker while it runs, and by stop() after
    /// the worker joined — never concurrently.
    std::vector<Orphan> orphans_;

    std::mutex stop_mutex_;  ///< serializes stop() callers around the join
    std::chrono::steady_clock::time_point start_;
};

}  // namespace geospanner::service
