#include "service/service.h"

#include <cmath>
#include <utility>

namespace geospanner::service {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
        .count();
}

/// Structural validation, cheap enough to run on every batch: a batch
/// that names nonexistent nodes or carries non-finite coordinates is
/// poisoned — applying it would corrupt the patcher's invariants (or
/// crash), so it is quarantined before apply. `n` is the pre-batch
/// node count.
std::string validate_batch(const dynamic::UpdateBatch& batch, std::size_t n) {
    for (const auto& mv : batch.moves) {
        if (mv.node >= n) {
            return "move targets nonexistent node " + std::to_string(mv.node);
        }
        if (!std::isfinite(mv.to.x) || !std::isfinite(mv.to.y)) {
            return "non-finite move coordinate for node " + std::to_string(mv.node);
        }
    }
    for (const geom::Point p : batch.joins) {
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
            return "non-finite join coordinate";
        }
    }
    // Leaves apply sequentially with swap-remove, so each one must be
    // in range of the count it sees.
    std::size_t count = n + batch.joins.size();
    for (const graph::NodeId leaver : batch.leaves) {
        if (count == 0 || leaver >= count) {
            return "leave targets nonexistent node " + std::to_string(leaver);
        }
        --count;
    }
    return {};
}

}  // namespace

SpannerService::SpannerService(engine::SpannerEngine& engine,
                               std::vector<geom::Point> points, double radius,
                               ServiceOptions options)
    : engine_(&engine), options_(std::move(options)), radius_(radius),
      start_(std::chrono::steady_clock::now()) {
    gate_configured_ =
        options_.audit_every > 0 || static_cast<bool>(options_.post_apply_check);
    track_last_good_ = gate_configured_ || options_.watchdog_ms > 0.0;
    if (track_last_good_) last_good_points_ = points;
    spanner_ = std::make_unique<dynamic::DynamicSpanner>(engine, std::move(points),
                                                         radius);
    if (options_.queue_capacity > 0) {
        UpdateQueue<Ingest>::CoalesceFn coalesce;
        if (options_.backpressure == BackpressurePolicy::kCoalesce) {
            // Only move-only batches merge: concatenated moves apply in
            // order (last write wins), which is exactly the semantics of
            // applying the two batches back to back. Joins and leaves
            // renumber ids, so batches carrying them never coalesce.
            coalesce = [](Ingest& newest, Ingest& incoming) {
                if (!newest.batch.joins.empty() || !newest.batch.leaves.empty() ||
                    !incoming.batch.joins.empty() || !incoming.batch.leaves.empty()) {
                    return false;
                }
                newest.batch.moves.insert(newest.batch.moves.end(),
                                          incoming.batch.moves.begin(),
                                          incoming.batch.moves.end());
                newest.merged += incoming.merged;
                return true;
            };
        }
        queue_.set_bound(options_.queue_capacity,
                         options_.backpressure == BackpressurePolicy::kReject,
                         std::move(coalesce));
    }
    worker_ = std::thread([this] { worker_loop(); });
}

SpannerService::~SpannerService() { stop(); }

bool SpannerService::enqueue(dynamic::UpdateBatch batch) {
    // Count before the push so applied_ can never race past enqueued_;
    // uncount on rejection.
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        ++enqueued_;
    }
    switch (queue_.push(Ingest{std::move(batch), 1})) {
        case PushResult::kQueued:
            return true;
        case PushResult::kCoalesced:
            // The carrier batch's `merged` count now covers this
            // enqueue, so drain accounting balances when it lands.
            batches_coalesced_.fetch_add(1, std::memory_order_relaxed);
            return true;
        case PushResult::kRejected:
            batches_rejected_.fetch_add(1, std::memory_order_relaxed);
            break;
        case PushResult::kClosed:
            break;  // Post-stop rejection: not a backpressure event.
    }
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        --enqueued_;
    }
    drained_.notify_all();
    return false;
}

void SpannerService::worker_loop() {
    Ingest ingest;
    while (queue_.pop(ingest)) {
        process(ingest);
        {
            const std::lock_guard<std::mutex> lock(drain_mutex_);
            applied_ += ingest.merged;
        }
        drained_.notify_all();
    }
}

void SpannerService::process(Ingest& ingest) {
    const dynamic::UpdateBatch& batch = ingest.batch;
    const std::size_t updates =
        batch.moves.size() + batch.joins.size() + batch.leaves.size();
    const std::lock_guard<std::mutex> lock(state_mutex_);

    const std::string invalid = validate_batch(batch, spanner_->node_count());
    if (!invalid.empty()) {
        // Caught before apply: state untouched, nothing to roll back.
        record_quarantine(invalid, batch, /*rolled_back=*/false);
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    dynamic::PatchStats pstats;
    if (options_.watchdog_ms > 0.0) {
        if (!apply_with_watchdog(batch, pstats)) {
            ++watchdog_timeouts_;
            rebuild_from_last_good();
            record_quarantine("watchdog: apply exceeded " +
                                  std::to_string(options_.watchdog_ms) + " ms",
                              batch, /*rolled_back=*/true);
            ++version_;
            cached_.reset();
            return;
        }
    } else {
        if (options_.apply_hook) options_.apply_hook(batch);
        pstats = spanner_->apply(batch);
    }
    apply_ms_total_ += ms_between(t0, std::chrono::steady_clock::now());

    bool gate_ran = false;
    if (gate_configured_) {
        const std::size_t cadence =
            options_.audit_every > 0 ? options_.audit_every : 1;
        if (++gate_counter_ % cadence == 0) {
            gate_ran = true;
            std::string reason = run_gate();
            if (!reason.empty()) {
                rebuild_from_last_good();
                record_quarantine(std::move(reason), batch, /*rolled_back=*/true);
                ++version_;
                cached_.reset();
                return;
            }
        }
    }

    ++version_;
    ++batches_applied_;
    cached_.reset();  // Next reader copies the new topology.
    updates_applied_ += updates;
    if (pstats.fell_back) ++fallbacks_;
    components_patched_ += pstats.components.size();
    component_fallbacks_ += pstats.component_fallbacks;
    // The rollback target only advances past states the gate actually
    // certified (or every applied state when no gate is configured).
    if (track_last_good_ && (!gate_configured_ || gate_ran)) {
        last_good_points_ = spanner_->positions();
    }
}

bool SpannerService::apply_with_watchdog(const dynamic::UpdateBatch& batch,
                                         dynamic::PatchStats& out) {
    auto shared = std::make_shared<ApplyShared>();
    shared->batch = batch;  // Owned copy: survives abandonment.
    dynamic::DynamicSpanner* target = spanner_.get();
    const auto hook = options_.apply_hook;
    std::thread applier([shared, target, hook] {
        if (hook) hook(shared->batch);
        dynamic::PatchStats stats = target->apply(shared->batch);
        {
            const std::lock_guard<std::mutex> lock(shared->mutex);
            shared->stats = std::move(stats);
            shared->done = true;
        }
        shared->done_cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(shared->mutex);
    const bool finished = shared->done_cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(options_.watchdog_ms),
        [&] { return shared->done; });
    lock.unlock();
    if (finished) {
        applier.join();
        out = std::move(shared->stats);
        return true;
    }
    // Walk away: the thread keeps running against the orphaned spanner
    // until it finishes on its own; stop() reaps both.
    orphans_.push_back(
        Orphan{std::move(applier), std::move(spanner_), std::move(shared)});
    return false;
}

std::string SpannerService::run_gate() {
    if (options_.post_apply_check) {
        Snapshot snap;
        snap.version = version_ + 1;
        snap.points = spanner_->positions();
        snap.radius = spanner_->radius();
        snap.udg = spanner_->udg();
        snap.backbone = spanner_->backbone();
        return options_.post_apply_check(snap);
    }
    const verify::AuditTrail trail = verify::audit_backbone(
        spanner_->udg(), spanner_->backbone(), options_.audit_options);
    if (trail.pass()) return {};
    const verify::AuditReport* failure = trail.first_failure();
    return failure ? "audit gate: " + failure->summary() : "audit gate failed";
}

void SpannerService::rebuild_from_last_good() {
    spanner_ = std::make_unique<dynamic::DynamicSpanner>(
        *engine_, std::vector<geom::Point>(last_good_points_), radius_);
}

void SpannerService::record_quarantine(std::string reason,
                                       const dynamic::UpdateBatch& batch,
                                       bool rolled_back) {
    QuarantineReport report;
    report.version = version_;
    report.reason = std::move(reason);
    report.moves = batch.moves.size();
    report.joins = batch.joins.size();
    report.leaves = batch.leaves.size();
    report.rolled_back = rolled_back;
    quarantine_reports_.push_back(std::move(report));
    ++batches_quarantined_;
}

SnapshotHandle SpannerService::snapshot() {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (!cached_) {
        auto snap = std::make_shared<Snapshot>();
        snap->version = version_;
        snap->points = spanner_->positions();
        snap->radius = spanner_->radius();
        snap->udg = spanner_->udg();
        snap->backbone = spanner_->backbone();
        cached_ = std::move(snap);
        ++snapshots_published_;
    }
    return cached_;
}

void SpannerService::drain() {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    const std::uint64_t target = enqueued_;
    drained_.wait(lock, [&] { return applied_ >= target; });
}

void SpannerService::stop() {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    queue_.close();  // Worker drains the backlog, then pop() returns false.
    if (worker_.joinable()) worker_.join();
    // Reap abandoned appliers: safe now — the worker is gone, so
    // orphans_ has no concurrent writer.
    for (Orphan& orphan : orphans_) {
        if (orphan.thread.joinable()) orphan.thread.join();
    }
    orphans_.clear();
}

ServiceStats SpannerService::stats() const {
    ServiceStats out;
    {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        out.batches_applied = batches_applied_;
        out.updates_applied = updates_applied_;
        out.fallbacks = fallbacks_;
        out.components_patched = components_patched_;
        out.component_fallbacks = component_fallbacks_;
        out.snapshots_published = snapshots_published_;
        out.batches_quarantined = batches_quarantined_;
        out.watchdog_timeouts = watchdog_timeouts_;
        out.version = version_;
        out.apply_ms_total = apply_ms_total_;
        const double elapsed_ms =
            ms_between(start_, std::chrono::steady_clock::now());
        out.updates_per_sec = elapsed_ms <= 0.0
                                  ? 0.0
                                  : 1000.0 * static_cast<double>(updates_applied_) /
                                        elapsed_ms;
    }
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        out.batches_enqueued = enqueued_;
    }
    out.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
    out.batches_coalesced = batches_coalesced_.load(std::memory_order_relaxed);
    out.queue_depth = queue_.depth();
    out.queue_capacity = options_.queue_capacity;
    return out;
}

std::vector<QuarantineReport> SpannerService::quarantine_reports() const {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    return quarantine_reports_;
}

}  // namespace geospanner::service
