#include "service/service.h"

#include <utility>

namespace geospanner::service {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
        .count();
}

}  // namespace

SpannerService::SpannerService(engine::SpannerEngine& engine,
                               std::vector<geom::Point> points, double radius)
    : engine_(&engine), spanner_(engine, std::move(points), radius),
      start_(std::chrono::steady_clock::now()) {
    worker_ = std::thread([this] { worker_loop(); });
}

SpannerService::~SpannerService() { stop(); }

bool SpannerService::enqueue(dynamic::UpdateBatch batch) {
    // Count before the push so applied_ can never race past enqueued_;
    // uncount on rejection.
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        ++enqueued_;
    }
    if (queue_.push(std::move(batch))) return true;
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        --enqueued_;
    }
    drained_.notify_all();
    return false;
}

void SpannerService::worker_loop() {
    dynamic::UpdateBatch batch;
    while (queue_.pop(batch)) {
        const std::size_t updates =
            batch.moves.size() + batch.joins.size() + batch.leaves.size();
        const auto t0 = std::chrono::steady_clock::now();
        {
            const std::lock_guard<std::mutex> lock(state_mutex_);
            const dynamic::PatchStats stats = spanner_.apply(batch);
            ++version_;
            cached_.reset();  // Next reader copies the new topology.
            updates_applied_ += updates;
            if (stats.fell_back) ++fallbacks_;
            components_patched_ += stats.components.size();
            component_fallbacks_ += stats.component_fallbacks;
            apply_ms_total_ += ms_between(t0, std::chrono::steady_clock::now());
        }
        {
            const std::lock_guard<std::mutex> lock(drain_mutex_);
            ++applied_;
        }
        drained_.notify_all();
    }
}

SnapshotHandle SpannerService::snapshot() {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (!cached_) {
        auto snap = std::make_shared<Snapshot>();
        snap->version = version_;
        snap->points = spanner_.positions();
        snap->radius = spanner_.radius();
        snap->udg = spanner_.udg();
        snap->backbone = spanner_.backbone();
        cached_ = std::move(snap);
        ++snapshots_published_;
    }
    return cached_;
}

void SpannerService::drain() {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    const std::uint64_t target = enqueued_;
    drained_.wait(lock, [&] { return applied_ >= target; });
}

void SpannerService::stop() {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    queue_.close();  // Worker drains the backlog, then pop() returns false.
    if (worker_.joinable()) worker_.join();
}

ServiceStats SpannerService::stats() const {
    ServiceStats out;
    {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        out.batches_applied = version_;
        out.updates_applied = updates_applied_;
        out.fallbacks = fallbacks_;
        out.components_patched = components_patched_;
        out.component_fallbacks = component_fallbacks_;
        out.snapshots_published = snapshots_published_;
        out.version = version_;
        out.apply_ms_total = apply_ms_total_;
        const double elapsed_ms =
            ms_between(start_, std::chrono::steady_clock::now());
        out.updates_per_sec = elapsed_ms <= 0.0
                                  ? 0.0
                                  : 1000.0 * static_cast<double>(updates_applied_) /
                                        elapsed_ms;
    }
    {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        out.batches_enqueued = enqueued_;
    }
    out.queue_depth = queue_.depth();
    return out;
}

}  // namespace geospanner::service
