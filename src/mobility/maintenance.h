// Epoch-driven backbone maintenance under mobility.
//
// The paper's observation (Section I): "our algorithms do not need to
// update the network topology when nodes are moving as long as no link
// used in the final network topology is broken" — the *logical* backbone
// stays valid even though the drawn embedding shifts. This class
// implements that policy: each epoch it checks whether every link the
// current backbone uses (backbone links and dominatee→dominator links)
// is still within transmission range, and rebuilds only on breakage,
// accounting the rebuild broadcasts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/backbone.h"

namespace geospanner::mobility {

struct MaintenanceStats {
    std::size_t epochs = 0;
    std::size_t intact_epochs = 0;        ///< backbone survived unchanged
    std::size_t rebuilds = 0;             ///< includes the initial build
    std::size_t disconnected_epochs = 0;  ///< UDG itself was partitioned
    std::size_t total_broadcasts = 0;     ///< across all (re)builds
    std::size_t longest_lifetime = 0;     ///< epochs, best backbone

    [[nodiscard]] double broadcasts_per_rebuild() const {
        return rebuilds == 0 ? 0.0
                             : static_cast<double>(total_broadcasts) /
                                   static_cast<double>(rebuilds);
    }
};

class MaintainedBackbone {
  public:
    /// Builds the initial backbone from `points` (must form a connected
    /// UDG at `radius`).
    MaintainedBackbone(const std::vector<geom::Point>& points, double radius,
                       core::BuildOptions options = {});

    /// One maintenance epoch at the given (moved) positions. Returns
    /// true if the backbone had to be rebuilt. Epochs where the UDG is
    /// disconnected are counted and skipped (no topology can help).
    bool update(const std::vector<geom::Point>& points);

    [[nodiscard]] const core::Backbone& backbone() const noexcept { return backbone_; }
    [[nodiscard]] const graph::GeometricGraph& udg() const noexcept { return udg_; }
    [[nodiscard]] const MaintenanceStats& stats() const noexcept { return stats_; }

    /// True iff every link used by the current backbone is within range
    /// at the given positions (the paper's validity condition).
    [[nodiscard]] bool links_intact(const std::vector<geom::Point>& points) const;

  private:
    void rebuild(const std::vector<geom::Point>& points);
    void account_build();

    double radius_;
    core::BuildOptions options_;
    graph::GeometricGraph udg_;   ///< UDG at the last rebuild
    core::Backbone backbone_;
    MaintenanceStats stats_;
    std::size_t current_lifetime_ = 0;
};

}  // namespace geospanner::mobility
