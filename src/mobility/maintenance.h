// Epoch-driven backbone maintenance under mobility.
//
// The paper's observation (Section I): "our algorithms do not need to
// update the network topology when nodes are moving as long as no link
// used in the final network topology is broken" — the *logical* backbone
// stays valid even though the drawn embedding shifts. This class
// implements that policy: each epoch it checks whether every link the
// current backbone uses (backbone links and dominatee→dominator links)
// is still within transmission range, and repairs only on breakage.
//
// Repair path: with the centralized engine, breakage is served by a
// dynamic::DynamicSpanner patch — only the dirty region around the
// nodes that moved out of range is recomputed (falling back to a full
// rebuild when the region is too large). The distributed engine re-runs
// the full message-passing protocols, accounting the rebuild broadcasts.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/backbone.h"
#include "dynamic/spanner.h"

namespace geospanner::mobility {

struct MaintenanceStats {
    std::size_t epochs = 0;
    std::size_t intact_epochs = 0;  ///< backbone survived unchanged
    /// Maintenance rebuilds only — the initial construction is reported
    /// separately (initial_broadcasts), so broadcasts_per_rebuild and
    /// the mobility ablations measure maintenance cost, not setup cost.
    std::size_t rebuilds = 0;
    std::size_t incremental_patches = 0;  ///< rebuilds served by localized patching
    std::size_t fallback_rebuilds = 0;    ///< patches that took the full-rebuild path
    std::size_t disconnected_epochs = 0;  ///< UDG itself was partitioned
    std::size_t initial_broadcasts = 0;   ///< broadcasts of the initial build
    std::size_t total_broadcasts = 0;     ///< across maintenance rebuilds
    std::size_t longest_lifetime = 0;     ///< epochs, best backbone

    [[nodiscard]] double broadcasts_per_rebuild() const {
        return rebuilds == 0 ? 0.0
                             : static_cast<double>(total_broadcasts) /
                                   static_cast<double>(rebuilds);
    }
};

class MaintainedBackbone {
  public:
    /// Builds the initial backbone from `points` (must form a connected
    /// UDG at `radius`).
    MaintainedBackbone(const std::vector<geom::Point>& points, double radius,
                       core::BuildOptions options = {});

    /// One maintenance epoch at the given (moved) positions. Returns
    /// true if the backbone had to be repaired. Epochs where the UDG is
    /// disconnected are counted and skipped (no topology can help; the
    /// stale backbone is kept until reconnection).
    bool update(const std::vector<geom::Point>& points);

    [[nodiscard]] const core::Backbone& backbone() const noexcept {
        return dynamic_ ? dynamic_->backbone() : backbone_;
    }
    [[nodiscard]] const graph::GeometricGraph& udg() const noexcept {
        return dynamic_ ? dynamic_->udg() : udg_;
    }
    [[nodiscard]] const MaintenanceStats& stats() const noexcept { return stats_; }

    /// True iff every link used by the current backbone is within range
    /// at the given positions (the paper's validity condition).
    [[nodiscard]] bool links_intact(const std::vector<geom::Point>& points) const;

  private:
    [[nodiscard]] std::size_t build_broadcasts() const;

    double radius_;
    core::BuildOptions options_;
    graph::GeometricGraph udg_;  ///< UDG at the last rebuild (distributed path)
    core::Backbone backbone_;    ///< backbone of the distributed path
    /// Centralized path: retained incremental state, patched on breakage.
    std::unique_ptr<engine::SpannerEngine> engine_;
    std::unique_ptr<dynamic::DynamicSpanner> dynamic_;
    MaintenanceStats stats_;
    std::size_t current_lifetime_ = 0;
};

}  // namespace geospanner::mobility
