// Random-waypoint mobility (the standard ad hoc network mobility model):
// every node picks a uniform destination in the region and moves toward
// it at a uniform-random speed, pauses, then repeats. Deterministic in
// the seed.
//
// The paper assumes nodes are "almost-static in a reasonable period of
// time" and leaves dynamic maintenance as future work; this module
// supplies the movement substrate for studying that regime (see
// maintenance.h and the mobility example).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "random/rng.h"

namespace geospanner::mobility {

struct WaypointConfig {
    double side = 250.0;      ///< square region [0, side]²
    double min_speed = 0.5;   ///< units per time step
    double max_speed = 2.0;
    double pause = 3.0;       ///< time steps to rest at each waypoint
    std::uint64_t seed = 1;
};

class RandomWaypointModel {
  public:
    RandomWaypointModel(std::vector<geom::Point> initial, const WaypointConfig& config);

    /// Advances all nodes by `dt` time steps (movement + pauses).
    void advance(double dt);

    [[nodiscard]] const std::vector<geom::Point>& positions() const noexcept {
        return positions_;
    }
    [[nodiscard]] double time() const noexcept { return time_; }

  private:
    struct NodeState {
        geom::Point target{};
        double speed = 0.0;
        double pause_left = 0.0;
    };

    void pick_waypoint(std::size_t i);

    WaypointConfig config_;
    rnd::Xoshiro256 rng_;
    std::vector<geom::Point> positions_;
    std::vector<NodeState> state_;
    double time_ = 0.0;
};

}  // namespace geospanner::mobility
