#include "mobility/maintenance.h"

#include <algorithm>
#include <cassert>

#include "graph/shortest_paths.h"
#include "proximity/udg.h"

namespace geospanner::mobility {

using graph::GeometricGraph;

MaintainedBackbone::MaintainedBackbone(const std::vector<geom::Point>& points,
                                       double radius, core::BuildOptions options)
    : radius_(radius), options_(options) {
    if (options_.engine == core::Engine::kCentralized) {
        engine::EngineOptions eopts;
        eopts.cluster_policy = options_.cluster_policy;
        eopts.planarizer = options_.planarizer;
        engine_ = std::make_unique<engine::SpannerEngine>(eopts);
        dynamic_ = std::make_unique<dynamic::DynamicSpanner>(*engine_, points, radius_);
    } else {
        udg_ = proximity::build_udg(points, radius_);
        backbone_ = core::build_backbone(udg_, options_);
        stats_.initial_broadcasts = build_broadcasts();
    }
}

std::size_t MaintainedBackbone::build_broadcasts() const {
    std::size_t total = 0;
    for (const std::size_t m : backbone_.messages.after_ldel) total += m;
    return total;
}

bool MaintainedBackbone::links_intact(const std::vector<geom::Point>& points) const {
    const double r2 = radius_ * radius_;
    // The links the routing scheme actually uses: the planar backbone
    // plus the dominatee->dominator access links (== LDel(ICDS')).
    for (const auto& [u, v] : backbone().ldel_icds_prime.edges()) {
        if (geom::squared_distance(points[u], points[v]) > r2) return false;
    }
    return true;
}

bool MaintainedBackbone::update(const std::vector<geom::Point>& points) {
    assert(points.size() == udg().node_count());
    ++stats_.epochs;

    if (links_intact(points)) {
        ++stats_.intact_epochs;
        ++current_lifetime_;
        stats_.longest_lifetime = std::max(stats_.longest_lifetime, current_lifetime_);
        return false;
    }

    // A used link broke. Repair from current positions — unless the
    // network itself is partitioned, in which case nothing is valid and
    // we keep the stale backbone until reconnection.
    GeometricGraph fresh = proximity::build_udg(points, radius_);
    if (!graph::is_connected(fresh)) {
        ++stats_.disconnected_epochs;
        current_lifetime_ = 0;
        return false;
    }

    if (dynamic_) {
        // Positions may have drifted across several intact/disconnected
        // epochs since the last repair; the batch carries the whole diff.
        dynamic::UpdateBatch batch;
        const auto& held = dynamic_->positions();
        for (graph::NodeId v = 0; v < held.size(); ++v) {
            if (!(held[v] == points[v])) batch.moves.push_back({v, points[v]});
        }
        const dynamic::PatchStats patch = dynamic_->apply(batch);
        if (patch.fell_back) {
            ++stats_.fallback_rebuilds;
        } else {
            ++stats_.incremental_patches;
        }
    } else {
        udg_ = std::move(fresh);
        backbone_ = core::build_backbone(udg_, options_);
        stats_.total_broadcasts += build_broadcasts();
    }
    ++stats_.rebuilds;
    current_lifetime_ = 0;
    return true;
}

}  // namespace geospanner::mobility
