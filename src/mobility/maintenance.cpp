#include "mobility/maintenance.h"

#include <algorithm>
#include <cassert>

#include "graph/shortest_paths.h"
#include "proximity/udg.h"

namespace geospanner::mobility {

using graph::GeometricGraph;

MaintainedBackbone::MaintainedBackbone(const std::vector<geom::Point>& points,
                                       double radius, core::BuildOptions options)
    : radius_(radius), options_(options) {
    rebuild(points);
}

void MaintainedBackbone::rebuild(const std::vector<geom::Point>& points) {
    udg_ = proximity::build_udg(points, radius_);
    backbone_ = core::build_backbone(udg_, options_);
    ++stats_.rebuilds;
    account_build();
    current_lifetime_ = 0;
}

void MaintainedBackbone::account_build() {
    if (options_.engine != core::Engine::kDistributed) return;
    for (const std::size_t m : backbone_.messages.after_ldel) {
        stats_.total_broadcasts += m;
    }
}

bool MaintainedBackbone::links_intact(const std::vector<geom::Point>& points) const {
    const double r2 = radius_ * radius_;
    // The links the routing scheme actually uses: the planar backbone
    // plus the dominatee->dominator access links (== LDel(ICDS')).
    for (const auto& [u, v] : backbone_.ldel_icds_prime.edges()) {
        if (geom::squared_distance(points[u], points[v]) > r2) return false;
    }
    return true;
}

bool MaintainedBackbone::update(const std::vector<geom::Point>& points) {
    assert(points.size() == udg_.node_count());
    ++stats_.epochs;

    if (links_intact(points)) {
        ++stats_.intact_epochs;
        ++current_lifetime_;
        stats_.longest_lifetime = std::max(stats_.longest_lifetime, current_lifetime_);
        return false;
    }

    // A used link broke. Rebuild from current positions — unless the
    // network itself is partitioned, in which case nothing is valid and
    // we wait for reconnection.
    const GeometricGraph fresh = proximity::build_udg(points, radius_);
    if (!graph::is_connected(fresh)) {
        ++stats_.disconnected_epochs;
        current_lifetime_ = 0;
        return false;
    }
    rebuild(points);
    return true;
}

}  // namespace geospanner::mobility
