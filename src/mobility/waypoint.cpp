#include "mobility/waypoint.h"

#include <algorithm>
#include <cmath>

namespace geospanner::mobility {

using geom::Point;

RandomWaypointModel::RandomWaypointModel(std::vector<Point> initial,
                                         const WaypointConfig& config)
    : config_(config), rng_(config.seed), positions_(std::move(initial)),
      state_(positions_.size()) {
    for (std::size_t i = 0; i < positions_.size(); ++i) pick_waypoint(i);
}

void RandomWaypointModel::pick_waypoint(std::size_t i) {
    state_[i].target = {rng_.uniform(0.0, config_.side), rng_.uniform(0.0, config_.side)};
    state_[i].speed = rng_.uniform(config_.min_speed, config_.max_speed);
    state_[i].pause_left = 0.0;
}

void RandomWaypointModel::advance(double dt) {
    time_ += dt;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
        double remaining = dt;
        while (remaining > 1e-12) {
            NodeState& s = state_[i];
            if (s.pause_left > 0.0) {
                const double rest = std::min(s.pause_left, remaining);
                s.pause_left -= rest;
                remaining -= rest;
                continue;
            }
            const geom::Vec2 to_target = s.target - positions_[i];
            const double dist = norm(to_target);
            const double reach = s.speed * remaining;
            if (reach >= dist) {
                // Arrive, pause, then head for a fresh waypoint.
                positions_[i] = s.target;
                remaining -= s.speed > 0.0 ? dist / s.speed : remaining;
                pick_waypoint(i);
                state_[i].pause_left = config_.pause;
            } else {
                positions_[i] += (reach / dist) * to_target;
                remaining = 0.0;
            }
        }
    }
}

}  // namespace geospanner::mobility
