// Deterministic, seeded fault-injection schedules.
//
// A ChaosSchedule is a replayable stream of failure and churn events —
// node crashes, regional outages, joins, planned leaves, mobility
// drift — generated from one 64-bit seed against an evolving world
// mirror, so every event's concrete node id is valid at the step it
// fires. Replaying the same schedule (same seed, same initial points)
// through fault::SelfHealer against DynamicSpanner or SpannerService
// produces a bit-identical final topology; schedules serialize to JSON
// so a failing soak run ships as a standalone repro artifact.
//
// The crash model: a crashed radio goes silent but its id is not
// recycled — real deployments cannot renumber survivors when a node
// dies. SelfHealer (healer.h) realizes a crash as a "graveyard move"
// (the node is relocated far outside the world, beyond any transmission
// range), which drives the incremental patcher's genuine repair path:
// dominators and connectors are re-elected inside the dirty region the
// silence created. Planned leaves, by contrast, retire the id through
// the batch leave path (swap-remove compaction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"

namespace geospanner::fault {

enum class ChaosKind : std::uint8_t {
    kMove = 0,    ///< mobility churn: a live node drifts to `pos`
    kCrash = 1,   ///< unplanned failure: the radio at `node` goes silent
    kJoin = 2,    ///< a new node powers on at `pos` (appended as largest id)
    kLeave = 3,   ///< planned departure: `node` retires (swap-remove)
    kOutage = 4,  ///< regional outage: every live node within `range` of `pos` crashes
};

struct ChaosEvent {
    std::size_t step = 0;
    ChaosKind kind = ChaosKind::kMove;
    graph::NodeId node = 0;  ///< target id (kMove/kCrash/kLeave); unused otherwise
    geom::Point pos{};       ///< destination (kMove/kJoin) or outage center (kOutage)
    double range = 0.0;      ///< outage disk radius (kOutage only)

    friend bool operator==(const ChaosEvent&, const ChaosEvent&) = default;
};

/// Expected events per step, Poisson-ish: floor(rate) events plus one
/// more with probability frac(rate). Kinds are interleaved in seeded
/// random order within a step, so join-then-crash-same-step and
/// move-after-leave orderings all get exercised.
struct ChaosConfig {
    std::size_t steps = 50;
    double move_rate = 2.0;
    double crash_rate = 0.5;
    double join_rate = 0.5;
    double leave_rate = 0.25;
    double outage_rate = 0.0;
    double outage_radius_factor = 1.5;  ///< outage disk radius, in units of the radius
    double step_length = 0.0;           ///< max drift per move; 0 = radius / 4
    double side = 250.0;                ///< world square for joins and move clamping
};

/// The world-evolution mirror shared by the schedule generator and
/// SelfHealer: both advance one of these with identical semantics
/// (including the leave swap-remove id compaction), so the concrete ids
/// the generator emits are exactly the ids the healer's batches target.
struct WorldMirror {
    std::vector<geom::Point> points;
    std::vector<char> dead;           ///< crashed (graveyard) flags, id-indexed
    std::size_t crashed_total = 0;    ///< monotone graveyard slot counter
    double radius = 0.0;
    double side = 0.0;

    WorldMirror() = default;
    WorldMirror(std::vector<geom::Point> initial, double radius, double side);

    /// Where the k-th crash parks: x = side + 10·radius + 3·radius·k,
    /// y = 0. Slots are ≥ 3 radii apart and ≥ 10 radii outside the
    /// world, so graveyard nodes are UDG-isolated from everything —
    /// including each other and any Lemma-2 k·radius ball of a live
    /// node — forever.
    [[nodiscard]] geom::Point graveyard_slot(std::size_t k) const;

    /// Live nodes within `range` of `center`, ascending. Dead nodes are
    /// excluded by flag (their graveyard position is also out of range
    /// of any in-world center).
    [[nodiscard]] std::vector<graph::NodeId> outage_victims(geom::Point center,
                                                            double range) const;

    /// True when the event can fire against the current state: targeted
    /// events need a live in-range id. Stale events (the target died or
    /// left earlier) are skippable no-ops, which is what keeps every
    /// subsequence of a schedule applicable during ddmin shrinking.
    [[nodiscard]] bool applicable(const ChaosEvent& e) const;

    /// Advances the mirror by one applicable event (kOutage expands to
    /// crashing each victim; kLeave swap-removes).
    void apply(const ChaosEvent& e);

    [[nodiscard]] std::size_t live_count() const;
};

/// One replayable chaos run: the configuration, the seed, and the full
/// event stream, plus the initial world so the schedule replays
/// standalone from its JSON artifact.
struct ChaosSchedule {
    ChaosConfig config;
    std::uint64_t seed = 0;
    double radius = 0.0;
    std::vector<geom::Point> initial;
    std::vector<ChaosEvent> events;  ///< nondecreasing step order

    /// The events of one step (events are stored sorted by step).
    [[nodiscard]] std::vector<ChaosEvent> step_events(std::size_t step) const;
};

/// Generates a seeded schedule against `initial`. Deterministic: same
/// (initial, radius, config, seed) → identical event stream.
[[nodiscard]] ChaosSchedule generate_chaos(std::vector<geom::Point> initial,
                                           double radius, const ChaosConfig& config,
                                           std::uint64_t seed);

/// JSON round-trip for repro artifacts (max-precision coordinates; a
/// reload rebuilds the byte-identical schedule).
[[nodiscard]] std::string to_json(const ChaosSchedule& schedule);
[[nodiscard]] std::optional<ChaosSchedule> schedule_from_json(const std::string& json);

/// File wrappers; false / nullopt on I/O or parse failure.
bool save_schedule(const std::string& path, const ChaosSchedule& schedule);
[[nodiscard]] std::optional<ChaosSchedule> load_schedule(const std::string& path);

}  // namespace geospanner::fault
