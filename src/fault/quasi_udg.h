// Quasi-unit-disk radio model: per-link irregular radii in [α·r, r].
//
// Real radios do not cut off at a crisp disk boundary — obstacles,
// antenna orientation, and fading make the effective range direction-
// and link-dependent. The quasi-UDG model (Damian & Pemmaraju,
// PAPERS.md) captures this with one parameter α ∈ (0, 1]: every link
// (u, v) gets its own effective radius drawn from [α·r, r], and the
// link exists iff |uv| is under it. Links shorter than α·r always
// exist, links longer than r never do, and the band in between is
// where the guarantees degrade (verify::check_degraded_guarantees
// states which lemmas survive, with what relaxed constants).
//
// Determinism: the per-link radius is a pure hash of (min(u,v),
// max(u,v), seed) — no RNG stream to keep in sync — so the degraded
// graph is a function of (points, radius, model), symmetric in the
// endpoints, and reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"

namespace geospanner::fault {

struct QuasiUdgModel {
    double alpha = 1.0;  ///< link-radius floor factor; 1.0 = exact UDG
    std::uint64_t seed = 0;

    /// The effective radius of link (u, v): α·r + h(u,v,seed)·(1−α)·r,
    /// symmetric in the endpoints.
    [[nodiscard]] double link_radius(graph::NodeId u, graph::NodeId v,
                                     double radius) const;

    /// True when a link of length `dist` exists under the model.
    [[nodiscard]] bool link_up(graph::NodeId u, graph::NodeId v, double dist,
                               double radius) const;
};

/// The quasi-UDG over `points`: edge (u, v) iff |uv| ≤ link_radius(u, v).
/// Always a subgraph of the exact UDG at the same radius.
[[nodiscard]] graph::GeometricGraph build_quasi_udg(
    const std::vector<geom::Point>& points, double radius,
    const QuasiUdgModel& model);

/// Degrades an already-built exact UDG in place of a rebuild: drops
/// every edge whose length exceeds its per-link radius. Equivalent to
/// build_quasi_udg on the same points.
[[nodiscard]] graph::GeometricGraph degrade_udg(const graph::GeometricGraph& udg,
                                                double radius,
                                                const QuasiUdgModel& model);

}  // namespace geospanner::fault
