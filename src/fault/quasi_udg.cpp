#include "fault/quasi_udg.h"

#include <algorithm>
#include <utility>

#include "proximity/udg.h"
#include "random/rng.h"

namespace geospanner::fault {

using graph::NodeId;

double QuasiUdgModel::link_radius(NodeId u, NodeId v, double radius) const {
    if (alpha >= 1.0) return radius;
    const NodeId lo = std::min(u, v);
    const NodeId hi = std::max(u, v);
    // One splitmix64 finalizer round over the packed link id; the seed
    // offsets the state so different worlds draw independent bands.
    std::uint64_t state =
        seed ^ ((static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi));
    const std::uint64_t h = rnd::splitmix64(state);
    const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
    return alpha * radius + u01 * (1.0 - alpha) * radius;
}

bool QuasiUdgModel::link_up(NodeId u, NodeId v, double dist, double radius) const {
    return dist <= link_radius(u, v, radius);
}

graph::GeometricGraph degrade_udg(const graph::GeometricGraph& udg, double radius,
                                  const QuasiUdgModel& model) {
    if (model.alpha >= 1.0) return udg;
    std::vector<std::pair<NodeId, NodeId>> kept;
    for (const auto& [u, v] : udg.edges()) {
        if (model.link_up(u, v, udg.edge_length(u, v), radius)) kept.push_back({u, v});
    }
    return graph::GeometricGraph::from_edges(udg.points(), kept);
}

graph::GeometricGraph build_quasi_udg(const std::vector<geom::Point>& points,
                                      double radius, const QuasiUdgModel& model) {
    return degrade_udg(proximity::build_udg(points, radius), radius, model);
}

}  // namespace geospanner::fault
