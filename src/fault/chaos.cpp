#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "random/rng.h"

namespace geospanner::fault {

using graph::NodeId;

WorldMirror::WorldMirror(std::vector<geom::Point> initial, double r, double s)
    : points(std::move(initial)), dead(points.size(), 0), radius(r), side(s) {}

geom::Point WorldMirror::graveyard_slot(std::size_t k) const {
    return {side + 10.0 * radius + 3.0 * radius * static_cast<double>(k), 0.0};
}

std::vector<NodeId> WorldMirror::outage_victims(geom::Point center, double range) const {
    std::vector<NodeId> victims;
    for (NodeId v = 0; v < points.size(); ++v) {
        if (dead[v]) continue;
        if (geom::distance(points[v], center) <= range) victims.push_back(v);
    }
    return victims;
}

bool WorldMirror::applicable(const ChaosEvent& e) const {
    switch (e.kind) {
        case ChaosKind::kMove:
        case ChaosKind::kCrash:
        case ChaosKind::kLeave:
            return e.node < points.size() && !dead[e.node];
        case ChaosKind::kJoin:
        case ChaosKind::kOutage:
            return true;
    }
    return false;
}

void WorldMirror::apply(const ChaosEvent& e) {
    switch (e.kind) {
        case ChaosKind::kMove:
            points[e.node] = e.pos;
            break;
        case ChaosKind::kCrash:
            dead[e.node] = 1;
            points[e.node] = graveyard_slot(crashed_total++);
            break;
        case ChaosKind::kJoin:
            points.push_back(e.pos);
            dead.push_back(0);
            break;
        case ChaosKind::kLeave:
            // Swap-remove, matching UpdateBatch leave semantics: the
            // last node (dead or alive) takes the leaver's id.
            points[e.node] = points.back();
            dead[e.node] = dead.back();
            points.pop_back();
            dead.pop_back();
            break;
        case ChaosKind::kOutage:
            for (const NodeId v : outage_victims(e.pos, e.range)) {
                dead[v] = 1;
                points[v] = graveyard_slot(crashed_total++);
            }
            break;
    }
}

std::size_t WorldMirror::live_count() const {
    std::size_t live = 0;
    for (const char d : dead) {
        if (!d) ++live;
    }
    return live;
}

std::vector<ChaosEvent> ChaosSchedule::step_events(std::size_t step) const {
    const auto lo = std::lower_bound(
        events.begin(), events.end(), step,
        [](const ChaosEvent& e, std::size_t s) { return e.step < s; });
    const auto hi = std::upper_bound(
        events.begin(), events.end(), step,
        [](std::size_t s, const ChaosEvent& e) { return s < e.step; });
    return {lo, hi};
}

namespace {

/// floor(rate) events plus one more with probability frac(rate).
std::size_t sample_count(rnd::Xoshiro256& rng, double rate) {
    if (rate <= 0.0) return 0;
    const double whole = std::floor(rate);
    auto count = static_cast<std::size_t>(whole);
    if (rng.uniform01() < rate - whole) ++count;
    return count;
}

/// Uniform pick among live ids; kInvalidNode when everything is dead.
NodeId pick_live(rnd::Xoshiro256& rng, const WorldMirror& world) {
    std::vector<NodeId> live;
    live.reserve(world.points.size());
    for (NodeId v = 0; v < world.points.size(); ++v) {
        if (!world.dead[v]) live.push_back(v);
    }
    if (live.empty()) return graph::kInvalidNode;
    return live[rng.below(live.size())];
}

}  // namespace

ChaosSchedule generate_chaos(std::vector<geom::Point> initial, double radius,
                             const ChaosConfig& config, std::uint64_t seed) {
    ChaosSchedule schedule;
    schedule.config = config;
    schedule.seed = seed;
    schedule.radius = radius;
    schedule.initial = initial;

    rnd::Xoshiro256 rng(seed);
    WorldMirror world(std::move(initial), radius, config.side);
    const double step_len =
        config.step_length > 0.0 ? config.step_length : radius / 4.0;

    for (std::size_t step = 0; step < config.steps; ++step) {
        // Draw this step's kind multiset, then shuffle it so every
        // intra-step ordering (join-then-crash, move-after-leave, ...)
        // occurs across seeds.
        std::vector<ChaosKind> kinds;
        for (std::size_t i = sample_count(rng, config.move_rate); i > 0; --i)
            kinds.push_back(ChaosKind::kMove);
        for (std::size_t i = sample_count(rng, config.crash_rate); i > 0; --i)
            kinds.push_back(ChaosKind::kCrash);
        for (std::size_t i = sample_count(rng, config.join_rate); i > 0; --i)
            kinds.push_back(ChaosKind::kJoin);
        for (std::size_t i = sample_count(rng, config.leave_rate); i > 0; --i)
            kinds.push_back(ChaosKind::kLeave);
        for (std::size_t i = sample_count(rng, config.outage_rate); i > 0; --i)
            kinds.push_back(ChaosKind::kOutage);
        for (std::size_t i = kinds.size(); i > 1; --i) {
            std::swap(kinds[i - 1], kinds[rng.below(i)]);
        }

        for (const ChaosKind kind : kinds) {
            ChaosEvent e;
            e.step = step;
            e.kind = kind;
            switch (kind) {
                case ChaosKind::kMove: {
                    const NodeId v = pick_live(rng, world);
                    if (v == graph::kInvalidNode) continue;
                    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
                    const double dist = rng.uniform(0.0, step_len);
                    geom::Point to = world.points[v] +
                                     geom::Point{dist * std::cos(angle),
                                                 dist * std::sin(angle)};
                    to.x = std::clamp(to.x, 0.0, config.side);
                    to.y = std::clamp(to.y, 0.0, config.side);
                    e.node = v;
                    e.pos = to;
                    break;
                }
                case ChaosKind::kCrash:
                case ChaosKind::kLeave: {
                    const NodeId v = pick_live(rng, world);
                    if (v == graph::kInvalidNode) continue;
                    e.node = v;
                    break;
                }
                case ChaosKind::kJoin:
                    e.pos = {rng.uniform(0.0, config.side),
                             rng.uniform(0.0, config.side)};
                    break;
                case ChaosKind::kOutage:
                    e.pos = {rng.uniform(0.0, config.side),
                             rng.uniform(0.0, config.side)};
                    e.range = config.outage_radius_factor * radius;
                    break;
            }
            world.apply(e);
            schedule.events.push_back(e);
        }
    }
    return schedule;
}

// ---- JSON round-trip --------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

/// Advances `pos` past whitespace/commas/brackets to the next number and
/// parses it; false at `]` nesting end or on malformed input.
bool parse_double(const std::string& s, std::size_t& pos, double& out) {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == ',' || s[pos] == '[' || s[pos] == '\n')) {
        ++pos;
    }
    if (pos >= s.size() || s[pos] == ']') return false;
    const char* begin = s.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<std::size_t>(end - begin);
    return true;
}

/// Finds `"key":` and returns the index just past the colon.
std::optional<std::size_t> find_key(const std::string& s, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = s.find(needle);
    if (at == std::string::npos) return std::nullopt;
    return at + needle.size();
}

/// Parses a flat `[a,b,...]` of doubles starting at `pos` (which must
/// point at or before the opening bracket), including nested pairs.
bool parse_number_array(const std::string& s, std::size_t pos,
                        std::size_t expected_stride, std::vector<double>& out) {
    const std::size_t open = s.find('[', pos);
    if (open == std::string::npos) return false;
    std::size_t p = open + 1;
    int depth = 1;
    while (p < s.size() && depth > 0) {
        const char c = s[p];
        if (c == '[') {
            ++depth;
            ++p;
        } else if (c == ']') {
            --depth;
            ++p;
        } else if (c == ',' || c == ' ' || c == '\n') {
            ++p;
        } else {
            double v = 0.0;
            const char* begin = s.c_str() + p;
            char* end = nullptr;
            v = std::strtod(begin, &end);
            if (end == begin) return false;
            p += static_cast<std::size_t>(end - begin);
            out.push_back(v);
        }
    }
    if (depth != 0) return false;
    return expected_stride == 0 || out.size() % expected_stride == 0;
}

}  // namespace

std::string to_json(const ChaosSchedule& schedule) {
    std::string out = "{\"seed\":" + std::to_string(schedule.seed);
    out += ",\"radius\":";
    append_double(out, schedule.radius);
    out += ",\"config\":[";
    append_double(out, static_cast<double>(schedule.config.steps));
    const double knobs[] = {schedule.config.move_rate,  schedule.config.crash_rate,
                            schedule.config.join_rate,  schedule.config.leave_rate,
                            schedule.config.outage_rate,
                            schedule.config.outage_radius_factor,
                            schedule.config.step_length, schedule.config.side};
    for (const double k : knobs) {
        out += ",";
        append_double(out, k);
    }
    out += "],\"initial\":[";
    for (std::size_t i = 0; i < schedule.initial.size(); ++i) {
        if (i > 0) out += ",";
        out += "[";
        append_double(out, schedule.initial[i].x);
        out += ",";
        append_double(out, schedule.initial[i].y);
        out += "]";
    }
    // Events as [step, kind, node, x, y, range] sextuples.
    out += "],\"events\":[";
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
        const ChaosEvent& e = schedule.events[i];
        if (i > 0) out += ",";
        out += "[" + std::to_string(e.step) + "," +
               std::to_string(static_cast<int>(e.kind)) + "," +
               std::to_string(e.node) + ",";
        append_double(out, e.pos.x);
        out += ",";
        append_double(out, e.pos.y);
        out += ",";
        append_double(out, e.range);
        out += "]";
    }
    out += "]}";
    return out;
}

std::optional<ChaosSchedule> schedule_from_json(const std::string& json) {
    ChaosSchedule schedule;

    const auto seed_at = find_key(json, "seed");
    const auto radius_at = find_key(json, "radius");
    const auto config_at = find_key(json, "config");
    const auto initial_at = find_key(json, "initial");
    const auto events_at = find_key(json, "events");
    if (!seed_at || !radius_at || !config_at || !initial_at || !events_at) {
        return std::nullopt;
    }

    {
        const char* begin = json.c_str() + *seed_at;
        char* end = nullptr;
        schedule.seed = std::strtoull(begin, &end, 10);
        if (end == begin) return std::nullopt;
    }
    {
        std::size_t pos = *radius_at;
        if (!parse_double(json, pos, schedule.radius)) return std::nullopt;
    }

    std::vector<double> cfg;
    if (!parse_number_array(json, *config_at, 0, cfg) || cfg.size() != 9) {
        return std::nullopt;
    }
    schedule.config.steps = static_cast<std::size_t>(cfg[0]);
    schedule.config.move_rate = cfg[1];
    schedule.config.crash_rate = cfg[2];
    schedule.config.join_rate = cfg[3];
    schedule.config.leave_rate = cfg[4];
    schedule.config.outage_rate = cfg[5];
    schedule.config.outage_radius_factor = cfg[6];
    schedule.config.step_length = cfg[7];
    schedule.config.side = cfg[8];

    std::vector<double> coords;
    if (!parse_number_array(json, *initial_at, 2, coords)) return std::nullopt;
    schedule.initial.reserve(coords.size() / 2);
    for (std::size_t i = 0; i + 1 < coords.size(); i += 2) {
        schedule.initial.push_back({coords[i], coords[i + 1]});
    }

    std::vector<double> ev;
    if (!parse_number_array(json, *events_at, 6, ev)) return std::nullopt;
    schedule.events.reserve(ev.size() / 6);
    for (std::size_t i = 0; i + 5 < ev.size(); i += 6) {
        ChaosEvent e;
        e.step = static_cast<std::size_t>(ev[i]);
        const int kind = static_cast<int>(ev[i + 1]);
        if (kind < 0 || kind > 4) return std::nullopt;
        e.kind = static_cast<ChaosKind>(kind);
        e.node = static_cast<NodeId>(ev[i + 2]);
        e.pos = {ev[i + 3], ev[i + 4]};
        e.range = ev[i + 5];
        schedule.events.push_back(e);
    }
    return schedule;
}

bool save_schedule(const std::string& path, const ChaosSchedule& schedule) {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json(schedule) << "\n";
    return static_cast<bool>(out);
}

std::optional<ChaosSchedule> load_schedule(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return schedule_from_json(buf.str());
}

}  // namespace geospanner::fault
