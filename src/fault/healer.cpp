#include "fault/healer.h"

#include <algorithm>
#include <utility>

namespace geospanner::fault {

using graph::NodeId;

namespace {

/// Batch classes that can share one UpdateBatch without reordering
/// effects: churn (moves + joins), crash repairs, planned leaves.
enum class BatchClass { kNone, kChurn, kCrash, kLeave };

BatchClass class_of(ChaosKind kind) {
    switch (kind) {
        case ChaosKind::kMove:
        case ChaosKind::kJoin:
            return BatchClass::kChurn;
        case ChaosKind::kCrash:
        case ChaosKind::kOutage:
            return BatchClass::kCrash;
        case ChaosKind::kLeave:
            return BatchClass::kLeave;
    }
    return BatchClass::kNone;
}

}  // namespace

SelfHealer::SelfHealer(const ChaosSchedule& schedule)
    : world_(schedule.initial, schedule.radius, schedule.config.side) {}

SelfHealer::SelfHealer(std::vector<geom::Point> initial, double radius, double side)
    : world_(std::move(initial), radius, side) {}

std::vector<SelfHealer::Translated> SelfHealer::translate(
    const std::vector<ChaosEvent>& events) {
    std::vector<Translated> out;
    Translated current;
    BatchClass current_class = BatchClass::kNone;
    std::size_t base_count = world_.points.size();

    const auto flush = [&] {
        if (!current.batch.empty()) out.push_back(std::move(current));
        current = Translated{};
        current_class = BatchClass::kNone;
        base_count = world_.points.size();
    };

    for (const ChaosEvent& e : events) {
        if (!world_.applicable(e)) {
            ++stale_skipped_;
            continue;
        }
        const BatchClass cls = class_of(e.kind);
        // A class switch flushes; so does a churn move targeting a node
        // joined in this very batch (batch moves apply before joins, so
        // the target would not exist yet).
        if (current_class != BatchClass::kNone &&
            (cls != current_class ||
             (e.kind == ChaosKind::kMove && e.node >= base_count))) {
            flush();
        }
        current_class = cls;

        switch (e.kind) {
            case ChaosKind::kMove:
                current.batch.moves.push_back({e.node, e.pos});
                ++current.churn_moves;
                break;
            case ChaosKind::kJoin:
                current.batch.joins.push_back(e.pos);
                ++current.joins;
                break;
            case ChaosKind::kCrash:
                current.batch.moves.push_back(
                    {e.node, world_.graveyard_slot(world_.crashed_total)});
                ++current.crash_count;
                break;
            case ChaosKind::kOutage: {
                // Victims and their graveyard slots exactly as
                // world_.apply(e) will assign them (ascending ids).
                const auto victims = world_.outage_victims(e.pos, e.range);
                for (std::size_t i = 0; i < victims.size(); ++i) {
                    current.batch.moves.push_back(
                        {victims[i], world_.graveyard_slot(world_.crashed_total + i)});
                }
                current.crash_count += victims.size();
                break;
            }
            case ChaosKind::kLeave:
                current.batch.leaves.push_back(e.node);
                ++current.leaves;
                break;
        }
        world_.apply(e);
    }
    flush();
    return out;
}

dynamic::UpdateBatch SelfHealer::compaction_batch() {
    dynamic::UpdateBatch batch;
    for (NodeId v = static_cast<NodeId>(world_.points.size()); v-- > 0;) {
        if (world_.dead[v]) batch.leaves.push_back(v);
    }
    // Largest-first: each swap-remove only relocates ids above every
    // leave still pending, so the listed ids keep meaning the dead
    // nodes. Mirror the retirements so later translate() calls agree.
    for (const NodeId v : batch.leaves) {
        ChaosEvent e;
        e.kind = ChaosKind::kLeave;
        e.node = v;
        world_.apply(e);
    }
    return batch;
}

}  // namespace geospanner::fault
