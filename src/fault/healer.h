// Self-healing translation of chaos events into spanner repairs.
//
// SelfHealer turns a ChaosSchedule's event stream into apply-ready
// dynamic::UpdateBatch sequences. Mobility and joins pass through as
// ordinary churn. A crash becomes a *graveyard move*: the silent radio
// is relocated far outside the world (WorldMirror::graveyard_slot), so
// every link it carried disappears and the incremental patcher runs its
// genuine repair path — dominators and connectors are re-elected inside
// the dirty region around the failure while ids stay stable (real
// networks cannot renumber survivors when a node dies). Planned leaves
// retire ids through the batch leave path.
//
// Batch packing preserves event order exactly: consecutive events of
// the same class (churn = moves + joins, crash repairs, leaves) pack
// into one batch; a class switch — or a churn move targeting a node
// joined in the same batch — flushes. Crash repairs therefore always
// land in crash-only batches, which is what lets callers measure repair
// latency per failure, and leaves are applied with exactly the
// swap-remove ordering the generator's mirror assumed.
//
// Stale events (target died or left earlier in the run) are skipped,
// so any subsequence of a schedule's events remains applicable — the
// property ddmin shrinking of failing schedules rests on.
#pragma once

#include <cstddef>
#include <vector>

#include "dynamic/spanner.h"
#include "fault/chaos.h"

namespace geospanner::fault {

class SelfHealer {
  public:
    /// One apply-ready batch plus what it carries; `repair()` marks the
    /// crash-recovery batches whose apply time is the repair latency.
    struct Translated {
        dynamic::UpdateBatch batch;
        std::size_t crash_count = 0;  ///< graveyard moves in this batch
        std::size_t churn_moves = 0;
        std::size_t joins = 0;
        std::size_t leaves = 0;

        [[nodiscard]] bool repair() const { return crash_count > 0; }
    };

    /// Starts mirroring the schedule's initial world. The healer must
    /// see every event of the run (in order, possibly chunked) that the
    /// maintained spanner sees, and nothing else.
    explicit SelfHealer(const ChaosSchedule& schedule);
    SelfHealer(std::vector<geom::Point> initial, double radius, double side);

    /// Translates the next slice of the event stream (any contiguous or
    /// subsequence slice, in order) into batches. Stale events are
    /// skipped and counted.
    [[nodiscard]] std::vector<Translated> translate(
        const std::vector<ChaosEvent>& events);

    /// A planned-leave batch retiring every dead id (largest first, so
    /// each swap-remove only touches ids the batch still means). Run it
    /// when the dead fraction is worth compacting — after it the healer
    /// mirror holds live nodes only. Do not interleave with untranslated
    /// schedule events: the generator's mirror never saw the compaction.
    [[nodiscard]] dynamic::UpdateBatch compaction_batch();

    [[nodiscard]] const WorldMirror& world() const { return world_; }
    [[nodiscard]] std::size_t dead_count() const {
        return world_.points.size() - world_.live_count();
    }
    [[nodiscard]] std::size_t stale_skipped() const { return stale_skipped_; }

  private:
    WorldMirror world_;
    std::size_t stale_skipped_ = 0;
};

}  // namespace geospanner::fault
