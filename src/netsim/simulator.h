// Packet-level store-and-forward network simulation.
//
// The paper motivates the backbone with routing efficiency and network
// throughput (flooding "diminishes the throughput of the network"). This
// module makes those effects measurable end-to-end: packets with
// per-packet source routes travel a topology hop by hop under slotted
// store-and-forward forwarding — one transmission per node per slot,
// bounded FIFO queues — producing delivery rate, latency, queue
// pressure, and the per-node forwarding load that reveals how traffic
// concentrates on dominators and connectors.
//
// Routes are computed at injection time by a caller-supplied route
// function (shortest path, GFG on a planar topology, hierarchical
// backbone routing, ...), so the same traffic can be replayed against
// any routing scheme.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::netsim {

struct Config {
    std::size_t queue_capacity = 16;   ///< packets a node can hold
    std::size_t max_slots = 100000;    ///< hard stop for the run
    /// Per-transmission Bernoulli loss probability (lossy radios). The
    /// loss RNG is only consumed when > 0, so default runs stay
    /// bit-identical to the loss-free simulator.
    double loss_rate = 0.0;
    std::uint64_t loss_seed = 0;
    /// Per-node failed flags (empty = nobody failed). A dead node never
    /// sources, sinks, or forwards: packets injected at/to a dead node
    /// and packets whose next hop is dead drop as dropped_dead_hop.
    std::vector<char> dead;
};

/// A packet injection request: at time slot `slot`, node `src` wants to
/// send one packet to `dst`.
struct Injection {
    std::size_t slot = 0;
    graph::NodeId src = 0;
    graph::NodeId dst = 0;

    friend bool operator==(const Injection&, const Injection&) = default;
};

struct Stats {
    std::size_t injected = 0;
    std::size_t delivered = 0;
    std::size_t dropped_no_route = 0;   ///< route function returned empty
    std::size_t dropped_queue_full = 0; ///< next hop's queue overflowed
    std::size_t dropped_dead_hop = 0;   ///< next hop (or src/dst) is a failed node
    std::size_t dropped_link_loss = 0;  ///< lost to the radio (Config::loss_rate)
    std::size_t stuck_in_queues = 0;    ///< still queued when the run ended
    std::size_t total_latency = 0;      ///< slots, summed over delivered
    std::size_t max_latency = 0;
    std::size_t slots_used = 0;
    std::vector<std::size_t> transmissions;  ///< per node: packets forwarded
    std::size_t max_queue_depth = 0;

    [[nodiscard]] double delivery_rate() const {
        return injected == 0 ? 0.0
                             : static_cast<double>(delivered) / static_cast<double>(injected);
    }
    [[nodiscard]] double avg_latency() const {
        return delivered == 0
                   ? 0.0
                   : static_cast<double>(total_latency) / static_cast<double>(delivered);
    }
    /// Largest per-node forwarding share (1.0 = all traffic through one
    /// node); the load-concentration measure.
    [[nodiscard]] double max_load_share() const;
};

/// Maps (src, dst) to the full node path src..dst inclusive; empty means
/// no route (the packet is dropped at injection).
using RouteFn =
    std::function<std::vector<graph::NodeId>(graph::NodeId, graph::NodeId)>;

/// Runs the slotted simulation of `traffic` (must be sorted by slot)
/// over the topology implied by the routes. `node_count` sizes the
/// queues; routes must only mention nodes below it.
[[nodiscard]] Stats run_simulation(std::size_t node_count, const RouteFn& route,
                                   const std::vector<Injection>& traffic,
                                   const Config& config = {});

/// Factory producing a per-packet stateful forwarding decision: called
/// once per injection with (src, dst), it returns a stepper mapping the
/// packet's current node to its next hop (kInvalidNode = drop). This is
/// the hop-by-hop mode: no source routes, each hop decides locally —
/// exactly how localized geographic routing (greedy, GPSR) operates.
using StepperFactory = std::function<std::function<graph::NodeId(graph::NodeId)>(
    graph::NodeId src, graph::NodeId dst)>;

/// Slotted store-and-forward simulation where every hop is decided by
/// the packet's own stepper. A stepper returning kInvalidNode or a hop
/// that loops past config.max_slots counts as a routing drop.
[[nodiscard]] Stats run_hop_by_hop(std::size_t node_count, const StepperFactory& factory,
                                   const std::vector<Injection>& traffic,
                                   const Config& config = {});

/// Total radio energy of a finished run under the topology-control
/// model: every transmission by node v costs that node's assigned power
/// (the beta-th power of its longest incident edge in `topo`). Lets the
/// load statistics double as an energy comparison between substrates.
[[nodiscard]] double total_energy(const Stats& stats, const graph::GeometricGraph& topo,
                                  double beta);

/// Uniform random traffic: `packets` injections at rate `per_slot` per
/// slot, sources/destinations uniform over distinct node pairs.
[[nodiscard]] std::vector<Injection> uniform_traffic(std::size_t node_count,
                                                     std::size_t packets,
                                                     std::size_t per_slot,
                                                     std::uint64_t seed);

/// Sink traffic (the paper's sensor-network motivation): every packet is
/// addressed to the single `sink` node from a uniform random source.
[[nodiscard]] std::vector<Injection> sink_traffic(std::size_t node_count,
                                                  graph::NodeId sink, std::size_t packets,
                                                  std::size_t per_slot,
                                                  std::uint64_t seed);

}  // namespace geospanner::netsim
