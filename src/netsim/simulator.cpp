#include "netsim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cassert>

#include "random/rng.h"

namespace geospanner::netsim {

using graph::NodeId;

double Stats::max_load_share() const {
    std::size_t total = 0;
    std::size_t peak = 0;
    for (const std::size_t t : transmissions) {
        total += t;
        peak = std::max(peak, t);
    }
    return total == 0 ? 0.0 : static_cast<double>(peak) / static_cast<double>(total);
}

namespace {

struct InFlight {
    std::vector<NodeId> route;
    std::size_t position = 0;     // Index of the node currently holding it.
    std::size_t injected_at = 0;
};

/// Failed-node predicate for one run: the per-node flags from
/// Config::dead, with ids at/past node_count (a removed node a stale
/// route still mentions) also counting as dead.
struct DeadSet {
    const std::vector<char>& dead;
    std::size_t node_count;

    bool operator()(NodeId v) const {
        if (v >= node_count) return true;
        return v < dead.size() && dead[v] != 0;
    }
};

}  // namespace

Stats run_simulation(std::size_t node_count, const RouteFn& route,
                     const std::vector<Injection>& traffic, const Config& config) {
    assert(std::is_sorted(traffic.begin(), traffic.end(),
                          [](const Injection& a, const Injection& b) {
                              return a.slot < b.slot;
                          }));
    Stats stats;
    stats.transmissions.assign(node_count, 0);
    const DeadSet is_dead{config.dead, node_count};
    const bool lossy = config.loss_rate > 0.0;
    rnd::Xoshiro256 loss_rng(config.loss_seed);

    std::vector<InFlight> packets;
    // Per-node FIFO of packet ids (indices into `packets`).
    std::vector<std::deque<std::size_t>> queues(node_count);
    std::size_t live = 0;
    std::size_t next_injection = 0;

    for (std::size_t slot = 0; slot < config.max_slots; ++slot) {
        // Inject this slot's traffic.
        while (next_injection < traffic.size() && traffic[next_injection].slot <= slot) {
            const Injection& inj = traffic[next_injection];
            ++next_injection;
            ++stats.injected;
            if (is_dead(inj.src) || is_dead(inj.dst)) {
                ++stats.dropped_dead_hop;
                continue;
            }
            if (inj.src == inj.dst) {
                ++stats.delivered;  // Zero-latency self-delivery.
                continue;
            }
            auto path = route(inj.src, inj.dst);
            if (path.size() < 2 || path.front() != inj.src || path.back() != inj.dst) {
                ++stats.dropped_no_route;
                continue;
            }
            if (queues[inj.src].size() >= config.queue_capacity) {
                ++stats.dropped_queue_full;
                continue;
            }
            packets.push_back({std::move(path), 0, slot});
            queues[inj.src].push_back(packets.size() - 1);
            ++live;
        }
        if (live == 0 && next_injection >= traffic.size()) {
            stats.slots_used = slot;
            return stats;
        }

        // Forwarding phase: every node transmits the head of its queue.
        // Arrivals are staged so a packet moves at most one hop per slot.
        std::vector<std::pair<NodeId, std::size_t>> arrivals;  // (node, packet)
        for (NodeId v = 0; v < node_count; ++v) {
            stats.max_queue_depth = std::max(stats.max_queue_depth, queues[v].size());
            if (queues[v].empty()) continue;
            const std::size_t pid = queues[v].front();
            queues[v].pop_front();
            InFlight& p = packets[pid];
            ++stats.transmissions[v];
            const NodeId next = p.route[p.position + 1];
            if (is_dead(next)) {
                // Transmitted into silence: the route still names a
                // failed node.
                ++stats.dropped_dead_hop;
                --live;
                continue;
            }
            if (lossy && loss_rng.uniform01() < config.loss_rate) {
                ++stats.dropped_link_loss;
                --live;
                continue;
            }
            ++p.position;
            if (p.position + 1 == p.route.size()) {
                // Arrived at the destination.
                const std::size_t latency = slot + 1 - p.injected_at;
                ++stats.delivered;
                stats.total_latency += latency;
                stats.max_latency = std::max(stats.max_latency, latency);
                --live;
            } else {
                arrivals.push_back({next, pid});
            }
        }
        for (const auto& [node, pid] : arrivals) {
            if (queues[node].size() >= config.queue_capacity) {
                ++stats.dropped_queue_full;
                --live;
            } else {
                queues[node].push_back(pid);
            }
        }
    }
    stats.slots_used = config.max_slots;
    for (const auto& q : queues) stats.stuck_in_queues += q.size();
    return stats;
}

Stats run_hop_by_hop(std::size_t node_count, const StepperFactory& factory,
                     const std::vector<Injection>& traffic, const Config& config) {
    Stats stats;
    stats.transmissions.assign(node_count, 0);
    const DeadSet is_dead{config.dead, node_count};
    const bool lossy = config.loss_rate > 0.0;
    rnd::Xoshiro256 loss_rng(config.loss_seed);

    struct Live {
        std::function<NodeId(NodeId)> stepper;
        NodeId at = 0;
        NodeId dst = 0;
        std::size_t injected_at = 0;
    };
    std::vector<Live> packets;
    std::vector<std::deque<std::size_t>> queues(node_count);
    std::size_t live = 0;
    std::size_t next_injection = 0;

    for (std::size_t slot = 0; slot < config.max_slots; ++slot) {
        while (next_injection < traffic.size() && traffic[next_injection].slot <= slot) {
            const Injection& inj = traffic[next_injection];
            ++next_injection;
            ++stats.injected;
            if (is_dead(inj.src) || is_dead(inj.dst)) {
                ++stats.dropped_dead_hop;
                continue;
            }
            if (inj.src == inj.dst) {
                ++stats.delivered;
                continue;
            }
            if (queues[inj.src].size() >= config.queue_capacity) {
                ++stats.dropped_queue_full;
                continue;
            }
            packets.push_back({factory(inj.src, inj.dst), inj.src, inj.dst, slot});
            queues[inj.src].push_back(packets.size() - 1);
            ++live;
        }
        if (live == 0 && next_injection >= traffic.size()) {
            stats.slots_used = slot;
            return stats;
        }

        std::vector<std::pair<NodeId, std::size_t>> arrivals;
        for (NodeId v = 0; v < node_count; ++v) {
            stats.max_queue_depth = std::max(stats.max_queue_depth, queues[v].size());
            if (queues[v].empty()) continue;
            const std::size_t pid = queues[v].front();
            queues[v].pop_front();
            Live& p = packets[pid];
            const NodeId next = p.stepper(p.at);
            if (next == graph::kInvalidNode) {
                ++stats.dropped_no_route;  // The router gave up.
                --live;
                continue;
            }
            ++stats.transmissions[v];
            if (is_dead(next)) {
                ++stats.dropped_dead_hop;
                --live;
                continue;
            }
            if (lossy && loss_rng.uniform01() < config.loss_rate) {
                ++stats.dropped_link_loss;
                --live;
                continue;
            }
            p.at = next;
            if (next == p.dst) {
                const std::size_t latency = slot + 1 - p.injected_at;
                ++stats.delivered;
                stats.total_latency += latency;
                stats.max_latency = std::max(stats.max_latency, latency);
                --live;
            } else {
                arrivals.push_back({next, pid});
            }
        }
        for (const auto& [node, pid] : arrivals) {
            if (queues[node].size() >= config.queue_capacity) {
                ++stats.dropped_queue_full;
                --live;
            } else {
                queues[node].push_back(pid);
            }
        }
    }
    stats.slots_used = config.max_slots;
    for (const auto& q : queues) stats.stuck_in_queues += q.size();
    return stats;
}

double total_energy(const Stats& stats, const graph::GeometricGraph& topo, double beta) {
    double energy = 0.0;
    for (NodeId v = 0; v < stats.transmissions.size() && v < topo.node_count(); ++v) {
        if (stats.transmissions[v] == 0) continue;
        double farthest = 0.0;
        for (const NodeId u : topo.neighbors(v)) {
            farthest = std::max(farthest, topo.edge_length(v, u));
        }
        energy += static_cast<double>(stats.transmissions[v]) * std::pow(farthest, beta);
    }
    return energy;
}

std::vector<Injection> uniform_traffic(std::size_t node_count, std::size_t packets,
                                       std::size_t per_slot, std::uint64_t seed) {
    rnd::Xoshiro256 rng(seed);
    std::vector<Injection> traffic;
    traffic.reserve(packets);
    std::size_t slot = 0;
    while (traffic.size() < packets) {
        for (std::size_t k = 0; k < per_slot && traffic.size() < packets; ++k) {
            const auto src = static_cast<NodeId>(rng.below(node_count));
            auto dst = static_cast<NodeId>(rng.below(node_count));
            while (dst == src && node_count > 1) {
                dst = static_cast<NodeId>(rng.below(node_count));
            }
            traffic.push_back({slot, src, dst});
        }
        ++slot;
    }
    return traffic;
}

std::vector<Injection> sink_traffic(std::size_t node_count, NodeId sink,
                                    std::size_t packets, std::size_t per_slot,
                                    std::uint64_t seed) {
    rnd::Xoshiro256 rng(seed);
    std::vector<Injection> traffic;
    traffic.reserve(packets);
    std::size_t slot = 0;
    while (traffic.size() < packets) {
        for (std::size_t k = 0; k < per_slot && traffic.size() < packets; ++k) {
            auto src = static_cast<NodeId>(rng.below(node_count));
            while (src == sink && node_count > 1) {
                src = static_cast<NodeId>(rng.below(node_count));
            }
            traffic.push_back({slot, src, sink});
        }
        ++slot;
    }
    return traffic;
}

}  // namespace geospanner::netsim
