// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in this repository is seeded; reruns with the same seed
// produce bit-identical topologies, message traces, and benchmark tables.
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64,
// rather than relying on std::mt19937 whose distributions are not
// cross-platform reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace geospanner::rnd {

/// splitmix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256** state. Also usable as a cheap hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator, so it can
/// be used with standard distributions if cross-platform reproducibility
/// is not required for that use site.
class Xoshiro256 {
  public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1). Uses the top 53 bits, the standard
    /// bit-exact construction.
    constexpr double uniform01() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    constexpr double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform01();
    }

    /// Uniform integer in [0, bound). Uses Lemire's multiply-shift with
    /// rejection; unbiased and reproducible.
    constexpr std::uint64_t below(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        while (true) {
            const std::uint64_t x = (*this)();
            const auto m = static_cast<unsigned __int128>(x) * bound;
            const auto lo = static_cast<std::uint64_t>(m);
            if (lo >= bound || lo >= static_cast<std::uint64_t>(-static_cast<std::int64_t>(bound)) % bound) {
                return static_cast<std::uint64_t>(m >> 64);
            }
        }
    }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace geospanner::rnd
