// Experiment workloads: random node deployments matching the paper's
// simulation setup — n nodes uniform in a square, transmission radius R,
// instances regenerated until the UDG is connected.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::core {

struct WorkloadConfig {
    std::size_t node_count = 100;
    double side = 250.0;      ///< deployment square [0, side]²
    double radius = 60.0;     ///< transmission radius
    std::uint64_t seed = 1;
    std::size_t max_attempts = 2000;  ///< connectivity rejection budget
};

/// Uniform points in the configured square (no connectivity requirement).
[[nodiscard]] std::vector<geom::Point> uniform_points(const WorkloadConfig& config);

/// Points arranged in `clusters` Gaussian blobs — a heterogeneous-density
/// workload exercising the backbone under uneven deployment.
[[nodiscard]] std::vector<geom::Point> clustered_points(const WorkloadConfig& config,
                                                        std::size_t clusters);

/// Regular grid with positional jitter (fraction of spacing).
[[nodiscard]] std::vector<geom::Point> grid_points(const WorkloadConfig& config,
                                                   double jitter);

/// Points on `rows` horizontal lines sharing one exact y coordinate per
/// row — every triple within a row is exactly collinear. Degenerate-
/// geometry workload: localized Delaunay constructions are most fragile
/// on collinear input, which uniform deployments never produce.
[[nodiscard]] std::vector<geom::Point> collinear_points(const WorkloadConfig& config,
                                                        std::size_t rows);

/// Points on `circles` rings of 8 exactly cocircular positions each
/// (integer centers plus the symmetric (±a,±b)/(±b,±a) offsets, so all
/// coordinates are integers and the cocircularity is exact, not
/// approximate). Exercises the in-circle tie-breaking of Algorithms 2–3.
[[nodiscard]] std::vector<geom::Point> cocircular_points(const WorkloadConfig& config,
                                                         std::size_t circles);

/// Draws uniform instances until the UDG is connected; nullopt if the
/// attempt budget is exhausted (radius too small for the density).
[[nodiscard]] std::optional<graph::GeometricGraph> random_connected_udg(
    WorkloadConfig config);

}  // namespace geospanner::core
