#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "graph/shortest_paths.h"
#include "proximity/udg.h"
#include "random/rng.h"

namespace geospanner::core {

using geom::Point;

std::vector<Point> uniform_points(const WorkloadConfig& config) {
    rnd::Xoshiro256 rng(config.seed);
    std::vector<Point> pts;
    pts.reserve(config.node_count);
    for (std::size_t i = 0; i < config.node_count; ++i) {
        pts.push_back({rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)});
    }
    return pts;
}

std::vector<Point> clustered_points(const WorkloadConfig& config, std::size_t clusters) {
    rnd::Xoshiro256 rng(config.seed);
    std::vector<Point> centers;
    centers.reserve(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
        centers.push_back({rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)});
    }
    // Box-Muller Gaussian offsets with sigma a third of the radius so a
    // blob stays mostly within one hop of its center.
    const double sigma = config.radius / 3.0;
    std::vector<Point> pts;
    pts.reserve(config.node_count);
    for (std::size_t i = 0; i < config.node_count; ++i) {
        const Point center = centers[i % clusters];
        const double u1 = rng.uniform01();
        const double u2 = rng.uniform01();
        const double r = sigma * std::sqrt(-2.0 * std::log(1.0 - u1));
        const double theta = 2.0 * std::numbers::pi * u2;
        Point p{center.x + r * std::cos(theta), center.y + r * std::sin(theta)};
        p.x = std::clamp(p.x, 0.0, config.side);
        p.y = std::clamp(p.y, 0.0, config.side);
        pts.push_back(p);
    }
    return pts;
}

std::vector<Point> grid_points(const WorkloadConfig& config, double jitter) {
    rnd::Xoshiro256 rng(config.seed);
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(config.node_count))));
    const double spacing = config.side / static_cast<double>(cols + 1);
    std::vector<Point> pts;
    pts.reserve(config.node_count);
    for (std::size_t i = 0; i < config.node_count; ++i) {
        const auto row = i / cols;
        const auto col = i % cols;
        pts.push_back({spacing * static_cast<double>(col + 1) +
                           rng.uniform(-jitter, jitter) * spacing,
                       spacing * static_cast<double>(row + 1) +
                           rng.uniform(-jitter, jitter) * spacing});
    }
    return pts;
}

std::vector<Point> collinear_points(const WorkloadConfig& config, std::size_t rows) {
    rnd::Xoshiro256 rng(config.seed);
    rows = std::max<std::size_t>(rows, 1);
    // One shared y double per row: every triple on a row is exactly
    // collinear no matter how x positions round.
    std::vector<double> row_y;
    row_y.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        row_y.push_back(config.side * static_cast<double>(r + 1) /
                        static_cast<double>(rows + 1));
    }
    std::vector<Point> pts;
    pts.reserve(config.node_count);
    for (std::size_t i = 0; i < config.node_count; ++i) {
        pts.push_back({rng.uniform(0.0, config.side), row_y[i % rows]});
    }
    return pts;
}

std::vector<Point> cocircular_points(const WorkloadConfig& config, std::size_t circles) {
    rnd::Xoshiro256 rng(config.seed);
    circles = std::max<std::size_t>(circles, 1);
    // Integer ring centers and integer (±a,±b)/(±b,±a) offsets: all
    // coordinates are exact integers, so the 8 ring positions are
    // exactly equidistant from the center — genuine cocircular 4+-sets
    // for the exact predicates, not float approximations.
    static constexpr std::pair<int, int> kAxes[] = {{3, 4}, {1, 2}, {2, 3}, {1, 3}};
    struct Ring {
        double cx, cy, a, b;
    };
    std::vector<Ring> rings;
    rings.reserve(circles);
    for (std::size_t c = 0; c < circles; ++c) {
        const auto& [a, b] = kAxes[rng.below(std::size(kAxes))];
        const double span = std::hypot(a, b);
        // Scale so the ring diameter stays within one transmission radius.
        const double scale = std::max(1.0, std::floor(config.radius / (2.0 * span)));
        const double margin = scale * span + 1.0;
        const double cx = std::floor(rng.uniform(margin, config.side - margin));
        const double cy = std::floor(rng.uniform(margin, config.side - margin));
        rings.push_back({cx, cy, scale * a, scale * b});
    }
    std::vector<Point> pts;
    pts.reserve(config.node_count);
    for (std::size_t i = 0; i < config.node_count; ++i) {
        const Ring& ring = rings[i % circles];
        const std::size_t corner = (i / circles) % 8;
        // Past 8 points per ring, shift the whole ring by an integer
        // lap offset: still exactly cocircular, never a duplicate.
        const auto lap = static_cast<double>(i / (circles * 8));
        const double u = (corner & 1) ? -1.0 : 1.0;
        const double v = (corner & 2) ? -1.0 : 1.0;
        const bool swapped = (corner & 4) != 0;
        const double dx = swapped ? ring.b : ring.a;
        const double dy = swapped ? ring.a : ring.b;
        pts.push_back({ring.cx + lap + u * dx, ring.cy + lap + v * dy});
    }
    return pts;
}

std::optional<graph::GeometricGraph> random_connected_udg(WorkloadConfig config) {
    for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
        auto udg = proximity::build_udg(uniform_points(config), config.radius);
        if (graph::is_connected(udg)) return udg;
        // Derive the next attempt's seed deterministically.
        config.seed = rnd::splitmix64(config.seed);
    }
    return std::nullopt;
}

}  // namespace geospanner::core
