// The paper's primary contribution, packaged as a single call: from a
// unit disk graph, build the clustered CDS backbone and its localized-
// Delaunay planarization, producing every topology evaluated in the
// paper (CDS, CDS', ICDS, ICDS', LDel(ICDS), LDel(ICDS')) plus the
// per-node communication cost of each construction stage.
//
// Two engines produce bit-identical topologies:
//  * kDistributed — executes the actual message-passing protocols on the
//    round-based simulator and reports per-node message counts;
//  * kCentralized — computes the same elections directly (fast path, no
//    message accounting).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/geometric_graph.h"
#include "protocol/cluster_state.h"
#include "protocol/clustering.h"
#include "protocol/connectors.h"
#include "proximity/ldel.h"

namespace geospanner::core {

enum class Engine {
    kDistributed,
    kCentralized,
};

/// Per-node broadcast counts accumulated up to the end of each stage
/// (empty when built with the centralized engine). "CDS" covers the
/// initial beacon, clustering, and connector election; "ICDS" adds the
/// one RoleAnnounce per node; "LDel" adds the triangle negotiation.
struct MessageStats {
    std::vector<std::size_t> after_cds;
    std::vector<std::size_t> after_icds;
    std::vector<std::size_t> after_ldel;
    /// Payload units (aggregate messages weighted by their entry count)
    /// for the LDel stage only — exposes the bandwidth asymmetry between
    /// the LDel¹ and LDel² planarizers that raw message counts hide.
    std::vector<std::size_t> ldel_units;

    [[nodiscard]] static std::size_t max_of(const std::vector<std::size_t>& counts);
    [[nodiscard]] static double avg_of(const std::vector<std::size_t>& counts);
};

/// Every structure of the paper over one node set. All graphs share the
/// full point set; backbone-only graphs simply leave dominatees isolated.
struct Backbone {
    protocol::ClusterState cluster;
    std::vector<bool> is_connector;
    std::vector<bool> in_backbone;  ///< dominator or connector

    graph::GeometricGraph cds;              ///< dominators + connectors, elected links
    graph::GeometricGraph cds_prime;        ///< CDS + dominatee→dominator links
    graph::GeometricGraph icds;             ///< UDG induced on backbone nodes
    graph::GeometricGraph icds_prime;       ///< ICDS + dominatee→dominator links
    graph::GeometricGraph ldel_icds;        ///< planar LDel⁽¹⁾ of ICDS
    graph::GeometricGraph ldel_icds_prime;  ///< LDel(ICDS) + dominatee links

    std::vector<proximity::TriangleKey> ldel_triangles;
    MessageStats messages;

    [[nodiscard]] std::size_t backbone_size() const {
        std::size_t c = 0;
        for (const bool b : in_backbone) c += b ? 1 : 0;
        return c;
    }
};

/// How the induced backbone is planarized.
enum class Planarizer {
    kLdel1,  ///< LDel⁽¹⁾ + Algorithm 3 (the paper's pipeline)
    kLdel2,  ///< LDel⁽²⁾: 2-hop knowledge, planar by itself
};

struct BuildOptions {
    Engine engine = Engine::kDistributed;
    /// Clusterhead election criterion (paper default: lowest id).
    protocol::ClusterPolicy cluster_policy = protocol::ClusterPolicy::kLowestId;
    /// Planarization variant (paper default: LDel¹ + Algorithm 3).
    Planarizer planarizer = Planarizer::kLdel1;
};

/// Builds all backbone structures from a (connected) unit disk graph.
[[nodiscard]] Backbone build_backbone(const graph::GeometricGraph& udg,
                                      BuildOptions options = {});

/// UDG edges restricted to backbone nodes (the ICDS of the paper).
/// Shared by build_backbone and the engine's staged pipeline.
[[nodiscard]] graph::GeometricGraph induce_on_backbone(
    const graph::GeometricGraph& udg, const std::vector<bool>& in_backbone);

/// Adds every dominatee→dominator link to a copy of `base` (the primed
/// variants of the paper: CDS', ICDS', LDel(ICDS')).
[[nodiscard]] graph::GeometricGraph with_dominatee_links(
    const graph::GeometricGraph& base, const protocol::ClusterState& cluster);

}  // namespace geospanner::core
