// Topology quality reports: one row of the paper's Table I per topology.
#pragma once

#include <string>
#include <vector>

#include "graph/geometric_graph.h"
#include "graph/metrics.h"

namespace geospanner::core {

/// One Table-I row. Stretch fields are meaningful only when the topology
/// spans all nodes (has_stretch); backbone-only graphs (CDS, ICDS,
/// LDel(ICDS)) leave dominatees isolated, which the paper marks "-".
struct TopologyReport {
    std::string name;
    graph::DegreeStats degree;
    bool has_stretch = false;
    graph::StretchStats length;
    graph::StretchStats hops;
    std::size_t edges = 0;
};

/// Measures `topo` against the base UDG. Set `spanning` when the topology
/// is expected to connect all nodes (enables stretch computation).
/// `min_euclidean` excludes close pairs from the stretch ratios (the
/// paper measures only pairs more than one transmission radius apart).
/// A ThreadPool parallelizes the all-pairs stretch sweeps over source
/// nodes; results are identical for any thread count.
[[nodiscard]] TopologyReport measure_topology(std::string name,
                                              const graph::GeometricGraph& udg,
                                              const graph::GeometricGraph& topo,
                                              bool spanning, double min_euclidean = 0.0,
                                              engine::ThreadPool* pool = nullptr);

/// Averages reports of the same topology across instances: degree/stretch
/// averages are means of per-instance averages, maxima are maxima of
/// per-instance maxima (matching the paper's aggregation).
[[nodiscard]] TopologyReport aggregate_reports(const std::vector<TopologyReport>& reports);

/// Timing record of one named pipeline stage (UDG, clustering,
/// connectors, ICDS, LDel, planarize): wall time, items of per-node /
/// per-candidate work processed, and the thread count the stage ran at.
/// Filled by the engine's staged builder.
struct StageStats {
    std::string name;
    double wall_ms = 0.0;
    std::size_t items = 0;
    std::size_t threads = 1;
};

/// Stage breakdown of one pipeline run.
struct PipelineStats {
    std::vector<StageStats> stages;

    [[nodiscard]] double total_ms() const;
    /// Aligned-column text rendering (stage | ms | items | threads).
    [[nodiscard]] std::string table() const;
    /// One JSON object, e.g. for the bench trajectory files:
    /// {"total_ms":..,"stages":[{"name":..,"wall_ms":..,..},..]}.
    [[nodiscard]] std::string json() const;
};

}  // namespace geospanner::core
