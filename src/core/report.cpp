#include "core/report.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace geospanner::core {

double PipelineStats::total_ms() const {
    double total = 0.0;
    for (const auto& s : stages) total += s.wall_ms;
    return total;
}

std::string PipelineStats::table() const {
    std::size_t name_width = 5;  // "stage"
    for (const auto& s : stages) name_width = std::max(name_width, s.name.size());
    const double total = total_ms();
    std::ostringstream out;
    out << std::left << std::setw(static_cast<int>(name_width)) << "stage" << std::right
        << std::setw(12) << "wall_ms" << std::setw(8) << "share" << std::setw(12)
        << "items" << std::setw(9) << "threads" << '\n';
    out << std::fixed << std::setprecision(3);
    for (const auto& s : stages) {
        const double share = total > 0.0 ? 100.0 * s.wall_ms / total : 0.0;
        out << std::left << std::setw(static_cast<int>(name_width)) << s.name
            << std::right << std::setw(12) << s.wall_ms << std::setprecision(1)
            << std::setw(7) << share << '%' << std::setprecision(3) << std::setw(12)
            << s.items << std::setw(9) << s.threads << '\n';
    }
    out << std::left << std::setw(static_cast<int>(name_width)) << "total" << std::right
        << std::setw(12) << total << '\n';
    return out.str();
}

std::string PipelineStats::json() const {
    std::ostringstream out;
    out << std::fixed << std::setprecision(3);
    out << "{\"total_ms\":" << total_ms() << ",\"stages\":[";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto& s = stages[i];
        if (i > 0) out << ',';
        out << "{\"name\":\"" << s.name << "\",\"wall_ms\":" << s.wall_ms
            << ",\"items\":" << s.items << ",\"threads\":" << s.threads << '}';
    }
    out << "]}";
    return out.str();
}

TopologyReport measure_topology(std::string name, const graph::GeometricGraph& udg,
                                const graph::GeometricGraph& topo, bool spanning,
                                double min_euclidean, engine::ThreadPool* pool) {
    TopologyReport report;
    report.name = std::move(name);
    report.degree = graph::degree_stats(topo);
    report.edges = topo.edge_count();
    report.has_stretch = spanning;
    if (spanning) {
        report.length = graph::length_stretch(udg, topo, min_euclidean, pool);
        report.hops = graph::hop_stretch(udg, topo, min_euclidean, pool);
    }
    return report;
}

TopologyReport aggregate_reports(const std::vector<TopologyReport>& reports) {
    assert(!reports.empty());
    TopologyReport agg;
    agg.name = reports.front().name;
    agg.has_stretch = reports.front().has_stretch;
    double edges = 0.0;
    for (const auto& r : reports) {
        agg.degree.avg += r.degree.avg;
        agg.degree.max = std::max(agg.degree.max, r.degree.max);
        edges += static_cast<double>(r.edges);
        if (agg.has_stretch) {
            agg.length.avg += r.length.avg;
            agg.length.max = std::max(agg.length.max, r.length.max);
            agg.hops.avg += r.hops.avg;
            agg.hops.max = std::max(agg.hops.max, r.hops.max);
            agg.length.pair_count += r.length.pair_count;
            agg.length.disconnected_pairs += r.length.disconnected_pairs;
            agg.hops.pair_count += r.hops.pair_count;
            agg.hops.disconnected_pairs += r.hops.disconnected_pairs;
        }
    }
    const auto k = static_cast<double>(reports.size());
    agg.degree.avg /= k;
    agg.length.avg /= k;
    agg.hops.avg /= k;
    agg.edges = static_cast<std::size_t>(edges / k + 0.5);
    return agg;
}

}  // namespace geospanner::core
