#include "core/report.h"

#include <algorithm>
#include <cassert>

namespace geospanner::core {

TopologyReport measure_topology(std::string name, const graph::GeometricGraph& udg,
                                const graph::GeometricGraph& topo, bool spanning,
                                double min_euclidean) {
    TopologyReport report;
    report.name = std::move(name);
    report.degree = graph::degree_stats(topo);
    report.edges = topo.edge_count();
    report.has_stretch = spanning;
    if (spanning) {
        report.length = graph::length_stretch(udg, topo, min_euclidean);
        report.hops = graph::hop_stretch(udg, topo, min_euclidean);
    }
    return report;
}

TopologyReport aggregate_reports(const std::vector<TopologyReport>& reports) {
    assert(!reports.empty());
    TopologyReport agg;
    agg.name = reports.front().name;
    agg.has_stretch = reports.front().has_stretch;
    double edges = 0.0;
    for (const auto& r : reports) {
        agg.degree.avg += r.degree.avg;
        agg.degree.max = std::max(agg.degree.max, r.degree.max);
        edges += static_cast<double>(r.edges);
        if (agg.has_stretch) {
            agg.length.avg += r.length.avg;
            agg.length.max = std::max(agg.length.max, r.length.max);
            agg.hops.avg += r.hops.avg;
            agg.hops.max = std::max(agg.hops.max, r.hops.max);
            agg.length.pair_count += r.length.pair_count;
            agg.length.disconnected_pairs += r.length.disconnected_pairs;
            agg.hops.pair_count += r.hops.pair_count;
            agg.hops.disconnected_pairs += r.hops.disconnected_pairs;
        }
    }
    const auto k = static_cast<double>(reports.size());
    agg.degree.avg /= k;
    agg.length.avg /= k;
    agg.hops.avg /= k;
    agg.edges = static_cast<std::size_t>(edges / k + 0.5);
    return agg;
}

}  // namespace geospanner::core
