#include "core/backbone.h"

#include <algorithm>

#include "protocol/clustering.h"
#include "proximity/classic.h"
#include "proximity/ldel_k.h"
#include "protocol/ldel2_protocol.h"
#include "protocol/ldel_protocol.h"
#include "protocol/messages.h"

namespace geospanner::core {

using graph::GeometricGraph;
using graph::NodeId;

std::size_t MessageStats::max_of(const std::vector<std::size_t>& counts) {
    std::size_t m = 0;
    for (const std::size_t c : counts) m = std::max(m, c);
    return m;
}

double MessageStats::avg_of(const std::vector<std::size_t>& counts) {
    if (counts.empty()) return 0.0;
    std::size_t total = 0;
    for (const std::size_t c : counts) total += c;
    return static_cast<double>(total) / static_cast<double>(counts.size());
}

GeometricGraph induce_on_backbone(const GeometricGraph& udg,
                                  const std::vector<bool>& in_backbone) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : udg.edges()) {
        if (in_backbone[u] && in_backbone[v]) g.add_edge(u, v);
    }
    return g;
}

GeometricGraph with_dominatee_links(const GeometricGraph& base,
                                    const protocol::ClusterState& cluster) {
    GeometricGraph g = base;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (cluster.role[v] != protocol::Role::kDominatee) continue;
        for (const NodeId d : cluster.dominators_of[v]) g.add_edge(v, d);
    }
    return g;
}

Backbone build_backbone(const GeometricGraph& udg, BuildOptions options) {
    const auto n = static_cast<NodeId>(udg.node_count());
    Backbone result;

    protocol::ConnectorState connectors;
    if (options.engine == Engine::kDistributed) {
        protocol::Net net(udg);
        result.cluster = protocol::run_clustering(net, udg, options.cluster_policy);
        connectors = protocol::run_connectors(net, udg, result.cluster);
        result.messages.after_cds = net.per_node_sent();

        // One RoleAnnounce per node turns CDS knowledge into ICDS
        // knowledge (each node learns which neighbors are backbone).
        result.in_backbone.assign(n, false);
        for (NodeId v = 0; v < n; ++v) {
            result.in_backbone[v] =
                result.cluster.is_dominator(v) || connectors.is_connector[v];
            net.broadcast(v, protocol::RoleAnnounce{result.in_backbone[v]});
        }
        net.advance();
        result.messages.after_icds = net.per_node_sent();

        result.icds = induce_on_backbone(udg, result.in_backbone);

        // The LDel negotiation runs among backbone nodes; its radio graph
        // is exactly ICDS (backbone nodes within range hear each other).
        protocol::Net backbone_net(result.icds);
        protocol::LDelState ldel =
            options.planarizer == Planarizer::kLdel1
                ? protocol::run_ldel(backbone_net, result.icds,
                                     /*announce_positions=*/false)
                : protocol::run_ldel2(backbone_net, result.icds,
                                      /*announce_positions=*/false);
        result.ldel_triangles = std::move(ldel.triangles);
        result.ldel_icds = std::move(ldel.graph);

        result.messages.after_ldel = result.messages.after_icds;
        result.messages.ldel_units.assign(n, 0);
        for (NodeId v = 0; v < n; ++v) {
            result.messages.after_ldel[v] += backbone_net.messages_sent(v);
            result.messages.ldel_units[v] = backbone_net.units_sent(v);
        }
    } else {
        result.cluster = protocol::cluster_reference(udg, options.cluster_policy);
        connectors = protocol::find_connectors(udg, result.cluster);
        result.in_backbone.assign(n, false);
        for (NodeId v = 0; v < n; ++v) {
            result.in_backbone[v] =
                result.cluster.is_dominator(v) || connectors.is_connector[v];
        }
        result.icds = induce_on_backbone(udg, result.in_backbone);
        result.ldel_triangles =
            options.planarizer == Planarizer::kLdel1
                ? proximity::planarize_triangles(result.icds,
                                                 proximity::ldel1_triangles(result.icds))
                : proximity::ldel_k_triangles(result.icds, 2);
        result.ldel_icds = proximity::build_gabriel(result.icds);
        for (const auto& t : result.ldel_triangles) {
            result.ldel_icds.add_edge(t.a, t.b);
            result.ldel_icds.add_edge(t.b, t.c);
            result.ldel_icds.add_edge(t.a, t.c);
        }
    }

    result.is_connector = connectors.is_connector;
    result.cds = GeometricGraph(udg.points());
    for (const auto& [u, v] : connectors.cds_edges) result.cds.add_edge(u, v);

    result.cds_prime = with_dominatee_links(result.cds, result.cluster);
    result.icds_prime = with_dominatee_links(result.icds, result.cluster);
    result.ldel_icds_prime = with_dominatee_links(result.ldel_icds, result.cluster);
    return result;
}

}  // namespace geospanner::core
