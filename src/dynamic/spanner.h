// Incremental spanner maintenance for dynamic topologies.
//
// The paper's construction is local at every stage: a node's cluster
// role depends on its 1-hop neighborhood, a connector election on the
// 2-hop ball of its dominator pair, and an LDel¹ triangle on the 1-hop
// balls of its three corners. DynamicSpanner exploits that locality to
// repair a finished backbone after point updates (move/join/leave
// batches) by recomputing only the *dirty region* — the k-hop closure,
// over the union of old and new adjacency, of the nodes whose inputs
// changed — and splicing the recomputed sub-results into the retained
// GeometricGraphs.
//
// Correctness contract: after any update sequence the patched topology
// is edge-for-edge identical to a from-scratch build on the same
// positions (proximity::build_udg + core::build_backbone with
// Engine::kCentralized, or equivalently the staged engine). The
// per-stage dirty-set expansion rules that guarantee this are derived
// in docs/ARCHITECTURE.md; tests/test_dynamic.cpp fuzzes the equality
// across trace replays and runs the verify:: auditors on patched
// outputs.
//
// Concurrency: a batch's dirty set is decomposed into connected dirty
// components (multi-source label BFS over old ∪ new adjacency with a
// hop merge margin, unioned when frontiers meet). Components whose seed
// sets stay >= component_merge_hops + 1 hops apart have disjoint
// per-stage read and write sets — every stage's dirty expansion reaches
// at most 7 hops past the seeds — so their connector elections are
// *planned* concurrently on the engine ThreadPool against the frozen
// pre-commit state and committed serially in deterministic component
// order. The LDel/Alg3 and Gabriel kernels stay global (crossing
// triangles couple hop-distant regions spatially, which is exactly what
// Algorithm 3 resolves) and parallelize over items as before.
//
// Fallback policy: the rebuild decision is per component. Only a batch
// with a *single* component whose 2-hop dirty region exceeds
// IncrementalOptions::rebuild_fraction of n (or whose union of regions
// exceeds total_rebuild_fraction, or that contains leaves, whose
// swap-remove id compaction perturbs the id-keyed elections globally)
// falls back to a full rebuild from the current positions. Many small
// far-apart updates therefore stay on the localized path even when
// their merged dirty set spans the graph. The full rebuild runs the
// same stage kernels with everything dirty, so both paths share one
// code path and one correctness argument.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/backbone.h"
#include "core/report.h"
#include "dynamic/dynamic_cell_grid.h"
#include "engine/engine.h"
#include "graph/geometric_graph.h"
#include "proximity/ldel.h"

namespace geospanner::dynamic {

/// One batch of point updates, applied in this order: moves (to current
/// ids), then joins (appended as new largest ids, returned implicitly
/// as node_count() .. node_count()+joins-1), then leaves (each applied
/// sequentially with swap-remove: the last node takes the leaver's id).
struct UpdateBatch {
    struct Move {
        graph::NodeId node;
        geom::Point to;
    };
    std::vector<Move> moves;
    std::vector<geom::Point> joins;
    std::vector<graph::NodeId> leaves;

    [[nodiscard]] bool empty() const {
        return moves.empty() && joins.empty() && leaves.empty();
    }
};

/// One connected dirty component of a batch: its connector-stage seed
/// set size, its 2-hop dirty region (sorted node ids), and whether that
/// region alone exceeded the per-component rebuild gate.
struct ComponentStats {
    std::size_t seed_count = 0;
    bool over_cap = false;                 ///< region > rebuild_fraction * n
    std::vector<graph::NodeId> region;     ///< sorted 2-hop dirty region
};

/// What one apply() did: the repair path taken, the per-stage dirty
/// volumes, the dirty-component decomposition, and the stage timing
/// breakdown (same PipelineStats type the engine emits for full builds).
struct PatchStats {
    bool fell_back = false;            ///< batch took the full-rebuild path
    std::size_t dirty_nodes = 0;       ///< union of all per-stage dirty sets
    std::size_t udg_edge_changes = 0;  ///< UDG edges added + removed
    std::size_t roles_changed = 0;     ///< cluster roles flipped by the cascade
    std::size_t pairs_recomputed = 0;  ///< connector pair elections rerun
    std::size_t triangles_retested = 0;  ///< Algorithm-3 survivals re-evaluated
    /// The connected dirty components the batch decomposed into, in
    /// deterministic (smallest-seed) order. Empty when the batch fell
    /// back before decomposition (leaves, cascade blowout, total gate).
    std::vector<ComponentStats> components;
    std::size_t component_fallbacks = 0;  ///< components over the per-component cap
    /// Certified minimum hop separation between distinct components'
    /// seed sets over old ∪ new adjacency (component_merge_hops + 1);
    /// 0 when no decomposition ran. verify::audit_patch_components
    /// checks the region layout against it.
    std::size_t separation_hops = 0;
    core::PipelineStats pipeline;
};

/// A maintained (UDG, Backbone) pair under point updates. The engine
/// reference supplies the ThreadPool for the bulk kernels and the
/// options (cluster policy, incremental gate, fallback fraction).
/// Incremental patching supports the paper's default kLdel1 planarizer;
/// kLdel2 configurations take the full-rebuild path on every batch.
class DynamicSpanner {
  public:
    DynamicSpanner(engine::SpannerEngine& engine, std::vector<geom::Point> points,
                   double radius);

    /// Applies one update batch and repairs the backbone. Returns the
    /// patch report; stats.pipeline carries one StageStats per patch
    /// kernel (or the engine's stage names on the fallback path).
    PatchStats apply(const UpdateBatch& batch);

    [[nodiscard]] const graph::GeometricGraph& udg() const noexcept { return udg_; }
    [[nodiscard]] const core::Backbone& backbone() const noexcept { return backbone_; }
    [[nodiscard]] const std::vector<geom::Point>& positions() const noexcept {
        return points_;
    }
    [[nodiscard]] std::size_t node_count() const noexcept { return points_.size(); }
    [[nodiscard]] double radius() const noexcept { return radius_; }
    [[nodiscard]] engine::SpannerEngine& engine() noexcept { return *engine_; }

  private:
    using NodeId = graph::NodeId;
    using Pair = std::pair<NodeId, NodeId>;
    using TriangleKey = proximity::TriangleKey;

    struct PairHash {
        std::size_t operator()(Pair p) const noexcept;
    };
    struct TriHash {
        std::size_t operator()(TriangleKey t) const noexcept;
    };

    /// Refcounted edge union driving one retained GeometricGraph: each
    /// logical contribution (a connector pair's elected link, a Gabriel
    /// edge, a kept triangle side, a dominatee link, a base-graph edge
    /// of a primed variant) holds one reference; the edge exists in the
    /// graph iff its count is positive. Contributions overlap — e.g. a
    /// connector's elected link can coincide with its dominatee link —
    /// so plain add/remove would corrupt the union.
    struct EdgeRefs {
        std::unordered_map<Pair, int, PairHash> counts;

        bool inc(Pair e);  ///< true on the 0 → 1 transition
        bool dec(Pair e);  ///< true on the 1 → 0 transition
        void clear() { counts.clear(); }
    };

    /// Per-pair connector election outcome retained in the ledger:
    /// the connectors it elected and the CDS edges it contributed
    /// (deduplicated within the pair; refcounted across pairs).
    struct PairOutcome {
        std::vector<NodeId> connectors;
        std::vector<Pair> edges;
    };

    /// One connector-election ledger (phase A uses unordered pairs,
    /// phases B+C ordered pairs) plus its node→pairs reverse index for
    /// O(dirty) deletion.
    struct PairLedger {
        std::map<Pair, PairOutcome> entries;
        std::unordered_map<NodeId, std::set<Pair>> by_node;

        void clear() {
            entries.clear();
            by_node.clear();
        }
    };

    /// Scratch + dirty sets of one apply() — rebuilt per batch, with
    /// "everything dirty" on the full-rebuild path so both paths run
    /// the same stage kernels.
    struct PatchContext {
        std::vector<NodeId> moved;        ///< sorted; nodes whose position changed
        std::vector<char> moved_flag;     ///< n-sized
        std::vector<NodeId> joined;       ///< sorted new ids
        std::vector<NodeId> adj_changed;  ///< sorted; endpoints of UDG edge deltas
        std::vector<char> adj_changed_flag;
        std::vector<Pair> udg_added;
        std::vector<Pair> udg_removed;
        /// Removed-neighbor lists: adjacency of the *old* graph that the
        /// new one lost, for k-hop expansion over old ∪ new edges.
        std::unordered_map<NodeId, std::vector<NodeId>> udg_removed_adj;

        std::vector<NodeId> roles_changed;  ///< sorted after the cascade
        std::unordered_map<NodeId, protocol::Role> old_role;
        /// Nodes whose dominators_of list changed, with the old list.
        std::vector<NodeId> dom_list_changed;
        std::unordered_map<NodeId, std::vector<NodeId>> old_dominators;
        std::vector<NodeId> two_hop_changed;

        std::vector<NodeId> connector_changed;  ///< is_connector flips
        std::size_t pairs_deleted = 0;
        std::size_t pairs_reelected = 0;
        [[nodiscard]] std::size_t pairs_recomputed() const {
            return pairs_deleted + pairs_reelected;
        }

        std::vector<NodeId> backbone_changed;  ///< in_backbone flips
        std::vector<Pair> icds_added;
        std::vector<Pair> icds_removed;
        std::vector<char> icds_adj_changed_flag;
        std::vector<NodeId> icds_adj_changed;
        std::unordered_map<NodeId, std::vector<NodeId>> icds_removed_adj;

        std::vector<NodeId> ldel_dirty;  ///< sorted; local triangle lists recomputed
        /// Alg3-survivor deltas, for the assembly stage's triangle-list
        /// merge (avoids walking the whole kept set every patch).
        std::vector<TriangleKey> kept_added;
        std::vector<TriangleKey> kept_removed;
        std::vector<char> dirty_union;  ///< union of all per-stage dirty nodes
        std::size_t dirty_count = 0;

        void reset(std::size_t n);
        void touch(NodeId v);  ///< adds v to the dirty union
    };

    /// One connected dirty component: its slice of the connector-stage
    /// seed set c2 (sorted) and its 2-hop dirty region.
    struct DirtyComponent {
        std::vector<NodeId> seeds;
        std::vector<NodeId> region;
        bool over_cap = false;
    };

    /// The deferred effects of one component's connector re-election,
    /// computed read-only against the frozen pre-commit state. Plans of
    /// disjoint components touch disjoint ledger keys, refcounts, and
    /// edges, so committing them serially in component order is
    /// equivalent to any sequential per-component execution.
    /// Re-elections whose outcome matches the retained ledger entry are
    /// dropped at plan time (the delete + recommit would be a refcount
    /// no-op), so deletions/commits carry only actual changes.
    struct ConnectorPlan {
        std::vector<NodeId> touched;  ///< s2 — nodes to mark dirty
        /// Ledger entries to drop: (0 = pairs_a_, 1 = pairs_b_, key).
        std::vector<std::pair<int, Pair>> deletions;
        std::vector<std::pair<Pair, PairOutcome>> commits_a;
        std::vector<std::pair<Pair, PairOutcome>> commits_b;
        std::size_t pairs_reelected = 0;  ///< candidate pairs considered
        std::size_t pairs_retained = 0;   ///< unchanged outcomes skipped
    };

    // Stage kernels. Each reads the dirty inputs from `ctx`, patches the
    // retained state, and records what it invalidated for the next
    // stage. rebuild_from_scratch() runs them with everything dirty.
    void stage_udg(const UpdateBatch& batch, PatchContext& ctx);
    /// Role cascade + derived-list recompute; false → more than `cap`
    /// roles flipped, caller falls back to a full rebuild.
    bool run_cluster_cascade(PatchContext& ctx, std::size_t cap);
    /// The connector-stage seed set: every node whose election-relevant
    /// state changed this batch (adjacency, role, dominator lists, or a
    /// fresh join). Sorted.
    [[nodiscard]] std::vector<NodeId> build_c2(const PatchContext& ctx) const;
    /// Partitions `c2` into connected dirty components: multi-source
    /// label BFS over old ∪ new adjacency, depth merge_hops / 2 per
    /// side, union-find merging labels whose frontiers meet. Distinct
    /// components' seed sets end up >= merge_hops + 1 hops apart.
    /// Components come back in deterministic smallest-seed order with
    /// their 2-hop dirty regions attached.
    [[nodiscard]] std::vector<DirtyComponent> decompose_components(
        const PatchContext& ctx, const std::vector<NodeId>& c2,
        std::size_t merge_hops) const;
    /// Read-only election planning for one component's seed slice.
    void plan_connectors(const PatchContext& ctx, const std::vector<NodeId>& c2,
                         ConnectorPlan& plan) const;
    /// Applies one plan's deletions and commits (serial, deterministic).
    void commit_connector_plan(ConnectorPlan& plan, PatchContext& ctx,
                               std::vector<NodeId>& conn_touched);
    /// Settles is_connector flags from the final refcounts.
    void settle_connector_flags(std::vector<NodeId>& conn_touched, PatchContext& ctx);
    /// Monolithic path (full rebuild / single component): plan + commit
    /// over the whole c2.
    void stage_connectors(PatchContext& ctx);
    /// Decomposed path: plans all components concurrently on the engine
    /// pool, then commits them serially in component order.
    void stage_connectors_componentwise(PatchContext& ctx,
                                        const std::vector<DirtyComponent>& comps);
    void stage_icds(PatchContext& ctx);
    void stage_ldel(PatchContext& ctx, PatchStats& stats);
    void stage_gabriel(PatchContext& ctx);
    void stage_assemble(PatchContext& ctx);

    void append_node(geom::Point p);
    void rebuild_from_scratch(PatchStats& stats);
    void apply_positions_only(const UpdateBatch& batch);

    // Connector-election helpers. `conn_touched` accumulates nodes whose
    // election refcount hit or left zero, for the flag settle pass.
    /// False when the key was already gone (idempotent).
    bool delete_pair(PairLedger& ledger, Pair key, std::vector<NodeId>& conn_touched);
    void commit_pair(PairLedger& ledger, Pair key, PairOutcome outcome,
                     std::vector<NodeId>& conn_touched);
    [[nodiscard]] bool wins(NodeId w, const std::vector<NodeId>& candidates) const;

    // Triangle bookkeeping.
    struct TriBin {
        double min_x, max_x, min_y, max_y;
        proximity::CellCoord cell;
    };
    [[nodiscard]] TriBin bin_of(TriangleKey t) const;
    void tri_insert(TriangleKey t);
    void tri_remove(TriangleKey t);
    [[nodiscard]] bool removed_by_partner(TriangleKey t, TriangleKey r) const;
    [[nodiscard]] bool survives_alg3(TriangleKey t) const;

    [[nodiscard]] std::vector<NodeId> expand_hops(
        const graph::GeometricGraph& g,
        const std::unordered_map<NodeId, std::vector<NodeId>>& removed_adj,
        const std::vector<NodeId>& seeds, int hops) const;

    void cds_edge_inc(Pair e);
    void cds_edge_dec(Pair e);
    void ldel_edge_inc(Pair e);
    void ldel_edge_dec(Pair e);
    void link_inc(Pair e);  ///< dominatee link into all three primed unions
    void link_dec(Pair e);
    void icds_edge_added(NodeId u, NodeId v, PatchContext& ctx);
    void icds_edge_removed(NodeId u, NodeId v, PatchContext& ctx);

    engine::SpannerEngine* engine_;
    double radius_ = 1.0;
    std::vector<geom::Point> points_;
    DynamicCellGrid grid_;
    graph::GeometricGraph udg_;
    core::Backbone backbone_;

    // Connector state: per-pair outcomes + aggregate refcounts.
    PairLedger pairs_a_;  ///< phase A, unordered (min, max) dominator pairs
    PairLedger pairs_b_;  ///< phases B+C, ordered (u, v) dominator pairs
    std::vector<int> connector_refs_;  ///< pairs electing each node
    EdgeRefs cds_refs_;

    // LDel state: per-node local triangle lists, the LDel¹ set, its
    // bbox-bucket index (cell side = radius), and the Alg3 survivors.
    std::vector<std::vector<TriangleKey>> local_tris_;
    std::set<TriangleKey> ldel1_;
    std::set<TriangleKey> kept_;
    std::unordered_map<TriangleKey, TriBin, TriHash> tri_bins_;
    std::unordered_map<proximity::CellCoord, std::vector<TriangleKey>,
                       proximity::CellHash>
        tri_grid_;

    // Gabriel(ICDS) edges + the union refcounts of the assembled graphs.
    std::set<Pair> gabriel_;
    EdgeRefs ldel_icds_refs_;   ///< gabriel + kept-triangle sides
    EdgeRefs cds_prime_refs_;   ///< cds edges + dominatee links
    EdgeRefs icds_prime_refs_;  ///< icds edges + dominatee links
    EdgeRefs ldel_icds_prime_refs_;  ///< ldel_icds edges + dominatee links
};

}  // namespace geospanner::dynamic
