#include "dynamic/spanner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <iterator>

#include "engine/thread_pool.h"
#include "geom/predicates.h"

namespace geospanner::dynamic {

using graph::GeometricGraph;
using protocol::Role;

namespace {

/// Minimum dirty-item count before a kernel is worth the pool; smaller
/// patches run inline (results are identical either way — kernels write
/// index-owned slots and commit in index order).
constexpr std::size_t kParallelThreshold = 64;

std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool sorted_insert(std::vector<graph::NodeId>& list, graph::NodeId value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it != list.end() && *it == value) return false;
    list.insert(it, value);
    return true;
}

void sort_unique(std::vector<graph::NodeId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

void sort_unique_pairs(std::vector<std::pair<graph::NodeId, graph::NodeId>>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

std::pair<graph::NodeId, graph::NodeId> norm(graph::NodeId a, graph::NodeId b) {
    return {std::min(a, b), std::max(a, b)};
}

/// Election ranking of the clustering cascade — must match
/// protocol::key_of exactly: kLowestId ranks by id, kHighestDegree by
/// inverted degree then id. Keys are static for the duration of one
/// patch (degrees are fixed once stage_udg finished), so the worklist
/// processes nodes in a globally consistent order.
struct ClusterKey {
    std::size_t primary = 0;
    graph::NodeId id = 0;
    friend auto operator<=>(const ClusterKey&, const ClusterKey&) = default;
};

ClusterKey cluster_key(const GeometricGraph& udg, graph::NodeId v,
                       protocol::ClusterPolicy policy) {
    if (policy == protocol::ClusterPolicy::kHighestDegree) {
        return {udg.node_count() - udg.degree(v), v};
    }
    return {0, v};
}

/// Wall-clock of one stage kernel, appended to the patch's PipelineStats.
class StageTimer {
  public:
    StageTimer(core::PipelineStats& stats, std::string name)
        : stats_(stats), name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}

    void finish(std::size_t items, std::size_t threads = 1) {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        core::StageStats s;
        s.name = name_;
        s.wall_ms =
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed)
                .count();
        s.items = items;
        s.threads = threads;
        stats_.stages.push_back(std::move(s));
    }

  private:
    core::PipelineStats& stats_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::size_t DynamicSpanner::PairHash::operator()(Pair p) const noexcept {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(p.first) << 32) | p.second));
}

std::size_t DynamicSpanner::TriHash::operator()(TriangleKey t) const noexcept {
    std::uint64_t h = mix64((static_cast<std::uint64_t>(t.a) << 32) | t.b);
    return static_cast<std::size_t>(mix64(h ^ (static_cast<std::uint64_t>(t.c) << 16)));
}

bool DynamicSpanner::EdgeRefs::inc(Pair e) { return ++counts[e] == 1; }

bool DynamicSpanner::EdgeRefs::dec(Pair e) {
    const auto it = counts.find(e);
    assert(it != counts.end() && it->second > 0);
    if (--it->second > 0) return false;
    counts.erase(it);
    return true;
}

void DynamicSpanner::PatchContext::reset(std::size_t n) {
    moved.clear();
    moved_flag.assign(n, 0);
    joined.clear();
    adj_changed.clear();
    adj_changed_flag.assign(n, 0);
    udg_added.clear();
    udg_removed.clear();
    udg_removed_adj.clear();
    roles_changed.clear();
    old_role.clear();
    dom_list_changed.clear();
    old_dominators.clear();
    two_hop_changed.clear();
    connector_changed.clear();
    backbone_changed.clear();
    icds_added.clear();
    icds_removed.clear();
    icds_adj_changed_flag.assign(n, 0);
    icds_adj_changed.clear();
    icds_removed_adj.clear();
    ldel_dirty.clear();
    kept_added.clear();
    kept_removed.clear();
    dirty_union.assign(n, 0);
    dirty_count = 0;
}

void DynamicSpanner::PatchContext::touch(NodeId v) {
    if (dirty_union[v] != 0) return;
    dirty_union[v] = 1;
    ++dirty_count;
}

// ---- Construction ----------------------------------------------------

DynamicSpanner::DynamicSpanner(engine::SpannerEngine& engine,
                               std::vector<geom::Point> points, double radius)
    : engine_(&engine), radius_(radius), points_(std::move(points)) {
    assert(radius_ > 0.0);
    PatchStats stats;
    rebuild_from_scratch(stats);
}

void DynamicSpanner::append_node(geom::Point p) {
    const auto v = static_cast<NodeId>(points_.size());
    points_.push_back(p);
    grid_.insert(v, p);
    udg_.add_node(p);
    backbone_.cds.add_node(p);
    backbone_.cds_prime.add_node(p);
    backbone_.icds.add_node(p);
    backbone_.icds_prime.add_node(p);
    backbone_.ldel_icds.add_node(p);
    backbone_.ldel_icds_prime.add_node(p);
    backbone_.cluster.role.push_back(Role::kDominatee);
    backbone_.cluster.dominators_of.emplace_back();
    backbone_.cluster.two_hop_dominators_of.emplace_back();
    backbone_.is_connector.push_back(false);
    backbone_.in_backbone.push_back(false);
    connector_refs_.push_back(0);
    local_tris_.emplace_back();
}

void DynamicSpanner::apply_positions_only(const UpdateBatch& batch) {
    for (const auto& mv : batch.moves) {
        assert(mv.node < points_.size());
        points_[mv.node] = mv.to;
    }
    for (const geom::Point p : batch.joins) points_.push_back(p);
    for (const NodeId leaver : batch.leaves) {
        assert(leaver < points_.size());
        points_[leaver] = points_.back();
        points_.pop_back();
    }
}

void DynamicSpanner::rebuild_from_scratch(PatchStats& stats) {
    const std::size_t n = points_.size();
    grid_ = DynamicCellGrid(points_, radius_);
    udg_ = engine::build_udg_staged(engine_->pool(), points_, radius_, &stats.pipeline);

    backbone_ = core::Backbone{};
    backbone_.cluster.role.assign(n, Role::kDominatee);
    backbone_.cluster.dominators_of.assign(n, {});
    backbone_.cluster.two_hop_dominators_of.assign(n, {});
    backbone_.is_connector.assign(n, false);
    backbone_.in_backbone.assign(n, false);
    backbone_.cds = GeometricGraph(points_);
    backbone_.cds_prime = GeometricGraph(points_);
    backbone_.icds = GeometricGraph(points_);
    backbone_.icds_prime = GeometricGraph(points_);
    backbone_.ldel_icds = GeometricGraph(points_);
    backbone_.ldel_icds_prime = GeometricGraph(points_);

    pairs_a_.clear();
    pairs_b_.clear();
    connector_refs_.assign(n, 0);
    cds_refs_.clear();
    local_tris_.assign(n, {});
    ldel1_.clear();
    kept_.clear();
    tri_bins_.clear();
    tri_grid_.clear();
    gabriel_.clear();
    ldel_icds_refs_.clear();
    cds_prime_refs_.clear();
    icds_prime_refs_.clear();
    ldel_icds_prime_refs_.clear();

    // Everything dirty: the patch kernels then perform the full build,
    // so the from-scratch and incremental paths share one code path.
    PatchContext ctx;
    ctx.reset(n);
    ctx.moved.reserve(n);
    ctx.adj_changed.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        ctx.moved.push_back(v);
        ctx.moved_flag[v] = 1;
        ctx.adj_changed.push_back(v);
        ctx.adj_changed_flag[v] = 1;
        ctx.touch(v);
    }

    {
        StageTimer t(stats.pipeline, "cluster-patch");
        (void)run_cluster_cascade(ctx, /*cap=*/static_cast<std::size_t>(-1));
        t.finish(n);
    }
    {
        StageTimer t(stats.pipeline, "connectors-patch");
        stage_connectors(ctx);
        t.finish(ctx.pairs_recomputed());
    }
    {
        StageTimer t(stats.pipeline, "icds-patch");
        stage_icds(ctx);
        t.finish(ctx.backbone_changed.size());
    }
    {
        StageTimer t(stats.pipeline, "ldel-patch");
        stage_ldel(ctx, stats);
        t.finish(ctx.ldel_dirty.size(), engine_->thread_count());
    }
    {
        StageTimer t(stats.pipeline, "gabriel-patch");
        stage_gabriel(ctx);
        t.finish(backbone_.icds.edge_count(), engine_->thread_count());
    }
    {
        StageTimer t(stats.pipeline, "assemble-patch");
        stage_assemble(ctx);
        t.finish(ctx.dom_list_changed.size());
    }

    stats.dirty_nodes = n;
    stats.roles_changed = ctx.roles_changed.size();
}

// ---- apply -----------------------------------------------------------

PatchStats DynamicSpanner::apply(const UpdateBatch& batch) {
    PatchStats stats;
    const engine::EngineOptions& opts = engine_->options();
    const bool incremental_ok = opts.incremental &&
                                opts.planarizer == core::Planarizer::kLdel1 &&
                                batch.leaves.empty();
    if (!incremental_ok) {
        apply_positions_only(batch);
        rebuild_from_scratch(stats);
        stats.fell_back = true;
        return stats;
    }

    const std::size_t n_after = points_.size() + batch.joins.size();
    PatchContext ctx;
    ctx.reset(n_after);

    {
        StageTimer t(stats.pipeline, "udg-patch");
        stage_udg(batch, ctx);
        t.finish(ctx.udg_added.size() + ctx.udg_removed.size());
    }
    stats.udg_edge_changes = ctx.udg_added.size() + ctx.udg_removed.size();

    // Whole-batch gate: the dirty region every later stage works from
    // is bounded by the 2-hop closure (over old ∪ new adjacency) of the
    // nodes whose position or incident edge set changed. Past
    // total_rebuild_fraction of n, even perfectly decomposed localized
    // patching loses to one parallel rebuild (which depends only on
    // current positions, so bailing here — after stage_udg already
    // mutated state — is safe). Whether a *component* is too big is
    // decided after decomposition, per component.
    std::vector<NodeId> seeds = ctx.moved;
    seeds.insert(seeds.end(), ctx.adj_changed.begin(), ctx.adj_changed.end());
    seeds.insert(seeds.end(), ctx.joined.begin(), ctx.joined.end());
    sort_unique(seeds);
    const std::size_t comp_cap = static_cast<std::size_t>(
        opts.incremental_options.rebuild_fraction * static_cast<double>(n_after));
    const std::size_t total_cap = static_cast<std::size_t>(
        opts.incremental_options.total_rebuild_fraction * static_cast<double>(n_after));
    const auto region = expand_hops(udg_, ctx.udg_removed_adj, seeds, 2);
    if (region.size() > total_cap) {
        rebuild_from_scratch(stats);
        stats.fell_back = true;
        return stats;
    }
    for (const NodeId v : region) ctx.touch(v);

    bool cascade_ok = true;
    {
        StageTimer t(stats.pipeline, "cluster-patch");
        cascade_ok = run_cluster_cascade(ctx, total_cap);
        t.finish(ctx.roles_changed.size());
    }
    if (!cascade_ok) {
        rebuild_from_scratch(stats);
        stats.fell_back = true;
        return stats;
    }

    // Decompose the connector-stage seed set into connected dirty
    // components and make the rebuild decision per component: only a
    // single over-cap component (or an over-cap union) forces the
    // fallback, so many small far-apart updates stay localized.
    const std::size_t merge_hops =
        std::max<std::size_t>(opts.incremental_options.component_merge_hops, 8);
    std::vector<DirtyComponent> comps;
    {
        StageTimer t(stats.pipeline, "decompose-patch");
        // Seeds: the connector-stage set c2 plus every moved node — a
        // move that changed no UDG edge still dirties the LDel/Gabriel
        // stages, so it must occupy a component (and count against the
        // caps). Planning with the superset only re-runs elections
        // whose inputs are unchanged, which is idempotent.
        std::vector<NodeId> comp_seeds = build_c2(ctx);
        comp_seeds.insert(comp_seeds.end(), ctx.moved.begin(), ctx.moved.end());
        sort_unique(comp_seeds);
        comps = decompose_components(ctx, comp_seeds, merge_hops);
        t.finish(comps.size());
    }
    stats.separation_hops = merge_hops + 1;
    std::size_t region_total = 0;
    for (DirtyComponent& comp : comps) {
        comp.over_cap = comp.region.size() > comp_cap;
        region_total += comp.region.size();
        if (comp.over_cap) ++stats.component_fallbacks;
        ComponentStats cs;
        cs.seed_count = comp.seeds.size();
        cs.over_cap = comp.over_cap;
        cs.region = comp.region;
        stats.components.push_back(std::move(cs));
    }
    if (stats.component_fallbacks > 0 || region_total > total_cap) {
        rebuild_from_scratch(stats);
        stats.fell_back = true;
        return stats;
    }
    {
        StageTimer t(stats.pipeline, "connectors-patch");
        stage_connectors_componentwise(ctx, comps);
        t.finish(ctx.pairs_recomputed(),
                 comps.size() > 1 ? engine_->thread_count() : 1);
    }
    {
        StageTimer t(stats.pipeline, "icds-patch");
        stage_icds(ctx);
        t.finish(ctx.icds_added.size() + ctx.icds_removed.size());
    }
    {
        StageTimer t(stats.pipeline, "ldel-patch");
        stage_ldel(ctx, stats);
        t.finish(ctx.ldel_dirty.size());
    }
    {
        StageTimer t(stats.pipeline, "gabriel-patch");
        stage_gabriel(ctx);
        t.finish(ctx.ldel_dirty.size());
    }
    {
        StageTimer t(stats.pipeline, "assemble-patch");
        stage_assemble(ctx);
        t.finish(ctx.dom_list_changed.size());
    }

    stats.dirty_nodes = ctx.dirty_count;
    stats.roles_changed = ctx.roles_changed.size();
    stats.pairs_recomputed = ctx.pairs_recomputed();
    return stats;
}

// ---- Stage U: positions, grid, UDG edge deltas -----------------------

void DynamicSpanner::stage_udg(const UpdateBatch& batch, PatchContext& ctx) {
    for (const geom::Point p : batch.joins) {
        const auto id = static_cast<NodeId>(points_.size());
        append_node(p);
        ctx.joined.push_back(id);
        ctx.touch(id);
    }
    for (const auto& mv : batch.moves) {
        assert(mv.node < points_.size());
        const geom::Point old = points_[mv.node];
        if (old == mv.to) continue;
        grid_.relocate(mv.node, old, mv.to);
        points_[mv.node] = mv.to;
        if (ctx.moved_flag[mv.node] == 0) {
            ctx.moved_flag[mv.node] = 1;
            ctx.moved.push_back(mv.node);
            ctx.touch(mv.node);
        }
    }
    sort_unique(ctx.moved);
    for (const NodeId v : ctx.moved) {
        udg_.set_point(v, points_[v]);
        backbone_.cds.set_point(v, points_[v]);
        backbone_.cds_prime.set_point(v, points_[v]);
        backbone_.icds.set_point(v, points_[v]);
        backbone_.icds_prime.set_point(v, points_[v]);
        backbone_.ldel_icds.set_point(v, points_[v]);
        backbone_.ldel_icds_prime.set_point(v, points_[v]);
    }

    // Re-derive the incident edge set of every moved/joined node from
    // the grid. Desired sets are functions of the final positions, so
    // processing order between two affected nodes cannot disagree;
    // add/remove return-values dedupe the doubly-enumerated case.
    std::vector<NodeId> affected = ctx.moved;
    affected.insert(affected.end(), ctx.joined.begin(), ctx.joined.end());
    sort_unique(affected);
    const auto mark_adj = [&](NodeId v) {
        if (ctx.adj_changed_flag[v] == 0) {
            ctx.adj_changed_flag[v] = 1;
            ctx.adj_changed.push_back(v);
            ctx.touch(v);
        }
    };
    // Grid queries are pure reads of the settled grid + positions, so
    // the desired lists collect in parallel; the edge splice below
    // mutates shared adjacency and stays serial in node order.
    std::vector<std::vector<NodeId>> desired(affected.size());
    const auto collect = [&](std::size_t i) {
        grid_.collect_neighbors(points_, radius_, affected[i], desired[i]);
    };
    if (affected.size() >= kParallelThreshold) {
        engine_->pool().parallel_for(0, affected.size(), collect);
    } else {
        for (std::size_t i = 0; i < affected.size(); ++i) collect(i);
    }
    std::vector<NodeId> stale;
    for (std::size_t ai = 0; ai < affected.size(); ++ai) {
        const NodeId v = affected[ai];
        stale.assign(udg_.neighbors(v).begin(), udg_.neighbors(v).end());
        // stale and desired are both sorted: one merge pass yields the
        // adds (desired only) and removals (stale only).
        const std::vector<NodeId>& want = desired[ai];
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < stale.size() || j < want.size()) {
            if (j == want.size() || (i < stale.size() && stale[i] < want[j])) {
                const NodeId u = stale[i++];
                if (udg_.remove_edge(v, u)) {
                    ctx.udg_removed.push_back(norm(v, u));
                    ctx.udg_removed_adj[v].push_back(u);
                    ctx.udg_removed_adj[u].push_back(v);
                    mark_adj(v);
                    mark_adj(u);
                }
            } else if (i == stale.size() || want[j] < stale[i]) {
                const NodeId u = want[j++];
                if (udg_.add_edge(v, u)) {
                    ctx.udg_added.push_back(norm(v, u));
                    mark_adj(v);
                    mark_adj(u);
                }
            } else {
                ++i;
                ++j;
            }
        }
    }
    sort_unique(ctx.adj_changed);
    sort_unique_pairs(ctx.udg_added);
    sort_unique_pairs(ctx.udg_removed);
    for (auto& [v, list] : ctx.udg_removed_adj) sort_unique(list);
}

// ---- Stage 1: clustering cascade + derived lists ---------------------

bool DynamicSpanner::run_cluster_cascade(PatchContext& ctx, std::size_t cap) {
    const auto policy = engine_->options().cluster_policy;
    auto& cluster = backbone_.cluster;

    // Seeds: every node whose role-function inputs changed — its own
    // neighbor set (adj_changed, joins), and under kHighestDegree the
    // keys of its neighbors (degree changes propagate one hop).
    std::set<ClusterKey> worklist;
    const auto seed = [&](NodeId v) { worklist.insert(cluster_key(udg_, v, policy)); };
    for (const NodeId v : ctx.adj_changed) seed(v);
    for (const NodeId v : ctx.joined) seed(v);
    if (policy == protocol::ClusterPolicy::kHighestDegree) {
        for (const NodeId v : ctx.adj_changed) {
            for (const NodeId u : udg_.neighbors(v)) seed(u);
        }
    }

    // Greedy MIS in key order (== cluster_reference's synchronized
    // rounds): v is a dominator iff no key-smaller neighbor is one.
    // Pops increase monotonically and a role change only re-enqueues
    // key-larger neighbors, so every processed node sees the final
    // roles of all key-smaller nodes — the defining property of the
    // greedy order, which makes the localized cascade exact.
    while (!worklist.empty()) {
        const ClusterKey key = *worklist.begin();
        worklist.erase(worklist.begin());
        const NodeId v = key.id;
        bool dominated = false;
        for (const NodeId u : udg_.neighbors(v)) {
            if (cluster.role[u] == Role::kDominator &&
                cluster_key(udg_, u, policy) < key) {
                dominated = true;
                break;
            }
        }
        const Role role = dominated ? Role::kDominatee : Role::kDominator;
        if (role == cluster.role[v]) continue;
        ctx.old_role.emplace(v, cluster.role[v]);
        cluster.role[v] = role;
        ctx.roles_changed.push_back(v);
        if (ctx.roles_changed.size() > cap) return false;
        for (const NodeId u : udg_.neighbors(v)) {
            if (cluster_key(udg_, u, policy) > key) {
                worklist.insert(cluster_key(udg_, u, policy));
            }
        }
    }
    sort_unique(ctx.roles_changed);
    for (const NodeId v : ctx.roles_changed) ctx.touch(v);

    // dominators_of[v] depends on v's role, v's neighbor set, and the
    // roles of its neighbors.
    std::vector<NodeId> dom_recompute = ctx.roles_changed;
    for (const NodeId v : ctx.roles_changed) {
        for (const NodeId u : udg_.neighbors(v)) dom_recompute.push_back(u);
    }
    dom_recompute.insert(dom_recompute.end(), ctx.adj_changed.begin(),
                         ctx.adj_changed.end());
    dom_recompute.insert(dom_recompute.end(), ctx.joined.begin(), ctx.joined.end());
    sort_unique(dom_recompute);
    std::vector<NodeId> fresh;
    for (const NodeId v : dom_recompute) {
        fresh.clear();
        if (cluster.role[v] == Role::kDominatee) {
            for (const NodeId u : udg_.neighbors(v)) {
                if (cluster.role[u] == Role::kDominator) fresh.push_back(u);
            }
        }
        if (fresh != cluster.dominators_of[v]) {
            ctx.old_dominators.emplace(v, std::move(cluster.dominators_of[v]));
            cluster.dominators_of[v] = fresh;
            ctx.dom_list_changed.push_back(v);
            ctx.touch(v);
        }
    }

    // two_hop_dominators_of[v] depends on v's neighbor set and, for
    // each neighbor w, on role[w] and dominators_of[w].
    std::vector<NodeId> two_hop_recompute = ctx.adj_changed;
    two_hop_recompute.insert(two_hop_recompute.end(), ctx.joined.begin(),
                             ctx.joined.end());
    for (const NodeId w : ctx.roles_changed) {
        for (const NodeId v : udg_.neighbors(w)) two_hop_recompute.push_back(v);
    }
    for (const NodeId w : ctx.dom_list_changed) {
        for (const NodeId v : udg_.neighbors(w)) two_hop_recompute.push_back(v);
    }
    sort_unique(two_hop_recompute);
    for (const NodeId v : two_hop_recompute) {
        fresh.clear();
        for (const NodeId w : udg_.neighbors(v)) {
            if (cluster.role[w] != Role::kDominatee) continue;
            for (const NodeId d : cluster.dominators_of[w]) {
                if (d != v && !udg_.has_edge(v, d)) sorted_insert(fresh, d);
            }
        }
        if (fresh != cluster.two_hop_dominators_of[v]) {
            cluster.two_hop_dominators_of[v] = fresh;
            ctx.two_hop_changed.push_back(v);
            ctx.touch(v);
        }
    }
    return true;
}

// ---- Stage 2: connector pair elections -------------------------------

bool DynamicSpanner::wins(NodeId w, const std::vector<NodeId>& candidates) const {
    // Matches find_connectors: w wins iff no smaller-id candidate of
    // the same pair is UDG-adjacent to it. Candidate lists are built in
    // ascending id order, so the scan stops at w.
    for (const NodeId c : candidates) {
        if (c >= w) break;
        if (udg_.has_edge(c, w)) return false;
    }
    return true;
}

bool DynamicSpanner::delete_pair(PairLedger& ledger, Pair key,
                                 std::vector<NodeId>& conn_touched) {
    const auto it = ledger.entries.find(key);
    if (it == ledger.entries.end()) return false;
    for (const NodeId c : it->second.connectors) {
        if (--connector_refs_[c] == 0) conn_touched.push_back(c);
    }
    for (const Pair& e : it->second.edges) cds_edge_dec(e);
    ledger.by_node[key.first].erase(key);
    ledger.by_node[key.second].erase(key);
    ledger.entries.erase(it);
    return true;
}

void DynamicSpanner::commit_pair(PairLedger& ledger, Pair key, PairOutcome outcome,
                                 std::vector<NodeId>& conn_touched) {
    if (outcome.connectors.empty() && outcome.edges.empty()) return;
    sort_unique(outcome.connectors);
    sort_unique_pairs(outcome.edges);
    for (const NodeId c : outcome.connectors) {
        if (connector_refs_[c]++ == 0) conn_touched.push_back(c);
    }
    for (const Pair& e : outcome.edges) cds_edge_inc(e);
    ledger.by_node[key.first].insert(key);
    ledger.by_node[key.second].insert(key);
    const bool inserted = ledger.entries.emplace(key, std::move(outcome)).second;
    assert(inserted);
    (void)inserted;
}

std::vector<graph::NodeId> DynamicSpanner::build_c2(const PatchContext& ctx) const {
    // C2: nodes whose election-relevant state changed (adjacency, role,
    // dominator list, two-hop dominator list, or a fresh join). Every
    // pair whose election can differ has a dominator within the 2-hop
    // closure S2 of C2 over old ∪ new edges, because elections are pure
    // functions of the states of N2(pair).
    std::vector<NodeId> c2 = ctx.adj_changed;
    c2.insert(c2.end(), ctx.joined.begin(), ctx.joined.end());
    c2.insert(c2.end(), ctx.roles_changed.begin(), ctx.roles_changed.end());
    c2.insert(c2.end(), ctx.dom_list_changed.begin(), ctx.dom_list_changed.end());
    c2.insert(c2.end(), ctx.two_hop_changed.begin(), ctx.two_hop_changed.end());
    sort_unique(c2);
    return c2;
}

std::vector<DynamicSpanner::DirtyComponent> DynamicSpanner::decompose_components(
    const PatchContext& ctx, const std::vector<NodeId>& c2,
    std::size_t merge_hops) const {
    std::vector<DirtyComponent> comps;
    if (c2.empty()) return comps;

    // Union-find over seed indices; smaller root wins, so each class's
    // root is its smallest seed and the final component order is the
    // deterministic smallest-seed order.
    std::vector<std::uint32_t> parent(c2.size());
    for (std::uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    const auto unite = [&](std::uint32_t a, std::uint32_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (a < b) {
            parent[b] = a;
        } else {
            parent[a] = b;
        }
    };

    // Multi-source label BFS over old ∪ new adjacency, ceil(merge_hops/2)
    // rounds per side. Seeds within 2·depth >= merge_hops hops collide on
    // some middle node and merge; seeds of distinct final components are
    // therefore >= 2·depth + 1 >= merge_hops + 1 hops apart — clear of
    // the <= 7-hop reach of every stage's dirty expansion, which is what
    // makes the per-component plans' read/write sets disjoint.
    const std::size_t depth = (merge_hops + 1) / 2;
    constexpr std::uint32_t kNone = ~std::uint32_t{0};
    std::vector<std::uint32_t> label(points_.size(), kNone);
    std::vector<NodeId> frontier;
    std::vector<NodeId> next;
    for (std::uint32_t i = 0; i < c2.size(); ++i) {
        label[c2[i]] = i;
        frontier.push_back(c2[i]);
    }
    for (std::size_t h = 0; h < depth && !frontier.empty(); ++h) {
        next.clear();
        for (const NodeId v : frontier) {
            const std::uint32_t cv = label[v];
            const auto visit = [&](NodeId u) {
                if (label[u] == kNone) {
                    label[u] = cv;
                    next.push_back(u);
                } else {
                    unite(cv, label[u]);
                }
            };
            for (const NodeId u : udg_.neighbors(v)) visit(u);
            const auto it = ctx.udg_removed_adj.find(v);
            if (it != ctx.udg_removed_adj.end()) {
                for (const NodeId u : it->second) visit(u);
            }
        }
        std::swap(frontier, next);
    }

    // Group seeds by root. Seed indices ascend within each class and c2
    // is sorted, so every component's seed list comes out sorted.
    std::vector<std::vector<std::uint32_t>> members(c2.size());
    for (std::uint32_t i = 0; i < c2.size(); ++i) members[find(i)].push_back(i);
    for (std::uint32_t r = 0; r < members.size(); ++r) {
        if (members[r].empty()) continue;
        DirtyComponent comp;
        comp.seeds.reserve(members[r].size());
        for (const std::uint32_t idx : members[r]) comp.seeds.push_back(c2[idx]);
        comp.region = expand_hops(udg_, ctx.udg_removed_adj, comp.seeds, 2);
        comps.push_back(std::move(comp));
    }
    return comps;
}

void DynamicSpanner::plan_connectors(const PatchContext& ctx,
                                     const std::vector<NodeId>& c2,
                                     ConnectorPlan& plan) const {
    const auto& cluster = backbone_.cluster;

    // Delete every ledger pair with a dirty-dominator endpoint in this
    // component's S2 and re-run its election. Everything here reads the
    // frozen pre-commit state only — ctx dirty sets, the UDG, the
    // cluster lists, and the ledgers are not mutated until commit.
    const auto s2 = expand_hops(udg_, ctx.udg_removed_adj, c2, 2);
    plan.touched = s2;

    std::vector<NodeId> dirty_dominators;
    for (const NodeId d : s2) {
        const bool is_now = cluster.role[d] == Role::kDominator;
        const auto it = ctx.old_role.find(d);
        const bool was = it != ctx.old_role.end() ? it->second == Role::kDominator
                                                  : is_now;
        if (is_now || was) dirty_dominators.push_back(d);
    }

    std::vector<std::pair<int, Pair>> deletions;
    for (const NodeId d : dirty_dominators) {
        for (const int which : {0, 1}) {
            const PairLedger& ledger = which == 0 ? pairs_a_ : pairs_b_;
            const auto idx = ledger.by_node.find(d);
            if (idx == ledger.by_node.end()) continue;
            for (const Pair& key : idx->second) deletions.emplace_back(which, key);
        }
    }

    // Re-elect every pair with a recompute-dominator endpoint. All its
    // candidate generators w lie within 2 hops of that endpoint, so one
    // ascending scan of W2 rebuilds the candidate lists in the same
    // node-id order find_connectors produces.
    std::vector<NodeId> rec;
    std::vector<char> rec_flag(points_.size(), 0);
    for (const NodeId d : dirty_dominators) {
        if (cluster.role[d] == Role::kDominator) {
            rec.push_back(d);
            rec_flag[d] = 1;
        }
    }
    const auto w2 = expand_hops(udg_, ctx.udg_removed_adj, rec, 2);

    // Candidate lists as flat (pair, w) tuples grouped by a stable sort
    // — the w2 scan emits w ascending, so each group keeps the ascending
    // candidate order the elections expect, without per-pair map nodes.
    std::vector<std::pair<Pair, NodeId>> cand_a;
    std::vector<std::pair<Pair, NodeId>> cand_b;
    for (const NodeId w : w2) {
        const auto& doms = cluster.dominators_of[w];
        for (std::size_t i = 0; i < doms.size(); ++i) {
            for (std::size_t j = i + 1; j < doms.size(); ++j) {
                if (rec_flag[doms[i]] != 0 || rec_flag[doms[j]] != 0) {
                    cand_a.push_back({{doms[i], doms[j]}, w});
                }
            }
        }
        for (const NodeId u : doms) {
            for (const NodeId v : cluster.two_hop_dominators_of[w]) {
                if (rec_flag[u] != 0 || rec_flag[v] != 0) {
                    cand_b.push_back({{u, v}, w});
                }
            }
        }
    }
    const auto by_pair = [](const std::pair<Pair, NodeId>& a,
                            const std::pair<Pair, NodeId>& b) {
        return a.first < b.first;
    };
    std::stable_sort(cand_a.begin(), cand_a.end(), by_pair);
    std::stable_sort(cand_b.begin(), cand_b.end(), by_pair);

    // A re-elected outcome identical to the pair's retained ledger
    // entry makes its delete + recommit a refcount no-op: record the
    // key as retained (ascending — groups iterate in pair order) and
    // emit neither. Ledger outcomes are stored deduplicated, so the
    // comparison needs the planned outcome in the same form.
    std::vector<Pair> retained_a;
    std::vector<Pair> retained_b;
    const auto settle = [](PairOutcome& outcome) {
        sort_unique(outcome.connectors);
        sort_unique_pairs(outcome.edges);
    };
    const auto unchanged = [](const PairLedger& ledger, Pair key,
                              const PairOutcome& outcome) {
        const auto it = ledger.entries.find(key);
        return it != ledger.entries.end() &&
               it->second.connectors == outcome.connectors &&
               it->second.edges == outcome.edges;
    };

    // Phase A: dominators two hops apart, unordered pairs.
    std::vector<NodeId> candidates;
    for (std::size_t lo = 0; lo < cand_a.size();) {
        const Pair pair = cand_a[lo].first;
        candidates.clear();
        for (; lo < cand_a.size() && cand_a[lo].first == pair; ++lo) {
            candidates.push_back(cand_a[lo].second);
        }
        ++plan.pairs_reelected;
        PairOutcome outcome;
        for (const NodeId w : candidates) {
            if (!wins(w, candidates)) continue;
            outcome.connectors.push_back(w);
            outcome.edges.push_back(norm(pair.first, w));
            outcome.edges.push_back(norm(w, pair.second));
        }
        settle(outcome);
        if (unchanged(pairs_a_, pair, outcome)) {
            retained_a.push_back(pair);
            ++plan.pairs_retained;
            continue;
        }
        plan.commits_a.emplace_back(pair, std::move(outcome));
    }

    // Phases B+C: ordered pairs (u, v) three hops apart — first-leg
    // winners among u's dominatees, then the second-leg election among
    // v's dominatees audible from a first-leg winner.
    for (std::size_t lo = 0; lo < cand_b.size();) {
        const Pair pair = cand_b[lo].first;
        candidates.clear();
        for (; lo < cand_b.size() && cand_b[lo].first == pair; ++lo) {
            candidates.push_back(cand_b[lo].second);
        }
        ++plan.pairs_reelected;
        PairOutcome outcome;
        std::vector<NodeId> winners;
        for (const NodeId w : candidates) {
            if (!wins(w, candidates)) continue;
            winners.push_back(w);
            outcome.connectors.push_back(w);
            outcome.edges.push_back(norm(pair.first, w));
        }
        if (!winners.empty()) {
            std::set<NodeId> second;
            std::map<NodeId, std::vector<NodeId>> audible;
            for (const NodeId w : winners) {
                for (const NodeId x : udg_.neighbors(w)) {
                    const auto& doms = cluster.dominators_of[x];
                    if (std::binary_search(doms.begin(), doms.end(), pair.second)) {
                        second.insert(x);
                        audible[x].push_back(w);
                    }
                }
            }
            const std::vector<NodeId> second_candidates(second.begin(), second.end());
            for (const NodeId x : second_candidates) {
                if (!wins(x, second_candidates)) continue;
                outcome.connectors.push_back(x);
                outcome.edges.push_back(norm(x, pair.second));
                for (const NodeId w : audible[x]) outcome.edges.push_back(norm(x, w));
            }
        }
        settle(outcome);
        if (unchanged(pairs_b_, pair, outcome)) {
            retained_b.push_back(pair);
            ++plan.pairs_retained;
            continue;
        }
        plan.commits_b.emplace_back(pair, std::move(outcome));
    }

    // Deletions, minus the retained keys.
    plan.deletions.reserve(deletions.size());
    for (const auto& [which, key] : deletions) {
        const auto& retained = which == 0 ? retained_a : retained_b;
        if (std::binary_search(retained.begin(), retained.end(), key)) continue;
        plan.deletions.emplace_back(which, key);
    }
}

void DynamicSpanner::commit_connector_plan(ConnectorPlan& plan, PatchContext& ctx,
                                           std::vector<NodeId>& conn_touched) {
    for (const NodeId v : plan.touched) ctx.touch(v);
    // A pair with both endpoints dirty in the same component is planned
    // for deletion twice; delete_pair is idempotent and only real
    // deletions count (matching the monolithic path, where the first
    // deletion removed the pair from the second endpoint's index).
    std::size_t deleted = 0;
    for (const auto& [which, key] : plan.deletions) {
        PairLedger& ledger = which == 0 ? pairs_a_ : pairs_b_;
        if (delete_pair(ledger, key, conn_touched)) ++deleted;
    }
    for (auto& [key, outcome] : plan.commits_a) {
        commit_pair(pairs_a_, key, std::move(outcome), conn_touched);
    }
    for (auto& [key, outcome] : plan.commits_b) {
        commit_pair(pairs_b_, key, std::move(outcome), conn_touched);
    }
    ctx.pairs_deleted += deleted;
    ctx.pairs_reelected += plan.pairs_reelected;
}

void DynamicSpanner::settle_connector_flags(std::vector<NodeId>& conn_touched,
                                            PatchContext& ctx) {
    sort_unique(conn_touched);
    for (const NodeId c : conn_touched) {
        const bool now = connector_refs_[c] > 0;
        if (backbone_.is_connector[c] != now) {
            backbone_.is_connector[c] = now;
            ctx.connector_changed.push_back(c);
            ctx.touch(c);
        }
    }
}

void DynamicSpanner::stage_connectors(PatchContext& ctx) {
    ConnectorPlan plan;
    plan_connectors(ctx, build_c2(ctx), plan);
    std::vector<NodeId> conn_touched;
    commit_connector_plan(plan, ctx, conn_touched);
    settle_connector_flags(conn_touched, ctx);
}

void DynamicSpanner::stage_connectors_componentwise(
    PatchContext& ctx, const std::vector<DirtyComponent>& comps) {
    // Plans are read-only against the frozen state and component
    // regions are disjoint, so planning parallelizes freely; commits
    // mutate the shared ledgers/refcounts/graphs and run serially in
    // deterministic component order. Disjointness makes the serial
    // commit order immaterial to the result — the output is
    // edge-identical to the monolithic path at any thread count.
    std::vector<ConnectorPlan> plans(comps.size());
    const auto body = [&](std::size_t i) {
        plan_connectors(ctx, comps[i].seeds, plans[i]);
    };
    if (comps.size() > 1) {
        engine_->pool().parallel_for(0, comps.size(), body);
    } else {
        for (std::size_t i = 0; i < comps.size(); ++i) body(i);
    }
    std::vector<NodeId> conn_touched;
    for (ConnectorPlan& plan : plans) commit_connector_plan(plan, ctx, conn_touched);
    settle_connector_flags(conn_touched, ctx);
}

// ---- Stage 3: induced backbone (ICDS) --------------------------------

void DynamicSpanner::icds_edge_added(NodeId u, NodeId v, PatchContext& ctx) {
    const Pair e = norm(u, v);
    ctx.icds_added.push_back(e);
    for (const NodeId x : {u, v}) {
        if (ctx.icds_adj_changed_flag[x] == 0) {
            ctx.icds_adj_changed_flag[x] = 1;
            ctx.icds_adj_changed.push_back(x);
        }
    }
    if (icds_prime_refs_.inc(e)) backbone_.icds_prime.add_edge(e.first, e.second);
}

void DynamicSpanner::icds_edge_removed(NodeId u, NodeId v, PatchContext& ctx) {
    const Pair e = norm(u, v);
    ctx.icds_removed.push_back(e);
    ctx.icds_removed_adj[u].push_back(v);
    ctx.icds_removed_adj[v].push_back(u);
    for (const NodeId x : {u, v}) {
        if (ctx.icds_adj_changed_flag[x] == 0) {
            ctx.icds_adj_changed_flag[x] = 1;
            ctx.icds_adj_changed.push_back(x);
        }
    }
    if (icds_prime_refs_.dec(e)) backbone_.icds_prime.remove_edge(e.first, e.second);
}

void DynamicSpanner::stage_icds(PatchContext& ctx) {
    auto& in_backbone = backbone_.in_backbone;

    std::vector<NodeId> flips = ctx.roles_changed;
    flips.insert(flips.end(), ctx.connector_changed.begin(),
                 ctx.connector_changed.end());
    flips.insert(flips.end(), ctx.joined.begin(), ctx.joined.end());
    sort_unique(flips);
    for (const NodeId v : flips) {
        const bool now =
            backbone_.cluster.role[v] == Role::kDominator || backbone_.is_connector[v];
        if (in_backbone[v] != now) {
            in_backbone[v] = now;
            ctx.backbone_changed.push_back(v);
            ctx.touch(v);
        }
    }

    // UDG edge deltas restricted to backbone endpoints, then membership
    // flips: a node entering the backbone gains its UDG edges to other
    // backbone nodes, a node leaving drops every incident ICDS edge.
    for (const auto& [u, v] : ctx.udg_added) {
        if (in_backbone[u] && in_backbone[v] && backbone_.icds.add_edge(u, v)) {
            icds_edge_added(u, v, ctx);
        }
    }
    for (const auto& [u, v] : ctx.udg_removed) {
        if (backbone_.icds.remove_edge(u, v)) icds_edge_removed(u, v, ctx);
    }
    std::vector<NodeId> incident;
    for (const NodeId v : ctx.backbone_changed) {
        if (in_backbone[v]) {
            for (const NodeId u : udg_.neighbors(v)) {
                if (in_backbone[u] && backbone_.icds.add_edge(v, u)) {
                    icds_edge_added(v, u, ctx);
                }
            }
        } else {
            incident.assign(backbone_.icds.neighbors(v).begin(),
                            backbone_.icds.neighbors(v).end());
            for (const NodeId u : incident) {
                if (backbone_.icds.remove_edge(v, u)) icds_edge_removed(v, u, ctx);
            }
        }
    }
    sort_unique(ctx.icds_adj_changed);
    sort_unique_pairs(ctx.icds_added);
    sort_unique_pairs(ctx.icds_removed);
    for (auto& [v, list] : ctx.icds_removed_adj) sort_unique(list);
}

// ---- Stage 4: LDel¹ triangles + Algorithm-3 survival -----------------

DynamicSpanner::TriBin DynamicSpanner::bin_of(TriangleKey t) const {
    const geom::Point pa = points_[t.a];
    const geom::Point pb = points_[t.b];
    const geom::Point pc = points_[t.c];
    TriBin bin;
    bin.min_x = std::min({pa.x, pb.x, pc.x});
    bin.max_x = std::max({pa.x, pb.x, pc.x});
    bin.min_y = std::min({pa.y, pb.y, pc.y});
    bin.max_y = std::max({pa.y, pb.y, pc.y});
    bin.cell = proximity::cell_of({bin.min_x, bin.min_y}, radius_);
    return bin;
}

void DynamicSpanner::tri_insert(TriangleKey t) {
    const TriBin bin = bin_of(t);
    tri_bins_.emplace(t, bin);
    tri_grid_[bin.cell].push_back(t);
}

void DynamicSpanner::tri_remove(TriangleKey t) {
    const auto it = tri_bins_.find(t);
    assert(it != tri_bins_.end());
    auto& cell = tri_grid_[it->second.cell];
    cell.erase(std::find(cell.begin(), cell.end(), t));
    if (cell.empty()) tri_grid_.erase(it->second.cell);
    tri_bins_.erase(it);
}

bool DynamicSpanner::removed_by_partner(TriangleKey t, TriangleKey r) const {
    // Algorithm 3's pairwise rule, oriented for "does r remove t":
    // remove the triangle whose circumcircle strictly contains a vertex
    // of the other; when neither test fires on an intersecting pair
    // (exactly cocircular corners), remove the larger key — matching
    // Alg3Filter's deterministic tie-break.
    if (!proximity::triangles_intersect(backbone_.icds, t, r)) return false;
    if (proximity::circumcircle_contains_vertex_of(backbone_.icds, t, r)) return true;
    if (proximity::circumcircle_contains_vertex_of(backbone_.icds, r, t)) return false;
    return r < t;
}

bool DynamicSpanner::survives_alg3(TriangleKey t) const {
    // Partner enumeration over the bbox buckets: every LDel¹ triangle
    // has sides <= radius, so any partner's min corner lies within one
    // cell (= radius) below t's box and never above its max corner.
    const TriBin bin = tri_bins_.at(t);
    const auto lo = proximity::cell_of({bin.min_x - radius_, bin.min_y - radius_}, radius_);
    const auto hi = proximity::cell_of({bin.max_x, bin.max_y}, radius_);
    for (long long cx = lo.first; cx <= hi.first; ++cx) {
        for (long long cy = lo.second; cy <= hi.second; ++cy) {
            const auto it = tri_grid_.find({cx, cy});
            if (it == tri_grid_.end()) continue;
            for (const TriangleKey r : it->second) {
                if (r == t) continue;
                const TriBin& rb = tri_bins_.at(r);
                if (rb.min_x > bin.max_x || rb.max_x < bin.min_x ||
                    rb.min_y > bin.max_y || rb.max_y < bin.min_y) {
                    continue;
                }
                if (removed_by_partner(t, r)) return false;
            }
        }
    }
    return true;
}

void DynamicSpanner::stage_ldel(PatchContext& ctx, PatchStats& stats) {
    // Local triangle lists to recompute: local_triangles_at(icds, v)
    // reads v's ICDS neighbor set, the positions of v and those
    // neighbors, and the ICDS edges among the neighbors (the opposite
    // sides). So v is dirty exactly when (a) its adjacency changed, (b)
    // v or a current neighbor moved, or (c) an edge between two of its
    // current neighbors was added or removed — i.e. v is a common
    // neighbor of an edge delta. A node that lost its adjacency to the
    // changed/moved node is in icds_adj_changed already, which is why
    // (b) and (c) only need current adjacency.
    std::vector<NodeId> seeds = ctx.icds_adj_changed;
    for (const NodeId v : ctx.moved) {
        if (!backbone_.in_backbone[v]) continue;
        seeds.push_back(v);
        const auto nbrs = backbone_.icds.neighbors(v);
        seeds.insert(seeds.end(), nbrs.begin(), nbrs.end());
    }
    const auto mark_common = [&](Pair e) {
        const auto na = backbone_.icds.neighbors(e.first);
        const auto nb = backbone_.icds.neighbors(e.second);
        std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                              std::back_inserter(seeds));
    };
    for (const Pair& e : ctx.icds_added) mark_common(e);
    for (const Pair& e : ctx.icds_removed) mark_common(e);
    sort_unique(seeds);
    ctx.ldel_dirty = std::move(seeds);
    const auto& dirty = ctx.ldel_dirty;
    for (const NodeId v : dirty) ctx.touch(v);

    std::vector<std::vector<TriangleKey>> fresh(dirty.size());
    const auto body = [&](std::size_t i) {
        fresh[i] = proximity::local_triangles_at(backbone_.icds, dirty[i]);
    };
    if (dirty.size() >= kParallelThreshold) {
        engine_->pool().parallel_for(0, dirty.size(), body);
    } else {
        for (std::size_t i = 0; i < dirty.size(); ++i) body(i);
    }

    // Candidate triangles: anything in an old or new local list of a
    // dirty node. A triangle none of whose corners is dirty has all
    // three membership votes unchanged.
    std::vector<TriangleKey> candidates;
    for (std::size_t i = 0; i < dirty.size(); ++i) {
        candidates.insert(candidates.end(), local_tris_[dirty[i]].begin(),
                          local_tris_[dirty[i]].end());
        candidates.insert(candidates.end(), fresh[i].begin(), fresh[i].end());
        local_tris_[dirty[i]] = std::move(fresh[i]);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Membership delta + bbox re-binning. `touched_boxes` collects the
    // old and new extents of every added/removed/moved triangle; any
    // retained triangle whose box meets one of them must re-run its
    // survival test.
    const auto in_local = [&](NodeId v, TriangleKey t) {
        const auto& list = local_tris_[v];
        return std::binary_search(list.begin(), list.end(), t);
    };
    std::vector<TriBin> touched_boxes;
    for (const TriangleKey t : candidates) {
        const bool now = in_local(t.a, t) && in_local(t.b, t) && in_local(t.c, t);
        const bool was = ldel1_.contains(t);
        if (now && !was) {
            ldel1_.insert(t);
            tri_insert(t);
            touched_boxes.push_back(tri_bins_.at(t));
        } else if (!now && was) {
            ldel1_.erase(t);
            touched_boxes.push_back(tri_bins_.at(t));
            tri_remove(t);
            if (kept_.erase(t) > 0) {
                ctx.kept_removed.push_back(t);
                ldel_edge_dec(norm(t.a, t.b));
                ldel_edge_dec(norm(t.b, t.c));
                ldel_edge_dec(norm(t.a, t.c));
            }
        } else if (now && was && (ctx.moved_flag[t.a] != 0 || ctx.moved_flag[t.b] != 0 ||
                                  ctx.moved_flag[t.c] != 0)) {
            touched_boxes.push_back(tri_bins_.at(t));  // old geometry
            tri_remove(t);
            tri_insert(t);
            touched_boxes.push_back(tri_bins_.at(t));  // new geometry
        }
    }

    // Survival recompute set: a retained triangle's verdict can only
    // change when its partner set or a partner's geometry did, and
    // partner coupling requires bbox intersection — so only residents
    // whose box meets a touched box (old or new geometry of an
    // added/removed/moved triangle) re-run the test. Candidate cells:
    // everything a touched box can reach (partners' min corners lie
    // within one cell below the box).
    std::vector<TriangleKey> retest;
    for (const TriBin& box : touched_boxes) {
        const auto lo =
            proximity::cell_of({box.min_x - radius_, box.min_y - radius_}, radius_);
        const auto hi = proximity::cell_of({box.max_x, box.max_y}, radius_);
        for (long long cx = lo.first; cx <= hi.first; ++cx) {
            for (long long cy = lo.second; cy <= hi.second; ++cy) {
                const auto it = tri_grid_.find({cx, cy});
                if (it == tri_grid_.end()) continue;
                for (const TriangleKey r : it->second) {
                    const TriBin& rb = tri_bins_.at(r);
                    if (rb.min_x > box.max_x || rb.max_x < box.min_x ||
                        rb.min_y > box.max_y || rb.max_y < box.min_y) {
                        continue;
                    }
                    retest.push_back(r);
                }
            }
        }
    }
    std::sort(retest.begin(), retest.end());
    retest.erase(std::unique(retest.begin(), retest.end()), retest.end());
    stats.triangles_retested += retest.size();

    std::vector<char> survives(retest.size(), 0);
    const auto survive_body = [&](std::size_t i) {
        survives[i] = survives_alg3(retest[i]) ? 1 : 0;
    };
    if (retest.size() >= kParallelThreshold) {
        engine_->pool().parallel_for(0, retest.size(), survive_body);
    } else {
        for (std::size_t i = 0; i < retest.size(); ++i) survive_body(i);
    }
    for (std::size_t i = 0; i < retest.size(); ++i) {
        const TriangleKey t = retest[i];
        const bool keep = survives[i] != 0;
        const bool was = kept_.contains(t);
        if (keep && !was) {
            kept_.insert(t);
            ctx.kept_added.push_back(t);
            ldel_edge_inc(norm(t.a, t.b));
            ldel_edge_inc(norm(t.b, t.c));
            ldel_edge_inc(norm(t.a, t.c));
        } else if (!keep && was) {
            kept_.erase(t);
            ctx.kept_removed.push_back(t);
            ldel_edge_dec(norm(t.a, t.b));
            ldel_edge_dec(norm(t.b, t.c));
            ldel_edge_dec(norm(t.a, t.c));
        }
    }
}

// ---- Stage 4b: Gabriel(ICDS) edges -----------------------------------

void DynamicSpanner::stage_gabriel(PatchContext& ctx) {
    // An edge's Gabriel status depends on its endpoints' positions and
    // common-ICDS-neighbor set — dirty exactly when an endpoint is in
    // the LDel dirty set: a moved or gained/lost witness marks both
    // endpoints (they are its current neighbors / adjacency-changed),
    // and moved or adjacency-changed endpoints mark themselves.
    for (const Pair& e : ctx.icds_removed) {
        if (gabriel_.erase(e) > 0) ldel_edge_dec(e);
    }

    std::vector<char> in_dirty(points_.size(), 0);
    for (const NodeId v : ctx.ldel_dirty) in_dirty[v] = 1;
    std::vector<Pair> dirty_edges;
    for (const NodeId u : ctx.ldel_dirty) {
        for (const NodeId v : backbone_.icds.neighbors(u)) {
            if (u < v || in_dirty[v] == 0) dirty_edges.push_back(norm(u, v));
        }
    }
    sort_unique_pairs(dirty_edges);

    std::vector<char> in_gabriel(dirty_edges.size(), 0);
    const auto body = [&](std::size_t i) {
        const auto [u, v] = dirty_edges[i];
        const auto nu = backbone_.icds.neighbors(u);
        const auto nv = backbone_.icds.neighbors(v);
        bool blocked = false;
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < nu.size() && b < nv.size() && !blocked) {
            if (nu[a] < nv[b]) {
                ++a;
            } else if (nu[a] > nv[b]) {
                ++b;
            } else {
                // Closed-disk witness rule, matching build_gabriel.
                if (geom::in_diametral_circle(points_[u], points_[v],
                                              points_[nu[a]]) >= 0) {
                    blocked = true;
                }
                ++a;
                ++b;
            }
        }
        in_gabriel[i] = blocked ? 0 : 1;
    };
    if (dirty_edges.size() >= kParallelThreshold) {
        engine_->pool().parallel_for(0, dirty_edges.size(), body);
    } else {
        for (std::size_t i = 0; i < dirty_edges.size(); ++i) body(i);
    }

    for (std::size_t i = 0; i < dirty_edges.size(); ++i) {
        const Pair e = dirty_edges[i];
        const bool now = in_gabriel[i] != 0;
        const bool was = gabriel_.contains(e);
        if (now && !was) {
            gabriel_.insert(e);
            ldel_edge_inc(e);
        } else if (!now && was) {
            gabriel_.erase(e);
            ldel_edge_dec(e);
        }
    }
}

// ---- Stage 5: assembly (primed graphs, triangle list) ----------------

void DynamicSpanner::stage_assemble(PatchContext& ctx) {
    // Dominatee-link deltas feed all three primed unions. A node's link
    // set equals its dominators_of list, so only dom_list_changed nodes
    // (old lists captured during the cascade) contribute deltas.
    for (const NodeId v : ctx.dom_list_changed) {
        const auto& old_list = ctx.old_dominators.at(v);
        const auto& new_list = backbone_.cluster.dominators_of[v];
        for (const NodeId d : old_list) {
            if (!std::binary_search(new_list.begin(), new_list.end(), d)) {
                link_dec(norm(v, d));
            }
        }
        for (const NodeId d : new_list) {
            if (!std::binary_search(old_list.begin(), old_list.end(), d)) {
                link_inc(norm(v, d));
            }
        }
    }
    // Triangle-list merge from the survivor deltas: both delta lists
    // come out of sorted scans, and a key can only transition once per
    // patch, so two linear passes replace the O(|kept|) set walk.
    if (!ctx.kept_added.empty() || !ctx.kept_removed.empty()) {
        std::sort(ctx.kept_added.begin(), ctx.kept_added.end());
        std::sort(ctx.kept_removed.begin(), ctx.kept_removed.end());
        std::vector<TriangleKey> surviving;
        surviving.reserve(backbone_.ldel_triangles.size());
        std::set_difference(backbone_.ldel_triangles.begin(),
                            backbone_.ldel_triangles.end(), ctx.kept_removed.begin(),
                            ctx.kept_removed.end(), std::back_inserter(surviving));
        std::vector<TriangleKey> merged;
        merged.reserve(surviving.size() + ctx.kept_added.size());
        std::merge(surviving.begin(), surviving.end(), ctx.kept_added.begin(),
                   ctx.kept_added.end(), std::back_inserter(merged));
        backbone_.ldel_triangles = std::move(merged);
    }
}

// ---- Edge-union plumbing ---------------------------------------------

void DynamicSpanner::cds_edge_inc(Pair e) {
    if (cds_refs_.inc(e)) {
        backbone_.cds.add_edge(e.first, e.second);
        if (cds_prime_refs_.inc(e)) backbone_.cds_prime.add_edge(e.first, e.second);
    }
}

void DynamicSpanner::cds_edge_dec(Pair e) {
    if (cds_refs_.dec(e)) {
        backbone_.cds.remove_edge(e.first, e.second);
        if (cds_prime_refs_.dec(e)) backbone_.cds_prime.remove_edge(e.first, e.second);
    }
}

void DynamicSpanner::ldel_edge_inc(Pair e) {
    if (ldel_icds_refs_.inc(e)) {
        backbone_.ldel_icds.add_edge(e.first, e.second);
        if (ldel_icds_prime_refs_.inc(e)) {
            backbone_.ldel_icds_prime.add_edge(e.first, e.second);
        }
    }
}

void DynamicSpanner::ldel_edge_dec(Pair e) {
    if (ldel_icds_refs_.dec(e)) {
        backbone_.ldel_icds.remove_edge(e.first, e.second);
        if (ldel_icds_prime_refs_.dec(e)) {
            backbone_.ldel_icds_prime.remove_edge(e.first, e.second);
        }
    }
}

void DynamicSpanner::link_inc(Pair e) {
    if (cds_prime_refs_.inc(e)) backbone_.cds_prime.add_edge(e.first, e.second);
    if (icds_prime_refs_.inc(e)) backbone_.icds_prime.add_edge(e.first, e.second);
    if (ldel_icds_prime_refs_.inc(e)) {
        backbone_.ldel_icds_prime.add_edge(e.first, e.second);
    }
}

void DynamicSpanner::link_dec(Pair e) {
    if (cds_prime_refs_.dec(e)) backbone_.cds_prime.remove_edge(e.first, e.second);
    if (icds_prime_refs_.dec(e)) backbone_.icds_prime.remove_edge(e.first, e.second);
    if (ldel_icds_prime_refs_.dec(e)) {
        backbone_.ldel_icds_prime.remove_edge(e.first, e.second);
    }
}

// ---- k-hop expansion over old ∪ new adjacency ------------------------

std::vector<graph::NodeId> DynamicSpanner::expand_hops(
    const GeometricGraph& g,
    const std::unordered_map<NodeId, std::vector<NodeId>>& removed_adj,
    const std::vector<NodeId>& seeds, int hops) const {
    std::vector<char> visited(g.node_count(), 0);
    std::vector<NodeId> frontier;
    std::vector<NodeId> result;
    for (const NodeId v : seeds) {
        if (visited[v] == 0) {
            visited[v] = 1;
            frontier.push_back(v);
            result.push_back(v);
        }
    }
    std::vector<NodeId> next;
    for (int h = 0; h < hops && !frontier.empty(); ++h) {
        next.clear();
        const auto visit = [&](NodeId u) {
            if (visited[u] == 0) {
                visited[u] = 1;
                next.push_back(u);
                result.push_back(u);
            }
        };
        for (const NodeId v : frontier) {
            for (const NodeId u : g.neighbors(v)) visit(u);
            const auto it = removed_adj.find(v);
            if (it != removed_adj.end()) {
                for (const NodeId u : it->second) visit(u);
            }
        }
        std::swap(frontier, next);
    }
    std::sort(result.begin(), result.end());
    return result;
}

}  // namespace geospanner::dynamic
