// Mutable spatial hash grid for dynamic topologies.
//
// Same cell geometry and hash as proximity::CompactCellGrid (square
// cells of side `cell_side`, ascending node ids per cell), but stored
// as a bucket map — updates need per-cell insertion and removal, which
// the static CSR layout cannot offer — plus O(1) amortized point
// relocation: moving a node re-buckets it only when it crosses a cell
// boundary. After any update sequence the grid equals bucketing the
// current positions from scratch — the delta enumeration of the
// incremental engine and the from-scratch UDG builder therefore see
// identical candidate sets (tests/test_dynamic.cpp pins the equality).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "proximity/cell_grid.h"

namespace geospanner::dynamic {

/// Cell → ascending node ids; the mutable counterpart of the CSR grid.
using CellBuckets = std::unordered_map<proximity::CellCoord,
                                       std::vector<graph::NodeId>, proximity::CellHash>;

class DynamicCellGrid {
  public:
    DynamicCellGrid() = default;

    DynamicCellGrid(const std::vector<geom::Point>& points, double cell_side)
        : cell_side_(cell_side) {
        grid_.reserve(points.size());
        for (graph::NodeId v = 0; v < points.size(); ++v) {
            grid_[proximity::cell_of(points[v], cell_side)].push_back(v);
        }
    }

    [[nodiscard]] double cell_side() const noexcept { return cell_side_; }
    [[nodiscard]] const CellBuckets& cells() const noexcept { return grid_; }

    void insert(graph::NodeId v, geom::Point p) {
        auto& list = grid_[proximity::cell_of(p, cell_side_)];
        list.insert(std::lower_bound(list.begin(), list.end(), v), v);
    }

    void remove(graph::NodeId v, geom::Point p) {
        const auto cell = proximity::cell_of(p, cell_side_);
        const auto it = grid_.find(cell);
        if (it == grid_.end()) return;
        auto& list = it->second;
        const auto pos = std::lower_bound(list.begin(), list.end(), v);
        if (pos != list.end() && *pos == v) list.erase(pos);
        if (list.empty()) grid_.erase(it);
    }

    /// Moves v from `from` to `to`; no re-bucketing when both positions
    /// share a cell (the common case for small displacements).
    void relocate(graph::NodeId v, geom::Point from, geom::Point to) {
        if (proximity::cell_of(from, cell_side_) == proximity::cell_of(to, cell_side_)) {
            return;
        }
        remove(v, from);
        insert(v, to);
    }

    /// Appends every u != v with |pu - pv| <= radius to `out`, then
    /// sorts it — the full (not id-above) neighborhood of v, used to
    /// diff a node's incident UDG edge set after it moved. Requires
    /// radius <= cell_side.
    void collect_neighbors(const std::vector<geom::Point>& points, double radius,
                           graph::NodeId v, std::vector<graph::NodeId>& out) const {
        const double r2 = radius * radius;
        const auto [cx, cy] = proximity::cell_of(points[v], cell_side_);
        for (long long dx = -1; dx <= 1; ++dx) {
            for (long long dy = -1; dy <= 1; ++dy) {
                const auto it = grid_.find({cx + dx, cy + dy});
                if (it == grid_.end()) continue;
                for (const graph::NodeId u : it->second) {
                    if (u == v) continue;
                    if (geom::squared_distance(points[u], points[v]) <= r2) {
                        out.push_back(u);
                    }
                }
            }
        }
        std::sort(out.begin(), out.end());
    }

  private:
    CellBuckets grid_;
    double cell_side_ = 1.0;
};

}  // namespace geospanner::dynamic
