// Mutable spatial hash grid for dynamic topologies.
//
// Same cell geometry and hash as proximity::build_cell_grid (square
// cells of side `cell_side`, ascending node ids per cell), plus O(1)
// amortized point relocation: moving a node re-buckets it only when it
// crosses a cell boundary. After any update sequence the grid equals
// build_cell_grid over the current positions — the delta enumeration of
// the incremental engine and the from-scratch UDG builder therefore see
// identical candidate sets (tests/test_dynamic.cpp pins the equality).
#pragma once

#include <algorithm>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "proximity/cell_grid.h"

namespace geospanner::dynamic {

class DynamicCellGrid {
  public:
    DynamicCellGrid() = default;

    DynamicCellGrid(const std::vector<geom::Point>& points, double cell_side)
        : grid_(proximity::build_cell_grid(points, cell_side)), cell_side_(cell_side) {}

    [[nodiscard]] double cell_side() const noexcept { return cell_side_; }
    [[nodiscard]] const proximity::CellGrid& cells() const noexcept { return grid_; }

    void insert(graph::NodeId v, geom::Point p) {
        auto& list = grid_[proximity::cell_of(p, cell_side_)];
        list.insert(std::lower_bound(list.begin(), list.end(), v), v);
    }

    void remove(graph::NodeId v, geom::Point p) {
        const auto cell = proximity::cell_of(p, cell_side_);
        const auto it = grid_.find(cell);
        if (it == grid_.end()) return;
        auto& list = it->second;
        const auto pos = std::lower_bound(list.begin(), list.end(), v);
        if (pos != list.end() && *pos == v) list.erase(pos);
        if (list.empty()) grid_.erase(it);
    }

    /// Moves v from `from` to `to`; no re-bucketing when both positions
    /// share a cell (the common case for small displacements).
    void relocate(graph::NodeId v, geom::Point from, geom::Point to) {
        if (proximity::cell_of(from, cell_side_) == proximity::cell_of(to, cell_side_)) {
            return;
        }
        remove(v, from);
        insert(v, to);
    }

    /// Appends every u != v with |pu - pv| <= radius to `out`, then
    /// sorts it — the full (not id-above) neighborhood of v, used to
    /// diff a node's incident UDG edge set after it moved. Requires
    /// radius <= cell_side.
    void collect_neighbors(const std::vector<geom::Point>& points, double radius,
                           graph::NodeId v, std::vector<graph::NodeId>& out) const {
        const double r2 = radius * radius;
        const auto [cx, cy] = proximity::cell_of(points[v], cell_side_);
        for (long long dx = -1; dx <= 1; ++dx) {
            for (long long dy = -1; dy <= 1; ++dy) {
                const auto it = grid_.find({cx + dx, cy + dy});
                if (it == grid_.end()) continue;
                for (const graph::NodeId u : it->second) {
                    if (u == v) continue;
                    if (geom::squared_distance(points[u], points[v]) <= r2) {
                        out.push_back(u);
                    }
                }
            }
        }
        std::sort(out.begin(), out.end());
    }

  private:
    proximity::CellGrid grid_;
    double cell_side_ = 1.0;
};

}  // namespace geospanner::dynamic
