#include "delaunay/delaunay.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "geom/predicates.h"

namespace geospanner::delaunay {

namespace {

using geom::Point;

constexpr VertexId kGhost = static_cast<VertexId>(-1);

/// Internal triangle record. Real triangles hold three point indices in
/// counter-clockwise order. Ghost triangles hold (v, u, kGhost) where
/// (u, v) is a hull edge in counter-clockwise hull order — i.e. the
/// stored directed edge (v, u) has the exterior on its left, matching
/// the interior-on-the-left convention of real triangles.
struct Tri {
    std::array<VertexId, 3> v{};
    bool alive = true;
};

/// Key for a directed edge (a, b). Every directed edge of the closed
/// triangulated surface (ghosts included) belongs to exactly one alive
/// triangle, which makes the map double as the adjacency structure.
constexpr std::uint64_t edge_key(VertexId a, VertexId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Open-addressed edge→triangle map (linear probing, power-of-two
/// capacity, tombstone deletion). The per-insert cost of the generic
/// unordered_map — node allocation, pointer-chasing buckets — dominated
/// small triangulations; this table is two flat arrays that persist
/// across Workspace reuse. Key 2^64-1 would need both endpoints to be
/// the ghost vertex and key 2^64-2 a ghost→(2^32-2) edge; neither occurs
/// for any realistic vertex count, so both serve as control values.
class FlatEdgeMap {
  public:
    void reset(std::size_t expected_keys) {
        std::size_t cap = 16;
        while (cap < 2 * expected_keys) cap *= 2;
        if (cap != keys_.size()) {
            keys_.assign(cap, kEmpty);
            vals_.resize(cap);
        } else {
            std::fill(keys_.begin(), keys_.end(), kEmpty);
        }
        size_ = 0;
        used_ = 0;
    }

    void insert(std::uint64_t key, std::uint32_t value) {
        if (10 * (used_ + 1) >= 7 * keys_.size()) grow();
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        std::size_t first_free = keys_.size();
        while (true) {
            const std::uint64_t k = keys_[i];
            if (k == key) {
                vals_[i] = value;
                return;
            }
            if (k == kTomb && first_free == keys_.size()) first_free = i;
            if (k == kEmpty) {
                if (first_free == keys_.size()) {
                    first_free = i;
                    ++used_;
                }
                keys_[first_free] = key;
                vals_[first_free] = value;
                ++size_;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Value for key, or kNotFound.
    [[nodiscard]] std::uint32_t find(std::uint64_t key) const {
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (true) {
            const std::uint64_t k = keys_[i];
            if (k == key) return vals_[i];
            if (k == kEmpty) return kNotFound;
            i = (i + 1) & mask;
        }
    }

    void erase(std::uint64_t key) {
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (true) {
            const std::uint64_t k = keys_[i];
            if (k == key) {
                keys_[i] = kTomb;
                --size_;
                return;
            }
            if (k == kEmpty) return;
            i = (i + 1) & mask;
        }
    }

    static constexpr std::uint32_t kNotFound = static_cast<std::uint32_t>(-1);

  private:
    static constexpr std::uint64_t kEmpty = ~0ULL;
    static constexpr std::uint64_t kTomb = ~0ULL - 1;

    static std::size_t hash(std::uint64_t z) noexcept {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }

    void grow() {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<std::uint32_t> old_vals = std::move(vals_);
        std::size_t cap = 16;
        while (cap < 4 * (size_ + 1)) cap *= 2;
        keys_.assign(cap, kEmpty);
        vals_.resize(cap);
        size_ = 0;
        used_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] != kEmpty && old_keys[i] != kTomb) {
                insert(old_keys[i], old_vals[i]);
            }
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::size_t size_ = 0;  ///< live keys
    std::size_t used_ = 0;  ///< occupied slots incl. tombstones
};

/// Interleaves the low 16 bits of x and y (Morton / Z-order code).
std::uint32_t morton16(std::uint16_t x, std::uint16_t y) {
    const auto spread = [](std::uint32_t v) {
        v &= 0xFFFF;
        v = (v | (v << 8)) & 0x00FF00FF;
        v = (v | (v << 4)) & 0x0F0F0F0F;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        return v;
    };
    return spread(x) | (spread(y) << 1);
}

/// Orders points lexicographically; used for the degenerate all-collinear
/// path and for duplicate detection.
struct PointLess {
    bool operator()(Point a, Point b) const {
        return a.x < b.x || (a.x == b.x && a.y < b.y);
    }
};

}  // namespace

struct Workspace::Impl {
    const std::vector<Point>* pts = nullptr;
    std::vector<Tri> tris;
    FlatEdgeMap edge_tri;
    std::uint32_t hint = 0;  // Recently created triangle: walk start.

    // Per-insert cavity scratch (cleared, never shrunk, per insertion).
    std::vector<std::uint32_t> bad;
    std::vector<std::uint32_t> stack;
    std::vector<std::uint32_t> seen;
    std::vector<std::pair<VertexId, VertexId>> boundary;

    // Dedup / Morton-order scratch.
    std::vector<VertexId> active;
    std::vector<VertexId> by_point;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> codes;  // (code, rank)

    [[nodiscard]] bool is_ghost(const Tri& t) const { return t.v[2] == kGhost; }

    void register_tri(std::uint32_t id) {
        const auto& v = tris[id].v;
        edge_tri.insert(edge_key(v[0], v[1]), id);
        edge_tri.insert(edge_key(v[1], v[2]), id);
        edge_tri.insert(edge_key(v[2], v[0]), id);
    }

    void unregister_tri(std::uint32_t id) {
        const auto& v = tris[id].v;
        edge_tri.erase(edge_key(v[0], v[1]));
        edge_tri.erase(edge_key(v[1], v[2]));
        edge_tri.erase(edge_key(v[2], v[0]));
    }

    [[nodiscard]] std::uint32_t neighbor_across(VertexId a, VertexId b) const {
        const std::uint32_t id = edge_tri.find(edge_key(b, a));
        assert(id != FlatEdgeMap::kNotFound &&
               "the surface is closed: every edge has two sides");
        return id;
    }

    /// Is p inside the (open) circumdisk of triangle t? For ghosts the
    /// circumdisk degenerates to the open half-plane left of the stored
    /// real edge, plus the open edge segment itself (Shewchuk's rule;
    /// this makes on-hull-edge and collinear-extension insertions
    /// produce no degenerate triangles).
    [[nodiscard]] bool in_circumdisk(const Tri& t, Point p) const {
        const auto& points = *pts;
        if (!is_ghost(t)) {
            return geom::incircle_ccw(points[t.v[0]], points[t.v[1]], points[t.v[2]],
                                      p) > 0;
        }
        const Point a = points[t.v[0]];
        const Point b = points[t.v[1]];
        const int o = geom::orient_sign(a, b, p);
        if (o > 0) return true;   // Strictly outside the hull across this edge.
        if (o < 0) return false;  // Strictly on the triangulated side.
        // Collinear: inside iff strictly between a and b.
        const double t01 = dot(p - a, b - a);
        return t01 > 0.0 && t01 < squared_norm(b - a);
    }

    /// Finds some triangle whose circumdisk contains p, by a visibility
    /// walk from the hint (guaranteed to terminate on a Delaunay
    /// triangulation with exact predicates; a full-scan fallback guards
    /// the bound regardless).
    [[nodiscard]] std::uint32_t locate_bad(Point p) const {
        const auto& points = *pts;
        std::uint32_t cur = hint;
        if (!tris[cur].alive) cur = 0;
        while (!tris[cur].alive) ++cur;

        const std::size_t bound = 4 * tris.size() + 16;
        for (std::size_t step = 0; step < bound; ++step) {
            const Tri& t = tris[cur];
            if (!is_ghost(t)) {
                // Leave through any edge that has p strictly outside.
                std::uint32_t next = cur;
                for (int e = 0; e < 3; ++e) {
                    const VertexId a = t.v[e];
                    const VertexId b = t.v[(e + 1) % 3];
                    if (geom::orient_sign(points[a], points[b], p) < 0) {
                        next = neighbor_across(a, b);
                        break;
                    }
                }
                if (next == cur) return cur;  // p in closed triangle => bad.
                cur = next;
                continue;
            }
            // Ghost triangle (v, u, kGhost) over hull edge (u, v).
            if (in_circumdisk(t, p)) return cur;
            const VertexId gv = t.v[0];
            const VertexId gu = t.v[1];
            const int o = geom::orient_sign(points[gv], points[gu], p);
            if (o < 0) {
                // p is on the interior side: re-enter the real mesh.
                cur = neighbor_across(gv, gu);
            } else {
                // Collinear with the hull edge but outside the segment:
                // slide along the ghost ring toward p.
                assert(o == 0);
                if (dot(p - points[gv], points[gu] - points[gv]) > 0.0) {
                    cur = neighbor_across(gu, kGhost);  // Beyond u.
                } else {
                    cur = neighbor_across(kGhost, gv);  // Beyond v.
                }
            }
        }
        // Defensive fallback: exhaustive scan (never expected).
        for (std::uint32_t i = 0; i < tris.size(); ++i) {
            if (tris[i].alive && in_circumdisk(tris[i], p)) return i;
        }
        assert(false && "point in no circumdisk");
        return 0;
    }

    /// Inserts point index pi (not coincident with an existing vertex):
    /// Bowyer–Watson with a BFS-grown cavity from one located bad
    /// triangle.
    void insert(VertexId pi) {
        const Point p = (*pts)[pi];

        // Cavities are small (expected O(1) triangles), so plain vectors
        // with linear membership tests beat tree/hash sets here.
        bad.clear();
        stack.clear();
        seen.clear();
        stack.push_back(locate_bad(p));
        seen.push_back(stack[0]);
        const auto contains = [](const std::vector<std::uint32_t>& xs, std::uint32_t x) {
            return std::find(xs.begin(), xs.end(), x) != xs.end();
        };
        while (!stack.empty()) {
            const std::uint32_t id = stack.back();
            stack.pop_back();
            bad.push_back(id);
            const auto& v = tris[id].v;
            for (int e = 0; e < 3; ++e) {
                const std::uint32_t nb = neighbor_across(v[e], v[(e + 1) % 3]);
                if (contains(seen, nb)) continue;
                seen.push_back(nb);
                if (in_circumdisk(tris[nb], p)) stack.push_back(nb);
            }
        }

        // Cavity boundary: directed edges of bad triangles whose outer
        // neighbor is good. Gather before killing so adjacency is intact.
        boundary.clear();
        for (const std::uint32_t id : bad) {
            const auto& v = tris[id].v;
            for (int e = 0; e < 3; ++e) {
                const VertexId a = v[e];
                const VertexId b = v[(e + 1) % 3];
                if (!contains(bad, neighbor_across(a, b))) boundary.push_back({a, b});
            }
        }
        for (const std::uint32_t id : bad) {
            unregister_tri(id);
            tris[id].alive = false;
        }

        for (const auto& [a, b] : boundary) {
            // Fan: new triangle (a, b, p), rotated so any ghost vertex
            // lands in slot 2 (ghost canonical form).
            Tri nt;
            if (a == kGhost) {
                nt.v = {b, pi, kGhost};
            } else if (b == kGhost) {
                nt.v = {pi, a, kGhost};
            } else {
                nt.v = {a, b, pi};
            }
            const auto id = static_cast<std::uint32_t>(tris.size());
            tris.push_back(nt);
            register_tri(id);
            hint = id;
        }
    }

    /// Fills `active` with the lowest-index representative of every
    /// distinct point, ascending — identical to keeping first
    /// occurrences in index order.
    void dedup(const std::vector<Point>& points) {
        const auto n = static_cast<VertexId>(points.size());
        by_point.resize(n);
        for (VertexId i = 0; i < n; ++i) by_point[i] = i;
        std::sort(by_point.begin(), by_point.end(), [&](VertexId a, VertexId b) {
            const PointLess less;
            if (less(points[a], points[b])) return true;
            if (less(points[b], points[a])) return false;
            return a < b;
        });
        active.clear();
        for (std::size_t i = 0; i < by_point.size(); ++i) {
            if (i > 0 && points[by_point[i]] == points[by_point[i - 1]]) continue;
            active.push_back(by_point[i]);
        }
        std::sort(active.begin(), active.end());
    }

    /// Reorders `active` along a Z-order curve over the point bounding
    /// box: makes consecutive insertions spatially local, so the
    /// visibility walk from the previous insertion is short (expected
    /// O(1) triangles). Codes are precomputed once; rank breaks ties,
    /// which matches a stable sort of the incoming (ascending-id) order.
    void morton_sort(const std::vector<Point>& points) {
        if (active.size() < 3) return;
        double min_x = points[active[0]].x, max_x = min_x;
        double min_y = points[active[0]].y, max_y = min_y;
        for (const VertexId i : active) {
            min_x = std::min(min_x, points[i].x);
            max_x = std::max(max_x, points[i].x);
            min_y = std::min(min_y, points[i].y);
            max_y = std::max(max_y, points[i].y);
        }
        const double sx = max_x > min_x ? 65535.0 / (max_x - min_x) : 0.0;
        const double sy = max_y > min_y ? 65535.0 / (max_y - min_y) : 0.0;
        codes.resize(active.size());
        for (std::uint32_t r = 0; r < active.size(); ++r) {
            const Point p = points[active[r]];
            codes[r] = {morton16(static_cast<std::uint16_t>((p.x - min_x) * sx),
                                 static_cast<std::uint16_t>((p.y - min_y) * sy)),
                        r};
        }
        std::sort(codes.begin(), codes.end());
        by_point.resize(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            by_point[i] = active[codes[i].second];
        }
        active.swap(by_point);
    }

    /// Core Bowyer–Watson run over the deduplicated point set. Returns
    /// false (leaving no triangles) when fewer than three distinct
    /// points exist or all are collinear; `active` is valid either way.
    bool run(const std::vector<Point>& points) {
        pts = &points;
        tris.clear();
        hint = 0;

        dedup(points);
        if (active.size() < 2) return false;

        morton_sort(points);

        // Find an initial non-collinear triple (i0, i1, ik).
        const VertexId i0 = active[0];
        const VertexId i1 = active[1];
        std::size_t k = 2;
        while (k < active.size() &&
               geom::orient_sign(points[i0], points[i1], points[active[k]]) == 0) {
            ++k;
        }
        if (k == active.size()) return false;  // All collinear.

        const VertexId i2 = active[k];
        // Four seed triangles plus ~2 per insertion; sizing the map for
        // the final surface avoids mid-run rehashes.
        edge_tri.reset(3 * (2 * active.size() + 4));

        // Seed: one real triangle (CCW) plus three ghosts covering the plane.
        VertexId a = i0;
        VertexId b = i1;
        const VertexId c = i2;
        if (geom::orient_sign(points[a], points[b], points[c]) < 0) std::swap(a, b);
        tris.push_back({{a, b, c}, true});
        tris.push_back({{b, a, kGhost}, true});  // Hull edge (a, b), reversed.
        tris.push_back({{c, b, kGhost}, true});  // Hull edge (b, c), reversed.
        tris.push_back({{a, c, kGhost}, true});  // Hull edge (c, a), reversed.
        for (std::uint32_t id = 0; id < 4; ++id) register_tri(id);

        for (std::size_t j = 2; j < active.size(); ++j) {
            if (active[j] == i2) continue;  // Already in the seed triangle.
            insert(active[j]);
        }
        return true;
    }
};

Workspace::Workspace() : impl_(std::make_unique<Impl>()) {}
Workspace::~Workspace() = default;
Workspace::Workspace(Workspace&&) noexcept = default;
Workspace& Workspace::operator=(Workspace&&) noexcept = default;

bool triangulate(const std::vector<geom::Point>& pts, Workspace& ws,
                 std::vector<Triangle>& out) {
    Workspace::Impl& impl = *ws.impl_;
    if (!impl.run(pts)) return false;
    for (const auto& t : impl.tris) {
        if (!t.alive || t.v[2] == kGhost) continue;
        std::array<VertexId, 3> v = t.v;
        while (v[0] != std::min({v[0], v[1], v[2]})) {
            std::rotate(v.begin(), v.begin() + 1, v.end());
        }
        out.push_back({v[0], v[1], v[2]});
    }
    return true;
}

DelaunayTriangulation::DelaunayTriangulation(std::vector<geom::Point> points)
    : points_(std::move(points)) {
    Workspace ws;
    if (!triangulate(points_, ws, triangles_)) {
        degenerate_ = true;
        const std::vector<VertexId>& active = ws.impl_->active;
        if (active.size() < 2) return;
        // All points collinear: the limit Delaunay graph is the path of
        // consecutive points along the line.
        std::vector<VertexId> order = active;
        std::sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
            return PointLess{}(points_[a], points_[b]);
        });
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const VertexId u = std::min(order[i], order[i + 1]);
            const VertexId v = std::max(order[i], order[i + 1]);
            edges_.emplace_back(u, v);
        }
        std::sort(edges_.begin(), edges_.end());
        return;
    }

    std::sort(triangles_.begin(), triangles_.end());
    edges_.reserve(3 * triangles_.size());
    for (const auto& t : triangles_) {
        edges_.emplace_back(t.a, std::min(t.b, t.c));
        edges_.emplace_back(t.a, std::max(t.b, t.c));
        edges_.emplace_back(std::min(t.b, t.c), std::max(t.b, t.c));
    }
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

}  // namespace geospanner::delaunay
