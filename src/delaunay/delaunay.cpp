#include "delaunay/delaunay.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "geom/predicates.h"

namespace geospanner::delaunay {

namespace {

using geom::Point;

constexpr VertexId kGhost = static_cast<VertexId>(-1);

/// Internal triangle record. Real triangles hold three point indices in
/// counter-clockwise order. Ghost triangles hold (v, u, kGhost) where
/// (u, v) is a hull edge in counter-clockwise hull order — i.e. the
/// stored directed edge (v, u) has the exterior on its left, matching
/// the interior-on-the-left convention of real triangles.
struct Tri {
    std::array<VertexId, 3> v{};
    bool alive = true;
};

/// Key for a directed edge (a, b). Every directed edge of the closed
/// triangulated surface (ghosts included) belongs to exactly one alive
/// triangle, which makes the map double as the adjacency structure.
constexpr std::uint64_t edge_key(VertexId a, VertexId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct Builder {
    const std::vector<Point>& pts;
    std::vector<Tri> tris;
    std::unordered_map<std::uint64_t, std::uint32_t> edge_tri;
    std::uint32_t hint = 0;  // Recently created triangle: walk start.

    explicit Builder(const std::vector<Point>& points) : pts(points) {}

    [[nodiscard]] bool is_ghost(const Tri& t) const { return t.v[2] == kGhost; }

    void register_tri(std::uint32_t id) {
        const auto& v = tris[id].v;
        edge_tri[edge_key(v[0], v[1])] = id;
        edge_tri[edge_key(v[1], v[2])] = id;
        edge_tri[edge_key(v[2], v[0])] = id;
    }

    void unregister_tri(std::uint32_t id) {
        const auto& v = tris[id].v;
        edge_tri.erase(edge_key(v[0], v[1]));
        edge_tri.erase(edge_key(v[1], v[2]));
        edge_tri.erase(edge_key(v[2], v[0]));
    }

    [[nodiscard]] std::uint32_t neighbor_across(VertexId a, VertexId b) const {
        const auto it = edge_tri.find(edge_key(b, a));
        assert(it != edge_tri.end() && "the surface is closed: every edge has two sides");
        return it->second;
    }

    /// Is p inside the (open) circumdisk of triangle t? For ghosts the
    /// circumdisk degenerates to the open half-plane left of the stored
    /// real edge, plus the open edge segment itself (Shewchuk's rule;
    /// this makes on-hull-edge and collinear-extension insertions
    /// produce no degenerate triangles).
    [[nodiscard]] bool in_circumdisk(const Tri& t, Point p) const {
        if (!is_ghost(t)) {
            return geom::incircle_ccw(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]], p) > 0;
        }
        const Point a = pts[t.v[0]];
        const Point b = pts[t.v[1]];
        const int o = geom::orient_sign(a, b, p);
        if (o > 0) return true;   // Strictly outside the hull across this edge.
        if (o < 0) return false;  // Strictly on the triangulated side.
        // Collinear: inside iff strictly between a and b.
        const double t01 = dot(p - a, b - a);
        return t01 > 0.0 && t01 < squared_norm(b - a);
    }

    /// Finds some triangle whose circumdisk contains p, by a visibility
    /// walk from the hint (guaranteed to terminate on a Delaunay
    /// triangulation with exact predicates; a full-scan fallback guards
    /// the bound regardless).
    [[nodiscard]] std::uint32_t locate_bad(Point p) const {
        std::uint32_t cur = hint;
        if (!tris[cur].alive) cur = 0;
        while (!tris[cur].alive) ++cur;

        const std::size_t bound = 4 * tris.size() + 16;
        for (std::size_t step = 0; step < bound; ++step) {
            const Tri& t = tris[cur];
            if (!is_ghost(t)) {
                // Leave through any edge that has p strictly outside.
                std::uint32_t next = cur;
                for (int e = 0; e < 3; ++e) {
                    const VertexId a = t.v[e];
                    const VertexId b = t.v[(e + 1) % 3];
                    if (geom::orient_sign(pts[a], pts[b], p) < 0) {
                        next = neighbor_across(a, b);
                        break;
                    }
                }
                if (next == cur) return cur;  // p in closed triangle => bad.
                cur = next;
                continue;
            }
            // Ghost triangle (v, u, kGhost) over hull edge (u, v).
            if (in_circumdisk(t, p)) return cur;
            const VertexId gv = t.v[0];
            const VertexId gu = t.v[1];
            const int o = geom::orient_sign(pts[gv], pts[gu], p);
            if (o < 0) {
                // p is on the interior side: re-enter the real mesh.
                cur = neighbor_across(gv, gu);
            } else {
                // Collinear with the hull edge but outside the segment:
                // slide along the ghost ring toward p.
                assert(o == 0);
                if (dot(p - pts[gv], pts[gu] - pts[gv]) > 0.0) {
                    cur = neighbor_across(gu, kGhost);  // Beyond u.
                } else {
                    cur = neighbor_across(kGhost, gv);  // Beyond v.
                }
            }
        }
        // Defensive fallback: exhaustive scan (never expected).
        for (std::uint32_t i = 0; i < tris.size(); ++i) {
            if (tris[i].alive && in_circumdisk(tris[i], p)) return i;
        }
        assert(false && "point in no circumdisk");
        return 0;
    }

    /// Inserts point index pi (not coincident with an existing vertex):
    /// Bowyer–Watson with a BFS-grown cavity from one located bad
    /// triangle.
    void insert(VertexId pi) {
        const Point p = pts[pi];

        // Cavities are small (expected O(1) triangles), so plain vectors
        // with linear membership tests beat tree/hash sets here.
        std::vector<std::uint32_t> bad;
        std::vector<std::uint32_t> stack{locate_bad(p)};
        std::vector<std::uint32_t> seen{stack[0]};
        const auto contains = [](const std::vector<std::uint32_t>& xs, std::uint32_t x) {
            return std::find(xs.begin(), xs.end(), x) != xs.end();
        };
        while (!stack.empty()) {
            const std::uint32_t id = stack.back();
            stack.pop_back();
            bad.push_back(id);
            const auto& v = tris[id].v;
            for (int e = 0; e < 3; ++e) {
                const std::uint32_t nb = neighbor_across(v[e], v[(e + 1) % 3]);
                if (contains(seen, nb)) continue;
                seen.push_back(nb);
                if (in_circumdisk(tris[nb], p)) stack.push_back(nb);
            }
        }

        // Cavity boundary: directed edges of bad triangles whose outer
        // neighbor is good. Gather before killing so adjacency is intact.
        std::vector<std::pair<VertexId, VertexId>> boundary;
        for (const std::uint32_t id : bad) {
            const auto& v = tris[id].v;
            for (int e = 0; e < 3; ++e) {
                const VertexId a = v[e];
                const VertexId b = v[(e + 1) % 3];
                if (!contains(bad, neighbor_across(a, b))) boundary.push_back({a, b});
            }
        }
        for (const std::uint32_t id : bad) {
            unregister_tri(id);
            tris[id].alive = false;
        }

        for (const auto& [a, b] : boundary) {
            // Fan: new triangle (a, b, p), rotated so any ghost vertex
            // lands in slot 2 (ghost canonical form).
            Tri nt;
            if (a == kGhost) {
                nt.v = {b, pi, kGhost};
            } else if (b == kGhost) {
                nt.v = {pi, a, kGhost};
            } else {
                nt.v = {a, b, pi};
            }
            const auto id = static_cast<std::uint32_t>(tris.size());
            tris.push_back(nt);
            register_tri(id);
            hint = id;
        }
    }
};

/// Comparator ordering points lexicographically; used for the degenerate
/// all-collinear path and for duplicate detection.
struct PointLess {
    bool operator()(Point a, Point b) const {
        return a.x < b.x || (a.x == b.x && a.y < b.y);
    }
};

/// Interleaves the low 16 bits of x and y (Morton / Z-order code).
std::uint32_t morton16(std::uint16_t x, std::uint16_t y) {
    const auto spread = [](std::uint32_t v) {
        v &= 0xFFFF;
        v = (v | (v << 8)) & 0x00FF00FF;
        v = (v | (v << 4)) & 0x0F0F0F0F;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        return v;
    };
    return spread(x) | (spread(y) << 1);
}

/// Sorts ids along a Z-order curve over the point bounding box: makes
/// consecutive insertions spatially local, so the visibility walk from
/// the previous insertion is short (expected O(1) triangles).
void morton_sort(const std::vector<Point>& pts, std::vector<VertexId>& ids) {
    if (ids.size() < 3) return;
    double min_x = pts[ids[0]].x, max_x = min_x;
    double min_y = pts[ids[0]].y, max_y = min_y;
    for (const VertexId i : ids) {
        min_x = std::min(min_x, pts[i].x);
        max_x = std::max(max_x, pts[i].x);
        min_y = std::min(min_y, pts[i].y);
        max_y = std::max(max_y, pts[i].y);
    }
    const double sx = max_x > min_x ? 65535.0 / (max_x - min_x) : 0.0;
    const double sy = max_y > min_y ? 65535.0 / (max_y - min_y) : 0.0;
    std::stable_sort(ids.begin(), ids.end(), [&](VertexId a, VertexId b) {
        const auto code = [&](VertexId i) {
            return morton16(static_cast<std::uint16_t>((pts[i].x - min_x) * sx),
                            static_cast<std::uint16_t>((pts[i].y - min_y) * sy));
        };
        return code(a) < code(b);
    });
}

}  // namespace

DelaunayTriangulation::DelaunayTriangulation(std::vector<geom::Point> points)
    : points_(std::move(points)) {
    const auto n = static_cast<VertexId>(points_.size());

    // Deduplicate: only first occurrences participate.
    std::map<Point, VertexId, PointLess> first_index;
    std::vector<VertexId> active;
    active.reserve(n);
    for (VertexId i = 0; i < n; ++i) {
        if (first_index.try_emplace(points_[i], i).second) active.push_back(i);
    }

    if (active.size() < 2) {
        degenerate_ = true;
        return;
    }

    morton_sort(points_, active);

    // Find an initial non-collinear triple (i0, i1, ik).
    const VertexId i0 = active[0];
    const VertexId i1 = active[1];
    std::size_t k = 2;
    while (k < active.size() &&
           geom::orient_sign(points_[i0], points_[i1], points_[active[k]]) == 0) {
        ++k;
    }

    if (k == active.size()) {
        // All points collinear: the limit Delaunay graph is the path of
        // consecutive points along the line.
        degenerate_ = true;
        std::vector<VertexId> order = active;
        std::sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
            return PointLess{}(points_[a], points_[b]);
        });
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const VertexId u = std::min(order[i], order[i + 1]);
            const VertexId v = std::max(order[i], order[i + 1]);
            edges_.emplace_back(u, v);
        }
        std::sort(edges_.begin(), edges_.end());
        return;
    }

    const VertexId i2 = active[k];
    Builder builder(points_);

    // Seed: one real triangle (CCW) plus three ghosts covering the plane.
    VertexId a = i0;
    VertexId b = i1;
    const VertexId c = i2;
    if (geom::orient_sign(points_[a], points_[b], points_[c]) < 0) std::swap(a, b);
    builder.tris.push_back({{a, b, c}, true});
    builder.tris.push_back({{b, a, kGhost}, true});  // Hull edge (a, b), reversed.
    builder.tris.push_back({{c, b, kGhost}, true});  // Hull edge (b, c), reversed.
    builder.tris.push_back({{a, c, kGhost}, true});  // Hull edge (c, a), reversed.
    for (std::uint32_t id = 0; id < 4; ++id) builder.register_tri(id);

    for (std::size_t j = 2; j < active.size(); ++j) {
        if (active[j] == i2) continue;  // Already in the seed triangle.
        builder.insert(active[j]);
    }

    // Harvest real triangles (canonical rotation) and edges.
    std::set<std::pair<VertexId, VertexId>> edge_set;
    for (const auto& t : builder.tris) {
        if (!t.alive || t.v[2] == kGhost) continue;
        std::array<VertexId, 3> v = t.v;
        while (v[0] != std::min({v[0], v[1], v[2]})) {
            std::rotate(v.begin(), v.begin() + 1, v.end());
        }
        triangles_.push_back({v[0], v[1], v[2]});
        edge_set.insert({std::min(v[0], v[1]), std::max(v[0], v[1])});
        edge_set.insert({std::min(v[1], v[2]), std::max(v[1], v[2])});
        edge_set.insert({std::min(v[0], v[2]), std::max(v[0], v[2])});
    }
    std::sort(triangles_.begin(), triangles_.end());
    edges_.assign(edge_set.begin(), edge_set.end());
}

}  // namespace geospanner::delaunay
