// Delaunay triangulation of a planar point set.
//
// Used in two roles:
//  * the localized Delaunay protocol has every node compute the Delaunay
//    triangulation of its 1-hop neighborhood (Algorithm 2, step 2);
//  * the global "Del ∩ UDG" baseline of the paper's Table I.
//
// Implementation: incremental Bowyer–Watson insertion. Instead of an
// enclosing super-triangle with large coordinates (which perturbs
// circumcircle tests near the hull), the exterior is covered by *ghost
// triangles* sharing a symbolic vertex at infinity; their "circumdisk"
// test degenerates to an exact half-plane test. All decisions go through
// the exact predicates in geom/predicates.h, so the triangulation is
// correct for any input, including cocircular quadruples and points on
// hull edges. Fully collinear inputs yield the degenerate Delaunay graph
// (the path of consecutive points along the line) and no triangles.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace geospanner::delaunay {

using VertexId = std::uint32_t;

/// A Delaunay triangle; vertices in counter-clockwise order, rotated so
/// that a is the smallest index (canonical form, comparable across runs).
struct Triangle {
    VertexId a = 0;
    VertexId b = 0;
    VertexId c = 0;

    friend bool operator==(Triangle, Triangle) = default;
    friend auto operator<=>(Triangle, Triangle) = default;
};

class DelaunayTriangulation {
  public:
    /// Triangulates the given points. Duplicate points keep only their
    /// first occurrence (later duplicates become isolated vertices).
    explicit DelaunayTriangulation(std::vector<geom::Point> points);

    [[nodiscard]] const std::vector<geom::Point>& points() const noexcept { return points_; }

    /// All Delaunay triangles in canonical form, sorted.
    [[nodiscard]] const std::vector<Triangle>& triangles() const noexcept { return triangles_; }

    /// All Delaunay edges (u < v, sorted). For degenerate (collinear)
    /// inputs this is the path along the line.
    [[nodiscard]] const std::vector<std::pair<VertexId, VertexId>>& edges() const noexcept {
        return edges_;
    }

    /// True iff the input had no three non-collinear points.
    [[nodiscard]] bool degenerate() const noexcept { return degenerate_; }

  private:
    std::vector<geom::Point> points_;
    std::vector<Triangle> triangles_;
    std::vector<std::pair<VertexId, VertexId>> edges_;
    bool degenerate_ = false;
};

}  // namespace geospanner::delaunay
