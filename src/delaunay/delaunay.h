// Delaunay triangulation of a planar point set.
//
// Used in two roles:
//  * the localized Delaunay protocol has every node compute the Delaunay
//    triangulation of its 1-hop neighborhood (Algorithm 2, step 2);
//  * the global "Del ∩ UDG" baseline of the paper's Table I.
//
// Implementation: incremental Bowyer–Watson insertion. Instead of an
// enclosing super-triangle with large coordinates (which perturbs
// circumcircle tests near the hull), the exterior is covered by *ghost
// triangles* sharing a symbolic vertex at infinity; their "circumdisk"
// test degenerates to an exact half-plane test. All decisions go through
// the exact predicates in geom/predicates.h, so the triangulation is
// correct for any input, including cocircular quadruples and points on
// hull edges. Fully collinear inputs yield the degenerate Delaunay graph
// (the path of consecutive points along the line) and no triangles.
//
// The localized stage triangulates one small neighborhood per node —
// tens of thousands of tiny inputs per build — so the construction-time
// cost there is allocator traffic, not geometry. All mutable state of a
// triangulation run (triangle pool, edge→triangle map, cavity queues,
// dedup and Morton scratch) therefore lives in a reusable Workspace:
// the first run sizes the buffers, subsequent runs reuse them without
// touching the heap. `triangulate` is the workspace-based entry point;
// DelaunayTriangulation wraps it with a private workspace for one-shot
// callers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace geospanner::delaunay {

using VertexId = std::uint32_t;

/// A Delaunay triangle; vertices in counter-clockwise order, rotated so
/// that a is the smallest index (canonical form, comparable across runs).
struct Triangle {
    VertexId a = 0;
    VertexId b = 0;
    VertexId c = 0;

    friend bool operator==(Triangle, Triangle) = default;
    friend auto operator<=>(Triangle, Triangle) = default;
};

/// Arena of buffers for repeated triangulations. One workspace serves
/// any number of sequential `triangulate` calls; distinct threads need
/// distinct workspaces (the engine's parallel LDel stage keeps one per
/// lane). Results never depend on the workspace's history.
class Workspace {
  public:
    Workspace();
    ~Workspace();
    Workspace(Workspace&&) noexcept;
    Workspace& operator=(Workspace&&) noexcept;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;

    friend bool triangulate(const std::vector<geom::Point>& pts, Workspace& ws,
                            std::vector<Triangle>& out);
    friend class DelaunayTriangulation;  // reads the dedup result on the
                                         // degenerate (collinear) path
};

/// Triangulates `pts` using `ws`'s buffers and appends every Delaunay
/// triangle — canonical rotation (least vertex first, CCW), in no
/// particular order — to `out`. Exact duplicate points keep only their
/// first occurrence. Returns false when the input is degenerate (fewer
/// than three distinct points, or all collinear): no triangles then.
bool triangulate(const std::vector<geom::Point>& pts, Workspace& ws,
                 std::vector<Triangle>& out);

class DelaunayTriangulation {
  public:
    /// Triangulates the given points. Duplicate points keep only their
    /// first occurrence (later duplicates become isolated vertices).
    explicit DelaunayTriangulation(std::vector<geom::Point> points);

    [[nodiscard]] const std::vector<geom::Point>& points() const noexcept { return points_; }

    /// All Delaunay triangles in canonical form, sorted.
    [[nodiscard]] const std::vector<Triangle>& triangles() const noexcept { return triangles_; }

    /// All Delaunay edges (u < v, sorted). For degenerate (collinear)
    /// inputs this is the path along the line.
    [[nodiscard]] const std::vector<std::pair<VertexId, VertexId>>& edges() const noexcept {
        return edges_;
    }

    /// True iff the input had no three non-collinear points.
    [[nodiscard]] bool degenerate() const noexcept { return degenerate_; }

  private:
    std::vector<geom::Point> points_;
    std::vector<Triangle> triangles_;
    std::vector<std::pair<VertexId, VertexId>> edges_;
    bool degenerate_ = false;
};

}  // namespace geospanner::delaunay
