#include "proximity/ldel_k.h"

#include <cassert>

#include "geom/predicates.h"
#include "graph/khop.h"
#include "proximity/classic.h"

namespace geospanner::proximity {

using geom::Point;
using graph::GeometricGraph;
using graph::NodeId;

std::vector<TriangleKey> ldel_k_triangles(const GeometricGraph& udg, int k) {
    assert(k >= 1);
    // Neighborhoods only grow with k, so LDel^k triangles are a subset
    // of LDel^1 triangles: filter the k = 1 candidates against the
    // larger neighborhoods.
    std::vector<TriangleKey> candidates = ldel1_triangles(udg);
    if (k == 1) return candidates;

    std::vector<TriangleKey> result;
    for (const TriangleKey& t : candidates) {
        const Point pa = udg.point(t.a);
        const Point pb = udg.point(t.b);
        const Point pc = udg.point(t.c);
        bool empty = true;
        for (const NodeId center : {t.a, t.b, t.c}) {
            for (const NodeId x : graph::k_hop_neighborhood(udg, center, k)) {
                if (x == t.a || x == t.b || x == t.c) continue;
                if (geom::in_circumcircle(pa, pb, pc, udg.point(x)) > 0) {
                    empty = false;
                    break;
                }
            }
            if (!empty) break;
        }
        if (empty) result.push_back(t);
    }
    return result;
}

GeometricGraph build_ldel_k(const GeometricGraph& udg, int k) {
    GeometricGraph g = build_gabriel(udg);
    for (const TriangleKey& t : ldel_k_triangles(udg, k)) {
        g.add_edge(t.a, t.b);
        g.add_edge(t.b, t.c);
        g.add_edge(t.a, t.c);
    }
    return g;
}

}  // namespace geospanner::proximity
