#include "proximity/ldel.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "delaunay/delaunay.h"
#include "geom/predicates.h"
#include "proximity/classic.h"

namespace geospanner::proximity {

using geom::Point;
using graph::GeometricGraph;
using graph::NodeId;

TriangleKey make_triangle_key(NodeId x, NodeId y, NodeId z) {
    std::array<NodeId, 3> v{x, y, z};
    std::sort(v.begin(), v.end());
    return {v[0], v[1], v[2]};
}

namespace {

/// True iff p is strictly inside the CCW triangle (a, b, c).
bool strictly_inside_triangle(Point a, Point b, Point c, Point p) {
    return geom::orient_sign(a, b, p) > 0 && geom::orient_sign(b, c, p) > 0 &&
           geom::orient_sign(c, a, p) > 0;
}

using TrianglePoints = Alg3Filter::CcwTri;

TrianglePoints ccw_points(const GeometricGraph& g, TriangleKey t) {
    Point a = g.point(t.a);
    Point b = g.point(t.b);
    Point c = g.point(t.c);
    if (geom::orient_sign(a, b, c) < 0) std::swap(b, c);
    return {a, b, c};
}

bool intersect_impl(const TrianglePoints& s, const TrianglePoints& t) {
    const std::array<std::pair<Point, Point>, 3> se{{{s.a, s.b}, {s.b, s.c}, {s.c, s.a}}};
    const std::array<std::pair<Point, Point>, 3> te{{{t.a, t.b}, {t.b, t.c}, {t.c, t.a}}};
    for (const auto& [p1, p2] : se) {
        for (const auto& [q1, q2] : te) {
            if (geom::segments_properly_cross(p1, p2, q1, q2)) return true;
        }
    }
    for (const Point p : {t.a, t.b, t.c}) {
        if (strictly_inside_triangle(s.a, s.b, s.c, p)) return true;
    }
    for (const Point p : {s.a, s.b, s.c}) {
        if (strictly_inside_triangle(t.a, t.b, t.c, p)) return true;
    }
    return false;
}

bool cc_contains_impl(const TrianglePoints& s, const TrianglePoints& t) {
    for (const Point p : {t.a, t.b, t.c}) {
        if (geom::in_circumcircle(s.a, s.b, s.c, p) > 0) return true;
    }
    return false;
}

bool bbox_disjoint(const TrianglePoints& s, const TrianglePoints& t) {
    return std::max({s.a.x, s.b.x, s.c.x}) < std::min({t.a.x, t.b.x, t.c.x}) ||
           std::max({t.a.x, t.b.x, t.c.x}) < std::min({s.a.x, s.b.x, s.c.x}) ||
           std::max({s.a.y, s.b.y, s.c.y}) < std::min({t.a.y, t.b.y, t.c.y}) ||
           std::max({t.a.y, t.b.y, t.c.y}) < std::min({s.a.y, s.b.y, s.c.y});
}

/// Algorithm 3's removal rule for an intersecting pair, where `s` is the
/// triangle with the smaller canonical key. The lemma of [30] guarantees
/// at least one circumcircle test fires for genuinely intersecting
/// 1-localized Delaunay triangles in general position; for exactly-
/// cocircular configurations (where each triangle's vertices lie ON the
/// other's circumcircle and neither strict test fires) the larger
/// canonical key is removed as a deterministic tie-break.
struct PairRemoval {
    bool smaller = false;  ///< s (smaller key) is removed
    bool larger = false;   ///< t (larger key) is removed
};

PairRemoval alg3_pair(const TrianglePoints& s, const TrianglePoints& t) {
    const bool remove_s = cc_contains_impl(s, t);
    const bool remove_t = cc_contains_impl(t, s);
    if (!remove_s && !remove_t) return {false, true};
    return {remove_s, remove_t};
}

GeometricGraph graph_from(const GeometricGraph& udg,
                          const std::vector<TriangleKey>& triangles) {
    GeometricGraph g = build_gabriel(udg);
    for (const auto& t : triangles) {
        g.add_edge(t.a, t.b);
        g.add_edge(t.b, t.c);
        g.add_edge(t.a, t.c);
    }
    return g;
}

}  // namespace

std::vector<TriangleKey> local_triangles_at(const GeometricGraph& udg, NodeId u) {
    LocalDelaunayScratch scratch;
    std::vector<TriangleKey> result;
    local_triangles_at(udg, u, scratch, result);
    return result;
}

void local_triangles_at(const GeometricGraph& udg, NodeId u,
                        LocalDelaunayScratch& scratch, std::vector<TriangleKey>& out) {
    out.clear();
    const auto nbrs = udg.neighbors(u);
    if (nbrs.size() < 2) return;

    // Local point set: u first, then its neighbors. Duplicate-coordinate
    // neighbors dedup onto local index 0, so "incident to u" is exactly
    // "contains local index 0".
    scratch.pts.clear();
    scratch.ids.clear();
    scratch.tris.clear();
    scratch.pts.push_back(udg.point(u));
    scratch.ids.push_back(u);
    for (const NodeId v : nbrs) {
        scratch.pts.push_back(udg.point(v));
        scratch.ids.push_back(v);
    }

    if (!delaunay::triangulate(scratch.pts, scratch.ws, scratch.tris)) return;
    for (const auto& t : scratch.tris) {
        if (t.a != 0 && t.b != 0 && t.c != 0) continue;  // Only triangles at u matter.
        const NodeId x = scratch.ids[t.a];
        const NodeId y = scratch.ids[t.b];
        const NodeId z = scratch.ids[t.c];
        // All sides at most one unit <=> all sides UDG edges; sides
        // incident to u are UDG edges by construction.
        const auto [p, q] = [&] {
            if (x == u) return std::pair{y, z};
            if (y == u) return std::pair{x, z};
            return std::pair{x, y};
        }();
        if (!udg.has_edge(p, q)) continue;
        out.push_back(make_triangle_key(x, y, z));
    }
    std::sort(out.begin(), out.end());
}

bool triangles_intersect(const GeometricGraph& g, TriangleKey s, TriangleKey t) {
    return intersect_impl(ccw_points(g, s), ccw_points(g, t));
}

bool circumcircle_contains_vertex_of(const GeometricGraph& g, TriangleKey s,
                                     TriangleKey t) {
    return cc_contains_impl(ccw_points(g, s), ccw_points(g, t));
}

std::vector<TriangleKey> ldel1_triangles(const GeometricGraph& udg) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::vector<TriangleKey>> local(n);
    LocalDelaunayScratch scratch;
    for (NodeId u = 0; u < n; ++u) {
        local_triangles_at(udg, u, scratch, local[u]);
    }

    // A triangle is 1-localized Delaunay iff it appears in the local
    // Delaunay triangulation of all three of its vertices (equivalent to
    // circumcircle emptiness over the union of their 1-hop neighborhoods,
    // since a Delaunay triangle of N1(x) has its circumcircle empty of
    // N1(x)). Per-node lists are sorted, so membership is binary search
    // and concatenating the least-vertex hits in node order is already
    // globally sorted.
    std::vector<TriangleKey> result;
    for (NodeId u = 0; u < n; ++u) {
        for (const auto& t : local[u]) {
            if (t.a != u) continue;  // Count each triangle once, at its least vertex.
            if (std::binary_search(local[t.b].begin(), local[t.b].end(), t) &&
                std::binary_search(local[t.c].begin(), local[t.c].end(), t)) {
                result.push_back(t);
            }
        }
    }
    return result;
}

std::vector<TriangleKey> ldel1_triangles_reference(const GeometricGraph& udg) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<TriangleKey> result;
    for (NodeId u = 0; u < n; ++u) {
        const auto nbrs = udg.neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
                const NodeId v = nbrs[i];
                const NodeId w = nbrs[j];
                if (u > v || u > w) continue;  // Enumerate at the least vertex.
                if (!udg.has_edge(v, w)) continue;
                const Point pu = udg.point(u);
                const Point pv = udg.point(v);
                const Point pw = udg.point(w);
                if (geom::orient_sign(pu, pv, pw) == 0) continue;  // Degenerate.
                // Circumcircle must be empty of N1(u) ∪ N1(v) ∪ N1(w).
                bool empty = true;
                for (const NodeId center : {u, v, w}) {
                    for (const NodeId x : udg.neighbors(center)) {
                        if (x == u || x == v || x == w) continue;
                        if (geom::in_circumcircle(pu, pv, pw, udg.point(x)) > 0) {
                            empty = false;
                            break;
                        }
                    }
                    if (!empty) break;
                }
                if (empty) result.push_back(make_triangle_key(u, v, w));
            }
        }
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

Alg3Filter::Alg3Filter(const GeometricGraph& g, std::vector<TriangleKey> triangles)
    : keys_(std::move(triangles)) {
    tris_.reserve(keys_.size());
    boxes_.reserve(keys_.size());
    double max_extent = 0.0;
    for (const auto& t : keys_) {
        const TrianglePoints p = ccw_points(g, t);
        tris_.push_back(p);
        const Box box{std::min({p.a.x, p.b.x, p.c.x}), std::max({p.a.x, p.b.x, p.c.x}),
                      std::min({p.a.y, p.b.y, p.c.y}), std::max({p.a.y, p.b.y, p.c.y})};
        boxes_.push_back(box);
        max_extent = std::max({max_extent, box.max_x - box.min_x, box.max_y - box.min_y});
    }
    cell_side_ = max_extent > 0.0 ? max_extent : 1.0;
    // CSR bucket build: sort (cell, index) pairs, then split the index
    // column at cell boundaries. One allocation each, no per-cell nodes.
    std::vector<std::pair<std::pair<long long, long long>, std::uint32_t>> entries;
    entries.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        const CellCoord c = cell_of({boxes_[i].min_x, boxes_[i].min_y}, cell_side_);
        entries.push_back({{c.first, c.second}, static_cast<std::uint32_t>(i)});
    }
    std::sort(entries.begin(), entries.end());
    cell_items_.reserve(entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
        if (k == 0 || entries[k].first != entries[k - 1].first) {
            cell_keys_.push_back(entries[k].first);
            cell_offsets_.push_back(static_cast<std::uint32_t>(k));
        }
        cell_items_.push_back(entries[k].second);
    }
    cell_offsets_.push_back(static_cast<std::uint32_t>(entries.size()));
}

template <typename Fn>
void Alg3Filter::for_each_box_neighbor(std::size_t i, Fn&& fn) const {
    // Boxes are bucketed by their min corner and no box extent exceeds
    // cell_side_, so any box intersecting box i has its min corner in
    // [min - cell_side_, max] per axis — at most a 3x3 cell block.
    const Box& box = boxes_[i];
    const auto [x_lo, y_lo] =
        cell_of({box.min_x - cell_side_, box.min_y - cell_side_}, cell_side_);
    const auto [x_hi, y_hi] = cell_of({box.max_x, box.max_y}, cell_side_);
    for (long long cx = x_lo; cx <= x_hi; ++cx) {
        for (long long cy = y_lo; cy <= y_hi; ++cy) {
            const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(),
                                             std::pair{cx, cy});
            if (it == cell_keys_.end() || *it != std::pair{cx, cy}) continue;
            const auto k = static_cast<std::size_t>(it - cell_keys_.begin());
            for (std::uint32_t s = cell_offsets_[k]; s < cell_offsets_[k + 1]; ++s) {
                fn(static_cast<std::size_t>(cell_items_[s]));
            }
        }
    }
}

void Alg3Filter::removal_scan(std::vector<char>& removed) const {
    const std::size_t m = keys_.size();
    removed.assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
        const auto& s = tris_[i];
        // The grid finds every intersecting pair from both sides; the
        // j > i filter processes each unordered pair exactly once.
        for_each_box_neighbor(i, [&](std::size_t j) {
            if (j <= i) return;
            const auto& t = tris_[j];
            if (bbox_disjoint(s, t) || !intersect_impl(s, t)) return;
            const PairRemoval r = alg3_pair(s, t);
            if (r.smaller) removed[i] = 1;
            if (r.larger) removed[j] = 1;
        });
    }
}

bool Alg3Filter::keeps(std::size_t i) const {
    const auto& s = tris_[i];
    bool kept = true;
    for_each_box_neighbor(i, [&](std::size_t j) {
        if (!kept || j == i) return;
        const auto& t = tris_[j];
        if (bbox_disjoint(s, t) || !intersect_impl(s, t)) return;
        // alg3_pair is oriented lower-index-first (canonical key order
        // for the sorted sets this runs on), matching removal_scan.
        const PairRemoval r = i < j ? alg3_pair(s, t) : alg3_pair(t, s);
        if (i < j ? r.smaller : r.larger) kept = false;
    });
    return kept;
}

std::vector<TriangleKey> planarize_triangles(const GeometricGraph& udg,
                                             const std::vector<TriangleKey>& triangles) {
    const Alg3Filter filter(udg, triangles);
    std::vector<char> removed;
    filter.removal_scan(removed);

    std::vector<TriangleKey> kept;
    for (std::size_t i = 0; i < triangles.size(); ++i) {
        if (!removed[i]) kept.push_back(triangles[i]);
    }
    return kept;
}

GeometricGraph build_ldel1(const GeometricGraph& udg) {
    return graph_from(udg, ldel1_triangles(udg));
}

GeometricGraph build_pldel(const GeometricGraph& udg) {
    return graph_from(udg, planarize_triangles(udg, ldel1_triangles(udg)));
}

}  // namespace geospanner::proximity
