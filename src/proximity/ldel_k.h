// k-localized Delaunay graphs LDel⁽ᵏ⁾ for k >= 1 (Li, Calinescu, Wan).
//
// A triangle uvw with all sides in the UDG is k-localized Delaunay iff
// its circumcircle contains no node of N_k(u) ∪ N_k(v) ∪ N_k(w). The
// paper's pipeline uses k = 1 (the only thickness-2 case, planarized by
// Algorithm 3); for k >= 2 the graph is already planar, at the cost of
// gathering k-hop neighborhoods — the accuracy/locality trade-off this
// module makes measurable.
#pragma once

#include "proximity/ldel.h"

namespace geospanner::proximity {

/// All k-localized Delaunay triangles, sorted. k >= 1. (For k = 1 this
/// equals ldel1_triangles.)
[[nodiscard]] std::vector<TriangleKey> ldel_k_triangles(const graph::GeometricGraph& udg,
                                                        int k);

/// LDel⁽ᵏ⁾(V): Gabriel edges plus edges of all k-localized Delaunay
/// triangles. Planar for k >= 2.
[[nodiscard]] graph::GeometricGraph build_ldel_k(const graph::GeometricGraph& udg, int k);

}  // namespace geospanner::proximity
