#include "proximity/classic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "delaunay/delaunay.h"
#include "geom/predicates.h"

namespace geospanner::proximity {

using geom::Point;
using graph::GeometricGraph;
using graph::NodeId;

namespace {

/// Calls fn(w) for every common UDG neighbor w of u and v.
template <typename Fn>
void for_common_neighbors(const GeometricGraph& udg, NodeId u, NodeId v, Fn fn) {
    const auto nu = udg.neighbors(u);
    const auto nv = udg.neighbors(v);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
            ++i;
        } else if (nu[i] > nv[j]) {
            ++j;
        } else {
            fn(nu[i]);
            ++i;
            ++j;
        }
    }
}

/// Sector index of the direction u -> v among `cones` equal sectors
/// anchored at angle 0.
int cone_of(Point u, Point v, int cones) {
    double theta = geom::angle_of(v - u);
    const double two_pi = 2.0 * std::numbers::pi;
    if (theta < 0.0) theta += two_pi;
    int c = static_cast<int>(theta / two_pi * cones);
    return std::min(c, cones - 1);  // Guard against theta == 2*pi rounding.
}

/// Directed Yao selection: for each node, the closest out-neighbor per
/// cone (ties by smaller id). Returns out[u] = chosen targets.
std::vector<std::vector<NodeId>> yao_out_edges(const GeometricGraph& udg, int cones) {
    assert(cones >= 1);
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::vector<NodeId>> out(n);
    std::vector<NodeId> best(static_cast<std::size_t>(cones));
    std::vector<double> best_d2(static_cast<std::size_t>(cones));
    for (NodeId u = 0; u < n; ++u) {
        std::fill(best.begin(), best.end(), graph::kInvalidNode);
        std::fill(best_d2.begin(), best_d2.end(), 0.0);
        for (const NodeId v : udg.neighbors(u)) {
            const int c = cone_of(udg.point(u), udg.point(v), cones);
            const double d2 = geom::squared_distance(udg.point(u), udg.point(v));
            if (best[c] == graph::kInvalidNode || d2 < best_d2[c] ||
                (d2 == best_d2[c] && v < best[c])) {
                best[c] = v;
                best_d2[c] = d2;
            }
        }
        for (int c = 0; c < cones; ++c) {
            if (best[c] != graph::kInvalidNode) out[u].push_back(best[c]);
        }
    }
    return out;
}

}  // namespace

GeometricGraph build_rng(const GeometricGraph& udg) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : udg.edges()) {
        const double d2 = geom::squared_distance(udg.point(u), udg.point(v));
        bool blocked = false;
        // Any blocker w has |uw| < |uv| <= 1 and |wv| < |uv| <= 1, hence
        // is a common UDG neighbor.
        for_common_neighbors(udg, u, v, [&](NodeId w) {
            if (blocked) return;
            if (geom::squared_distance(udg.point(u), udg.point(w)) < d2 &&
                geom::squared_distance(udg.point(v), udg.point(w)) < d2) {
                blocked = true;
            }
        });
        if (!blocked) g.add_edge(u, v);
    }
    return g;
}

GeometricGraph build_gabriel(const GeometricGraph& udg) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : udg.edges()) {
        bool blocked = false;
        // A witness anywhere in the *closed* diametral disk blocks the
        // edge (boundary witnesses included: with exactly-cocircular
        // inputs, e.g. integer grids, strict blocking would keep both
        // crossing diagonals of a square and break planarity; the paper
        // assumes general position where the two rules coincide). Any
        // witness is within |uv| of both endpoints, hence a common UDG
        // neighbor.
        for_common_neighbors(udg, u, v, [&](NodeId w) {
            if (blocked) return;
            if (geom::in_diametral_circle(udg.point(u), udg.point(v), udg.point(w)) >= 0) {
                blocked = true;
            }
        });
        if (!blocked) g.add_edge(u, v);
    }
    return g;
}

GeometricGraph build_yao(const GeometricGraph& udg, int cones) {
    GeometricGraph g(udg.points());
    const auto out = yao_out_edges(udg, cones);
    for (NodeId u = 0; u < udg.node_count(); ++u) {
        for (const NodeId v : out[u]) g.add_edge(u, v);
    }
    return g;
}

GeometricGraph build_theta(const GeometricGraph& udg, int cones) {
    assert(cones >= 1);
    GeometricGraph g(udg.points());
    const auto n = static_cast<NodeId>(udg.node_count());
    const double two_pi = 2.0 * std::numbers::pi;
    std::vector<NodeId> best(static_cast<std::size_t>(cones));
    std::vector<double> best_proj(static_cast<std::size_t>(cones));
    for (NodeId u = 0; u < n; ++u) {
        std::fill(best.begin(), best.end(), graph::kInvalidNode);
        std::fill(best_proj.begin(), best_proj.end(), 0.0);
        for (const NodeId v : udg.neighbors(u)) {
            const int c = cone_of(udg.point(u), udg.point(v), cones);
            // Projection of uv onto the cone's bisector direction.
            const double bisector = (static_cast<double>(c) + 0.5) / cones * two_pi;
            const geom::Vec2 dir{std::cos(bisector), std::sin(bisector)};
            const double proj = dot(udg.point(v) - udg.point(u), dir);
            if (best[c] == graph::kInvalidNode || proj < best_proj[c] ||
                (proj == best_proj[c] && v < best[c])) {
                best[c] = v;
                best_proj[c] = proj;
            }
        }
        for (int c = 0; c < cones; ++c) {
            if (best[c] != graph::kInvalidNode) g.add_edge(u, best[c]);
        }
    }
    return g;
}

GeometricGraph build_yao_sink(const GeometricGraph& udg, int cones) {
    const auto n = static_cast<NodeId>(udg.node_count());
    const auto out = yao_out_edges(udg, cones);

    // Incoming Yao edges per node.
    std::vector<std::vector<NodeId>> in(n);
    for (NodeId u = 0; u < n; ++u) {
        for (const NodeId v : out[u]) in[v].push_back(u);
    }

    // Reverse Yao at each sink v: among in-neighbors, keep the closest
    // per cone (ties by smaller id). This bounds in-degree by `cones`.
    GeometricGraph g(udg.points());
    std::vector<NodeId> best(static_cast<std::size_t>(cones));
    std::vector<double> best_d2(static_cast<std::size_t>(cones));
    for (NodeId v = 0; v < n; ++v) {
        std::fill(best.begin(), best.end(), graph::kInvalidNode);
        std::fill(best_d2.begin(), best_d2.end(), 0.0);
        for (const NodeId u : in[v]) {
            const int c = cone_of(udg.point(v), udg.point(u), cones);
            const double d2 = geom::squared_distance(udg.point(u), udg.point(v));
            if (best[c] == graph::kInvalidNode || d2 < best_d2[c] ||
                (d2 == best_d2[c] && u < best[c])) {
                best[c] = u;
                best_d2[c] = d2;
            }
        }
        for (int c = 0; c < cones; ++c) {
            if (best[c] != graph::kInvalidNode) g.add_edge(best[c], v);
        }
    }
    return g;
}

GeometricGraph build_udel(const GeometricGraph& udg) {
    GeometricGraph g(udg.points());
    const delaunay::DelaunayTriangulation del(udg.points());
    for (const auto& [u, v] : del.edges()) {
        if (udg.has_edge(u, v)) g.add_edge(u, v);
    }
    return g;
}

}  // namespace geospanner::proximity
