#include "proximity/udg.h"

#include "proximity/cell_grid.h"

namespace geospanner::proximity {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph build_udg(std::vector<geom::Point> points, double radius) {
    GeometricGraph g(std::move(points));
    const auto n = static_cast<NodeId>(g.node_count());
    if (n == 0 || radius <= 0.0) return g;

    const CellGrid grid = build_cell_grid(g.points(), radius);
    std::vector<NodeId> above;
    for (NodeId v = 0; v < n; ++v) {
        above.clear();
        collect_udg_neighbors_above(g.points(), grid, radius, v, above);
        for (const NodeId u : above) g.add_edge(u, v);
    }
    return g;
}

}  // namespace geospanner::proximity
