#include "proximity/udg.h"

#include <algorithm>
#include <utility>

#include "proximity/cell_grid.h"

namespace geospanner::proximity {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph build_udg(std::vector<geom::Point> points, double radius) {
    const auto n = static_cast<NodeId>(points.size());
    if (n == 0 || radius <= 0.0) return GeometricGraph(std::move(points));

    const CompactCellGrid grid(points, radius);
    const double r2 = radius * radius;
    // Edges come out grouped by v with u > v; sorting each group makes
    // the list lexicographic, which the bulk constructor requires.
    std::vector<std::pair<NodeId, NodeId>> edges;
    std::size_t group_begin = 0;
    for (NodeId v = 0; v < n; ++v) {
        grid.for_neighbors_above(points[v], v, r2,
                                 [&](NodeId u) { edges.push_back({v, u}); });
        std::sort(edges.begin() + static_cast<std::ptrdiff_t>(group_begin), edges.end());
        group_begin = edges.size();
    }
    return GeometricGraph::from_edges(std::move(points), edges);
}

}  // namespace geospanner::proximity
