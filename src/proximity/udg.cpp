#include "proximity/udg.h"

#include <cmath>
#include <unordered_map>

namespace geospanner::proximity {

using graph::GeometricGraph;
using graph::NodeId;

GeometricGraph build_udg(std::vector<geom::Point> points, double radius) {
    GeometricGraph g(std::move(points));
    const auto n = static_cast<NodeId>(g.node_count());
    if (n == 0 || radius <= 0.0) return g;

    // Hash nodes into square cells of side `radius`; any edge endpoint
    // pair lies in the same or an adjacent cell.
    const auto cell_of = [radius](geom::Point p) {
        return std::pair<long long, long long>{
            static_cast<long long>(std::floor(p.x / radius)),
            static_cast<long long>(std::floor(p.y / radius))};
    };
    struct PairHash {
        std::size_t operator()(const std::pair<long long, long long>& c) const noexcept {
            return std::hash<long long>{}(c.first * 1000003LL + c.second);
        }
    };
    std::unordered_map<std::pair<long long, long long>, std::vector<NodeId>, PairHash> grid;
    for (NodeId v = 0; v < n; ++v) grid[cell_of(g.point(v))].push_back(v);

    const double r2 = radius * radius;
    for (NodeId v = 0; v < n; ++v) {
        const auto [cx, cy] = cell_of(g.point(v));
        for (long long dx = -1; dx <= 1; ++dx) {
            for (long long dy = -1; dy <= 1; ++dy) {
                const auto it = grid.find({cx + dx, cy + dy});
                if (it == grid.end()) continue;
                for (const NodeId u : it->second) {
                    if (u <= v) continue;
                    if (geom::squared_distance(g.point(u), g.point(v)) <= r2) {
                        g.add_edge(u, v);
                    }
                }
            }
        }
    }
    return g;
}

}  // namespace geospanner::proximity
