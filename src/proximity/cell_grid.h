// Uniform spatial grid shared by every neighbor-range scan.
//
// Nodes are bucketed into square cells of side `radius`, so any pair
// within one radius lies in the same or an adjacent cell. Both the
// sequential UDG builder and the engine's parallel UDG stage consume the
// same grid, so they enumerate identical candidate sets. The grid is
// also tile-addressable: nodes_in_rect answers "every node in the cells
// covering this rectangle", which is how the tile-sharded builder
// (src/shard) extracts a tile's halo region.
//
// Storage is CSR, not a hash map of per-cell vectors: all slots live in
// three flat columns (node id, x, y) with one offset array delimiting
// the cells, built by a counting sort. Cells are ordered by the Morton
// code of their coordinates, so the 3x3 block a range scan visits maps
// to a handful of nearby column ranges instead of pointer-chased
// buckets scattered across the heap. The gathered x/y columns let the
// squared-distance filter stream one contiguous range per cell
// (SIMD-friendly); node ids ascend within each cell, matching the
// bucket order of the retired map-based grid, so scan outputs are
// unchanged. Cell lookup goes through a small open-addressed table —
// the only non-contiguous touch per cell.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"

namespace geospanner::proximity {

using CellCoord = std::pair<long long, long long>;

/// Cell containing point p at the given cell side.
[[nodiscard]] inline CellCoord cell_of(geom::Point p, double cell_side) noexcept {
    return {static_cast<long long>(std::floor(p.x / cell_side)),
            static_cast<long long>(std::floor(p.y / cell_side))};
}

/// Hash over cell coordinates. All mixing happens on unsigned 64-bit
/// values (signed multiplication would overflow — UB — for cells beyond
/// ~9e12, i.e. coordinates around 1e13 at unit radius); the two words
/// are combined with splitmix64-style finalization so nearby cells
/// scatter across buckets.
struct CellHash {
    std::size_t operator()(CellCoord c) const noexcept {
        const auto mix = [](std::uint64_t z) noexcept {
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        const auto ux = static_cast<std::uint64_t>(c.first);
        const auto uy = static_cast<std::uint64_t>(c.second);
        return static_cast<std::size_t>(mix(mix(ux + 0x9e3779b97f4a7c15ULL) ^ uy));
    }
};

/// Immutable CSR cell grid over a point set (see file header). Mutable
/// bucketing for dynamic topologies lives in dynamic::DynamicCellGrid.
class CompactCellGrid {
  public:
    static constexpr std::uint32_t kNoCell = static_cast<std::uint32_t>(-1);

    CompactCellGrid() = default;

    /// Buckets every node by cell; counting-sort build, O(n log n) in
    /// the Morton ordering of the distinct cells.
    CompactCellGrid(const std::vector<geom::Point>& points, double cell_side);

    [[nodiscard]] double cell_side() const noexcept { return cell_side_; }
    [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
    [[nodiscard]] std::size_t node_count() const noexcept { return ids_.size(); }

    /// Morton-ordered index of the cell at `c`, or kNoCell when empty.
    [[nodiscard]] std::uint32_t find_cell(CellCoord c) const noexcept {
        if (table_.empty()) return kNoCell;
        const std::size_t mask = table_.size() - 1;
        std::size_t i = CellHash{}(c) & mask;
        while (used_[i] != 0) {
            if (table_[i].first == c) return table_[i].second;
            i = (i + 1) & mask;
        }
        return kNoCell;
    }

    /// Raw columns. Cell k holds slots [cell_offsets()[k],
    /// cell_offsets()[k+1]); slot ids ascend within a cell; slot_xs /
    /// slot_ys are the coordinates gathered into slot order.
    [[nodiscard]] const std::vector<CellCoord>& cell_coords() const noexcept {
        return cells_;
    }
    [[nodiscard]] const std::vector<std::uint32_t>& cell_offsets() const noexcept {
        return offsets_;
    }
    [[nodiscard]] const std::vector<graph::NodeId>& slot_ids() const noexcept {
        return ids_;
    }
    [[nodiscard]] const std::vector<double>& slot_xs() const noexcept { return xs_; }
    [[nodiscard]] const std::vector<double>& slot_ys() const noexcept { return ys_; }

    /// Calls fn(u) for every node u with u > v and |pu - pv|² <= r2,
    /// scanning the 3x3 cell block around pv one contiguous cell range
    /// at a time (cells in (dx, dy) order, ids ascending within each —
    /// the per-node kernel of UDG construction). Requires the query
    /// radius <= cell_side. Pure read; safe to call concurrently.
    template <typename Fn>
    void for_neighbors_above(geom::Point pv, graph::NodeId v, double r2,
                             Fn&& fn) const {
        const auto [cx, cy] = cell_of(pv, cell_side_);
        for (long long dx = -1; dx <= 1; ++dx) {
            for (long long dy = -1; dy <= 1; ++dy) {
                const std::uint32_t k = find_cell({cx + dx, cy + dy});
                if (k == kNoCell) continue;
                const std::uint32_t end = offsets_[k + 1];
                for (std::uint32_t s = offsets_[k]; s < end; ++s) {
                    const double ddx = xs_[s] - pv.x;
                    const double ddy = ys_[s] - pv.y;
                    if (ddx * ddx + ddy * ddy <= r2 && ids_[s] > v) fn(ids_[s]);
                }
            }
        }
    }

    /// Every node bucketed in a cell that intersects the closed
    /// rectangle [min_x, max_x] × [min_y, max_y], ascending and
    /// duplicate-free. Cell granularity: covers every node inside the
    /// rectangle but may include nodes up to one cell_side outside it.
    /// When the rectangle spans more cells than the grid holds — a huge
    /// query over a sparse grid — the scan flips to iterating the
    /// populated cells instead, so the cost is O(min(cells in rect,
    /// populated cells) + hits log hits) either way.
    [[nodiscard]] std::vector<graph::NodeId> nodes_in_rect(double min_x, double min_y,
                                                           double max_x,
                                                           double max_y) const;

  private:
    double cell_side_ = 1.0;
    std::vector<CellCoord> cells_;          ///< distinct cells, Morton order
    std::vector<std::uint32_t> offsets_;    ///< cell_count()+1 slot bounds
    std::vector<graph::NodeId> ids_;        ///< node id per slot
    std::vector<double> xs_, ys_;           ///< gathered coordinates per slot
    std::vector<std::pair<CellCoord, std::uint32_t>> table_;  ///< open-addressed
    std::vector<char> used_;                ///< table occupancy (pow2 size)
};

}  // namespace geospanner::proximity
