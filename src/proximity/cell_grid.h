// Uniform spatial hash grid shared by every neighbor-range scan.
//
// Nodes are bucketed into square cells of side `radius`, so any pair
// within one radius lies in the same or an adjacent cell. Both the
// sequential UDG builder and the engine's parallel UDG stage consume the
// same grid (and the same hash), so they enumerate identical candidate
// sets. The grid is also tile-addressable: cells_in_rect answers
// "every node in the cells covering this rectangle", which is how the
// tile-sharded builder (src/shard) extracts a tile's halo region.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"

namespace geospanner::proximity {

using CellCoord = std::pair<long long, long long>;

/// Cell containing point p at the given cell side.
[[nodiscard]] inline CellCoord cell_of(geom::Point p, double cell_side) noexcept {
    return {static_cast<long long>(std::floor(p.x / cell_side)),
            static_cast<long long>(std::floor(p.y / cell_side))};
}

/// Hash over cell coordinates. All mixing happens on unsigned 64-bit
/// values (signed multiplication would overflow — UB — for cells beyond
/// ~9e12, i.e. coordinates around 1e13 at unit radius); the two words
/// are combined with splitmix64-style finalization so nearby cells
/// scatter across buckets.
struct CellHash {
    std::size_t operator()(CellCoord c) const noexcept {
        const auto mix = [](std::uint64_t z) noexcept {
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        const auto ux = static_cast<std::uint64_t>(c.first);
        const auto uy = static_cast<std::uint64_t>(c.second);
        return static_cast<std::size_t>(mix(mix(ux + 0x9e3779b97f4a7c15ULL) ^ uy));
    }
};

using CellGrid = std::unordered_map<CellCoord, std::vector<graph::NodeId>, CellHash>;

/// Buckets node ids by cell; node lists are in ascending id order.
[[nodiscard]] inline CellGrid build_cell_grid(const std::vector<geom::Point>& points,
                                              double cell_side) {
    CellGrid grid;
    grid.reserve(points.size());
    for (graph::NodeId v = 0; v < points.size(); ++v) {
        grid[cell_of(points[v], cell_side)].push_back(v);
    }
    return grid;
}

/// Every node bucketed in a cell that intersects the closed rectangle
/// [min_x, max_x] × [min_y, max_y], ascending and duplicate-free. Cell
/// granularity: the result covers every node inside the rectangle but
/// may include nodes up to one cell_side outside it (their cell touches
/// the rectangle). When the rectangle spans more cells than the grid
/// holds — a huge query over a sparse grid — the scan flips to
/// iterating the populated cells instead, so the cost is
/// O(min(cells in rect, populated cells) + hits log hits) either way.
[[nodiscard]] inline std::vector<graph::NodeId> cells_in_rect(const CellGrid& grid,
                                                              double cell_side,
                                                              double min_x, double min_y,
                                                              double max_x,
                                                              double max_y) {
    std::vector<graph::NodeId> out;
    if (min_x > max_x || min_y > max_y) return out;
    const auto [lo_x, lo_y] = cell_of({min_x, min_y}, cell_side);
    const auto [hi_x, hi_y] = cell_of({max_x, max_y}, cell_side);
    // Unsigned widths: the corner cells can sit at opposite ends of the
    // coordinate range, where a signed difference would overflow.
    const auto span_x = static_cast<std::uint64_t>(hi_x) - static_cast<std::uint64_t>(lo_x) + 1;
    const auto span_y = static_cast<std::uint64_t>(hi_y) - static_cast<std::uint64_t>(lo_y) + 1;
    const bool scan_grid = span_x > grid.size() || span_y > grid.size() ||
                           span_x * span_y > grid.size();
    if (scan_grid) {
        for (const auto& [cell, ids] : grid) {
            if (cell.first < lo_x || cell.first > hi_x || cell.second < lo_y ||
                cell.second > hi_y) {
                continue;
            }
            out.insert(out.end(), ids.begin(), ids.end());
        }
    } else {
        for (long long cx = lo_x; cx <= hi_x; ++cx) {
            for (long long cy = lo_y; cy <= hi_y; ++cy) {
                const auto it = grid.find({cx, cy});
                if (it == grid.end()) continue;
                out.insert(out.end(), it->second.begin(), it->second.end());
            }
        }
    }
    // Cells are disjoint, so sorting alone canonicalizes the result.
    std::sort(out.begin(), out.end());
    return out;
}

/// Appends every neighbor u of v with u > v and |pu - pv| <= radius
/// (scanning the 3x3 cell block around v). The per-node kernel of UDG
/// construction: pure function of (points, grid, v), safe to call
/// concurrently for distinct v.
inline void collect_udg_neighbors_above(const std::vector<geom::Point>& points,
                                        const CellGrid& grid, double radius,
                                        graph::NodeId v,
                                        std::vector<graph::NodeId>& out) {
    const double r2 = radius * radius;
    const auto [cx, cy] = cell_of(points[v], radius);
    for (long long dx = -1; dx <= 1; ++dx) {
        for (long long dy = -1; dy <= 1; ++dy) {
            const auto it = grid.find({cx + dx, cy + dy});
            if (it == grid.end()) continue;
            for (const graph::NodeId u : it->second) {
                if (u <= v) continue;
                if (geom::squared_distance(points[u], points[v]) <= r2) {
                    out.push_back(u);
                }
            }
        }
    }
}

}  // namespace geospanner::proximity
