// Localized Delaunay graph LDel⁽¹⁾ and its planarization PLDel
// (Li, Calinescu, Wan [30]; Algorithms 2 and 3 of the paper).
//
// A triangle uvw with all sides in the UDG is a *1-localized Delaunay
// triangle* iff its circumcircle contains no node of N1(u) ∪ N1(v) ∪
// N1(w). LDel⁽¹⁾(V) consists of all Gabriel edges plus the edges of all
// 1-localized Delaunay triangles; it has thickness 2. Algorithm 3 then
// removes, from every pair of *intersecting* triangles, the one whose
// circumcircle contains a vertex of the other, yielding the planar PLDel.
//
// These functions are the centralized reference; the message-passing
// versions live in src/protocol and are tested for exact equality with
// these results.
#pragma once

#include <compare>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "delaunay/delaunay.h"
#include "graph/geometric_graph.h"
#include "proximity/cell_grid.h"

namespace geospanner::proximity {

/// Canonical triangle key: a < b < c.
struct TriangleKey {
    graph::NodeId a = 0;
    graph::NodeId b = 0;
    graph::NodeId c = 0;

    friend bool operator==(TriangleKey, TriangleKey) = default;
    friend auto operator<=>(TriangleKey, TriangleKey) = default;
};

[[nodiscard]] TriangleKey make_triangle_key(graph::NodeId x, graph::NodeId y,
                                            graph::NodeId z);

/// Triangles incident to u in the Delaunay triangulation of N1(u) whose
/// three sides are all UDG edges — what node u computes locally in
/// Algorithm 2. Sorted canonical keys.
[[nodiscard]] std::vector<TriangleKey> local_triangles_at(const graph::GeometricGraph& udg,
                                                          graph::NodeId u);

/// Arena for repeated local_triangles_at calls: the per-node local
/// Delaunay computation runs once per node per build, so its transient
/// state (neighborhood point set, id map, the triangulation workspace)
/// lives here and is reused call to call — zero steady-state heap
/// traffic. One scratch per thread; results never depend on history.
struct LocalDelaunayScratch {
    delaunay::Workspace ws;
    std::vector<geom::Point> pts;
    std::vector<graph::NodeId> ids;
    std::vector<delaunay::Triangle> tris;
};

/// Scratch-reusing form of local_triangles_at: replaces `out` with the
/// same sorted canonical keys the one-shot overload returns.
void local_triangles_at(const graph::GeometricGraph& udg, graph::NodeId u,
                        LocalDelaunayScratch& scratch, std::vector<TriangleKey>& out);

/// Strict geometric intersection of two distinct triangles: some edge
/// pair properly crosses or a vertex of one lies strictly inside the
/// other (sharing vertices or edges alone does not count). Exact.
[[nodiscard]] bool triangles_intersect(const graph::GeometricGraph& g, TriangleKey s,
                                       TriangleKey t);

/// True iff the circumcircle of s strictly contains some vertex of t —
/// Algorithm 3's removal trigger. Exact.
[[nodiscard]] bool circumcircle_contains_vertex_of(const graph::GeometricGraph& g,
                                                   TriangleKey s, TriangleKey t);

/// All 1-localized Delaunay triangles of the UDG, sorted. Computed via
/// per-node local Delaunay triangulations (the efficient O(d log d)-per-
/// node formulation; equivalent to the circumcircle definition).
[[nodiscard]] std::vector<TriangleKey> ldel1_triangles(const graph::GeometricGraph& udg);

/// Definitional O(d^4)-per-node computation of the same triangle set:
/// enumerates UDG triangles and tests circumcircle emptiness against the
/// three 1-hop neighborhoods directly. For validation on small inputs.
[[nodiscard]] std::vector<TriangleKey> ldel1_triangles_reference(
    const graph::GeometricGraph& udg);

/// Subset of `triangles` surviving Algorithm 3: a triangle is removed iff
/// it intersects another triangle of the set and its circumcircle
/// strictly contains one of the other's vertices. Sorted.
[[nodiscard]] std::vector<TriangleKey> planarize_triangles(
    const graph::GeometricGraph& udg, const std::vector<TriangleKey>& triangles);

/// Algorithm 3 with the removal rule factored into a per-triangle
/// survival kernel. The constructor precomputes CCW corner points,
/// bounding boxes, and a uniform bucket grid over the boxes (triangle
/// sides are UDG edges, so box extents are bounded by the radius and
/// only a 3x3 cell neighborhood can hold intersecting partners — the
/// all-pairs scan collapses to near-linear). `keeps(i)` then decides
/// triangle i against the set reading only immutable state, so distinct
/// indices may be evaluated concurrently (the engine's parallel
/// planarization stage does exactly that). `keeps` agrees
/// index-for-index with `planarize_triangles`, including the
/// deterministic larger-key tie-break for cocircular crossings.
class Alg3Filter {
  public:
    /// Triangle corners in CCW order.
    struct CcwTri {
        geom::Point a, b, c;
    };

    Alg3Filter(const graph::GeometricGraph& g, std::vector<TriangleKey> triangles);

    [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
    [[nodiscard]] const std::vector<TriangleKey>& triangles() const noexcept {
        return keys_;
    }

    /// True iff triangles()[i] survives Algorithm 3 against the set.
    [[nodiscard]] bool keeps(std::size_t i) const;

    /// Removal scan over grid-pruned pairs: sets removed[i] per
    /// triangle, agreeing with !keeps(i). Marks both sides of each
    /// intersecting pair in one pass, so it does half the pair tests
    /// per-index `keeps` calls need — sequential callers (and the
    /// engine when the planarize stage runs on a single lane) should
    /// prefer it.
    void removal_scan(std::vector<char>& removed) const;

  private:
    struct Box {
        double min_x, max_x, min_y, max_y;
    };

    /// Calls fn(j) for every j whose bucket could hold a box
    /// intersecting box i (includes i itself; callers filter).
    template <typename Fn>
    void for_each_box_neighbor(std::size_t i, Fn&& fn) const;

    std::vector<TriangleKey> keys_;
    std::vector<CcwTri> tris_;
    std::vector<Box> boxes_;
    double cell_side_ = 1.0;
    // Occupied cells in CSR form: `cell_keys_` holds the sorted distinct
    // cell coordinates, bucket k is cell_items_[cell_offsets_[k],
    // cell_offsets_[k+1]). Lookups binary-search the key column — the
    // three columns stay contiguous, unlike per-cell node vectors.
    std::vector<std::pair<long long, long long>> cell_keys_;
    std::vector<std::uint32_t> cell_offsets_;
    std::vector<std::uint32_t> cell_items_;
};

/// LDel⁽¹⁾(V): Gabriel edges plus edges of all 1-localized Delaunay
/// triangles. Thickness 2; not necessarily planar.
[[nodiscard]] graph::GeometricGraph build_ldel1(const graph::GeometricGraph& udg);

/// PLDel(V): Gabriel edges plus edges of the Algorithm-3 surviving
/// triangles. Planar.
[[nodiscard]] graph::GeometricGraph build_pldel(const graph::GeometricGraph& udg);

}  // namespace geospanner::proximity
