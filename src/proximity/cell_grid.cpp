#include "proximity/cell_grid.h"

#include <algorithm>

namespace geospanner::proximity {

namespace {

/// Spreads the low 32 bits of v over the even bit positions.
std::uint64_t part1by1(std::uint32_t v) noexcept {
    std::uint64_t z = v;
    z = (z | (z << 16)) & 0x0000FFFF0000FFFFULL;
    z = (z | (z << 8)) & 0x00FF00FF00FF00FFULL;
    z = (z | (z << 4)) & 0x0F0F0F0F0F0F0F0FULL;
    z = (z | (z << 2)) & 0x3333333333333333ULL;
    z = (z | (z << 1)) & 0x5555555555555555ULL;
    return z;
}

std::uint64_t morton(std::uint32_t x, std::uint32_t y) noexcept {
    return part1by1(x) | (part1by1(y) << 1);
}

std::size_t pow2_at_least(std::size_t n) noexcept {
    std::size_t cap = 16;
    while (cap < n) cap <<= 1;
    return cap;
}

}  // namespace

CompactCellGrid::CompactCellGrid(const std::vector<geom::Point>& points,
                                 double cell_side)
    : cell_side_(cell_side) {
    const std::size_t n = points.size();
    if (n == 0) return;

    // Pass 1: each node's cell, and a dense first-seen id per distinct
    // cell (via a throwaway probe table; the final table is rebuilt in
    // Morton order below).
    std::vector<CellCoord> node_cell(n);
    std::vector<std::uint32_t> node_dense(n);
    std::vector<CellCoord> seen;       // dense id → coord, first-seen order
    std::vector<std::uint32_t> count;  // dense id → population
    table_.assign(pow2_at_least(2 * n), {});
    used_.assign(table_.size(), 0);
    const std::size_t mask = table_.size() - 1;
    for (std::size_t v = 0; v < n; ++v) {
        const CellCoord c = cell_of(points[v], cell_side_);
        node_cell[v] = c;
        std::size_t i = CellHash{}(c) & mask;
        while (used_[i] != 0 && table_[i].first != c) i = (i + 1) & mask;
        if (used_[i] == 0) {
            used_[i] = 1;
            table_[i] = {c, static_cast<std::uint32_t>(seen.size())};
            seen.push_back(c);
            count.push_back(0);
        }
        node_dense[v] = table_[i].second;
        ++count[table_[i].second];
    }

    // Morton-order the distinct cells. Coordinates are offset to the
    // grid's min corner before interleaving; spans beyond 32 bits only
    // degrade the ordering (slot locality), never lookups, which go
    // through the exact-coordinate table.
    const std::size_t c = seen.size();
    long long min_cx = seen[0].first, min_cy = seen[0].second;
    for (const CellCoord& cc : seen) {
        min_cx = std::min(min_cx, cc.first);
        min_cy = std::min(min_cy, cc.second);
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order(c);
    for (std::uint32_t k = 0; k < c; ++k) {
        const auto ux = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(seen[k].first) -
            static_cast<std::uint64_t>(min_cx));
        const auto uy = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(seen[k].second) -
            static_cast<std::uint64_t>(min_cy));
        order[k] = {morton(ux, uy), k};
    }
    std::sort(order.begin(), order.end());

    // CSR offsets by counting sort over the ordered cells, then the
    // final exact-match table (coord → Morton rank).
    cells_.resize(c);
    offsets_.assign(c + 1, 0);
    std::vector<std::uint32_t> rank(c);
    for (std::uint32_t k = 0; k < c; ++k) {
        const std::uint32_t dense = order[k].second;
        rank[dense] = k;
        cells_[k] = seen[dense];
        offsets_[k + 1] = offsets_[k] + count[dense];
    }
    std::fill(used_.begin(), used_.end(), 0);
    for (std::uint32_t k = 0; k < c; ++k) {
        std::size_t i = CellHash{}(cells_[k]) & mask;
        while (used_[i] != 0) i = (i + 1) & mask;
        used_[i] = 1;
        table_[i] = {cells_[k], k};
    }

    // Scatter nodes into their slots; v ascends, so ids ascend within
    // each cell — the invariant scan outputs depend on.
    ids_.resize(n);
    xs_.resize(n);
    ys_.resize(n);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t slot = cursor[rank[node_dense[v]]]++;
        ids_[slot] = static_cast<graph::NodeId>(v);
        xs_[slot] = points[v].x;
        ys_[slot] = points[v].y;
    }
}

std::vector<graph::NodeId> CompactCellGrid::nodes_in_rect(double min_x, double min_y,
                                                          double max_x,
                                                          double max_y) const {
    std::vector<graph::NodeId> out;
    if (min_x > max_x || min_y > max_y || cells_.empty()) return out;
    const auto [lo_x, lo_y] = cell_of({min_x, min_y}, cell_side_);
    const auto [hi_x, hi_y] = cell_of({max_x, max_y}, cell_side_);
    // Unsigned widths: the corner cells can sit at opposite ends of the
    // coordinate range, where a signed difference would overflow.
    const auto span_x =
        static_cast<std::uint64_t>(hi_x) - static_cast<std::uint64_t>(lo_x) + 1;
    const auto span_y =
        static_cast<std::uint64_t>(hi_y) - static_cast<std::uint64_t>(lo_y) + 1;
    const bool scan_grid = span_x > cells_.size() || span_y > cells_.size() ||
                           span_x * span_y > cells_.size();
    if (scan_grid) {
        for (std::uint32_t k = 0; k < cells_.size(); ++k) {
            const CellCoord& cell = cells_[k];
            if (cell.first < lo_x || cell.first > hi_x || cell.second < lo_y ||
                cell.second > hi_y) {
                continue;
            }
            out.insert(out.end(), ids_.begin() + offsets_[k],
                       ids_.begin() + offsets_[k + 1]);
        }
    } else {
        for (long long cx = lo_x; cx <= hi_x; ++cx) {
            for (long long cy = lo_y; cy <= hi_y; ++cy) {
                const std::uint32_t k = find_cell({cx, cy});
                if (k == kNoCell) continue;
                out.insert(out.end(), ids_.begin() + offsets_[k],
                           ids_.begin() + offsets_[k + 1]);
            }
        }
    }
    // Cells are disjoint, so sorting alone canonicalizes the result.
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace geospanner::proximity
