// Classic proximity subgraphs of the unit disk graph.
//
// These are the flat structures the paper compares against (Section II /
// Table I): the relative neighborhood graph and Gabriel graph (used by
// GPSR as planar substrates, but with length stretch Θ(n) and Θ(√n)),
// the Yao graph (length spanner, unbounded in-degree, not planar, not a
// hop spanner), Yao+Sink (bounded degree, length spanner), and
// UDel = Del(V) ∩ UDG (the best planar length spanner, but not locally
// computable).
//
// All builders take a unit disk graph: its adjacency defines which pairs
// are "within one unit", so the same code serves the full node set and
// the induced backbone graph ICDS.
#pragma once

#include "graph/geometric_graph.h"

namespace geospanner::proximity {

/// Relative neighborhood graph restricted to UDG edges: keep edge (u, v)
/// iff no third node w has max(|uw|, |wv|) < |uv| (open lune empty).
[[nodiscard]] graph::GeometricGraph build_rng(const graph::GeometricGraph& udg);

/// Gabriel graph restricted to UDG edges: keep edge (u, v) iff the open
/// disk with diameter uv contains no node. Exact predicate.
[[nodiscard]] graph::GeometricGraph build_gabriel(const graph::GeometricGraph& udg);

/// Yao graph with `cones` equal sectors per node: each node keeps its
/// shortest UDG edge in every sector (ties broken by smaller node id);
/// result is the undirected union. cones >= 6 gives a length spanner.
[[nodiscard]] graph::GeometricGraph build_yao(const graph::GeometricGraph& udg, int cones = 8);

/// Theta graph with `cones` equal sectors per node: like Yao, but each
/// node keeps, per sector, the neighbor with the shortest *projection
/// onto the sector's bisector* rather than the shortest Euclidean
/// distance (the θ-graph the paper equates with Yao in Section II; the
/// two differ on which representative a cone keeps). Undirected union.
[[nodiscard]] graph::GeometricGraph build_theta(const graph::GeometricGraph& udg,
                                                int cones = 8);

/// Yao + reverse-Yao ("sink") structure of Li, Wan, Wang: applies a
/// reverse Yao step on each node's incoming Yao edges, bounding total
/// degree by a constant while remaining a length spanner.
[[nodiscard]] graph::GeometricGraph build_yao_sink(const graph::GeometricGraph& udg,
                                                   int cones = 8);

/// UDel: edges of the global Delaunay triangulation no longer than one
/// unit (i.e. present in the UDG).
[[nodiscard]] graph::GeometricGraph build_udel(const graph::GeometricGraph& udg);

}  // namespace geospanner::proximity
