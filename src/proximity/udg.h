// Unit disk graph construction.
//
// The UDG is the ground-truth communication graph of the paper's model:
// two nodes are linked iff their Euclidean distance is at most the
// (common) transmission radius. Built with a uniform grid in O(n + m).
#pragma once

#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::proximity {

/// Builds the unit disk graph over `points` with the given transmission
/// radius (edge iff distance <= radius).
[[nodiscard]] graph::GeometricGraph build_udg(std::vector<geom::Point> points, double radius);

}  // namespace geospanner::proximity
