// Disjoint-set union with path compression and union by size.
//
// Used for connectivity tests of generated unit-disk graphs and for
// verifying that backbones stay connected.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace geospanner::graph {

class UnionFind {
  public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }

    [[nodiscard]] std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];  // Path halving.
            x = parent_[x];
        }
        return x;
    }

    /// Merges the sets of a and b; returns true if they were distinct.
    bool unite(std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return false;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
        --component_deficit_;
        return true;
    }

    [[nodiscard]] bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

    [[nodiscard]] std::size_t component_count() const noexcept {
        return parent_.size() + component_deficit_;
    }

    [[nodiscard]] std::size_t component_size(std::size_t x) { return size_[find(x)]; }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
    std::ptrdiff_t component_deficit_ = 0;  // (#unions performed), negated.
};

}  // namespace geospanner::graph
