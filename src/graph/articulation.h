// Articulation points (cut vertices) of a geometric graph — the
// structural single points of failure that the robustness ablation
// measures behaviorally. Tarjan's low-link algorithm, iterative.
#pragma once

#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::graph {

/// Flags[v] is true iff removing v increases the number of connected
/// components among the remaining nodes. Isolated nodes are never
/// articulation points.
[[nodiscard]] std::vector<bool> articulation_points(const GeometricGraph& g);

/// Count of articulation points restricted to a node subset (e.g. the
/// backbone): members whose removal disconnects the subgraph induced on
/// the subset.
[[nodiscard]] std::size_t articulation_count_within(const GeometricGraph& g,
                                                    const std::vector<bool>& subset);

}  // namespace geospanner::graph
