#include "graph/geometric_graph.h"

#include <algorithm>
#include <cassert>

namespace geospanner::graph {

namespace {

/// Inserts value into a sorted vector, keeping it sorted; returns false if
/// already present.
bool sorted_insert(std::vector<NodeId>& list, NodeId value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it != list.end() && *it == value) return false;
    list.insert(it, value);
    return true;
}

bool sorted_erase(std::vector<NodeId>& list, NodeId value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it == list.end() || *it != value) return false;
    list.erase(it);
    return true;
}

}  // namespace

NodeId GeometricGraph::add_node(geom::Point p) {
    points_.push_back(p);
    adjacency_.emplace_back();
    return static_cast<NodeId>(points_.size() - 1);
}

bool GeometricGraph::add_edge(NodeId u, NodeId v) {
    assert(u != v && u < node_count() && v < node_count());
    if (!sorted_insert(adjacency_[u], v)) return false;
    sorted_insert(adjacency_[v], u);
    ++edge_count_;
    return true;
}

bool GeometricGraph::remove_edge(NodeId u, NodeId v) {
    assert(u < node_count() && v < node_count());
    if (!sorted_erase(adjacency_[u], v)) return false;
    sorted_erase(adjacency_[v], u);
    --edge_count_;
    return true;
}

bool GeometricGraph::has_edge(NodeId u, NodeId v) const {
    if (u >= node_count() || v >= node_count()) return false;
    const auto& list = adjacency_[u];
    return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> GeometricGraph::edges() const {
    std::vector<std::pair<NodeId, NodeId>> result;
    result.reserve(edge_count_);
    for (NodeId u = 0; u < node_count(); ++u) {
        for (const NodeId v : adjacency_[u]) {
            if (u < v) result.emplace_back(u, v);
        }
    }
    return result;
}

GeometricGraph GeometricGraph::from_edges(
    std::vector<geom::Point> points,
    const std::vector<std::pair<NodeId, NodeId>>& sorted_edges) {
    GeometricGraph g(std::move(points));
    assert(std::is_sorted(sorted_edges.begin(), sorted_edges.end()) &&
           std::adjacent_find(sorted_edges.begin(), sorted_edges.end()) ==
               sorted_edges.end());
    std::vector<std::size_t> degree(g.node_count(), 0);
    for (const auto& [u, v] : sorted_edges) {
        assert(u < v && v < g.node_count());
        ++degree[u];
        ++degree[v];
    }
    for (NodeId v = 0; v < g.node_count(); ++v) g.adjacency_[v].reserve(degree[v]);
    // Lower neighbors first (u ascends across the sorted list for any
    // fixed v), then higher neighbors (v ascends within each u) — and
    // every lower neighbor is < the node < every higher neighbor, so
    // each adjacency list comes out sorted without a merge.
    for (const auto& [u, v] : sorted_edges) {
        g.adjacency_[v].push_back(u);
    }
    for (const auto& [u, v] : sorted_edges) {
        g.adjacency_[u].push_back(v);
    }
    g.edge_count_ = sorted_edges.size();
    return g;
}

bool operator==(const GeometricGraph& a, const GeometricGraph& b) {
    return a.points_ == b.points_ && a.adjacency_ == b.adjacency_;
}

}  // namespace geospanner::graph
