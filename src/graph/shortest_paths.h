// Shortest paths on geometric graphs.
//
// The paper's quality measures are ratios of shortest-path costs between
// a topology and the original unit-disk graph, under two cost models:
// hop count (BFS) and Euclidean length (Dijkstra). A power cost model
// (sum of |edge|^beta, the energy metric of Li et al. [12]) is provided
// as well for the power-stretch extension.
#pragma once

#include <limits>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::graph {

inline constexpr int kUnreachableHops = -1;
inline constexpr double kUnreachableLength = std::numeric_limits<double>::infinity();

/// Hop distance from src to every node (kUnreachableHops if disconnected).
[[nodiscard]] std::vector<int> bfs_hops(const GeometricGraph& g, NodeId src);

/// Euclidean-length distance from src to every node.
[[nodiscard]] std::vector<double> dijkstra_lengths(const GeometricGraph& g, NodeId src);

/// Power-cost distance: each edge costs |uv|^beta.
[[nodiscard]] std::vector<double> dijkstra_powers(const GeometricGraph& g, NodeId src,
                                                  double beta);

/// Parent array of a BFS tree rooted at src (kInvalidNode for src itself
/// and for unreachable nodes). Used to extract explicit min-hop paths.
[[nodiscard]] std::vector<NodeId> bfs_tree(const GeometricGraph& g, NodeId src);

/// Explicit min-hop path src -> dst (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_hop_path(const GeometricGraph& g, NodeId src,
                                                    NodeId dst);

/// Explicit min-length path src -> dst (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_length_path(const GeometricGraph& g, NodeId src,
                                                       NodeId dst);

/// True iff all nodes are reachable from node 0 (vacuously true for empty).
[[nodiscard]] bool is_connected(const GeometricGraph& g);

/// True iff all nodes of `subset` lie in one connected component of g's
/// subgraph induced on `subset` (membership flags, length node_count()).
[[nodiscard]] bool is_connected_on(const GeometricGraph& g, const std::vector<bool>& subset);

}  // namespace geospanner::graph
