#include "graph/articulation.h"

#include <algorithm>

#include "graph/shortest_paths.h"

namespace geospanner::graph {

std::vector<bool> articulation_points(const GeometricGraph& g) {
    const auto n = static_cast<NodeId>(g.node_count());
    std::vector<bool> result(n, false);
    std::vector<int> disc(n, -1);
    std::vector<int> low(n, 0);
    int timer = 0;

    // Iterative Tarjan DFS (explicit stack; recursion would overflow on
    // long paths).
    struct Frame {
        NodeId v;
        NodeId parent;
        std::size_t next_index;
        std::size_t children;
    };
    for (NodeId root = 0; root < n; ++root) {
        if (disc[root] != -1) continue;
        std::vector<Frame> stack{{root, kInvalidNode, 0, 0}};
        disc[root] = low[root] = timer++;
        while (!stack.empty()) {
            Frame& frame = stack.back();
            const auto nbrs = g.neighbors(frame.v);
            if (frame.next_index < nbrs.size()) {
                const NodeId u = nbrs[frame.next_index++];
                if (u == frame.parent) continue;
                if (disc[u] != -1) {
                    low[frame.v] = std::min(low[frame.v], disc[u]);
                } else {
                    ++frame.children;
                    disc[u] = low[u] = timer++;
                    stack.push_back({u, frame.v, 0, 0});
                }
            } else {
                const Frame done = frame;
                stack.pop_back();
                if (!stack.empty()) {
                    Frame& up = stack.back();
                    low[up.v] = std::min(low[up.v], low[done.v]);
                    if (up.parent != kInvalidNode && low[done.v] >= disc[up.v]) {
                        result[up.v] = true;
                    }
                }
                if (done.parent == kInvalidNode && done.children >= 2) {
                    result[done.v] = true;
                }
            }
        }
    }
    return result;
}

std::size_t articulation_count_within(const GeometricGraph& g,
                                      const std::vector<bool>& subset) {
    // Induce the subgraph on the subset and count its articulation
    // points among members.
    GeometricGraph induced(g.points());
    for (const auto& [u, v] : g.edges()) {
        if (subset[u] && subset[v]) induced.add_edge(u, v);
    }
    const auto cuts = articulation_points(induced);
    std::size_t count = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        count += (subset[v] && cuts[v]) ? 1 : 0;
    }
    return count;
}

}  // namespace geospanner::graph
