#include "graph/planarity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "geom/predicates.h"

namespace geospanner::graph {

namespace {

struct CellKey {
    long long x = 0;
    long long y = 0;
    friend bool operator==(CellKey, CellKey) = default;
};

struct CellKeyHash {
    std::size_t operator()(CellKey k) const noexcept {
        return std::hash<long long>{}(k.x * 1000003LL + k.y);
    }
};

}  // namespace

std::vector<EdgeCrossing> crossing_edge_pairs(const GeometricGraph& g, std::size_t limit) {
    std::vector<EdgeCrossing> crossings;
    const auto edge_list = g.edges();
    if (edge_list.size() < 2) return crossings;

    // Bucket edges on a uniform grid whose cell size is the longest edge,
    // so any two crossing edges share at least one overlapped cell.
    double cell = 0.0;
    for (const auto& [u, v] : edge_list) cell = std::max(cell, g.edge_length(u, v));
    if (cell <= 0.0) return crossings;

    std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> buckets;
    for (std::size_t i = 0; i < edge_list.size(); ++i) {
        const auto [u, v] = edge_list[i];
        const geom::Point a = g.point(u);
        const geom::Point b = g.point(v);
        const auto x0 = static_cast<long long>(std::floor(std::min(a.x, b.x) / cell));
        const auto x1 = static_cast<long long>(std::floor(std::max(a.x, b.x) / cell));
        const auto y0 = static_cast<long long>(std::floor(std::min(a.y, b.y) / cell));
        const auto y1 = static_cast<long long>(std::floor(std::max(a.y, b.y) / cell));
        for (long long cx = x0; cx <= x1; ++cx) {
            for (long long cy = y0; cy <= y1; ++cy) {
                buckets[{cx, cy}].push_back(i);
            }
        }
    }

    std::set<std::pair<std::size_t, std::size_t>> reported;
    for (const auto& [key, members] : buckets) {
        for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                const auto i = std::min(members[a], members[b]);
                const auto j = std::max(members[a], members[b]);
                const auto [u1, v1] = edge_list[i];
                const auto [u2, v2] = edge_list[j];
                if (u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2) continue;
                if (reported.contains({i, j})) continue;
                if (geom::segments_properly_cross(g.point(u1), g.point(v1), g.point(u2),
                                                  g.point(v2))) {
                    reported.insert({i, j});
                    crossings.push_back({edge_list[i], edge_list[j]});
                    if (limit != 0 && crossings.size() >= limit) return crossings;
                }
            }
        }
    }
    return crossings;
}

}  // namespace geospanner::graph
