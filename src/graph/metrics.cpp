#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <cassert>

#include "graph/shortest_paths.h"

namespace geospanner::graph {

DegreeStats degree_stats(const GeometricGraph& g) {
    DegreeStats stats;
    if (g.node_count() == 0) return stats;
    std::size_t total = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::size_t d = g.degree(v);
        stats.max = std::max(stats.max, d);
        total += d;
    }
    stats.avg = static_cast<double>(total) / static_cast<double>(g.node_count());
    return stats;
}

namespace {

/// Shared stretch loop over a per-source distance oracle. `Dist` maps a
/// source node to a vector of costs; `unreachable(x)` tests reachability.
template <typename DistB, typename DistT, typename Value>
StretchStats stretch_impl(const GeometricGraph& base, const GeometricGraph& topo,
                          DistB base_dist, DistT topo_dist, Value unreachable_value,
                          double min_euclidean) {
    assert(base.node_count() == topo.node_count());
    StretchStats stats;
    const double min_d2 = min_euclidean * min_euclidean;
    const auto n = static_cast<NodeId>(base.node_count());
    for (NodeId u = 0; u < n; ++u) {
        const auto db = base_dist(base, u);
        const auto dt = topo_dist(topo, u);
        for (NodeId v = u + 1; v < n; ++v) {
            if (db[v] == unreachable_value) continue;  // Not comparable.
            if (static_cast<double>(db[v]) == 0.0) continue;  // Coincident points.
            if (geom::squared_distance(base.point(u), base.point(v)) <= min_d2) continue;
            ++stats.pair_count;
            if (dt[v] == unreachable_value) {
                ++stats.disconnected_pairs;
                continue;
            }
            const double ratio = static_cast<double>(dt[v]) / static_cast<double>(db[v]);
            stats.avg += ratio;
            stats.max = std::max(stats.max, ratio);
        }
    }
    const std::size_t measured = stats.pair_count - stats.disconnected_pairs;
    if (measured > 0) stats.avg /= static_cast<double>(measured);
    return stats;
}

}  // namespace

StretchStats length_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                            double min_euclidean) {
    return stretch_impl(
        base, topo, [](const GeometricGraph& g, NodeId s) { return dijkstra_lengths(g, s); },
        [](const GeometricGraph& g, NodeId s) { return dijkstra_lengths(g, s); },
        kUnreachableLength, min_euclidean);
}

StretchStats hop_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                         double min_euclidean) {
    return stretch_impl(
        base, topo, [](const GeometricGraph& g, NodeId s) { return bfs_hops(g, s); },
        [](const GeometricGraph& g, NodeId s) { return bfs_hops(g, s); }, kUnreachableHops,
        min_euclidean);
}

StretchStats power_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                           double beta, double min_euclidean) {
    const auto oracle = [beta](const GeometricGraph& g, NodeId s) {
        return dijkstra_powers(g, s, beta);
    };
    return stretch_impl(base, topo, oracle, oracle, kUnreachableLength, min_euclidean);
}

StretchWitness length_stretch_witness(const GeometricGraph& base,
                                      const GeometricGraph& topo, double min_euclidean) {
    assert(base.node_count() == topo.node_count());
    StretchWitness witness;
    const double min_d2 = min_euclidean * min_euclidean;
    const auto n = static_cast<NodeId>(base.node_count());
    for (NodeId u = 0; u < n; ++u) {
        const auto db = dijkstra_lengths(base, u);
        const auto dt = dijkstra_lengths(topo, u);
        for (NodeId v = u + 1; v < n; ++v) {
            if (db[v] == kUnreachableLength || db[v] == 0.0) continue;
            if (dt[v] == kUnreachableLength) continue;
            if (geom::squared_distance(base.point(u), base.point(v)) <= min_d2) continue;
            const double ratio = dt[v] / db[v];
            if (ratio > witness.ratio) {
                witness = {u, v, ratio, db[v], dt[v]};
            }
        }
    }
    return witness;
}

PowerAssignment power_assignment(const GeometricGraph& topo, double beta) {
    PowerAssignment result;
    if (topo.node_count() == 0) return result;
    for (NodeId v = 0; v < topo.node_count(); ++v) {
        double farthest = 0.0;
        for (const NodeId u : topo.neighbors(v)) {
            farthest = std::max(farthest, topo.edge_length(v, u));
        }
        const double p = farthest == 0.0 ? 0.0 : std::pow(farthest, beta);
        result.total += p;
        result.max = std::max(result.max, p);
    }
    result.avg = result.total / static_cast<double>(topo.node_count());
    return result;
}

}  // namespace geospanner::graph
