#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <cassert>

#include "engine/thread_pool.h"
#include "graph/shortest_paths.h"

namespace geospanner::graph {

DegreeStats degree_stats(const GeometricGraph& g) {
    DegreeStats stats;
    if (g.node_count() == 0) return stats;
    std::size_t total = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::size_t d = g.degree(v);
        stats.max = std::max(stats.max, d);
        total += d;
    }
    stats.avg = static_cast<double>(total) / static_cast<double>(g.node_count());
    return stats;
}

namespace {

/// Per-source partial of the stretch accumulation: one slot per source
/// node, written only by the lane that owns the source.
struct SourcePartial {
    double sum = 0.0;
    double max = 0.0;
    std::size_t pair_count = 0;
    std::size_t disconnected_pairs = 0;
};

/// Runs body(u) for every source node, on the pool when one is given.
template <typename Body>
void for_each_source(std::size_t n, engine::ThreadPool* pool, const Body& body) {
    if (pool != nullptr && n > 1) {
        pool->parallel_for(0, n, body);
    } else {
        for (std::size_t u = 0; u < n; ++u) body(u);
    }
}

/// Shared stretch loop over a per-source distance oracle. `Dist` maps a
/// source node to a vector of costs; `unreachable_value` marks
/// unreachable targets. Each source accumulates into its own partial;
/// partials merge in source order on the calling thread, so any thread
/// count (including none) produces bit-identical results.
template <typename DistB, typename DistT, typename Value>
StretchStats stretch_impl(const GeometricGraph& base, const GeometricGraph& topo,
                          DistB base_dist, DistT topo_dist, Value unreachable_value,
                          double min_euclidean, engine::ThreadPool* pool) {
    assert(base.node_count() == topo.node_count());
    const double min_d2 = min_euclidean * min_euclidean;
    const auto n = base.node_count();
    std::vector<SourcePartial> partials(n);
    for_each_source(n, pool, [&](std::size_t source) {
        const auto u = static_cast<NodeId>(source);
        const auto db = base_dist(base, u);
        const auto dt = topo_dist(topo, u);
        SourcePartial p;
        for (NodeId v = u + 1; v < n; ++v) {
            if (db[v] == unreachable_value) continue;  // Not comparable.
            if (static_cast<double>(db[v]) == 0.0) continue;  // Coincident points.
            if (geom::squared_distance(base.point(u), base.point(v)) <= min_d2) continue;
            ++p.pair_count;
            if (dt[v] == unreachable_value) {
                ++p.disconnected_pairs;
                continue;
            }
            const double ratio = static_cast<double>(dt[v]) / static_cast<double>(db[v]);
            p.sum += ratio;
            p.max = std::max(p.max, ratio);
        }
        partials[source] = p;
    });
    StretchStats stats;
    for (const SourcePartial& p : partials) {
        stats.pair_count += p.pair_count;
        stats.disconnected_pairs += p.disconnected_pairs;
        stats.avg += p.sum;
        stats.max = std::max(stats.max, p.max);
    }
    const std::size_t measured = stats.pair_count - stats.disconnected_pairs;
    if (measured > 0) stats.avg /= static_cast<double>(measured);
    return stats;
}

}  // namespace

StretchStats length_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                            double min_euclidean, engine::ThreadPool* pool) {
    return stretch_impl(
        base, topo, [](const GeometricGraph& g, NodeId s) { return dijkstra_lengths(g, s); },
        [](const GeometricGraph& g, NodeId s) { return dijkstra_lengths(g, s); },
        kUnreachableLength, min_euclidean, pool);
}

StretchStats hop_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                         double min_euclidean, engine::ThreadPool* pool) {
    return stretch_impl(
        base, topo, [](const GeometricGraph& g, NodeId s) { return bfs_hops(g, s); },
        [](const GeometricGraph& g, NodeId s) { return bfs_hops(g, s); }, kUnreachableHops,
        min_euclidean, pool);
}

StretchStats power_stretch(const GeometricGraph& base, const GeometricGraph& topo,
                           double beta, double min_euclidean, engine::ThreadPool* pool) {
    const auto oracle = [beta](const GeometricGraph& g, NodeId s) {
        return dijkstra_powers(g, s, beta);
    };
    return stretch_impl(base, topo, oracle, oracle, kUnreachableLength, min_euclidean,
                        pool);
}

StretchWitness length_stretch_witness(const GeometricGraph& base,
                                      const GeometricGraph& topo, double min_euclidean,
                                      engine::ThreadPool* pool) {
    assert(base.node_count() == topo.node_count());
    const double min_d2 = min_euclidean * min_euclidean;
    const auto n = base.node_count();
    // Per-source best pair, merged in source order with a strict ">" so
    // the earliest maximizing (u, v) wins — exactly the pair the old
    // sequential u-major scan reported.
    std::vector<StretchWitness> partials(n);
    for_each_source(n, pool, [&](std::size_t source) {
        const auto u = static_cast<NodeId>(source);
        const auto db = dijkstra_lengths(base, u);
        const auto dt = dijkstra_lengths(topo, u);
        StretchWitness best;
        for (NodeId v = u + 1; v < n; ++v) {
            if (db[v] == kUnreachableLength || db[v] == 0.0) continue;
            if (dt[v] == kUnreachableLength) continue;
            if (geom::squared_distance(base.point(u), base.point(v)) <= min_d2) continue;
            const double ratio = dt[v] / db[v];
            if (ratio > best.ratio) {
                best = {u, v, ratio, db[v], dt[v]};
            }
        }
        partials[source] = best;
    });
    StretchWitness witness;
    for (const StretchWitness& best : partials) {
        if (best.ratio > witness.ratio) witness = best;
    }
    return witness;
}

PowerAssignment power_assignment(const GeometricGraph& topo, double beta) {
    PowerAssignment result;
    if (topo.node_count() == 0) return result;
    for (NodeId v = 0; v < topo.node_count(); ++v) {
        double farthest = 0.0;
        for (const NodeId u : topo.neighbors(v)) {
            farthest = std::max(farthest, topo.edge_length(v, u));
        }
        const double p = farthest == 0.0 ? 0.0 : std::pow(farthest, beta);
        result.total += p;
        result.max = std::max(result.max, p);
    }
    result.avg = result.total / static_cast<double>(topo.node_count());
    return result;
}

}  // namespace geospanner::graph
