// Geometric graph: a fixed set of plane points plus an undirected edge set.
//
// Every topology this library builds — UDG, RNG, Gabriel, Yao, Delaunay
// variants, CDS backbones — is a GeometricGraph over the same node set, so
// they can be compared edge-for-edge and measured with the same metrics.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace geospanner::graph {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Undirected graph on a fixed point set. Invariants: adjacency lists are
/// sorted, duplicate-free, and symmetric (u in adj[v] iff v in adj[u]);
/// no self-loops.
class GeometricGraph {
  public:
    GeometricGraph() = default;
    explicit GeometricGraph(std::vector<geom::Point> points)
        : points_(std::move(points)), adjacency_(points_.size()) {}

    [[nodiscard]] std::size_t node_count() const noexcept { return points_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

    [[nodiscard]] geom::Point point(NodeId v) const { return points_[v]; }
    [[nodiscard]] const std::vector<geom::Point>& points() const noexcept { return points_; }

    [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
        return adjacency_[v];
    }
    [[nodiscard]] std::size_t degree(NodeId v) const { return adjacency_[v].size(); }

    /// Moves node v to `p`. Edges are untouched: callers maintaining a
    /// proximity graph (UDG) must re-derive the incident edge set
    /// themselves (see dynamic::DynamicSpanner).
    void set_point(NodeId v, geom::Point p) { points_[v] = p; }

    /// Appends an isolated node at `p` and returns its id (the new
    /// largest id, so existing ids and edges are undisturbed).
    NodeId add_node(geom::Point p);

    /// Adds the undirected edge {u, v}; no-op if already present.
    /// Returns true if the edge was inserted. Precondition: u != v.
    bool add_edge(NodeId u, NodeId v);

    /// Removes the undirected edge {u, v}; returns true if it was present.
    bool remove_edge(NodeId u, NodeId v);

    [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

    [[nodiscard]] double edge_length(NodeId u, NodeId v) const {
        return geom::distance(points_[u], points_[v]);
    }

    /// All edges as (u, v) pairs with u < v, in lexicographic order.
    [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

    /// Bulk construction from a lexicographically sorted, duplicate-free
    /// edge list with u < v per pair — the inverse of edges(). Equal to
    /// add_edge-ing every pair, but O(nodes + edges) instead of paying a
    /// sorted insert per edge; the merge step of the tile-sharded
    /// builder assembles million-edge graphs through this.
    [[nodiscard]] static GeometricGraph from_edges(
        std::vector<geom::Point> points,
        const std::vector<std::pair<NodeId, NodeId>>& sorted_edges);

    /// Structural equality: same points, same edge set.
    friend bool operator==(const GeometricGraph& a, const GeometricGraph& b);

  private:
    std::vector<geom::Point> points_;
    std::vector<std::vector<NodeId>> adjacency_;
    std::size_t edge_count_ = 0;
};

}  // namespace geospanner::graph
