// k-hop neighborhoods N_k(v): all nodes within k hops of v, including v
// itself (the paper's notation for the local knowledge available to a
// node after k rounds of neighbor exchange).
#pragma once

#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::graph {

/// Nodes within `k` hops of v (including v), sorted by id.
[[nodiscard]] std::vector<NodeId> k_hop_neighborhood(const GeometricGraph& g, NodeId v,
                                                     int k);

}  // namespace geospanner::graph
