#include "graph/khop.h"

#include <algorithm>
#include <queue>

namespace geospanner::graph {

std::vector<NodeId> k_hop_neighborhood(const GeometricGraph& g, NodeId v, int k) {
    std::vector<NodeId> result{v};
    if (k <= 0) return result;
    std::vector<int> depth(g.node_count(), -1);
    depth[v] = 0;
    std::queue<NodeId> frontier;
    frontier.push(v);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        if (depth[u] == k) continue;
        for (const NodeId w : g.neighbors(u)) {
            if (depth[w] == -1) {
                depth[w] = depth[u] + 1;
                result.push_back(w);
                frontier.push(w);
            }
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

}  // namespace geospanner::graph
