// Geometric planarity of an embedded graph.
//
// The paper's planarity claim is about the *straight-line embedding*: no
// two backbone links cross in the plane (a requirement of face/perimeter
// routing). That is what we check — not abstract graph planarity.
#pragma once

#include <utility>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::graph {

/// An unordered pair of edges that properly cross.
using EdgeCrossing =
    std::pair<std::pair<NodeId, NodeId>, std::pair<NodeId, NodeId>>;

/// All pairs of edges that properly cross (interior intersection, no
/// shared endpoint), up to `limit` pairs (0 = unlimited). Uses a uniform
/// grid over edge bounding boxes to avoid the full quadratic pair scan.
[[nodiscard]] std::vector<EdgeCrossing> crossing_edge_pairs(const GeometricGraph& g,
                                                            std::size_t limit = 0);

/// True iff the straight-line embedding of g has no proper edge crossing.
[[nodiscard]] inline bool is_plane_embedding(const GeometricGraph& g) {
    return crossing_edge_pairs(g, 1).empty();
}

}  // namespace geospanner::graph
