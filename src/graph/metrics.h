// Topology quality measurements (the quantities in the paper's Table I).
//
// A topology T is compared against the base unit-disk graph G on the same
// node set: for every ordered-once pair (u < v) connected in G we compute
// the ratio of shortest-path costs T/G under hop, length, and power cost
// models. avg/max over pairs give the spanning (stretch) ratios; degree
// statistics and edge counts complete a Table I row.
#pragma once

#include <cstddef>

#include "graph/geometric_graph.h"

namespace geospanner::engine {
class ThreadPool;
}  // namespace geospanner::engine

namespace geospanner::graph {

struct DegreeStats {
    std::size_t max = 0;
    double avg = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const GeometricGraph& g);

struct StretchStats {
    double avg = 0.0;
    double max = 0.0;
    std::size_t pair_count = 0;           ///< pairs connected in the base graph
    std::size_t disconnected_pairs = 0;   ///< of those, pairs not connected in topo
};

/// Euclidean length stretch of `topo` relative to `base`. Pairs at base
/// distance 0 (coincident points) are skipped, as are pairs closer than
/// `min_euclidean` (the paper measures stretch only for nodes more than
/// one transmission radius apart — nearby pairs trivially inflate the
/// ratio).
///
/// All stretch functions accept an optional ThreadPool that distributes
/// the per-source Dijkstra/BFS sweeps over its lanes. Each source writes
/// an index-owned partial merged in source order on the calling thread,
/// so the result is identical for any thread count (nullptr included).
[[nodiscard]] StretchStats length_stretch(const GeometricGraph& base,
                                          const GeometricGraph& topo,
                                          double min_euclidean = 0.0,
                                          engine::ThreadPool* pool = nullptr);

/// Hop-count stretch of `topo` relative to `base`.
[[nodiscard]] StretchStats hop_stretch(const GeometricGraph& base,
                                       const GeometricGraph& topo,
                                       double min_euclidean = 0.0,
                                       engine::ThreadPool* pool = nullptr);

/// Power stretch with exponent beta (energy model: edge cost |uv|^beta).
[[nodiscard]] StretchStats power_stretch(const GeometricGraph& base,
                                         const GeometricGraph& topo, double beta,
                                         double min_euclidean = 0.0,
                                         engine::ThreadPool* pool = nullptr);

/// The node pair realizing the maximum length stretch, with its ratio —
/// a checkable certificate for the reported maximum (ratio 0 when no
/// pair qualifies).
struct StretchWitness {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    double ratio = 0.0;
    double base_distance = 0.0;
    double topo_distance = 0.0;
};

[[nodiscard]] StretchWitness length_stretch_witness(const GeometricGraph& base,
                                                    const GeometricGraph& topo,
                                                    double min_euclidean = 0.0,
                                                    engine::ThreadPool* pool = nullptr);

/// Topology-control power assignment: each node's transmission power is
/// set to reach its farthest neighbor in the topology, p(v) =
/// max |uv|^beta over incident edges (0 for isolated nodes). Sparser
/// topologies with shorter edges let nodes radio at lower power — the
/// energy argument behind topology control.
struct PowerAssignment {
    double total = 0.0;
    double max = 0.0;
    double avg = 0.0;
};

[[nodiscard]] PowerAssignment power_assignment(const GeometricGraph& topo, double beta);

}  // namespace geospanner::graph
