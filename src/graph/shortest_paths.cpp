#include "graph/shortest_paths.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace geospanner::graph {

std::vector<int> bfs_hops(const GeometricGraph& g, NodeId src) {
    std::vector<int> dist(g.node_count(), kUnreachableHops);
    std::queue<NodeId> frontier;
    dist[src] = 0;
    frontier.push(src);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (const NodeId v : g.neighbors(u)) {
            if (dist[v] == kUnreachableHops) {
                dist[v] = dist[u] + 1;
                frontier.push(v);
            }
        }
    }
    return dist;
}

std::vector<NodeId> bfs_tree(const GeometricGraph& g, NodeId src) {
    std::vector<NodeId> parent(g.node_count(), kInvalidNode);
    std::vector<char> seen(g.node_count(), 0);
    std::queue<NodeId> frontier;
    seen[src] = 1;
    frontier.push(src);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (const NodeId v : g.neighbors(u)) {
            if (!seen[v]) {
                seen[v] = 1;
                parent[v] = u;
                frontier.push(v);
            }
        }
    }
    return parent;
}

namespace {

/// Generic Dijkstra over a per-edge cost functor.
template <typename Cost>
std::vector<double> dijkstra_impl(const GeometricGraph& g, NodeId src, Cost cost) {
    std::vector<double> dist(g.node_count(), kUnreachableLength);
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[src] = 0.0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u]) continue;  // Stale entry.
        for (const NodeId v : g.neighbors(u)) {
            const double nd = d + cost(u, v);
            if (nd < dist[v]) {
                dist[v] = nd;
                heap.emplace(nd, v);
            }
        }
    }
    return dist;
}

std::vector<NodeId> extract_path(const std::vector<NodeId>& parent, NodeId src, NodeId dst) {
    std::vector<NodeId> path;
    if (parent[dst] == kInvalidNode && dst != src) return path;
    for (NodeId v = dst; v != kInvalidNode; v = parent[v]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    assert(path.front() == src);
    return path;
}

}  // namespace

std::vector<double> dijkstra_lengths(const GeometricGraph& g, NodeId src) {
    return dijkstra_impl(g, src, [&g](NodeId u, NodeId v) { return g.edge_length(u, v); });
}

std::vector<double> dijkstra_powers(const GeometricGraph& g, NodeId src, double beta) {
    return dijkstra_impl(
        g, src, [&g, beta](NodeId u, NodeId v) { return std::pow(g.edge_length(u, v), beta); });
}

std::vector<NodeId> shortest_hop_path(const GeometricGraph& g, NodeId src, NodeId dst) {
    if (src == dst) return {src};
    return extract_path(bfs_tree(g, src), src, dst);
}

std::vector<NodeId> shortest_length_path(const GeometricGraph& g, NodeId src, NodeId dst) {
    if (src == dst) return {src};
    // Dijkstra with parent tracking.
    std::vector<double> dist(g.node_count(), kUnreachableLength);
    std::vector<NodeId> parent(g.node_count(), kInvalidNode);
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[src] = 0.0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u]) continue;
        for (const NodeId v : g.neighbors(u)) {
            const double nd = d + g.edge_length(u, v);
            if (nd < dist[v]) {
                dist[v] = nd;
                parent[v] = u;
                heap.emplace(nd, v);
            }
        }
    }
    return extract_path(parent, src, dst);
}

bool is_connected(const GeometricGraph& g) {
    if (g.node_count() == 0) return true;
    const auto hops = bfs_hops(g, 0);
    return std::none_of(hops.begin(), hops.end(),
                        [](int h) { return h == kUnreachableHops; });
}

bool is_connected_on(const GeometricGraph& g, const std::vector<bool>& subset) {
    assert(subset.size() == g.node_count());
    const auto first = std::find(subset.begin(), subset.end(), true);
    if (first == subset.end()) return true;
    const auto start = static_cast<NodeId>(first - subset.begin());

    std::vector<char> seen(g.node_count(), 0);
    std::queue<NodeId> frontier;
    seen[start] = 1;
    frontier.push(start);
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (const NodeId v : g.neighbors(u)) {
            if (!seen[v] && subset[v]) {
                seen[v] = 1;
                ++reached;
                frontier.push(v);
            }
        }
    }
    const auto total = static_cast<std::size_t>(std::count(subset.begin(), subset.end(), true));
    return reached == total;
}

}  // namespace geospanner::graph
