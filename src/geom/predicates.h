// Robust geometric predicates.
//
// Every topology in this library is defined by emptiness tests on circles
// (Delaunay circumcircles, Gabriel diametral circles, RNG lunes) and by
// orientation tests (planarity, face routing, segment intersection). These
// determinant signs must be *exact*: an incorrectly classified in-circle
// test can make two nodes disagree on whether a localized Delaunay
// triangle exists, which would desynchronize the distributed protocol.
//
// Each predicate first evaluates the determinant in double precision with
// a forward error bound (Shewchuk's static filter); only if the result is
// smaller than the bound does it fall back to exact expansion arithmetic.
#pragma once

#include <cstdint>

#include "geom/vec2.h"

namespace geospanner::geom {

/// Tallies of the two-tier predicate path: how many orientation /
/// in-circle / diametral tests the float filter decided outright
/// (`*_fast`) versus how many fell through to expansion arithmetic
/// (`*_exact`). On well-spread inputs the exact share is well under a
/// percent; a rising share flags near-degenerate geometry (cocircular
/// clusters, duplicated points) where construction slows down for
/// correctness, not for lack of tuning.
struct PredicateCounters {
    std::uint64_t orient_fast = 0;
    std::uint64_t orient_exact = 0;
    std::uint64_t incircle_fast = 0;
    std::uint64_t incircle_exact = 0;
    std::uint64_t diametral_fast = 0;
    std::uint64_t diametral_exact = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
        return orient_fast + orient_exact + incircle_fast + incircle_exact +
               diametral_fast + diametral_exact;
    }
    [[nodiscard]] std::uint64_t exact_total() const noexcept {
        return orient_exact + incircle_exact + diametral_exact;
    }
};

/// Counters aggregated over every thread that has evaluated predicates
/// since the last reset (exited threads' tallies are retained). Each
/// thread counts into its own cache line, so the hot path stays
/// contention-free; this call walks the thread registry under a lock.
[[nodiscard]] PredicateCounters predicate_counters();

/// Zeroes the aggregate view. Counts a concurrently running thread adds
/// during the reset may land on either side of it; callers measuring a
/// workload should quiesce worker threads first (the engine's stages
/// all join before returning).
void reset_predicate_counters();

/// The expansion-arithmetic tier on its own, exported so the degenerate
/// suite and the hot-path bench can check the filtered predicates against
/// it directly. orient_sign / incircle_ccw call these exact paths when
/// the filter cannot certify a sign; incircle_sign_exact shares
/// incircle_ccw's counter-clockwise precondition.
[[nodiscard]] int orient_sign_exact(Point a, Point b, Point c);
[[nodiscard]] int incircle_sign_exact(Point a, Point b, Point c, Point d);

enum class Orientation : int {
    kClockwise = -1,
    kCollinear = 0,
    kCounterClockwise = 1,
};

/// Sign of the signed area of triangle (a, b, c): positive iff the points
/// make a left (counter-clockwise) turn. Exact.
[[nodiscard]] Orientation orient(Point a, Point b, Point c);

/// Signed-area sign as an int in {-1, 0, +1}. Exact.
[[nodiscard]] int orient_sign(Point a, Point b, Point c);

/// Position of d relative to the circle through (a, b, c), which must be
/// in counter-clockwise order: +1 inside, 0 on the circle, -1 outside.
/// Exact. Precondition: orient(a,b,c) == kCounterClockwise.
[[nodiscard]] int incircle_ccw(Point a, Point b, Point c, Point d);

/// Orientation-independent version: +1 iff d is strictly inside the circle
/// through a, b, c (any orientation). Returns -1 for collinear a, b, c
/// (the "circle" is a line; nothing is inside). Exact.
[[nodiscard]] int in_circumcircle(Point a, Point b, Point c, Point d);

/// +1 iff p is strictly inside the circle with diameter (u, v), 0 on it,
/// -1 outside; i.e. the sign of -dot(u-p, v-p). Exact. This is the Gabriel
/// graph emptiness test.
[[nodiscard]] int in_diametral_circle(Point u, Point v, Point p);

/// True iff closed segments [p1,p2] and [q1,q2] *properly* cross: they
/// intersect in exactly one point interior to both. Shared endpoints and
/// collinear overlap do not count as proper crossings (two backbone edges
/// sharing a node are not a planarity violation). Exact.
[[nodiscard]] bool segments_properly_cross(Point p1, Point p2, Point q1, Point q2);

/// True iff segments [p1,p2] and [q1,q2] intersect at all (including
/// endpoint touching and collinear overlap). Exact.
[[nodiscard]] bool segments_intersect(Point p1, Point p2, Point q1, Point q2);

/// True iff c lies on the closed segment [a, b]. Exact.
[[nodiscard]] bool on_segment(Point a, Point b, Point c);

// --- Exact ordering of events along a directed segment (p, q). ---
//
// Face routing advances along the source-destination segment through a
// sequence of edge crossings and on-segment nodes. When two such events
// are separated by less than floating-point precision (e.g. the segment
// passes within one ulp of a vertex), rounded distances cannot order
// them and the traversal stalls; these comparators order the events'
// parameters along (p, q) exactly.

/// Orders the crossing points of segments (a1, b1) and (a2, b2) with the
/// directed line (p, q). Both segments must properly cross (p, q).
/// Returns -1/0/+1 as the first crossing is before/at/after the second
/// along p -> q. Exact.
[[nodiscard]] int compare_crossings_along(Point p, Point q, Point a1, Point b1, Point a2,
                                          Point b2);

/// Orders the crossing point of segment (a, b) — which properly crosses
/// (p, q) — against point w, which lies on the line through (p, q).
/// Returns -1/0/+1 as the crossing is before/at/after w along p -> q.
/// Exact.
[[nodiscard]] int compare_crossing_vs_point_along(Point p, Point q, Point a, Point b,
                                                  Point w);

/// Orders two points on the line through (p, q) along p -> q. Exact.
[[nodiscard]] int compare_points_along(Point p, Point q, Point w1, Point w2);

}  // namespace geospanner::geom
