#include "geom/expansion.h"

#include <algorithm>

namespace geospanner::geom::exact {

namespace {

/// TwoSum specialisation valid when |a| >= |b| (Dekker's FastTwoSum).
void fast_two_sum(double a, double b, double& hi, double& lo) noexcept {
    hi = a + b;
    const double bv = hi - a;
    lo = b - bv;
}

}  // namespace

Expansion add(const Expansion& e, const Expansion& f) {
    if (e.empty()) return f;
    if (f.empty()) return e;

    // Merge the two component streams by increasing magnitude, then sweep a
    // running TwoSum accumulator over the merged stream, emitting the exact
    // round-off terms (Shewchuk's fast_expansion_sum_zeroelim).
    Expansion g;
    g.reserve(e.size() + f.size());
    std::merge(e.begin(), e.end(), f.begin(), f.end(), std::back_inserter(g),
               [](double a, double b) { return std::fabs(a) < std::fabs(b); });

    Expansion h;
    h.reserve(g.size());
    double q = g[0];
    for (std::size_t i = 1; i < g.size(); ++i) {
        double qnew = 0.0;
        double err = 0.0;
        two_sum(q, g[i], qnew, err);
        if (err != 0.0) h.push_back(err);
        q = qnew;
    }
    if (q != 0.0 || h.empty()) {
        if (q != 0.0) h.push_back(q);
    }
    return h;
}

Expansion scale(const Expansion& e, double b) {
    if (e.empty() || b == 0.0) return {};

    Expansion h;
    h.reserve(2 * e.size());
    double q = 0.0;
    double hh = 0.0;
    two_product(e[0], b, q, hh);
    if (hh != 0.0) h.push_back(hh);
    for (std::size_t i = 1; i < e.size(); ++i) {
        double t1 = 0.0;
        double t0 = 0.0;
        two_product(e[i], b, t1, t0);
        double sum = 0.0;
        two_sum(q, t0, sum, hh);
        if (hh != 0.0) h.push_back(hh);
        fast_two_sum(t1, sum, q, hh);
        if (hh != 0.0) h.push_back(hh);
    }
    if (q != 0.0) h.push_back(q);
    return h;
}

Expansion multiply(const Expansion& e, const Expansion& f) {
    Expansion result;
    for (const double component : f) {
        result = add(result, scale(e, component));
    }
    return result;
}

Expansion negate(Expansion e) {
    for (double& component : e) component = -component;
    return e;
}

double estimate(const Expansion& e) noexcept {
    double sum = 0.0;
    for (const double component : e) sum += component;
    return sum;
}

}  // namespace geospanner::geom::exact
