#include "geom/circle.h"

#include <cmath>

namespace geospanner::geom {

std::optional<Circle> circumcircle(Point a, Point b, Point c) {
    const Vec2 ab = b - a;
    const Vec2 ac = c - a;
    const double d = 2.0 * cross(ab, ac);
    if (d == 0.0) return std::nullopt;
    const double ab2 = squared_norm(ab);
    const double ac2 = squared_norm(ac);
    const Point center{a.x + (ac.y * ab2 - ab.y * ac2) / d,
                       a.y + (ab.x * ac2 - ac.x * ab2) / d};
    return Circle{center, distance(center, a)};
}

}  // namespace geospanner::geom
