// Circumscribed-circle computations (inexact, for measurement/rendering).
//
// Exact point-in-circle decisions must go through predicates.h; the
// floating-point center/radius here are for SVG output, radius statistics,
// and walking heuristics where a rounded value is acceptable.
#pragma once

#include <optional>

#include "geom/vec2.h"

namespace geospanner::geom {

struct Circle {
    Point center;
    double radius = 0.0;
};

/// Circle through three points; nullopt if they are (numerically)
/// collinear.
[[nodiscard]] std::optional<Circle> circumcircle(Point a, Point b, Point c);

/// Circle with segment (u, v) as diameter.
[[nodiscard]] inline Circle diametral_circle(Point u, Point v) {
    return {midpoint(u, v), distance(u, v) / 2.0};
}

}  // namespace geospanner::geom
