// Exact floating-point expansion arithmetic (Shewchuk 1997).
//
// An *expansion* is a sum of doubles, stored ordered by increasing
// magnitude and pairwise non-overlapping in their bit ranges, so the
// sequence represents its mathematical sum exactly. Sums and products of
// doubles can be carried out exactly in this representation, which gives
// us exact signs for the orientation and in-circle determinants when the
// fast floating-point filter cannot decide (see predicates.h).
//
// Only the small kernel needed by the predicates is implemented: exact
// two-term sum/difference/product, expansion addition with zero
// elimination, scaling an expansion by a double, and expansion products.
#pragma once

#include <cmath>
#include <vector>

namespace geospanner::geom::exact {

/// An exact multi-term floating-point value. Components are ordered by
/// increasing magnitude and non-overlapping; an empty vector denotes zero.
using Expansion = std::vector<double>;

/// Exact a + b as (hi, lo) with hi = fl(a + b). Knuth's TwoSum; no
/// precondition on magnitudes.
inline void two_sum(double a, double b, double& hi, double& lo) noexcept {
    hi = a + b;
    const double bv = hi - a;
    const double av = hi - bv;
    lo = (a - av) + (b - bv);
}

/// Exact a - b as (hi, lo).
inline void two_diff(double a, double b, double& hi, double& lo) noexcept {
    hi = a - b;
    const double bv = a - hi;
    const double av = hi + bv;
    lo = (a - av) + (bv - b);
}

/// Exact a * b as (hi, lo), using fused multiply-add for the error term.
inline void two_product(double a, double b, double& hi, double& lo) noexcept {
    hi = a * b;
    lo = std::fma(a, b, -hi);
}

/// Exact two-component value from a single double.
[[nodiscard]] inline Expansion expansion_from(double a) {
    if (a == 0.0) return {};
    return {a};
}

/// Exact two-component expansion from an exact (hi, lo) pair.
[[nodiscard]] inline Expansion expansion_from(double hi, double lo) {
    Expansion e;
    if (lo != 0.0) e.push_back(lo);
    if (hi != 0.0) e.push_back(hi);
    return e;
}

/// Exact sum of two expansions (fast_expansion_sum_zeroelim). Inputs and
/// output are increasing-magnitude, non-overlapping, zero-free.
[[nodiscard]] Expansion add(const Expansion& e, const Expansion& f);

/// Exact product of an expansion by a double (scale_expansion_zeroelim).
[[nodiscard]] Expansion scale(const Expansion& e, double b);

/// Exact product of two expansions (repeated scale-and-add; the operands
/// in our predicates have at most a handful of components).
[[nodiscard]] Expansion multiply(const Expansion& e, const Expansion& f);

/// Exact negation.
[[nodiscard]] Expansion negate(Expansion e);

/// Exact difference e - f.
[[nodiscard]] inline Expansion subtract(const Expansion& e, const Expansion& f) {
    return add(e, negate(f));
}

/// Sign of the exact value: -1, 0, or +1. The largest-magnitude component
/// (last) carries the sign of a non-overlapping expansion.
[[nodiscard]] inline int sign(const Expansion& e) noexcept {
    if (e.empty()) return 0;
    return e.back() > 0.0 ? 1 : -1;
}

/// Closest double to the exact value (sum smallest-first).
[[nodiscard]] double estimate(const Expansion& e) noexcept;

}  // namespace geospanner::geom::exact
