#include "geom/hull.h"

#include <algorithm>
#include <numeric>

#include "geom/predicates.h"

namespace geospanner::geom {

namespace {

/// Monotone-chain scaffold shared by both hull variants. `keep` decides
/// whether a point that is collinear with the current chain end
/// survives: strict hulls pop it, inclusive hulls keep it.
std::vector<std::size_t> hull_impl(const std::vector<Point>& points, bool keep_collinear) {
    std::vector<std::size_t> order(points.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (points[a].x != points[b].x) return points[a].x < points[b].x;
        if (points[a].y != points[b].y) return points[a].y < points[b].y;
        return a < b;
    });
    // Drop exact duplicates (keep first occurrence in sorted order).
    order.erase(std::unique(order.begin(), order.end(),
                            [&](std::size_t a, std::size_t b) {
                                return points[a] == points[b];
                            }),
                order.end());
    const std::size_t n = order.size();
    if (n <= 2) return order;

    const auto pops = [&](const std::vector<std::size_t>& chain, std::size_t candidate) {
        const int o = orient_sign(points[chain[chain.size() - 2]],
                                  points[chain.back()], points[candidate]);
        if (keep_collinear) return o < 0;  // Pop only on right turns.
        return o <= 0;                     // Pop right turns and collinear.
    };

    std::vector<std::size_t> lower;
    for (const std::size_t i : order) {
        while (lower.size() >= 2 && pops(lower, i)) lower.pop_back();
        lower.push_back(i);
    }
    std::vector<std::size_t> upper;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        while (upper.size() >= 2 && pops(upper, *it)) upper.pop_back();
        upper.push_back(*it);
    }
    lower.pop_back();  // Endpoints shared with the other chain.
    upper.pop_back();
    lower.insert(lower.end(), upper.begin(), upper.end());
    // Fully collinear input leaves both extreme points only... the
    // chains then each contain the full run; for the inclusive variant
    // that duplicates interior points, so dedupe while preserving order.
    if (keep_collinear) {
        std::vector<std::size_t> seen_order;
        std::vector<char> seen(points.size(), 0);
        for (const std::size_t i : lower) {
            if (!seen[i]) {
                seen[i] = 1;
                seen_order.push_back(i);
            }
        }
        return seen_order;
    }
    return lower;
}

}  // namespace

std::vector<std::size_t> convex_hull(const std::vector<Point>& points) {
    return hull_impl(points, /*keep_collinear=*/false);
}

std::vector<std::size_t> convex_hull_with_collinear(const std::vector<Point>& points) {
    return hull_impl(points, /*keep_collinear=*/true);
}

bool strictly_inside_convex(const std::vector<Point>& ccw_polygon, Point p) {
    const std::size_t n = ccw_polygon.size();
    if (n < 3) return false;
    for (std::size_t i = 0; i < n; ++i) {
        if (orient_sign(ccw_polygon[i], ccw_polygon[(i + 1) % n], p) <= 0) return false;
    }
    return true;
}

double twice_signed_area(const std::vector<Point>& polygon) {
    double area2 = 0.0;
    const std::size_t n = polygon.size();
    for (std::size_t i = 0; i < n; ++i) {
        area2 += cross(polygon[i], polygon[(i + 1) % n]);
    }
    return area2;
}

}  // namespace geospanner::geom
