#include "geom/predicates.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "geom/expansion.h"

namespace geospanner::geom {

namespace {

using exact::Expansion;

// ---- Filter-tier counters --------------------------------------------
//
// One atomic block per thread (relaxed increments, no sharing on the
// hot path), registered globally so predicate_counters() can sum the
// fleet. A thread's tallies are folded into `retired` when it exits.

enum CounterSlot : int {
    kOrientFast = 0,
    kOrientExact,
    kIncircleFast,
    kIncircleExact,
    kDiametralFast,
    kDiametralExact,
    kSlotCount,
};

struct TlsCounters;

struct CounterRegistry {
    std::mutex mutex;
    std::vector<TlsCounters*> threads;
    PredicateCounters retired;
};

CounterRegistry& registry() {
    static CounterRegistry r;  // leaked-never: function-local survives TLS dtors
    return r;
}

struct alignas(64) TlsCounters {
    std::atomic<std::uint64_t> slots[kSlotCount] = {};

    TlsCounters() {
        CounterRegistry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mutex);
        r.threads.push_back(this);
    }

    [[nodiscard]] PredicateCounters snapshot() const noexcept {
        PredicateCounters c;
        c.orient_fast = slots[kOrientFast].load(std::memory_order_relaxed);
        c.orient_exact = slots[kOrientExact].load(std::memory_order_relaxed);
        c.incircle_fast = slots[kIncircleFast].load(std::memory_order_relaxed);
        c.incircle_exact = slots[kIncircleExact].load(std::memory_order_relaxed);
        c.diametral_fast = slots[kDiametralFast].load(std::memory_order_relaxed);
        c.diametral_exact = slots[kDiametralExact].load(std::memory_order_relaxed);
        return c;
    }

    ~TlsCounters() {
        CounterRegistry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mutex);
        const PredicateCounters c = snapshot();
        r.retired.orient_fast += c.orient_fast;
        r.retired.orient_exact += c.orient_exact;
        r.retired.incircle_fast += c.incircle_fast;
        r.retired.incircle_exact += c.incircle_exact;
        r.retired.diametral_fast += c.diametral_fast;
        r.retired.diametral_exact += c.diametral_exact;
        std::erase(r.threads, this);
    }
};

inline void bump(CounterSlot slot) noexcept {
    thread_local TlsCounters counters;
    counters.slots[slot].fetch_add(1, std::memory_order_relaxed);
}

// Filter constants from Shewchuk's "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates", Table 1, for IEEE
// double (eps = 2^-53).
constexpr double kEps = 0x1.0p-53;
constexpr double kCcwErrBound = (3.0 + 16.0 * kEps) * kEps;
constexpr double kIccErrBound = (10.0 + 96.0 * kEps) * kEps;

/// Exact 2-expansion of the difference a - b.
Expansion diff_expansion(double a, double b) {
    double hi = 0.0;
    double lo = 0.0;
    exact::two_diff(a, b, hi, lo);
    return exact::expansion_from(hi, lo);
}

}  // namespace

int orient_sign_exact(Point a, Point b, Point c) {
    // det = (ax - cx)(by - cy) - (ay - cy)(bx - cx), with the differences
    // taken exactly so translation does not introduce rounding.
    const Expansion acx = diff_expansion(a.x, c.x);
    const Expansion acy = diff_expansion(a.y, c.y);
    const Expansion bcx = diff_expansion(b.x, c.x);
    const Expansion bcy = diff_expansion(b.y, c.y);
    const Expansion det = exact::subtract(exact::multiply(acx, bcy),
                                          exact::multiply(acy, bcx));
    return exact::sign(det);
}

int incircle_sign_exact(Point a, Point b, Point c, Point d) {
    // 3x3 determinant on exactly translated coordinates:
    //   | adx ady adx^2+ady^2 |
    //   | bdx bdy bdx^2+bdy^2 |
    //   | cdx cdy cdx^2+cdy^2 |
    const Expansion adx = diff_expansion(a.x, d.x);
    const Expansion ady = diff_expansion(a.y, d.y);
    const Expansion bdx = diff_expansion(b.x, d.x);
    const Expansion bdy = diff_expansion(b.y, d.y);
    const Expansion cdx = diff_expansion(c.x, d.x);
    const Expansion cdy = diff_expansion(c.y, d.y);

    const Expansion alift = exact::add(exact::multiply(adx, adx), exact::multiply(ady, ady));
    const Expansion blift = exact::add(exact::multiply(bdx, bdx), exact::multiply(bdy, bdy));
    const Expansion clift = exact::add(exact::multiply(cdx, cdx), exact::multiply(cdy, cdy));

    const Expansion bxcy = exact::subtract(exact::multiply(bdx, cdy), exact::multiply(cdx, bdy));
    const Expansion axcy = exact::subtract(exact::multiply(adx, cdy), exact::multiply(cdx, ady));
    const Expansion axby = exact::subtract(exact::multiply(adx, bdy), exact::multiply(bdx, ady));

    Expansion det = exact::multiply(alift, bxcy);
    det = exact::subtract(det, exact::multiply(blift, axcy));
    det = exact::add(det, exact::multiply(clift, axby));
    return exact::sign(det);
}

int orient_sign(Point a, Point b, Point c) {
    const double detleft = (a.x - c.x) * (b.y - c.y);
    const double detright = (a.y - c.y) * (b.x - c.x);
    const double det = detleft - detright;

    double detsum = 0.0;
    if (detleft > 0.0) {
        if (detright <= 0.0) {
            // Opposite-signed (or zero) terms: the subtraction is exact
            // enough that the double sign is already certain.
            bump(kOrientFast);
            return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
        }
        detsum = detleft + detright;
    } else if (detleft < 0.0) {
        if (detright >= 0.0) {
            bump(kOrientFast);
            return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
        }
        detsum = -detleft - detright;
    } else {
        bump(kOrientFast);
        return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    }

    const double errbound = kCcwErrBound * detsum;
    if (det > errbound || -det > errbound) {
        bump(kOrientFast);
        return det > 0.0 ? 1 : -1;
    }
    bump(kOrientExact);
    return orient_sign_exact(a, b, c);
}

Orientation orient(Point a, Point b, Point c) {
    return static_cast<Orientation>(orient_sign(a, b, c));
}

int incircle_ccw(Point a, Point b, Point c, Point d) {
    const double adx = a.x - d.x;
    const double ady = a.y - d.y;
    const double bdx = b.x - d.x;
    const double bdy = b.y - d.y;
    const double cdx = c.x - d.x;
    const double cdy = c.y - d.y;

    const double bdxcdy = bdx * cdy;
    const double cdxbdy = cdx * bdy;
    const double alift = adx * adx + ady * ady;

    const double cdxady = cdx * ady;
    const double adxcdy = adx * cdy;
    const double blift = bdx * bdx + bdy * bdy;

    const double adxbdy = adx * bdy;
    const double bdxady = bdx * ady;
    const double clift = cdx * cdx + cdy * cdy;

    const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                       clift * (adxbdy - bdxady);

    const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                             (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                             (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
    const double errbound = kIccErrBound * permanent;
    if (det > errbound || -det > errbound) {
        bump(kIncircleFast);
        return det > 0.0 ? 1 : -1;
    }
    bump(kIncircleExact);
    return incircle_sign_exact(a, b, c, d);
}

int in_circumcircle(Point a, Point b, Point c, Point d) {
    const int o = orient_sign(a, b, c);
    if (o == 0) return -1;  // Degenerate "circle" (a line) contains nothing.
    return o * incircle_ccw(a, b, c, d);
}

int in_diametral_circle(Point u, Point v, Point p) {
    // p is inside the circle with diameter uv iff angle(u, p, v) > pi/2,
    // i.e. dot(u - p, v - p) < 0. Filtered, then exact.
    const double ax = u.x - p.x;
    const double ay = u.y - p.y;
    const double bx = v.x - p.x;
    const double by = v.y - p.y;
    const double t1 = ax * bx;
    const double t2 = ay * by;
    const double d = t1 + t2;
    const double magnitude = std::fabs(t1) + std::fabs(t2);
    // Each product carries relative error <= eps plus the error of the two
    // exact-by-Sterbenz-free subtractions; 8 eps is a safely generous bound.
    const double errbound = 8.0 * kEps * magnitude;
    if (d > errbound) {
        bump(kDiametralFast);
        return -1;
    }
    if (d < -errbound) {
        bump(kDiametralFast);
        return 1;
    }
    bump(kDiametralExact);

    const Expansion eax = diff_expansion(u.x, p.x);
    const Expansion eay = diff_expansion(u.y, p.y);
    const Expansion ebx = diff_expansion(v.x, p.x);
    const Expansion eby = diff_expansion(v.y, p.y);
    const Expansion dotv = exact::add(exact::multiply(eax, ebx), exact::multiply(eay, eby));
    return -exact::sign(dotv);
}

bool on_segment(Point a, Point b, Point c) {
    if (orient_sign(a, b, c) != 0) return false;
    return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
           std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

namespace {

/// Exact expansion of cross(b - a, d - c) on translated coordinates.
Expansion cross_of_differences(Point a, Point b, Point c, Point d) {
    const Expansion bax = diff_expansion(b.x, a.x);
    const Expansion bay = diff_expansion(b.y, a.y);
    const Expansion dcx = diff_expansion(d.x, c.x);
    const Expansion dcy = diff_expansion(d.y, c.y);
    return exact::subtract(exact::multiply(bax, dcy), exact::multiply(bay, dcx));
}

/// Exact expansion of dot(b - a, d - c).
Expansion dot_of_differences(Point a, Point b, Point c, Point d) {
    const Expansion bax = diff_expansion(b.x, a.x);
    const Expansion bay = diff_expansion(b.y, a.y);
    const Expansion dcx = diff_expansion(d.x, c.x);
    const Expansion dcy = diff_expansion(d.y, c.y);
    return exact::add(exact::multiply(bax, dcx), exact::multiply(bay, dcy));
}

}  // namespace

int compare_crossings_along(Point p, Point q, Point a1, Point b1, Point a2, Point b2) {
    // Crossing parameter of segment (a, b): t = cross(a-p, b-a) /
    // cross(q-p, b-a); proper crossing guarantees a nonzero denominator.
    // Compare N1/D1 vs N2/D2 via the exact sign of N1·D2 - N2·D1,
    // corrected by the denominators' signs.
    const Expansion n1 = cross_of_differences(p, a1, a1, b1);
    const Expansion d1 = cross_of_differences(p, q, a1, b1);
    const Expansion n2 = cross_of_differences(p, a2, a2, b2);
    const Expansion d2 = cross_of_differences(p, q, a2, b2);
    const Expansion s =
        exact::subtract(exact::multiply(n1, d2), exact::multiply(n2, d1));
    return exact::sign(s) * exact::sign(d1) * exact::sign(d2);
}

int compare_crossing_vs_point_along(Point p, Point q, Point a, Point b, Point w) {
    // t_cross = N/D as above; t_w = dot(w-p, q-p) / dot(q-p, q-p) with a
    // positive denominator L. Sign of t_cross - t_w = sign(N·L - M·D)
    // corrected by sign(D).
    const Expansion n = cross_of_differences(p, a, a, b);
    const Expansion d = cross_of_differences(p, q, a, b);
    const Expansion m = dot_of_differences(p, w, p, q);
    const Expansion l = dot_of_differences(p, q, p, q);
    const Expansion s = exact::subtract(exact::multiply(n, l), exact::multiply(m, d));
    return exact::sign(s) * exact::sign(d);
}

int compare_points_along(Point p, Point q, Point w1, Point w2) {
    const Expansion m1 = dot_of_differences(p, w1, p, q);
    const Expansion m2 = dot_of_differences(p, w2, p, q);
    return exact::sign(exact::subtract(m1, m2));
}

bool segments_properly_cross(Point p1, Point p2, Point q1, Point q2) {
    const int o1 = orient_sign(p1, p2, q1);
    const int o2 = orient_sign(p1, p2, q2);
    const int o3 = orient_sign(q1, q2, p1);
    const int o4 = orient_sign(q1, q2, p2);
    // Proper crossing: each segment's endpoints strictly straddle the
    // other's supporting line.
    return o1 * o2 < 0 && o3 * o4 < 0;
}

bool segments_intersect(Point p1, Point p2, Point q1, Point q2) {
    if (segments_properly_cross(p1, p2, q1, q2)) return true;
    return on_segment(p1, p2, q1) || on_segment(p1, p2, q2) ||
           on_segment(q1, q2, p1) || on_segment(q1, q2, p2);
}

PredicateCounters predicate_counters() {
    CounterRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    PredicateCounters out = r.retired;
    for (const TlsCounters* t : r.threads) {
        const PredicateCounters c = t->snapshot();
        out.orient_fast += c.orient_fast;
        out.orient_exact += c.orient_exact;
        out.incircle_fast += c.incircle_fast;
        out.incircle_exact += c.incircle_exact;
        out.diametral_fast += c.diametral_fast;
        out.diametral_exact += c.diametral_exact;
    }
    return out;
}

void reset_predicate_counters() {
    CounterRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.retired = {};
    for (TlsCounters* t : r.threads) {
        for (auto& slot : t->slots) slot.store(0, std::memory_order_relaxed);
    }
}

}  // namespace geospanner::geom
