// 2-D points and vectors.
//
// Wireless nodes live in the Euclidean plane; every structure in this
// library (UDG, Gabriel graph, Delaunay triangulations, the CDS backbone)
// is defined in terms of distances and angles between these points.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace geospanner::geom {

/// A point (or displacement vector) in the plane. Plain value type; the
/// coordinate pair carries no invariant beyond being finite, so data
/// members are public (Core Guidelines C.2).
struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
    friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
    friend constexpr Vec2 operator*(double s, Vec2 v) noexcept { return {s * v.x, s * v.y}; }
    friend constexpr Vec2 operator*(Vec2 v, double s) noexcept { return s * v; }
    friend constexpr Vec2 operator/(Vec2 v, double s) noexcept { return {v.x / s, v.y / s}; }
    constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
    constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }

    friend constexpr bool operator==(Vec2, Vec2) noexcept = default;
    /// Lexicographic (x, then y); used for canonical orderings in tests.
    friend constexpr auto operator<=>(Vec2, Vec2) noexcept = default;
};

using Point = Vec2;

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; twice the signed area of the
/// triangle (origin, a, b).
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }

[[nodiscard]] constexpr double squared_norm(Vec2 v) noexcept { return dot(v, v); }
[[nodiscard]] inline double norm(Vec2 v) noexcept { return std::hypot(v.x, v.y); }

[[nodiscard]] constexpr double squared_distance(Point a, Point b) noexcept {
    return squared_norm(a - b);
}
[[nodiscard]] inline double distance(Point a, Point b) noexcept { return norm(a - b); }

[[nodiscard]] constexpr Point midpoint(Point a, Point b) noexcept {
    return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

/// Angle of the vector in (-pi, pi], as given by atan2.
[[nodiscard]] inline double angle_of(Vec2 v) noexcept { return std::atan2(v.y, v.x); }

/// Interior angle at vertex `apex` of the wedge (a, apex, b), in [0, pi].
[[nodiscard]] inline double angle_at(Point apex, Point a, Point b) noexcept {
    const Vec2 u = a - apex;
    const Vec2 v = b - apex;
    const double c = cross(u, v);
    const double d = dot(u, v);
    return std::fabs(std::atan2(c, d));
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace geospanner::geom
