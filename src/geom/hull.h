// Convex hulls and related utilities.
//
// Used by the test oracles (Euler-relation checks need the hull size),
// the netsim deployment-region helpers, and the routing diagnostics.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace geospanner::geom {

/// Indices of the convex hull of `points`, counter-clockwise, starting
/// from the lexicographically smallest point. Collinear points on the
/// hull boundary are EXCLUDED (strict hull). Handles duplicates and
/// degenerate (all-collinear) inputs: those return the 2 extreme points
/// (or 1 / 0 for tiny inputs). Andrew's monotone chain with exact
/// orientation tests.
[[nodiscard]] std::vector<std::size_t> convex_hull(const std::vector<Point>& points);

/// Variant that KEEPS collinear boundary points (every point lying on
/// the hull boundary appears, in counter-clockwise walking order).
[[nodiscard]] std::vector<std::size_t> convex_hull_with_collinear(
    const std::vector<Point>& points);

/// True iff p is strictly inside the convex polygon given by CCW
/// vertices (exact).
[[nodiscard]] bool strictly_inside_convex(const std::vector<Point>& ccw_polygon, Point p);

/// Twice the signed area of a simple polygon (CCW positive).
[[nodiscard]] double twice_signed_area(const std::vector<Point>& polygon);

}  // namespace geospanner::geom
