// Distributed localized Delaunay triangulation and planarization
// (Algorithms 2 and 3 of the paper) over an arbitrary unit-disk-style
// radio graph — the induced backbone ICDS in the paper's pipeline, or the
// full UDG when building PLDel(V) directly.
//
// Every participating node computes the Delaunay triangulation of its
// 1-hop neighborhood, proposes each incident triangle whose angle at the
// proposer is at least π/3 (so every genuine triangle has a proposer),
// and the other two vertices accept iff the triangle also appears in
// their local Delaunay triangulations. Planarization then exchanges two
// aggregate triangle broadcasts: announce (drop an own triangle whose
// circumcircle contains a vertex of an intersecting known triangle) and
// keep (a triangle survives iff all three vertices kept it).
//
// The result equals the centralized proximity::build_pldel exactly; the
// tests assert this across parameter sweeps.
#pragma once

#include <vector>

#include "protocol/messages.h"
#include "proximity/ldel.h"

namespace geospanner::protocol {

struct LDelState {
    /// Triangles surviving acceptance and planarization, sorted.
    std::vector<proximity::TriangleKey> triangles;
    /// Gabriel edges ∪ surviving triangle edges, over the full node set.
    graph::GeometricGraph graph;
};

/// Runs Algorithms 2 + 3 over the radio graph of `net`, which must be
/// `g` itself (nodes with no neighbors in g do not participate). If
/// `announce_positions` is set, each participating node first broadcasts
/// a Hello beacon (set when running standalone; the backbone pipeline
/// already knows positions from the clustering beacons).
[[nodiscard]] LDelState run_ldel(Net& net, const graph::GeometricGraph& g,
                                 bool announce_positions);

}  // namespace geospanner::protocol
