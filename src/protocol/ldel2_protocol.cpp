#include "protocol/ldel2_protocol.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <set>

#include "delaunay/delaunay.h"
#include "geom/vec2.h"
#include "proximity/classic.h"

namespace geospanner::protocol {

using geom::Point;
using graph::GeometricGraph;
using proximity::TriangleKey;

namespace {

constexpr double kAngleSlack = 1e-9;

std::pair<NodeId, NodeId> others(TriangleKey t, NodeId u) {
    if (t.a == u) return {t.b, t.c};
    if (t.b == u) return {t.a, t.c};
    return {t.a, t.b};
}

}  // namespace

LDelState run_ldel2(Net& net, const GeometricGraph& g, bool announce_positions) {
    const auto n = static_cast<NodeId>(g.node_count());
    const double min_angle = std::numbers::pi / 3.0 - kAngleSlack;

    if (announce_positions) {
        for (NodeId v = 0; v < n; ++v) {
            if (g.degree(v) > 0) net.broadcast(v, Hello{g.point(v)});
        }
        net.advance();
    }

    // --- Phase 1: neighbor-list exchange (one aggregate message each).
    for (NodeId v = 0; v < n; ++v) {
        if (g.degree(v) == 0) continue;
        NeighborList list;
        list.neighbors.reserve(g.degree(v));
        for (const NodeId u : g.neighbors(v)) list.neighbors.push_back({u, g.point(u)});
        const std::size_t units = list.neighbors.size();
        net.broadcast(v, NeighborList{std::move(list.neighbors)}, units);
    }
    net.advance();

    // Each node assembles its 2-hop view: node -> position, plus the
    // adjacency among its 1-hop neighbors (needed for the unit-edge test
    // on triangle sides).
    std::vector<std::map<NodeId, Point>> two_hop(n);
    std::vector<std::map<NodeId, std::set<NodeId>>> nbr_adj(n);
    for (NodeId v = 0; v < n; ++v) {
        two_hop[v][v] = g.point(v);
        for (const NodeId u : g.neighbors(v)) two_hop[v][u] = g.point(u);
        for (const auto& env : net.inbox(v)) {
            if (const auto* list = std::get_if<NeighborList>(&env.payload)) {
                auto& adj = nbr_adj[v][env.from];
                for (const auto& [id, pos] : list->neighbors) {
                    two_hop[v].emplace(id, pos);
                    adj.insert(id);
                }
            }
        }
    }

    // --- Phase 2: local Delaunay over the 2-hop view; propose incident
    // unit triangles with a >= pi/3 angle at the proposer.
    std::vector<std::set<TriangleKey>> local(n);
    std::vector<std::set<TriangleKey>> proposed(n);
    for (NodeId u = 0; u < n; ++u) {
        if (g.degree(u) < 2) continue;
        std::vector<Point> pts;
        std::vector<NodeId> ids;
        pts.reserve(two_hop[u].size());
        ids.reserve(two_hop[u].size());
        for (const auto& [id, pos] : two_hop[u]) {
            ids.push_back(id);
            pts.push_back(pos);
        }
        const delaunay::DelaunayTriangulation del(std::move(pts));
        for (const auto& t : del.triangles()) {
            const NodeId x = ids[t.a];
            const NodeId y = ids[t.b];
            const NodeId z = ids[t.c];
            if (x != u && y != u && z != u) continue;
            const auto [p, q] = [&] {
                if (x == u) return std::pair{y, z};
                if (y == u) return std::pair{x, z};
                return std::pair{x, y};
            }();
            // Sides at u are unit iff p, q are radio neighbors; the far
            // side (p, q) is checked against p's announced list.
            if (!g.has_edge(u, p) || !g.has_edge(u, q)) continue;
            if (!nbr_adj[u][p].contains(q)) continue;
            const TriangleKey key = proximity::make_triangle_key(x, y, z);
            local[u].insert(key);
            if (geom::angle_at(g.point(u), g.point(p), g.point(q)) >= min_angle) {
                if (proposed[u].insert(key).second) {
                    const auto [v, w] = others(key, u);
                    net.broadcast(u, Proposal{v, w});
                }
            }
        }
    }
    net.advance();

    // --- Phase 3: accept/reject, then unanimity (as in run_ldel).
    std::vector<std::set<TriangleKey>> heard(n);
    std::vector<std::set<std::pair<NodeId, TriangleKey>>> proposal_heard(n);
    for (NodeId v = 0; v < n; ++v) {
        std::set<TriangleKey> pending;
        for (const auto& env : net.inbox(v)) {
            if (const auto* p = std::get_if<Proposal>(&env.payload)) {
                const TriangleKey t = proximity::make_triangle_key(env.from, p->v, p->w);
                if (t.a != v && t.b != v && t.c != v) continue;
                heard[v].insert(t);
                proposal_heard[v].insert({env.from, t});
                if (!proposed[v].contains(t)) pending.insert(t);
            }
        }
        for (const TriangleKey& t : pending) {
            if (local[v].contains(t)) {
                net.broadcast(v, Accept{t});
            } else {
                net.broadcast(v, Reject{t});
            }
        }
    }
    net.advance();

    std::vector<std::set<std::pair<NodeId, TriangleKey>>> accept_heard(n);
    for (NodeId u = 0; u < n; ++u) {
        for (const auto& env : net.inbox(u)) {
            if (const auto* a = std::get_if<Accept>(&env.payload)) {
                accept_heard[u].insert({env.from, a->triangle});
            }
        }
    }

    LDelState result;
    std::set<TriangleKey> final_set;
    for (NodeId u = 0; u < n; ++u) {
        std::set<TriangleKey> known = proposed[u];
        known.insert(heard[u].begin(), heard[u].end());
        for (const TriangleKey& t : known) {
            if (!local[u].contains(t)) continue;
            const auto [v, w] = others(t, u);
            bool all_ok = true;
            for (const NodeId y : {v, w}) {
                if (!proposal_heard[u].contains({y, t}) &&
                    !accept_heard[u].contains({y, t})) {
                    all_ok = false;
                    break;
                }
            }
            if (all_ok) final_set.insert(t);
        }
    }
    result.triangles.assign(final_set.begin(), final_set.end());

    result.graph = proximity::build_gabriel(g);
    for (const TriangleKey& t : result.triangles) {
        result.graph.add_edge(t.a, t.b);
        result.graph.add_edge(t.b, t.c);
        result.graph.add_edge(t.a, t.c);
    }
    return result;
}

}  // namespace geospanner::protocol
