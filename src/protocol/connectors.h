// Finding connectors (Algorithm 1 of the paper).
//
// After clustering, dominators that are two or three UDG hops apart must
// be joined through dominatees. Candidates announce themselves with
// TryConnector and an election picks, among mutually audible candidates,
// the ones with locally smallest id (several non-adjacent candidates can
// win for the same dominator pair — the paper shows at most 2 for a
// two-hop pair, and notes the redundancy increases backbone robustness).
//
//  * Two-hop pairs: a dominatee adjacent to both dominators u and v is a
//    candidate; a winner w contributes backbone edges (u,w), (w,v).
//  * Three-hop pairs (ordered: u searches a path to v): a dominatee w of
//    u that knows v as a two-hop dominator is a first-leg candidate; a
//    winner w contributes (u,w) and triggers the second-leg election
//    among dominatees x of v adjacent to some winner w, contributing
//    (w,x) and (x,v).
//
// The dominators + elected connectors with these edges form the CDS
// backbone graph.
#pragma once

#include <utility>
#include <vector>

#include "protocol/cluster_state.h"
#include "protocol/messages.h"

namespace geospanner::protocol {

struct ConnectorState {
    std::vector<bool> is_connector;                       ///< per node
    std::vector<std::pair<NodeId, NodeId>> cds_edges;     ///< backbone links, u < v, sorted
};

/// Runs the distributed connector election over the UDG radio graph,
/// continuing from a completed clustering (same Net for cumulative
/// message counts).
[[nodiscard]] ConnectorState run_connectors(Net& net, const graph::GeometricGraph& udg,
                                            const ClusterState& cluster);

/// Centralized reference producing bit-identical output (same elections
/// evaluated directly on the graph).
[[nodiscard]] ConnectorState find_connectors(const graph::GeometricGraph& udg,
                                             const ClusterState& cluster);

/// The alternative prior art the paper reviews (Alzoubi/Wan/Frieder):
/// dominator-initiated selection. For every ordered dominator pair
/// (u, v) at most 3 hops apart, u picks the smallest-id dominatee
/// adjacent to both (2 hops), or the smallest-id neighbor w that is two
/// hops from v, which in turn picks the smallest-id node completing the
/// path (3 hops). Exactly one path per ordered pair — a leaner CDS than
/// Algorithm 1's election, with none of its redundancy (see
/// bench_ablation_robustness).
[[nodiscard]] ConnectorState find_connectors_alzoubi(const graph::GeometricGraph& udg,
                                                     const ClusterState& cluster);

}  // namespace geospanner::protocol
