// Network-wide broadcasting (the paper's introduction: "the simplest
// routing method is to flood the message, which not only wastes the rare
// resources of wireless node, but also diminishes the throughput").
//
// Three relay strategies over the round-based simulator, all delivering
// a message from one source to every node of a connected UDG:
//  * flooding        — every node retransmits once (n transmissions);
//  * backbone relay  — only dominators/connectors retransmit, dominatees
//    just listen (the dominating-set-based broadcast of Wu & Li [8]);
//  * tree relay      — only nodes with children in a precomputed BFS
//    tree retransmit (a centralized lower-bound-ish reference).
//
// Returns per-strategy transmission counts and the number of rounds to
// full coverage; tests assert full coverage and the backbone saving.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::protocol {

struct BroadcastResult {
    std::size_t transmissions = 0;
    std::size_t rounds = 0;
    std::size_t covered = 0;  ///< nodes that received the message
    std::vector<bool> reached;
};

/// Blind flooding: every node forwards the first copy it hears.
[[nodiscard]] BroadcastResult flood_broadcast(const graph::GeometricGraph& udg,
                                              graph::NodeId source);

/// Dominating-set-based broadcast: only backbone nodes (`in_backbone`
/// flags, from core::Backbone) forward; the source always transmits
/// (its dominator hears it and relays).
[[nodiscard]] BroadcastResult backbone_broadcast(const graph::GeometricGraph& udg,
                                                 const std::vector<bool>& in_backbone,
                                                 graph::NodeId source);

/// BFS-tree broadcast: only internal tree nodes forward.
[[nodiscard]] BroadcastResult tree_broadcast(const graph::GeometricGraph& udg,
                                             graph::NodeId source);

/// Collision-aware variant: a shared slotted medium where a node
/// receives in a slot iff *exactly one* of its neighbors transmits
/// (otherwise the transmissions collide at that receiver). Each relay
/// transmits once, at a uniform-random slot within `window` slots of
/// first cleanly receiving the message. Coverage can be partial — that
/// is the point: many contending relays (flooding) collide more than the
/// sparse backbone, which is the throughput argument of the paper's
/// introduction made concrete.
struct CollisionConfig {
    std::size_t window = 8;       ///< contention window (slots)
    std::uint64_t seed = 1;       ///< backoff randomness
    std::size_t max_slots = 100000;
};

[[nodiscard]] BroadcastResult collision_broadcast(const graph::GeometricGraph& udg,
                                                  const std::vector<bool>& relays,
                                                  graph::NodeId source,
                                                  const CollisionConfig& config);

}  // namespace geospanner::protocol
