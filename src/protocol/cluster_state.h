// Output of the clustering phase.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::protocol {

enum class Role : std::uint8_t {
    kDominatee = 0,
    kDominator = 1,
};

/// Result of the lowest-ID maximal-independent-set clustering. For every
/// dominatee, `dominators_of` lists its adjacent dominators (<= 5 by
/// Lemma 1) and `two_hop_dominators_of` the dominators exactly two hops
/// away that it learned about from neighbors' IamDominatee broadcasts.
/// Lists are sorted by node id.
struct ClusterState {
    std::vector<Role> role;
    std::vector<std::vector<graph::NodeId>> dominators_of;
    std::vector<std::vector<graph::NodeId>> two_hop_dominators_of;

    [[nodiscard]] bool is_dominator(graph::NodeId v) const {
        return role[v] == Role::kDominator;
    }

    /// Read-only views of the per-node dominator lists. Const access to
    /// immutable state — safe for concurrent readers (the engine's
    /// parallel connector stage evaluates candidates across threads).
    [[nodiscard]] std::span<const graph::NodeId> dominators(graph::NodeId v) const {
        return dominators_of[v];
    }
    [[nodiscard]] std::span<const graph::NodeId> two_hop_dominators(
        graph::NodeId v) const {
        return two_hop_dominators_of[v];
    }

    [[nodiscard]] std::size_t dominator_count() const {
        std::size_t c = 0;
        for (const Role r : role) c += (r == Role::kDominator) ? 1 : 0;
        return c;
    }
};

}  // namespace geospanner::protocol
