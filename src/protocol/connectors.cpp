#include "protocol/connectors.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace geospanner::protocol {

using graph::GeometricGraph;

namespace {

using DominatorPair = std::pair<NodeId, NodeId>;

void add_edge_once(std::set<std::pair<NodeId, NodeId>>& edges, NodeId a, NodeId b) {
    edges.insert({std::min(a, b), std::max(a, b)});
}

ConnectorState finish(std::size_t n, const std::vector<bool>& connector,
                      const std::set<std::pair<NodeId, NodeId>>& edges) {
    ConnectorState state;
    state.is_connector = connector;
    state.is_connector.resize(n, false);
    state.cds_edges.assign(edges.begin(), edges.end());
    return state;
}

}  // namespace

ConnectorState run_connectors(Net& net, const GeometricGraph& udg,
                              const ClusterState& cluster) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<bool> connector(n, false);
    std::set<std::pair<NodeId, NodeId>> edges;

    // ---- Phase A: connectors for dominators two hops apart. ----
    // Candidates: dominatees adjacent to both dominators of a pair.
    std::vector<std::vector<DominatorPair>> two_hop_claims(n);
    for (NodeId w = 0; w < n; ++w) {
        const auto& doms = cluster.dominators_of[w];
        for (std::size_t i = 0; i < doms.size(); ++i) {
            for (std::size_t j = i + 1; j < doms.size(); ++j) {
                two_hop_claims[w].push_back({doms[i], doms[j]});
                net.broadcast(w, TryConnector{doms[i], doms[j], ConnectorStage::kTwoHop});
            }
        }
    }
    net.advance();

    // Election: w wins pair (u, v) iff no audible candidate for the same
    // pair has a smaller id.
    for (NodeId w = 0; w < n; ++w) {
        if (two_hop_claims[w].empty()) continue;
        std::set<DominatorPair> beaten;
        for (const auto& env : net.inbox(w)) {
            if (const auto* try_msg = std::get_if<TryConnector>(&env.payload)) {
                if (try_msg->stage == ConnectorStage::kTwoHop && env.from < w) {
                    beaten.insert({try_msg->u, try_msg->v});
                }
            }
        }
        for (const auto& [u, v] : two_hop_claims[w]) {
            if (beaten.contains({u, v})) continue;
            net.broadcast(w, IamConnector{u, v, ConnectorStage::kTwoHop});
            connector[w] = true;
            add_edge_once(edges, u, w);
            add_edge_once(edges, w, v);
        }
    }
    net.advance();  // Deliver IamConnector announcements (informational).

    // ---- Phase B: first leg of three-hop connections (ordered pairs). ----
    std::vector<std::vector<DominatorPair>> first_claims(n);
    for (NodeId w = 0; w < n; ++w) {
        for (const NodeId u : cluster.dominators_of[w]) {
            for (const NodeId v : cluster.two_hop_dominators_of[w]) {
                first_claims[w].push_back({u, v});
                net.broadcast(w, TryConnector{u, v, ConnectorStage::kThreeHopFirst});
            }
        }
    }
    net.advance();

    for (NodeId w = 0; w < n; ++w) {
        if (first_claims[w].empty()) continue;
        std::set<DominatorPair> beaten;
        for (const auto& env : net.inbox(w)) {
            if (const auto* try_msg = std::get_if<TryConnector>(&env.payload)) {
                if (try_msg->stage == ConnectorStage::kThreeHopFirst && env.from < w) {
                    beaten.insert({try_msg->u, try_msg->v});
                }
            }
        }
        for (const auto& [u, v] : first_claims[w]) {
            if (beaten.contains({u, v})) continue;
            net.broadcast(w, IamConnector{u, v, ConnectorStage::kThreeHopFirst});
            connector[w] = true;
            add_edge_once(edges, u, w);
        }
    }
    net.advance();

    // ---- Phase C: second leg. A dominatee x of v that hears a first-leg
    // winner w for (u, v) becomes a candidate; a winner links to v and to
    // every audible first-leg winner. ----
    std::vector<std::map<DominatorPair, std::vector<NodeId>>> first_winners_heard(n);
    for (NodeId x = 0; x < n; ++x) {
        for (const auto& env : net.inbox(x)) {
            if (const auto* iam = std::get_if<IamConnector>(&env.payload)) {
                if (iam->stage != ConnectorStage::kThreeHopFirst) continue;
                const auto& my_doms = cluster.dominators_of[x];
                if (!std::binary_search(my_doms.begin(), my_doms.end(), iam->v)) continue;
                first_winners_heard[x][{iam->u, iam->v}].push_back(env.from);
            }
        }
        for (const auto& [pair, winners] : first_winners_heard[x]) {
            (void)winners;
            net.broadcast(x, TryConnector{pair.first, pair.second,
                                          ConnectorStage::kThreeHopSecond});
        }
    }
    net.advance();

    for (NodeId x = 0; x < n; ++x) {
        if (first_winners_heard[x].empty()) continue;
        std::set<DominatorPair> beaten;
        for (const auto& env : net.inbox(x)) {
            if (const auto* try_msg = std::get_if<TryConnector>(&env.payload)) {
                if (try_msg->stage == ConnectorStage::kThreeHopSecond && env.from < x) {
                    beaten.insert({try_msg->u, try_msg->v});
                }
            }
        }
        for (const auto& [pair, winners] : first_winners_heard[x]) {
            if (beaten.contains(pair)) continue;
            net.broadcast(x, IamConnector{pair.first, pair.second,
                                          ConnectorStage::kThreeHopSecond});
            connector[x] = true;
            add_edge_once(edges, x, pair.second);
            for (const NodeId w : winners) add_edge_once(edges, x, w);
        }
    }
    net.advance();

    return finish(n, connector, edges);
}

ConnectorState find_connectors(const GeometricGraph& udg, const ClusterState& cluster) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<bool> connector(n, false);
    std::set<std::pair<NodeId, NodeId>> edges;

    // Candidate sets keyed by dominator pair, in node-id order (lists
    // built by ascending w, so they are sorted).
    std::map<DominatorPair, std::vector<NodeId>> two_hop_candidates;
    for (NodeId w = 0; w < n; ++w) {
        const auto& doms = cluster.dominators_of[w];
        for (std::size_t i = 0; i < doms.size(); ++i) {
            for (std::size_t j = i + 1; j < doms.size(); ++j) {
                two_hop_candidates[{doms[i], doms[j]}].push_back(w);
            }
        }
    }
    const auto wins = [&udg](NodeId w, const std::vector<NodeId>& candidates) {
        // w wins iff no smaller-id candidate is audible (UDG-adjacent).
        return std::none_of(candidates.begin(), candidates.end(), [&](NodeId c) {
            return c < w && udg.has_edge(c, w);
        });
    };
    for (const auto& [pair, candidates] : two_hop_candidates) {
        for (const NodeId w : candidates) {
            if (!wins(w, candidates)) continue;
            connector[w] = true;
            add_edge_once(edges, pair.first, w);
            add_edge_once(edges, w, pair.second);
        }
    }

    // First leg of three-hop connections (ordered pairs u -> v).
    std::map<DominatorPair, std::vector<NodeId>> first_candidates;
    for (NodeId w = 0; w < n; ++w) {
        for (const NodeId u : cluster.dominators_of[w]) {
            for (const NodeId v : cluster.two_hop_dominators_of[w]) {
                first_candidates[{u, v}].push_back(w);
            }
        }
    }
    std::map<DominatorPair, std::vector<NodeId>> first_winners;
    for (const auto& [pair, candidates] : first_candidates) {
        for (const NodeId w : candidates) {
            if (!wins(w, candidates)) continue;
            first_winners[pair].push_back(w);
            connector[w] = true;
            add_edge_once(edges, pair.first, w);
        }
    }

    // Second leg: dominatees of v audible from a first-leg winner.
    std::map<DominatorPair, std::vector<NodeId>> second_candidates;
    std::map<std::pair<DominatorPair, NodeId>, std::vector<NodeId>> audible_winners;
    for (const auto& [pair, winners] : first_winners) {
        std::set<NodeId> candidates;
        for (const NodeId w : winners) {
            for (const NodeId x : udg.neighbors(w)) {
                const auto& doms = cluster.dominators_of[x];
                if (std::binary_search(doms.begin(), doms.end(), pair.second)) {
                    candidates.insert(x);
                    audible_winners[{pair, x}].push_back(w);
                }
            }
        }
        second_candidates[pair].assign(candidates.begin(), candidates.end());
    }
    for (const auto& [pair, candidates] : second_candidates) {
        for (const NodeId x : candidates) {
            if (!wins(x, candidates)) continue;
            connector[x] = true;
            add_edge_once(edges, x, pair.second);
            for (const NodeId w : audible_winners[{pair, x}]) add_edge_once(edges, x, w);
        }
    }

    return finish(n, connector, edges);
}

ConnectorState find_connectors_alzoubi(const GeometricGraph& udg,
                                       const ClusterState& cluster) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<bool> connector(n, false);
    std::set<std::pair<NodeId, NodeId>> edges;

    // Dominators of each node's 2-hop ball, for the "w two hops from v"
    // test: w is two hops from dominator v iff v is in w's two-hop
    // dominator list (w not adjacent to v, some common neighbor exists).
    for (NodeId u = 0; u < n; ++u) {
        if (!cluster.is_dominator(u)) continue;

        // Two-hop pairs: smallest-id common dominatee.
        std::set<NodeId> two_hop_dominators;
        for (const NodeId w : udg.neighbors(u)) {
            for (const NodeId v : cluster.dominators_of[w]) {
                if (v != u) two_hop_dominators.insert(v);
            }
        }
        for (const NodeId v : two_hop_dominators) {
            NodeId pick = graph::kInvalidNode;
            for (const NodeId w : udg.neighbors(u)) {
                if (udg.has_edge(w, v) && (pick == graph::kInvalidNode || w < pick)) {
                    pick = w;
                }
            }
            assert(pick != graph::kInvalidNode);
            connector[pick] = true;
            add_edge_once(edges, u, pick);
            add_edge_once(edges, pick, v);
        }

        // Three-hop pairs: smallest-id neighbor w two hops from v, then
        // w's smallest-id neighbor adjacent to v.
        std::set<NodeId> three_hop_dominators;
        for (const NodeId w : udg.neighbors(u)) {
            for (const NodeId v : cluster.two_hop_dominators_of[w]) {
                if (v != u && !two_hop_dominators.contains(v) && !udg.has_edge(u, v)) {
                    three_hop_dominators.insert(v);
                }
            }
        }
        for (const NodeId v : three_hop_dominators) {
            NodeId first = graph::kInvalidNode;
            for (const NodeId w : udg.neighbors(u)) {
                const auto& list = cluster.two_hop_dominators_of[w];
                if (std::binary_search(list.begin(), list.end(), v) &&
                    (first == graph::kInvalidNode || w < first)) {
                    first = w;
                }
            }
            assert(first != graph::kInvalidNode);
            NodeId second = graph::kInvalidNode;
            for (const NodeId x : udg.neighbors(first)) {
                if (udg.has_edge(x, v) && (second == graph::kInvalidNode || x < second)) {
                    second = x;
                }
            }
            assert(second != graph::kInvalidNode);
            connector[first] = true;
            connector[second] = true;
            add_edge_once(edges, u, first);
            add_edge_once(edges, first, second);
            add_edge_once(edges, second, v);
        }
    }
    return finish(n, connector, edges);
}

}  // namespace geospanner::protocol
