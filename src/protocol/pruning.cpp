#include "protocol/pruning.h"

#include <algorithm>

#include "graph/shortest_paths.h"

namespace geospanner::protocol {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

/// Is the backbone (dominators + active connectors) connected within the
/// given edge set?
bool backbone_connected(const GeometricGraph& udg, const ClusterState& cluster,
                        const std::vector<bool>& connector,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
    GeometricGraph g(udg.points());
    for (const auto& [u, v] : edges) {
        const bool u_ok = cluster.is_dominator(u) || connector[u];
        const bool v_ok = cluster.is_dominator(v) || connector[v];
        if (u_ok && v_ok) g.add_edge(u, v);
    }
    std::vector<bool> members(udg.node_count());
    for (NodeId v = 0; v < udg.node_count(); ++v) {
        members[v] = cluster.is_dominator(v) || connector[v];
    }
    return graph::is_connected_on(g, members);
}

}  // namespace

ConnectorState prune_connectors(const GeometricGraph& udg, const ClusterState& cluster,
                                const ConnectorState& connectors) {
    ConnectorState pruned = connectors;
    const auto n = static_cast<NodeId>(udg.node_count());

    // Try to drop connectors from the largest id down; keep a drop only
    // if the dominator-spanning backbone survives.
    for (NodeId v = n; v-- > 0;) {
        if (!pruned.is_connector[v]) continue;
        std::vector<bool> trial = pruned.is_connector;
        trial[v] = false;
        if (backbone_connected(udg, cluster, trial, pruned.cds_edges)) {
            pruned.is_connector = std::move(trial);
        }
    }

    // Drop edges touching removed connectors.
    std::erase_if(pruned.cds_edges, [&](const std::pair<NodeId, NodeId>& e) {
        const bool u_ok = cluster.is_dominator(e.first) || pruned.is_connector[e.first];
        const bool v_ok = cluster.is_dominator(e.second) || pruned.is_connector[e.second];
        return !(u_ok && v_ok);
    });
    return pruned;
}

}  // namespace geospanner::protocol
