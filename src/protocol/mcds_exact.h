// Exact minimum connected dominating set, by exhaustive subset search.
//
// The paper claims the elected backbone (dominators + connectors) is
// within a constant factor of the minimum CDS. This solver makes the
// claim measurable on small instances: it finds an optimal CDS for
// graphs of up to ~20 nodes (bitmask subsets in increasing cardinality).
#pragma once

#include <optional>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::protocol {

/// Smallest connected dominating set of g, as a sorted node list.
/// Requires g connected and node_count() <= 20 (returns nullopt above
/// that, or for empty graphs). For a single node the answer is {0}-like:
/// any one node dominates itself.
[[nodiscard]] std::optional<std::vector<graph::NodeId>> minimum_connected_dominating_set(
    const graph::GeometricGraph& g);

/// Smallest (not necessarily connected) dominating set; same limits.
[[nodiscard]] std::optional<std::vector<graph::NodeId>> minimum_dominating_set(
    const graph::GeometricGraph& g);

}  // namespace geospanner::protocol
