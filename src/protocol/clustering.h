// Clustering: distributed maximal-independent-set election
// (Section III-A.1 of the paper, after Baker & Ephremides / Alzoubi).
//
// Protocol: every node starts *white*. A white node that is the best of
// its still-white neighborhood under the chosen criterion elects itself
// dominator and broadcasts IamDominator. A white node receiving
// IamDominator becomes a dominatee of the sender and broadcasts
// IamDominatee(self, dominator) — rebroadcast for every further
// dominator it acquires (at most five in total, Lemma 1). Nodes drop
// neighbors from their white list as these announcements arrive, so the
// local-optimum test always sees fresh information.
//
// Selection criteria (the paper reviews both families):
//  * kLowestId      — Baker/Ephremides, Alzoubi: smallest id wins; the
//                     elected set is the lexicographically-first MIS.
//  * kHighestDegree — Gerla/Tsai: largest UDG degree wins, ties to the
//                     smaller id (degrees are exchanged in the Hello
//                     beacon).
#pragma once

#include "protocol/cluster_state.h"
#include "protocol/messages.h"

namespace geospanner::protocol {

enum class ClusterPolicy {
    kLowestId,
    kHighestDegree,
};

/// Runs the distributed clustering protocol over the radio graph of
/// `net` (which must be the UDG). Every node first broadcasts a Hello
/// beacon (the paper's initial id announcement; it also carries the
/// node degree for the kHighestDegree criterion). Returns roles,
/// dominator lists, and the two-hop dominator lists harvested from
/// IamDominatee traffic (used later by connector election).
[[nodiscard]] ClusterState run_clustering(Net& net, const graph::GeometricGraph& udg,
                                          ClusterPolicy policy = ClusterPolicy::kLowestId);

/// Centralized reference: simulates the same synchronized rounds without
/// messages. Exactly equals the distributed protocol's output for any
/// policy. Tests assert this.
[[nodiscard]] ClusterState cluster_reference(const graph::GeometricGraph& udg,
                                             ClusterPolicy policy = ClusterPolicy::kLowestId);

/// The lexicographically-first MIS of the UDG (a node is a dominator iff
/// it has no smaller-id dominator neighbor, deciding in increasing id
/// order), with the same derived lists. Equals cluster_reference with
/// kLowestId — kept as an independent formulation for cross-checking.
[[nodiscard]] ClusterState lowest_id_mis(const graph::GeometricGraph& udg);

}  // namespace geospanner::protocol
