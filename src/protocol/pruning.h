// Backbone pruning: a centralized post-pass that strips redundant
// connectors.
//
// Algorithm 1 deliberately keeps several connectors per dominator pair
// (mutually inaudible winners, both directions of 3-hop searches) — the
// paper notes this "increases the robustness of the backbone". This
// module quantifies the other side of that trade-off: `prune_connectors`
// greedily removes connectors (largest id first) while the remaining
// backbone still spans all dominators, yielding a near-minimal CDS to
// compare size and fault-tolerance against.
#pragma once

#include "protocol/cluster_state.h"
#include "protocol/connectors.h"

namespace geospanner::protocol {

/// Greedy pruning: repeatedly drop the largest-id connector whose
/// removal (with its incident backbone edges) keeps all dominators in
/// one connected component of the backbone graph. The result is a
/// minimal-in-inclusion CDS with the same dominator set.
[[nodiscard]] ConnectorState prune_connectors(const graph::GeometricGraph& udg,
                                              const ClusterState& cluster,
                                              const ConnectorState& connectors);

}  // namespace geospanner::protocol
