#include "protocol/mcds_exact.h"

#include <bit>
#include <cstdint>

namespace geospanner::protocol {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

constexpr std::size_t kMaxNodes = 20;

/// Closed-neighborhood bitmasks: bit v of closed[u] iff v == u or v~u.
std::vector<std::uint32_t> closed_neighborhoods(const GeometricGraph& g) {
    std::vector<std::uint32_t> closed(g.node_count());
    for (NodeId u = 0; u < g.node_count(); ++u) {
        closed[u] = 1u << u;
        for (const NodeId v : g.neighbors(u)) closed[u] |= 1u << v;
    }
    return closed;
}

bool dominates(std::uint32_t subset, const std::vector<std::uint32_t>& closed,
               std::uint32_t all) {
    std::uint32_t covered = 0;
    for (std::uint32_t rest = subset; rest != 0; rest &= rest - 1) {
        covered |= closed[std::countr_zero(rest)];
    }
    return covered == all;
}

bool induces_connected(std::uint32_t subset, const std::vector<std::uint32_t>& closed) {
    if (subset == 0) return false;
    const auto start = static_cast<std::uint32_t>(std::countr_zero(subset));
    std::uint32_t reached = 1u << start;
    // Fixed-point BFS over masks: expand by neighbors within the subset.
    while (true) {
        std::uint32_t next = reached;
        for (std::uint32_t rest = reached; rest != 0; rest &= rest - 1) {
            next |= closed[std::countr_zero(rest)] & subset;
        }
        if (next == reached) break;
        reached = next;
    }
    return reached == subset;
}

/// Enumerates subsets of {0..n-1} in increasing cardinality (Gosper's
/// hack within each size) and returns the first satisfying `pred`.
template <typename Pred>
std::optional<std::vector<NodeId>> smallest_subset(std::size_t n, Pred pred) {
    const std::uint32_t all = n == 32 ? ~0u : (1u << n) - 1u;
    for (std::size_t k = 1; k <= n; ++k) {
        std::uint32_t subset = (1u << k) - 1u;
        while (subset <= all) {
            if (pred(subset)) {
                std::vector<NodeId> result;
                for (std::uint32_t rest = subset; rest != 0; rest &= rest - 1) {
                    result.push_back(static_cast<NodeId>(std::countr_zero(rest)));
                }
                return result;
            }
            // Gosper's hack: next subset with k bits.
            const std::uint32_t c = subset & -subset;
            const std::uint32_t r = subset + c;
            if (r == 0) break;  // Overflow: done with this k.
            subset = (((r ^ subset) >> 2) / c) | r;
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<std::vector<NodeId>> minimum_connected_dominating_set(
    const GeometricGraph& g) {
    const std::size_t n = g.node_count();
    if (n == 0 || n > kMaxNodes) return std::nullopt;
    const auto closed = closed_neighborhoods(g);
    const std::uint32_t all = (1u << n) - 1u;
    return smallest_subset(n, [&](std::uint32_t subset) {
        return dominates(subset, closed, all) && induces_connected(subset, closed);
    });
}

std::optional<std::vector<NodeId>> minimum_dominating_set(const GeometricGraph& g) {
    const std::size_t n = g.node_count();
    if (n == 0 || n > kMaxNodes) return std::nullopt;
    const auto closed = closed_neighborhoods(g);
    const std::uint32_t all = (1u << n) - 1u;
    return smallest_subset(
        n, [&](std::uint32_t subset) { return dominates(subset, closed, all); });
}

}  // namespace geospanner::protocol
