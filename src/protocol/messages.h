// Message vocabulary of the distributed backbone protocols.
//
// These are exactly the primitives enumerated by the paper (Sections
// III-A and III-C, plus the simulation section): the clustering pair
// IamDominator / IamDominatee, the connector-election pair TryConnector /
// IamConnector (with a stage tag distinguishing 2-hop connectors and the
// first/second node of a 3-hop connection), the localized-Delaunay
// triangle negotiation Proposal / Accept / Reject, and the aggregate
// planarization broadcasts. A one-shot Hello beacon carries id+position,
// and RoleAnnounce is the single message per node the paper charges for
// deriving ICDS from CDS.
#pragma once

#include <variant>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "proximity/ldel.h"
#include "sim/network.h"

namespace geospanner::protocol {

using graph::NodeId;

/// Which leg of a dominator-dominator connection a connector message is
/// about (the integer field of the paper's TryConnector/IamConnector).
enum class ConnectorStage : std::uint8_t {
    kTwoHop = 0,        ///< sole connector for dominators 2 hops apart
    kThreeHopFirst = 1, ///< first connector on a 3-hop dominator path
    kThreeHopSecond = 2 ///< second connector on a 3-hop dominator path
};

/// Initial beacon: every node announces its id and position once.
struct Hello {
    geom::Point position;
};

/// The sender has elected itself dominator (clusterhead).
struct IamDominator {};

/// The sender is a dominatee of `dominator`.
struct IamDominatee {
    NodeId dominator = 0;
};

/// The sender proposes itself as connector for dominators (u, v).
struct TryConnector {
    NodeId u = 0;
    NodeId v = 0;
    ConnectorStage stage = ConnectorStage::kTwoHop;
};

/// The sender won the election as connector for dominators (u, v).
struct IamConnector {
    NodeId u = 0;
    NodeId v = 0;
    ConnectorStage stage = ConnectorStage::kTwoHop;
};

/// One broadcast per node after connector election, telling neighbors its
/// final role; the paper's one-message cost of ICDS over CDS.
struct RoleAnnounce {
    bool backbone = false;  ///< dominator or connector
};

/// Algorithm 2: the sender proposes 1-localized Delaunay triangle (s,v,w)
/// where s is the sender.
struct Proposal {
    NodeId v = 0;
    NodeId w = 0;
};

/// Algorithm 2: the sender confirms triangle (u, v, w) is in its local
/// Delaunay triangulation.
struct Accept {
    proximity::TriangleKey triangle;
};

/// Algorithm 2: the sender's local Delaunay triangulation lacks (u,v,w).
struct Reject {
    proximity::TriangleKey triangle;
};

/// Algorithm 3 steps 1 and 3: aggregate broadcast of the sender's
/// currently held incident triangles (step 1 additionally carries its
/// Gabriel edges; receivers only need the triangles for the removal
/// rule, and Gabriel endpoints are implied by the edge itself).
struct TriangleAnnounce {
    std::vector<proximity::TriangleKey> triangles;
};

struct TriangleKeep {
    std::vector<proximity::TriangleKey> triangles;
};

/// LDel⁽²⁾ (Algorithm 2 with k = 2): one aggregate broadcast of the
/// sender's 1-hop neighbor ids and positions, giving every receiver its
/// 2-hop neighborhood.
struct NeighborList {
    std::vector<std::pair<NodeId, geom::Point>> neighbors;
};

using Payload = std::variant<Hello, IamDominator, IamDominatee, TryConnector, IamConnector,
                             RoleAnnounce, Proposal, Accept, Reject, TriangleAnnounce,
                             TriangleKeep, NeighborList>;

using Net = sim::Network<Payload>;

}  // namespace geospanner::protocol
