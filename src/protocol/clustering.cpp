#include "protocol/clustering.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace geospanner::protocol {

using graph::GeometricGraph;

namespace {

/// Inserts v into a sorted unique vector; returns true if newly added.
bool sorted_insert(std::vector<NodeId>& list, NodeId value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it != list.end() && *it == value) return false;
    list.insert(it, value);
    return true;
}

/// Election ranking: smaller key wins. kLowestId ranks by id alone;
/// kHighestDegree prefers larger degree, then smaller id.
struct Key {
    std::size_t primary = 0;
    NodeId id = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
};

Key key_of(const GeometricGraph& udg, NodeId v, ClusterPolicy policy) {
    switch (policy) {
        case ClusterPolicy::kLowestId:
            return {0, v};
        case ClusterPolicy::kHighestDegree:
            // Invert degree so that operator< means "wins".
            return {udg.node_count() - udg.degree(v), v};
    }
    return {0, v};
}

/// Harvest pass shared by both engines: dominator lists come from
/// adjacency + roles; two-hop dominators from dominatee neighbors'
/// lists (what IamDominatee traffic reveals).
void derive_lists(const GeometricGraph& udg, ClusterState& state) {
    const auto n = static_cast<NodeId>(udg.node_count());
    for (NodeId v = 0; v < n; ++v) {
        if (state.role[v] != Role::kDominatee) continue;
        for (const NodeId u : udg.neighbors(v)) {
            if (state.role[u] == Role::kDominator) state.dominators_of[v].push_back(u);
        }
    }
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId w : udg.neighbors(v)) {
            if (state.role[w] != Role::kDominatee) continue;
            for (const NodeId d : state.dominators_of[w]) {
                if (d != v && !udg.has_edge(v, d)) {
                    sorted_insert(state.two_hop_dominators_of[v], d);
                }
            }
        }
    }
}

}  // namespace

ClusterState run_clustering(Net& net, const GeometricGraph& udg, ClusterPolicy policy) {
    const auto n = static_cast<NodeId>(udg.node_count());
    ClusterState state;
    state.role.assign(n, Role::kDominatee);
    state.dominators_of.resize(n);
    state.two_hop_dominators_of.resize(n);

    // Per-node protocol state: whiteness of self and of each neighbor as
    // currently known (updated from received announcements). Election
    // keys of neighbors are known from the Hello beacons (id + degree).
    std::vector<char> white(n, 1);
    std::vector<std::set<Key>> white_neighbors(n);
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : udg.neighbors(v)) {
            white_neighbors[v].insert(key_of(udg, u, policy));
        }
    }

    // Initial beacon: every node announces its id/position (and thereby
    // its degree) once, which is how nodes learn their 1-hop neighbor
    // sets in the paper's model.
    for (NodeId v = 0; v < n; ++v) net.broadcast(v, Hello{udg.point(v)});
    net.advance();

    while (true) {
        // Process this round's inbox: track neighbors leaving the white
        // state, acquire dominators, harvest two-hop dominators.
        for (NodeId v = 0; v < n; ++v) {
            for (const auto& env : net.inbox(v)) {
                if (std::holds_alternative<IamDominator>(env.payload)) {
                    white_neighbors[v].erase(key_of(udg, env.from, policy));
                    if (white[v]) {
                        // First dominator: v leaves the white state.
                        white[v] = 0;
                        state.role[v] = Role::kDominatee;
                    }
                    if (state.role[v] == Role::kDominatee &&
                        sorted_insert(state.dominators_of[v], env.from)) {
                        net.broadcast(v, IamDominatee{env.from});
                    }
                } else if (const auto* msg = std::get_if<IamDominatee>(&env.payload)) {
                    white_neighbors[v].erase(key_of(udg, env.from, policy));
                    const NodeId d = msg->dominator;
                    if (d != v && !udg.has_edge(v, d)) {
                        sorted_insert(state.two_hop_dominators_of[v], d);
                    }
                }
            }
        }
        // Decision step: a white node that ranks best among its
        // still-white neighbors elects itself dominator.
        for (NodeId v = 0; v < n; ++v) {
            if (!white[v]) continue;
            const Key mine = key_of(udg, v, policy);
            if (white_neighbors[v].empty() || mine < *white_neighbors[v].begin()) {
                white[v] = 0;
                state.role[v] = Role::kDominator;
                net.broadcast(v, IamDominator{});
            }
        }
        if (!net.advance()) break;
    }

    assert(std::none_of(white.begin(), white.end(), [](char w) { return w != 0; }));
    return state;
}

ClusterState cluster_reference(const GeometricGraph& udg, ClusterPolicy policy) {
    const auto n = static_cast<NodeId>(udg.node_count());
    ClusterState state;
    state.role.assign(n, Role::kDominatee);
    state.dominators_of.resize(n);
    state.two_hop_dominators_of.resize(n);

    // Synchronized rounds: in each round, every white node that is a
    // local optimum among white neighbors becomes a dominator; its white
    // neighbors become dominatees. This mirrors the protocol exactly.
    std::vector<char> white(n, 1);
    std::size_t remaining = n;
    while (remaining > 0) {
        std::vector<NodeId> winners;
        for (NodeId v = 0; v < n; ++v) {
            if (!white[v]) continue;
            const Key mine = key_of(udg, v, policy);
            bool best = true;
            for (const NodeId u : udg.neighbors(v)) {
                if (white[u] && key_of(udg, u, policy) < mine) {
                    best = false;
                    break;
                }
            }
            if (best) winners.push_back(v);
        }
        assert(!winners.empty() && "a global optimum always wins");
        for (const NodeId v : winners) {
            white[v] = 0;
            state.role[v] = Role::kDominator;
            --remaining;
        }
        for (const NodeId v : winners) {
            for (const NodeId u : udg.neighbors(v)) {
                if (white[u]) {
                    white[u] = 0;
                    state.role[u] = Role::kDominatee;
                    --remaining;
                }
            }
        }
    }
    derive_lists(udg, state);
    return state;
}

ClusterState lowest_id_mis(const GeometricGraph& udg) {
    const auto n = static_cast<NodeId>(udg.node_count());
    ClusterState state;
    state.role.assign(n, Role::kDominatee);
    state.dominators_of.resize(n);
    state.two_hop_dominators_of.resize(n);

    // Lexicographically-first MIS: in increasing id order, v becomes a
    // dominator iff no smaller-id neighbor already is one.
    for (NodeId v = 0; v < n; ++v) {
        bool dominated = false;
        for (const NodeId u : udg.neighbors(v)) {
            if (u < v && state.role[u] == Role::kDominator) {
                dominated = true;
                break;
            }
        }
        state.role[v] = dominated ? Role::kDominatee : Role::kDominator;
    }
    derive_lists(udg, state);
    return state;
}

}  // namespace geospanner::protocol
