// Distributed 2-localized Delaunay graph LDel⁽²⁾.
//
// The k = 2 variant of Algorithm 2: each node first broadcasts its 1-hop
// neighbor list (one aggregate message), computes the Delaunay
// triangulation of its now-known 2-hop neighborhood, and negotiates
// incident unit triangles with Proposal/Accept/Reject exactly as in the
// k = 1 protocol. Because 2-hop knowledge already rules out every
// crossing (Li et al.), no planarization pass is needed — the trade-off
// against LDel⁽¹⁾+Algorithm 3 is heavier messages (neighbor lists are
// O(degree) sized) for a protocol that is one phase shorter.
//
// Output equals the centralized proximity::ldel_k_triangles(g, 2)
// exactly; tests assert this across parameter sweeps.
#pragma once

#include "protocol/ldel_protocol.h"

namespace geospanner::protocol {

/// Runs the LDel⁽²⁾ protocol over the radio graph of `net` (== `g`).
/// If announce_positions is set, Hello beacons are broadcast first.
[[nodiscard]] LDelState run_ldel2(Net& net, const graph::GeometricGraph& g,
                                  bool announce_positions);

}  // namespace geospanner::protocol
