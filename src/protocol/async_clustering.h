// Asynchronous clustering (the paper's Section III-A remark: the
// protocol works with asynchronous communications when each node knows
// its 1-hop neighbor ids a priori).
//
// Decision rule at a white node v: as soon as *every* smaller-id
// neighbor is known to have decided (v heard IamDominator or the first
// IamDominatee from each) and v is still white, v elects itself
// dominator. Receiving IamDominator always turns a white node into a
// dominatee first, so two adjacent nodes can never both elect. The
// elected set is the lexicographically-first MIS — identical to the
// synchronous protocol's — for EVERY message-delay interleaving, which
// the tests verify across many delay seeds.
#pragma once

#include "protocol/cluster_state.h"
#include "protocol/messages.h"
#include "sim/async_network.h"

namespace geospanner::protocol {

using AsyncNet = sim::AsyncNetwork<Payload>;

/// Runs the asynchronous clustering protocol to quiescence. Produces the
/// same ClusterState (roles, dominator lists, two-hop dominator lists)
/// as the synchronous run_clustering with the lowest-id policy.
[[nodiscard]] ClusterState run_async_clustering(AsyncNet& net,
                                                const graph::GeometricGraph& udg);

}  // namespace geospanner::protocol
