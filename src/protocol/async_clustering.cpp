#include "protocol/async_clustering.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace geospanner::protocol {

using graph::GeometricGraph;

namespace {

bool sorted_insert(std::vector<NodeId>& list, NodeId value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it != list.end() && *it == value) return false;
    list.insert(it, value);
    return true;
}

}  // namespace

ClusterState run_async_clustering(AsyncNet& net, const GeometricGraph& udg) {
    const auto n = static_cast<NodeId>(udg.node_count());
    ClusterState state;
    state.role.assign(n, Role::kDominatee);
    state.dominators_of.resize(n);
    state.two_hop_dominators_of.resize(n);

    std::vector<char> white(n, 1);
    // Smaller-id neighbors whose decision v has not yet heard about.
    std::vector<std::set<NodeId>> undecided_smaller(n);
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : udg.neighbors(v)) {
            if (u < v) undecided_smaller[v].insert(u);
        }
    }

    const auto elect = [&](NodeId v) {
        assert(white[v]);
        white[v] = 0;
        state.role[v] = Role::kDominator;
        net.broadcast(v, IamDominator{});
    };

    // Initial beacons (id announcement; ids of neighbors are assumed
    // known, as the paper requires for the asynchronous variant) and the
    // unconditional first electors: nodes with no smaller-id neighbor.
    for (NodeId v = 0; v < n; ++v) net.broadcast(v, Hello{udg.point(v)});
    for (NodeId v = 0; v < n; ++v) {
        if (undecided_smaller[v].empty()) elect(v);
    }

    net.run([&](NodeId v, const AsyncNet::Envelope& env) {
        const auto on_neighbor_decided = [&](NodeId u) {
            if (!white[v]) return;
            undecided_smaller[v].erase(u);
            if (undecided_smaller[v].empty() && white[v]) elect(v);
        };
        if (std::holds_alternative<IamDominator>(env.payload)) {
            if (white[v]) {
                white[v] = 0;
                state.role[v] = Role::kDominatee;
            }
            if (state.role[v] == Role::kDominatee &&
                sorted_insert(state.dominators_of[v], env.from)) {
                // This broadcast also tells v's waiting neighbors that v
                // has decided.
                net.broadcast(v, IamDominatee{env.from});
            }
        } else if (const auto* msg = std::get_if<IamDominatee>(&env.payload)) {
            const NodeId d = msg->dominator;
            if (d != v && !udg.has_edge(v, d)) {
                sorted_insert(state.two_hop_dominators_of[v], d);
            }
            on_neighbor_decided(env.from);
        }
    });

    assert(std::none_of(white.begin(), white.end(), [](char w) { return w != 0; }));
    return state;
}

}  // namespace geospanner::protocol
