#include "protocol/ldel_protocol.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

#include "geom/vec2.h"
#include "proximity/classic.h"

namespace geospanner::protocol {

using graph::GeometricGraph;
using proximity::TriangleKey;

namespace {

/// Tolerance on the π/3 proposal threshold: the angle is computed in
/// floating point and an equilateral triangle has all angles exactly
/// π/3; without slack it could end up with no proposer. Extra proposals
/// are harmless (acceptance logic decides membership).
constexpr double kAngleSlack = 1e-9;

/// The two vertices of t other than u.
std::pair<NodeId, NodeId> others(TriangleKey t, NodeId u) {
    if (t.a == u) return {t.b, t.c};
    if (t.b == u) return {t.a, t.c};
    return {t.a, t.b};
}

}  // namespace

LDelState run_ldel(Net& net, const GeometricGraph& g, bool announce_positions) {
    const auto n = static_cast<NodeId>(g.node_count());
    const double min_angle = std::numbers::pi / 3.0 - kAngleSlack;

    if (announce_positions) {
        for (NodeId v = 0; v < n; ++v) {
            if (g.degree(v) > 0) net.broadcast(v, Hello{g.point(v)});
        }
        net.advance();
    }

    // --- Algorithm 2, steps 2-4: local Delaunay + proposals. ---
    std::vector<std::set<TriangleKey>> local(n);
    std::vector<std::set<TriangleKey>> proposed(n);  // by this node
    for (NodeId u = 0; u < n; ++u) {
        for (const TriangleKey& t : proximity::local_triangles_at(g, u)) {
            local[u].insert(t);
            const auto [v, w] = others(t, u);
            if (geom::angle_at(g.point(u), g.point(v), g.point(w)) >= min_angle) {
                proposed[u].insert(t);
                net.broadcast(u, Proposal{v, w});
            }
        }
    }
    net.advance();

    // --- Step 5: accept/reject each distinct triangle heard, once. ---
    std::vector<std::set<TriangleKey>> heard_proposals(n);
    std::vector<std::set<std::pair<NodeId, TriangleKey>>> proposal_heard(n);
    for (NodeId v = 0; v < n; ++v) {
        std::set<TriangleKey> pending;
        for (const auto& env : net.inbox(v)) {
            if (const auto* p = std::get_if<Proposal>(&env.payload)) {
                const TriangleKey t = proximity::make_triangle_key(env.from, p->v, p->w);
                if (t.a != v && t.b != v && t.c != v) continue;  // Not my triangle.
                heard_proposals[v].insert(t);
                proposal_heard[v].insert({env.from, t});
                if (!proposed[v].contains(t)) pending.insert(t);
            }
        }
        for (const TriangleKey& t : pending) {
            if (local[v].contains(t)) {
                net.broadcast(v, Accept{t});
            } else {
                net.broadcast(v, Reject{t});
            }
        }
    }
    net.advance();

    // --- Step 6: a triangle is accepted iff somebody proposed it and
    // every vertex either proposed it itself (implicit acceptance) or
    // answered Accept. Agreement is tracked per sender: every vertex of
    // a triangle hears the other two directly.
    std::vector<std::set<std::pair<NodeId, TriangleKey>>> accept_heard(n);
    for (NodeId u = 0; u < n; ++u) {
        for (const auto& env : net.inbox(u)) {
            if (const auto* a = std::get_if<Accept>(&env.payload)) {
                accept_heard[u].insert({env.from, a->triangle});
            }
        }
    }
    std::vector<std::set<TriangleKey>> mine(n);  // accepted triangles at each vertex
    for (NodeId u = 0; u < n; ++u) {
        std::set<TriangleKey> known = proposed[u];
        known.insert(heard_proposals[u].begin(), heard_proposals[u].end());
        for (const TriangleKey& t : known) {
            if (!local[u].contains(t)) continue;  // u itself must agree.
            const auto [v, w] = others(t, u);
            bool all_ok = true;
            for (const NodeId y : {v, w}) {
                if (!proposal_heard[u].contains({y, t}) &&
                    !accept_heard[u].contains({y, t})) {
                    all_ok = false;
                    break;
                }
            }
            if (all_ok) mine[u].insert(t);
        }
    }

    // --- Algorithm 3, step 1: announce incident triangles. ---
    for (NodeId u = 0; u < n; ++u) {
        if (g.degree(u) == 0) continue;
        std::vector<TriangleKey> tris(mine[u].begin(), mine[u].end());
        if (!tris.empty()) {
            const std::size_t units = tris.size();
            net.broadcast(u, TriangleAnnounce{std::move(tris)}, units);
        }
    }
    net.advance();

    // --- Step 2: drop own triangles beaten by an intersecting known one. ---
    std::vector<std::set<TriangleKey>> kept(n);
    for (NodeId u = 0; u < n; ++u) {
        std::set<TriangleKey> known = mine[u];
        for (const auto& env : net.inbox(u)) {
            if (const auto* ann = std::get_if<TriangleAnnounce>(&env.payload)) {
                known.insert(ann->triangles.begin(), ann->triangles.end());
            }
        }
        for (const TriangleKey& t : mine[u]) {
            bool removed = false;
            for (const TriangleKey& other : known) {
                if (other == t) continue;
                if (!proximity::triangles_intersect(g, t, other)) continue;
                if (proximity::circumcircle_contains_vertex_of(g, t, other)) {
                    removed = true;
                    break;
                }
                // Cocircular tie (neither circumcircle strictly contains
                // the other's vertices): the larger key yields — same
                // deterministic rule as the centralized planarization.
                if (!proximity::circumcircle_contains_vertex_of(g, other, t) &&
                    other < t) {
                    removed = true;
                    break;
                }
            }
            if (!removed) kept[u].insert(t);
        }
    }

    // --- Steps 3-4: broadcast keeps; survive on unanimity. ---
    for (NodeId u = 0; u < n; ++u) {
        if (g.degree(u) == 0) continue;
        std::vector<TriangleKey> tris(kept[u].begin(), kept[u].end());
        if (!tris.empty()) {
            const std::size_t units = tris.size();
            net.broadcast(u, TriangleKeep{std::move(tris)}, units);
        }
    }
    net.advance();

    std::vector<std::set<std::pair<NodeId, TriangleKey>>> keep_heard(n);
    for (NodeId u = 0; u < n; ++u) {
        for (const auto& env : net.inbox(u)) {
            if (const auto* keep = std::get_if<TriangleKeep>(&env.payload)) {
                for (const TriangleKey& t : keep->triangles) {
                    keep_heard[u].insert({env.from, t});
                }
            }
        }
    }

    LDelState result;
    std::set<TriangleKey> final_set;
    for (NodeId u = 0; u < n; ++u) {
        for (const TriangleKey& t : kept[u]) {
            const auto [v, w] = others(t, u);
            if (keep_heard[u].contains({v, t}) && keep_heard[u].contains({w, t})) {
                final_set.insert(t);
            }
        }
    }
    result.triangles.assign(final_set.begin(), final_set.end());

    result.graph = proximity::build_gabriel(g);
    for (const TriangleKey& t : result.triangles) {
        result.graph.add_edge(t.a, t.b);
        result.graph.add_edge(t.b, t.c);
        result.graph.add_edge(t.a, t.c);
    }
    return result;
}

}  // namespace geospanner::protocol
