#include "protocol/broadcast.h"

#include "graph/shortest_paths.h"
#include "random/rng.h"
#include "sim/network.h"

namespace geospanner::protocol {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

/// Payload for the broadcast protocols: one opaque data message.
struct Data {};
using BroadcastNet = sim::Network<std::variant<Data>>;

/// Generic relay simulation: `relays[v]` says whether v retransmits the
/// first copy it receives. The source always transmits.
BroadcastResult run_relay(const GeometricGraph& udg, const std::vector<bool>& relays,
                          NodeId source) {
    BroadcastResult result;
    result.reached.assign(udg.node_count(), false);
    result.reached[source] = true;

    BroadcastNet net(udg);
    net.broadcast(source, Data{});
    ++result.transmissions;
    while (net.advance()) {
        ++result.rounds;
        for (NodeId v = 0; v < udg.node_count(); ++v) {
            if (net.inbox(v).empty() || result.reached[v]) continue;
            result.reached[v] = true;
            if (relays[v]) {
                net.broadcast(v, Data{});
                ++result.transmissions;
            }
        }
    }
    for (const bool r : result.reached) result.covered += r ? 1 : 0;
    return result;
}

}  // namespace

BroadcastResult flood_broadcast(const GeometricGraph& udg, NodeId source) {
    return run_relay(udg, std::vector<bool>(udg.node_count(), true), source);
}

BroadcastResult backbone_broadcast(const GeometricGraph& udg,
                                   const std::vector<bool>& in_backbone, NodeId source) {
    return run_relay(udg, in_backbone, source);
}

BroadcastResult tree_broadcast(const GeometricGraph& udg, NodeId source) {
    const auto parent = graph::bfs_tree(udg, source);
    std::vector<bool> internal(udg.node_count(), false);
    for (NodeId v = 0; v < udg.node_count(); ++v) {
        if (parent[v] != graph::kInvalidNode) internal[parent[v]] = true;
    }
    return run_relay(udg, internal, source);
}

BroadcastResult collision_broadcast(const GeometricGraph& udg,
                                    const std::vector<bool>& relays, NodeId source,
                                    const CollisionConfig& config) {
    BroadcastResult result;
    const auto n = static_cast<NodeId>(udg.node_count());
    result.reached.assign(n, false);
    result.reached[source] = true;

    rnd::Xoshiro256 rng(config.seed);
    constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    std::vector<std::size_t> tx_slot(n, kNever);
    tx_slot[source] = 0;  // The source transmits alone in slot 0.

    std::size_t pending = 1;
    for (std::size_t slot = 0; slot < config.max_slots && pending > 0; ++slot) {
        // Who transmits this slot?
        std::vector<NodeId> transmitters;
        for (NodeId v = 0; v < n; ++v) {
            if (tx_slot[v] == slot) transmitters.push_back(v);
        }
        if (transmitters.empty()) continue;
        pending -= transmitters.size();
        result.transmissions += transmitters.size();
        result.rounds = slot + 1;

        // Deliveries: a node receives iff exactly one neighbor transmits.
        std::vector<std::uint8_t> heard(n, 0);
        for (const NodeId t : transmitters) {
            for (const NodeId u : udg.neighbors(t)) {
                if (heard[u] < 2) ++heard[u];
            }
        }
        for (NodeId u = 0; u < n; ++u) {
            if (heard[u] != 1 || result.reached[u]) continue;
            result.reached[u] = true;
            if (relays[u] && tx_slot[u] == kNever) {
                tx_slot[u] = slot + 1 + rng.below(config.window);
                ++pending;
            }
        }
    }
    for (const bool r : result.reached) result.covered += r ? 1 : 0;
    return result;
}

}  // namespace geospanner::protocol
